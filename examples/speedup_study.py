"""A miniature of the paper's Section 5.2 speedup study.

Decomposes one root-finding run into the paper's task structure
(Section 3), records every task's cost in the quadratic bit model, and
replays the DAG on a simulated shared-queue multiprocessor for
p = 1, 2, 4, 8, 16 — printing the same kind of speedup rows as the
paper's Tables 3-7.

Run:  python examples/speedup_study.py
"""

from repro.bench.workloads import square_free_characteristic_input
from repro.core.scaling import digits_to_bits
from repro.core.tasks import build_task_graph
from repro.costmodel.counter import CostCounter
from repro.sched.simulator import speedup_curve

DEGREES = [20, 30, 40]
MU_DIGITS = 16
PROCESSORS = [1, 2, 4, 8, 16]


def main() -> None:
    mu = digits_to_bits(MU_DIGITS)
    print(
        f"speedup study: mu = {MU_DIGITS} digits, processors = {PROCESSORS}\n"
    )
    header = f"{'n':>4s} {'tasks':>7s} {'T1/Tinf':>8s} | " + " ".join(
        f"p={p:<4d}" for p in PROCESSORS
    )
    print(header)
    print("-" * len(header))

    for n in DEGREES:
        inp = square_free_characteristic_input(n, 11)
        counter = CostCounter()
        tg = build_task_graph(inp.poly, mu, counter)
        tg.graph.run_recorded(counter)  # this *is* the computation
        stats = tg.graph.stats()
        curve = speedup_curve(tg.graph, PROCESSORS)
        t1 = curve[1].makespan
        cells = " ".join(f"{t1 / curve[p].makespan:6.2f}" for p in PROCESSORS)
        print(
            f"{n:>4d} {stats.n_tasks:>7d} "
            f"{stats.total_work / stats.critical_path:8.1f} | {cells}"
        )

    print(
        "\n(T1/Tinf is the DAG's inherent parallelism; speedups are vs the"
        "\n 1-processor run of the same parallel program, as in the paper.)"
    )

    # Show where the time goes, per task kind, for the largest run.
    print("\nwork by task kind (largest run):")
    for kind, (count, work) in sorted(
        stats.by_kind.items(), key=lambda kv: -kv[1][1]
    ):
        share = work / stats.total_work
        if share >= 0.005:
            print(f"  {kind:14s} {count:6d} tasks  {share:6.1%} of work")


if __name__ == "__main__":
    main()
