"""Gauss quadrature nodes via exact real-root isolation.

The nodes of an n-point Gauss-Legendre rule are the roots of the
Legendre polynomial P_n — all real, all in (-1, 1).  Quadrature-rule
generators need them to high precision; this example computes them
exactly with the paper's algorithm and validates the resulting rule by
integrating polynomials it must get exactly right.

Run:  python examples/gauss_quadrature_nodes.py
"""

from fractions import Fraction

from repro import RealRootFinder, digits_to_bits
from repro.bench.workloads import hermite_prob, legendre_scaled


def legendre_weights(nodes: list[float], n: int) -> list[float]:
    """Standard weights w_i = 2 / ((1 - x_i^2) P_n'(x_i)^2)."""
    # Evaluate P_n' via the scaled integer polynomial and chain rule:
    # q = 2^n n! P_n  =>  P_n' = q' / (2^n n!).
    import math

    q = legendre_scaled(n)
    dq = q.derivative()
    scale = float(2**n * math.factorial(n))
    out = []
    for x in nodes:
        dpn = dq.eval_float(x) / scale
        out.append(2.0 / ((1.0 - x * x) * dpn * dpn))
    return out


def main() -> None:
    n, digits = 12, 30
    mu = digits_to_bits(digits)

    q = legendre_scaled(n)
    print(f"Legendre P_{n} (scaled to integers): degree {q.degree}, "
          f"coefficients up to {q.max_coefficient_bits()} bits")

    result = RealRootFinder(mu_bits=mu).find_roots(q)
    nodes = result.as_floats()
    weights = legendre_weights(nodes, n)

    print(f"\n{n}-point Gauss-Legendre rule (nodes to {digits} digits):")
    for x, w in zip(result.as_fractions(), weights):
        print(f"  x = {float(x):+.17f}   w = {w:.17f}")

    # Validation: the rule integrates polynomials of degree <= 2n-1
    # exactly.  integral of x^k over [-1,1] = 2/(k+1) for even k.
    print("\nvalidation (exact for degree <= 2n-1):")
    for k in (0, 2, 10, 2 * n - 2):
        quad = sum(w * x**k for x, w in zip(nodes, weights))
        exact = 2.0 / (k + 1)
        print(f"  int x^{k:<2d}: quadrature {quad:.15f}  exact {exact:.15f}  "
              f"err {abs(quad - exact):.1e}")

    # Bonus: Gauss-Hermite nodes (roots of He_n) the same way.
    h = hermite_prob(10)
    hr = RealRootFinder(mu_bits=mu).find_roots(h)
    print("\nGauss-Hermite (probabilists') nodes for n=10:")
    print("  " + ", ".join(f"{x:+.12f}" for x in hr.as_floats()))


if __name__ == "__main__":
    main()
