"""Quickstart: approximate all roots of a real-rooted integer polynomial.

Run:  python examples/quickstart.py
"""

from repro import CostCounter, IntPoly, RealRootFinder, certify_roots


def main() -> None:
    # A polynomial with only real roots (here: built from known roots,
    # but any integer polynomial whose roots are all real works).
    p = IntPoly.from_roots([-7, -2, 0, 3, 11]) * IntPoly((-1, 0, 2))
    #                                            ^ extra factor 2x^2 - 1:
    #                                              roots +-sqrt(1/2)
    print(f"input: {p}")

    # mu is the output precision: every root is returned as the exact
    # ceiling on the 2^-mu grid, i.e. x_approx - 2^-mu < x <= x_approx.
    finder = RealRootFinder(mu_bits=64)
    result = finder.find_roots(p)

    print(f"\n{len(result)} distinct real roots at 2^-64 precision:")
    for frac, mult in zip(result.as_fractions(), result.multiplicities):
        print(f"  {float(frac):+.18f}   (multiplicity {mult})")

    # The answers are exact rationals, certifiable without floats:
    certify_roots(p, result.scaled, result.multiplicities, result.mu)
    print("\ncertified: each reported cell provably contains its root")

    # Cost accounting in the paper's machine model (Section 4):
    counter = CostCounter()
    RealRootFinder(mu_bits=64, counter=counter).find_roots(p)
    print("\nper-phase cost report:")
    print(counter.report())


if __name__ == "__main__":
    main()
