"""Root isolation, refinement, and schedule visualization.

Shows the stage-1 isolation API (exact disjoint intervals), incremental
refinement to very high precision, and the simulated-schedule rendering
for the parallel decomposition.

Run:  python examples/root_isolation.py
"""

from fractions import Fraction

from repro.core import isolate_real_roots, refine_result, RealRootFinder
from repro.core.tasks import build_task_graph
from repro.costmodel import CostCounter
from repro.poly import IntPoly, from_fractions
from repro.sched import render_gantt, render_utilization
from repro.sched.simulator import simulate


def main() -> None:
    # Isolation: disjoint rational intervals, one distinct root each —
    # works for rational coefficients and repeated roots too.
    p = from_fractions(
        [Fraction(3, 2), Fraction(-21, 4), Fraction(3), Fraction(1)]
    ) * IntPoly.from_roots([2, 2])
    print(f"input: {p}")
    intervals = isolate_real_roots(p)
    print("\nisolating intervals (half-open, exact rationals):")
    for iv in intervals:
        print(
            f"  ({float(iv.lo):+.6f}, {float(iv.hi):+.6f}]"
            f"   width 2^{iv.width.denominator.bit_length() - 1 and -(iv.width.denominator.bit_length() - 1)}"
            f"   multiplicity {iv.multiplicity}"
        )

    # Refinement: isolate once cheaply, then push one result to 500 bits.
    q = IntPoly((-7, 0, 1)) * IntPoly.from_roots([-50])  # sqrt(7), all-real
    coarse = RealRootFinder(mu_bits=16).find_roots(q)
    fine = refine_result(coarse, q, 500)
    sqrt7 = fine.as_fractions()[2]
    print(f"\nsqrt(7) to 500 bits: {float(sqrt7):.15f}...")
    print(f"  (exactly: ceil(2^500 sqrt7) / 2^500; "
          f"check: value^2 - 7 = {float(sqrt7**2 - 7):.2e})")

    # Schedule rendering: where the processors spend their time.
    inp = IntPoly.from_roots([k * k - 40 for k in range(1, 11)])
    counter = CostCounter()
    tg = build_task_graph(inp, 40, counter)
    tg.graph.run_recorded(counter)
    result = simulate(tg.graph, 6, keep_trace=True)
    print(f"\nsimulated schedule on 6 processors "
          f"(speedup {simulate(tg.graph, 1).makespan / result.makespan:.2f}):")
    print(render_gantt(result, tg.graph.tasks, width=88))
    print(render_utilization(result, width=88))


if __name__ == "__main__":
    main()
