"""Exact eigenvalues of a symmetric integer matrix — the paper's workload.

A symmetric integer matrix has an all-real-roots characteristic
polynomial, so the algorithm computes its spectrum to *any* requested
precision, exactly — something float64 eigensolvers cannot do.

Run:  python examples/symmetric_eigenvalues.py
"""

import numpy as np

from repro import RealRootFinder, digits_to_bits
from repro.charpoly import berkowitz_charpoly, random_symmetric_01_matrix


def main() -> None:
    n, seed, digits = 24, 7, 40
    mat = random_symmetric_01_matrix(n, seed)
    print(f"random symmetric 0-1 matrix, n = {n} (seed {seed})")

    # Exact integer characteristic polynomial (division-free Berkowitz).
    p = berkowitz_charpoly(mat)
    print(
        f"characteristic polynomial: degree {p.degree}, "
        f"coefficients up to {p.max_coefficient_bits()} bits"
    )

    # All eigenvalues to 40 decimal digits.
    finder = RealRootFinder(mu_bits=digits_to_bits(digits))
    result = finder.find_roots(p)

    # float64 reference for comparison.
    ref = np.sort(np.linalg.eigvalsh(np.array(mat, dtype=np.float64)))

    print(f"\neigenvalues to {digits} digits (vs float64 eigvalsh):")
    expanded = [
        f for f, m in zip(result.as_fractions(), result.multiplicities)
        for _ in range(m)
    ]
    for exact, approx in zip(expanded, ref):
        # print the exact value with full precision
        scaled = exact.numerator * 10**digits // exact.denominator
        s = f"{scaled}"
        sign, s = ("-", s[1:]) if s.startswith("-") else ("", s)
        s = s.rjust(digits + 1, "0")
        whole, frac = s[:-digits], s[-digits:]
        print(f"  {sign}{whole}.{frac}")
        print(f"    float64: {approx:+.15f}   (agrees to "
              f"{-np.log10(max(abs(float(exact) - approx), 1e-18)):.0f} digits)")

    err = max(abs(float(e) - a) for e, a in zip(expanded, ref))
    print(f"\nmax |exact - float64| = {err:.2e} "
          "(float64 is the one with the error)")


if __name__ == "__main__":
    main()
