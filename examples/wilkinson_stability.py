"""Stability demo: Wilkinson's polynomial, exact vs floating point.

The paper's conclusion claims the implementation "does not suffer from
problems of stability that characterize many other implementations".
Wilkinson's polynomial prod (x - k), k = 1..20 is the canonical
stability torture test: its coefficients are so ill-conditioned that
any double-precision method (companion-matrix eigenvalues, fixed
precision Aberth) produces garbage or fails outright, while the exact
algorithm recovers every root to any requested precision.

Run:  python examples/wilkinson_stability.py
"""

import numpy as np

from repro import RealRootFinder, digits_to_bits
from repro.baselines.aberth import AberthFailure, AberthFinder
from repro.bench.workloads import close_roots, wilkinson


def main() -> None:
    n = 20
    p = wilkinson(n)
    print(f"Wilkinson W_{n}: degree {n}, largest coefficient "
          f"{p.max_coefficient_bits()} bits (~{p.height():.3e})")

    # 1. The exact algorithm: perfect at any precision.
    res = RealRootFinder(mu_bits=digits_to_bits(30)).find_roots(p)
    exact_ok = res.as_floats() == [float(k) for k in range(1, n + 1)]
    print(f"\nexact algorithm (mu = 30 digits): roots = 1..{n}: {exact_ok}")

    # 2. numpy.roots (companion-matrix eigenvalues in float64).
    np_roots = np.sort(np.roots(list(reversed(p.coeffs))))
    max_imag = float(np.max(np.abs(np_roots.imag)))
    err = float(np.max(np.abs(np.sort(np_roots.real) - np.arange(1, n + 1))))
    print(f"numpy.roots: max error {err:.3f}, "
          f"max spurious imaginary part {max_imag:.3f}")

    # 3. Aberth-Ehrlich in double precision.
    try:
        AberthFinder().find_roots(p)
        print("Aberth (float64): converged (unexpectedly)")
    except AberthFailure as e:
        print(f"Aberth (float64): FAILED — {e}")

    # 4. Close-root separation: pairs of roots 2^-64 apart, resolved
    #    exactly at mu = 80 bits while float64 cannot even represent
    #    the difference.
    q = close_roots(6, 64)
    r = RealRootFinder(mu_bits=80).find_roots(q)
    fr = r.as_fractions()
    gap = float(fr[1] - fr[0])
    print(f"\nclose-root family (pairs 2^-64 apart): resolved "
          f"{len(r)} distinct roots; measured gap = {gap:.3e} "
          f"(= 2^{np.log2(gap):.0f})")
    print("float64 eps at that magnitude:", np.finfo(float).eps)


if __name__ == "__main__":
    main()
