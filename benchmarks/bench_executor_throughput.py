"""Executor throughput: persistent warm pool vs. the per-call-Pool baseline.

The pre-tentpole executor spawned a fresh ``spawn`` pool inside every
``find_roots_scaled`` call, so service-style workloads (many
polynomials, one process) paid interpreter-boot latency per call.  The
persistent executor amortizes one pool across the batch and pipelines
sign/gap tasks without per-node barriers; this bench quantifies the
per-call dispatch overhead both ways on a multi-gap workload.

The cold baseline is emulated faithfully: a fresh
:class:`~repro.sched.executor.ParallelRootFinder` (hence a fresh pool)
per call, closed right after — exactly one pool lifetime per
polynomial, like the old ``with mp.Pool(...)`` body.
"""

import time

import pytest

from repro.bench.report import format_series, save_result
from repro.core.rootfinder import RealRootFinder
from repro.poly.dense import IntPoly
from repro.sched.executor import ParallelRootFinder

MU = 16
PROCESSES = 2

#: Multi-gap inputs: each call dispatches sign+gap tasks across a
#: multi-level interleaving tree (degrees 4-7).
WORKLOAD_ROOTS = [
    [-9, -4, -1, 2, 5, 11],
    [-12, -6, 0, 3, 8],
    [-15, -7, -2, 1, 6, 10, 14],
    [-8, -3, 4, 13],
]


def _workload() -> list[IntPoly]:
    return [IntPoly.from_roots(r) for r in WORKLOAD_ROOTS] * 2


@pytest.mark.slow
def test_throughput_persistent_pool_beats_per_call_pool():
    polys = _workload()
    expected = [RealRootFinder(mu_bits=MU).find_roots(p).scaled
                for p in polys]

    # Cold baseline: one pool lifetime per call.
    t0 = time.perf_counter()
    cold_results = []
    for p in polys:
        with ParallelRootFinder(mu=MU, processes=PROCESSES) as f:
            cold_results.append(f.find_roots_scaled(p))
    cold = time.perf_counter() - t0

    # Warm path: one pool for the whole batch; spawn happens outside
    # the timed region (a service pays it once at startup).
    with ParallelRootFinder(mu=MU, processes=PROCESSES) as f:
        f.find_roots_scaled(polys[0])
        t0 = time.perf_counter()
        warm_results = f.find_roots_many(polys)
        warm = time.perf_counter() - t0
        assert f.fallback_count == 0

    assert cold_results == expected
    assert warm_results == expected

    n = len(polys)
    rows = [[n, cold, cold / n, warm, warm / n, cold / warm]]
    text = format_series(
        "Executor throughput: per-call Pool baseline vs persistent pool "
        f"(mu={MU} bits, {PROCESSES} processes)",
        "calls",
        ["cold_total_s", "cold_per_call_s", "warm_total_s",
         "warm_per_call_s", "speedup"],
        rows,
    )
    print("\n" + text)
    save_result("executor_throughput", text)

    # The acceptance claim: per-call dispatch overhead shrinks once the
    # pool persists (pool spawn alone costs ~hundreds of ms per call).
    assert warm / n < cold / n, (
        f"warm per-call {warm / n:.3f}s not below cold {cold / n:.3f}s"
    )
