"""Ablation — interval-solver strategy (paper Section 2.2's choice).

The paper picks the sieve/bisection/Newton hybrid over plain bisection
and plain Newton.  This ablation quantifies that choice: evaluations
per solve as a function of mu for the three (all exact) strategies.

Expected shapes: bisection is Theta(mu) per solve; the hybrid is
O(log d + log mu); guarded Newton without the warm-up sits in between
(no Renegar guarantee, so it pays extra guarded steps on bad brackets).
"""

import pytest

from repro.bench.report import format_series, save_result
from repro.bench.workloads import square_free_characteristic_input
from repro.core.rootfinder import RealRootFinder
from repro.core.scaling import digits_to_bits
from repro.costmodel.counter import CostCounter

N = 20
MUS = [4, 8, 16, 32, 64]
STRATEGIES = ("hybrid", "bisection", "newton")


@pytest.fixture(scope="module")
def sweep():
    inp = square_free_characteristic_input(N, 11)
    out = {}
    for strat in STRATEGIES:
        for mu in MUS:
            bits = digits_to_bits(mu)
            c = CostCounter()
            res = RealRootFinder(
                mu_bits=bits, counter=c, strategy=strat
            ).find_roots(inp.poly)
            out[(strat, mu)] = (
                res.stats.evaluations / max(res.stats.solves, 1),
                c.phase_stats("interval").mul_bit_cost,
                res.scaled,
            )
    return out


def test_strategy_ablation(sweep):
    rows = []
    for mu in MUS:
        rows.append(
            [mu] + [sweep[(s, mu)][0] for s in STRATEGIES]
        )
    text = format_series(
        f"Ablation (reproduced): interval strategy, evals/solve, n={N}",
        "mu", list(STRATEGIES), rows,
    )
    print("\n" + text)
    save_result("ablation_strategy", text)

    # All strategies produce identical exact answers.
    for mu in MUS:
        answers = {tuple(sweep[(s, mu)][2]) for s in STRATEGIES}
        assert len(answers) == 1

    # Bisection scales ~linearly in mu; the hybrid ~logarithmically.
    bis_lo = sweep[("bisection", MUS[0])][0]
    bis_hi = sweep[("bisection", MUS[-1])][0]
    hyb_lo = sweep[("hybrid", MUS[0])][0]
    hyb_hi = sweep[("hybrid", MUS[-1])][0]
    mu_ratio = MUS[-1] / MUS[0]
    assert bis_hi / bis_lo > 0.4 * mu_ratio       # near-linear growth
    assert hyb_hi / hyb_lo < 0.25 * mu_ratio      # strongly sublinear

    # At high precision the hybrid clearly wins on bit cost.
    assert (
        sweep[("hybrid", MUS[-1])][1] < 0.7 * sweep[("bisection", MUS[-1])][1]
    )


def test_newton_between_hybrid_and_bisection_at_high_mu(sweep):
    mu = MUS[-1]
    hyb = sweep[("hybrid", mu)][0]
    new = sweep[("newton", mu)][0]
    bis = sweep[("bisection", mu)][0]
    assert hyb <= new + 1.0
    assert new <= bis + 1.0


def test_benchmark_hybrid(benchmark):
    inp = square_free_characteristic_input(15, 11)
    bits = digits_to_bits(32)
    benchmark(lambda: RealRootFinder(mu_bits=bits).find_roots(inp.poly))


def test_benchmark_bisection_strategy(benchmark):
    inp = square_free_characteristic_input(15, 11)
    bits = digits_to_bits(32)
    benchmark(
        lambda: RealRootFinder(
            mu_bits=bits, strategy="bisection"
        ).find_roots(inp.poly)
    )
