"""Figures 2-5 — predicted vs observed multiplication counts.

Paper: for mu = 8, 16, 24, 32 digits, plot the analytically predicted
number of multiprecision multiplications against the traced counts; the
fit is good, "especially for larger input parameters".

Reproduced as data series per mu: degree, predicted total, observed
total, ratio.  Shape assertions: the deterministic phases match within
a few percent, the total within the paper-grade band, and the relative
error shrinks as n grows.
"""

from repro.bench.plot import ascii_chart
from repro.bench.report import format_series, save_result
from repro.bench.workloads import bench_degrees, bench_mu_digits


def _series_for_mu(sequential_records, mu):
    rows = []
    for n in bench_degrees():
        rec = sequential_records[(n, mu)]
        pred = rec.predictions()
        p_total = sum(p.mul_count for p in pred.values())
        o_total = rec.total_mul_count
        rows.append([n, p_total, o_total, p_total / o_total])
    return rows


def test_fig2_5_reproduction(sequential_records):
    chunks = []
    for mu in bench_mu_digits():
        rows = _series_for_mu(sequential_records, mu)
        chunks.append(
            format_series(
                f"Figure 2-5 (reproduced): multiplication counts, mu={mu} digits",
                "n", ["predicted", "observed", "pred/obs"], rows,
            )
        )
        chunks.append(
            ascii_chart(
                f"(figure) multiplication counts vs degree, mu={mu} digits "
                "(log scale)",
                [r[0] for r in rows],
                {"predicted": [r[1] for r in rows],
                 "observed": [r[2] for r in rows]},
                logy=True,
            )
        )
        ratios = [r[3] for r in rows]
        # Paper-grade fit, mirroring "quite well, especially for larger
        # input parameters": tight band at mu >= 8 digits, a looser one
        # at mu = 4 where the per-solve constants dominate the counts.
        band = (0.6, 2.0) if mu <= 4 else (0.6, 1.6)
        assert all(band[0] <= r <= band[1] for r in ratios), (mu, ratios)

    text = "\n\n".join(chunks)
    print("\n" + text)
    save_result("fig2_5_mulcounts", text)


def test_deterministic_phases_match_tightly(sequential_records):
    """Remainder + tree predictions are exact up to zero-skipping."""
    for (n, mu), rec in sequential_records.items():
        pred = rec.predictions()
        obs_rem = rec.phase("remainder").mul_count
        obs_tree = rec.phase("tree").mul_count
        assert abs(pred["remainder"].mul_count - obs_rem) <= max(
            6, 0.06 * obs_rem
        )
        assert obs_tree <= pred["tree"].mul_count * 1.02
        assert pred["tree"].mul_count <= obs_tree * 1.3 + 30


def test_fit_improves_with_degree(sequential_records):
    mus = bench_mu_digits()
    mu = mus[-1]
    rows = _series_for_mu(sequential_records, mu)
    small_err = abs(rows[0][3] - 1.0)
    large_err = abs(rows[-1][3] - 1.0)
    assert large_err <= small_err + 0.15


def test_benchmark_prediction_evaluation(benchmark, sequential_records):
    rec = next(iter(sequential_records.values()))
    benchmark(lambda: rec.predictions())
