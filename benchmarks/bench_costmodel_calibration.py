"""Cost-model calibration — justifying the simulated-time currency.

The paper's machine model (Section 3.3): the ``mp`` package multiplies
in quadratic time.  All our simulated times are quadratic bit costs
``bits(a) * bits(b)``; this bench validates that model against the
from-scratch schoolbook bignum (:class:`repro.mpint.MPInt`), which is
the faithful ``mp`` stand-in:

* measured MPInt multiply wall-time grows linearly in the product
  ``bits(a) * bits(b)`` (fit exponent ~1 on a log-log scale);
* Python's builtin int does *not* follow the quadratic model at large
  sizes (subquadratic algorithms) — which is exactly why MPInt exists.
"""

import time
from math import log

from repro.bench.report import format_series, save_result
from repro.mpint.mpint import MPInt

SIZES = [256, 512, 1024, 2048, 4096, 8192]


def time_mpint_mul(bits: int, reps: int = 8) -> float:
    a = MPInt((1 << bits) - 12345)
    b = MPInt((1 << bits) - 67)
    t0 = time.perf_counter()
    for _ in range(reps):
        a * b
    return (time.perf_counter() - t0) / reps


def fitted_exponent(xs, ys):
    lx = [log(x) for x in xs]
    ly = [log(y) for y in ys]
    n = len(xs)
    mx, my = sum(lx) / n, sum(ly) / n
    num = sum((a - mx) * (b - my) for a, b in zip(lx, ly))
    den = sum((a - mx) ** 2 for a in lx)
    return num / den


def test_quadratic_model_calibration():
    rows = []
    costs, times = [], []
    for bits in SIZES:
        t = time_mpint_mul(bits)
        model = bits * bits
        rows.append([bits, t * 1e6, model])
        costs.append(model)
        times.append(t)
    text = format_series(
        "Cost-model calibration: MPInt multiply wall time vs bits(a)*bits(b)",
        "bits", ["us/mul", "model"], rows,
    )
    slope = fitted_exponent(costs, times)
    text += f"\nlog-log slope of time against model: {slope:.3f} (ideal 1.0)"
    print("\n" + text)
    save_result("costmodel_calibration", text)
    assert 0.8 <= slope <= 1.2, slope


def test_equal_cost_multiplies_take_equal_time():
    """bits(a)*bits(b) is the right 2-parameter model: a 4096x4096
    multiply costs about the same as ... times a 16384x1024 one."""
    square = time_mpint_mul(4096)
    a = MPInt((1 << 16384) - 9)
    b = MPInt((1 << 1024) - 5)
    t0 = time.perf_counter()
    for _ in range(8):
        a * b
    skew = (time.perf_counter() - t0) / 8
    assert 0.4 <= skew / square <= 2.5


def test_benchmark_mpint_mul_2048(benchmark):
    a = MPInt((1 << 2048) - 3)
    b = MPInt((1 << 2048) - 7)
    benchmark(lambda: a * b)


def test_benchmark_mpint_divmod_2048(benchmark):
    a = MPInt((1 << 4096) - 3)
    b = MPInt((1 << 2048) - 7)
    benchmark(lambda: divmod(a, b))


def test_benchmark_python_int_mul_2048(benchmark):
    a = (1 << 2048) - 3
    b = (1 << 2048) - 7
    benchmark(lambda: a * b)
