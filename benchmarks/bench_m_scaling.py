"""Extension — scaling in the coefficient size m, independent of n.

The paper's workload couples m to n (0-1 matrices give m(n) growing
with the degree), so Table 2 cannot separate the two factors of the
``n^4 (m + log n)^2`` law.  Using symmetric matrices with entries in
``[-b, b]`` decouples them: at fixed degree, doubling the entry bound
adds ~n log2(b) bits to m, and the deterministic phases' bit cost must
grow quadratically in (m + log n).
"""

import pytest

from repro.analysis.bounds import beta
from repro.bench.report import format_series, save_result
from repro.bench.runner import run_sequential
from repro.charpoly.generator import characteristic_input
from repro.poly.gcd import is_square_free

N = 20
BOUNDS = [1, 4, 16, 64, 256]


def sf_input(bound: int):
    seed = 11
    for _ in range(40):
        inp = characteristic_input(N, seed, entry_bound=bound)
        if is_square_free(inp.poly):
            return inp
        seed += 1000
    raise RuntimeError("no square-free instance")


@pytest.fixture(scope="module")
def sweep():
    out = []
    for b in BOUNDS:
        inp = sf_input(b)
        rec = run_sequential(inp, 16)
        out.append((b, inp.coeff_bits, rec))
    return out


def test_m_scaling(sweep):
    rows = []
    for b, m_bits, rec in sweep:
        det_cost = (
            rec.phase("remainder").total_bit_cost
            + rec.phase("tree").total_bit_cost
        )
        rows.append([b, m_bits, det_cost, beta(N, m_bits)])
    text = format_series(
        f"Extension: coefficient-size scaling at fixed degree n={N}",
        "bound", ["m_bits", "det bitcost", "beta"], rows,
    )
    print("\n" + text)
    save_result("m_scaling", text)

    # bit cost of the deterministic phases grows ~ (m + log n)^2:
    # regress cost against beta^2 — ratio drift must be bounded.
    ratios = [r[2] / (r[3] ** 2) for r in rows]
    assert max(ratios) / min(ratios) < 3.0, ratios

    # m grows with the entry bound
    ms = [r[1] for r in rows]
    assert ms == sorted(ms) and ms[-1] > ms[0] + 3 * N


def test_mul_count_insensitive_to_m(sweep):
    """Arithmetic complexity is O(n^2) regardless of m — only the bit
    cost grows (Table 1's two columns)."""
    counts = [
        rec.phase("remainder").mul_count + rec.phase("tree").mul_count
        for _b, _m, rec in sweep
    ]
    assert max(counts) / min(counts) < 1.1


def test_benchmark_big_coefficients(benchmark):
    inp = sf_input(256)
    benchmark(lambda: run_sequential(inp, 16))
