"""Eqs. 42-48 — per-level, rightmost-vs-interior interval cost split.

Paper Section 4.3 sums the interval-problem evaluation costs separately
for the rightmost tree nodes (remainder-sequence polynomials, small
coefficients, Eqs. 46-48) and the interior nodes (large ``P^{(l,j)}``
coefficients, Eqs. 44-45 and the final display).  The interior class
dominates — their coefficient bound carries the extra ``(2j+1)`` factor.

Reproduced: the measured per-node interval bit cost of interior nodes
exceeds the rightmost node's at every level where both exist, and the
per-level totals are dominated by the top of the tree.
"""

import pytest

from repro.analysis.levels import measure_interval_levels
from repro.bench.report import format_series, save_result
from repro.bench.workloads import square_free_characteristic_input
from repro.core.scaling import digits_to_bits

N = 40
MU_DIGITS = 16


@pytest.fixture(scope="module")
def profile():
    inp = square_free_characteristic_input(N, 11)
    return measure_interval_levels(inp.poly, digits_to_bits(MU_DIGITS))


def test_levels_decomposition(profile):
    rows = []
    for lvl in profile.levels():
        interior = profile.cell(lvl, False)
        spine = profile.cell(lvl, True)
        rows.append([
            lvl,
            interior.nodes,
            interior.bit_cost_per_node,
            spine.bit_cost_per_node,
            interior.coeff_bits_max,
            spine.coeff_bits_max,
        ])
    text = format_series(
        f"Eqs 42-48 (reproduced): per-level interval costs, n={N}, mu={MU_DIGITS}",
        "level",
        ["#interior", "interior/node", "spine/node", "int coeff bits",
         "spine coeff bits"],
        rows,
    )
    print("\n" + text)
    save_result("levels_decomposition", text)

    # (a) the Eq 44-vs-46 coefficient asymmetry: from level 2 down the
    # largest interior polynomial carries more coefficient bits than the
    # rightmost (remainder-sequence) node — the interior bound's extra
    # (2j+1) factor at work.  (Measured per-node *cost* does not always
    # follow, because spine nodes hold the largest-magnitude roots and
    # therefore evaluate at wider points — an effect the paper's uniform
    # X = R + mu modelling absorbs; noted in EXPERIMENTS.md.)
    for lvl in profile.levels():
        interior = profile.cell(lvl, False)
        spine = profile.cell(lvl, True)
        if lvl >= 2 and interior.nodes and spine.nodes:
            assert interior.coeff_bits_max >= spine.coeff_bits_max

    # (b) the top level (the root's interval problems) dominates the
    # per-level totals (the geometric sums of Eq 48 converge from above).
    totals = {
        lvl: profile.cell(lvl, False).bit_cost + profile.cell(lvl, True).bit_cost
        for lvl in profile.levels()
    }
    top = totals[min(totals)]
    assert top == max(totals.values())
    assert top > 0.3 * sum(totals.values())


def test_profile_total_matches_normal_run(profile):
    from repro.core.rootfinder import RealRootFinder
    from repro.costmodel.counter import CostCounter

    inp = square_free_characteristic_input(N, 11)
    c = CostCounter()
    RealRootFinder(
        mu_bits=digits_to_bits(MU_DIGITS), counter=c
    ).find_roots(inp.poly)
    normal = c.phase_stats("interval").total_bit_cost
    assert abs(profile.total_bit_cost() - normal) <= 0.01 * normal


def test_benchmark_level_measurement(benchmark):
    inp = square_free_characteristic_input(20, 11)
    benchmark(lambda: measure_interval_levels(inp.poly, 53))
