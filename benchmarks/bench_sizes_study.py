"""Extension — the coefficient-size study the paper's conclusion asks for.

"It would be interesting to see if improved estimates on these
quantities can be obtained."  This bench measures, per degree, the
observed growth rate ``beta_hat`` of ``||F_i||`` against the analytic
``beta = 2m + 3 log n + 2``, and the bound/observed slack across all
intermediate polynomials — the data a tighter analysis would have to
explain.
"""

import pytest

from repro.analysis.sizes import measure_sizes
from repro.bench.report import format_series, save_result
from repro.bench.workloads import bench_degrees, square_free_characteristic_input


@pytest.fixture(scope="module")
def profiles():
    out = {}
    for n in bench_degrees():
        inp = square_free_characteristic_input(n, 11)
        out[n] = measure_sizes(inp.poly)
    return out


def test_size_study(profiles):
    rows = []
    for n, prof in profiles.items():
        rows.append(
            [
                n,
                prof.beta_observed(),
                prof.beta_bound,
                prof.beta_bound / max(prof.beta_observed(), 1e-9),
                prof.mean_slack_f(),
            ]
        )
    text = format_series(
        "Extension: observed vs analytic coefficient growth rates",
        "n", ["beta_hat", "beta", "beta/beta_hat", "mean F slack"], rows,
    )
    print("\n" + text)
    save_result("sizes_study", text)

    for n, prof in profiles.items():
        # bounds are never violated anywhere
        assert all(s <= b for _i, s, b in prof.f_sizes)
        assert all(s <= b for _i, s, b in prof.q_sizes)
        assert all(s <= b for _l, s, b in prof.p_sizes)
        # and observed growth is well below the analytic rate — the
        # paper's "weak bounds" observation, quantified.
        assert prof.beta_observed() < prof.beta_bound

    slack_ratios = [r[3] for r in rows]
    # the relative slack persists at every degree (>= ~1.3x)
    assert all(r > 1.3 for r in slack_ratios)


def test_observed_growth_is_linear_in_index(profiles):
    """||F_i|| grows essentially linearly in i (as the theory's i*beta
    shape says), just with a smaller slope — i.e. the *form* of the
    bound is right, the constant is what's loose."""
    prof = profiles[max(profiles)]
    import statistics

    sizes = [(i, s) for i, s, _b in prof.f_sizes if i >= 2]
    slope = prof.beta_observed()
    # residuals of the linear fit are small relative to the data range
    intercept = statistics.mean(s for _i, s in sizes) - slope * statistics.mean(
        i for i, _s in sizes
    )
    residuals = [abs(s - (slope * i + intercept)) for i, s in sizes]
    data_range = max(s for _i, s in sizes) - min(s for _i, s in sizes)
    assert max(residuals) < 0.15 * data_range


def test_benchmark_size_measurement(benchmark):
    inp = square_free_characteristic_input(20, 11)
    benchmark(lambda: measure_sizes(inp.poly))
