"""Table 1 — asymptotic complexity of the phases.

Paper: remainder sequence and tree polynomials are O(n^4 (m+log n)^2)
bit operations with O(n^2) multiplications; the interval problems are
O(n^3 X (X+beta) (log n + log X)) on average.

Reproduced by measuring the empirical log-log growth exponents of the
phase costs over the degree grid and checking them against the stated
orders.  Note m(n) grows with n for the 0-1 matrix workload (roughly
linearly in n), so the *measured* exponent of the n^4 (m+log n)^2 bit
costs is ~6 in n; the bench fits against the full formula instead.
"""

from math import log, log2

from repro.analysis.bounds import beta
from repro.analysis.predict import asymptotic_table1
from repro.bench.report import format_series, save_result
from repro.bench.workloads import bench_degrees, bench_mu_digits


def fitted_exponent(xs, ys):
    """Least-squares slope of log y against log x."""
    lx = [log(x) for x in xs]
    ly = [log(max(y, 1)) for y in ys]
    n = len(xs)
    mx = sum(lx) / n
    my = sum(ly) / n
    num = sum((a - mx) * (b - my) for a, b in zip(lx, ly))
    den = sum((a - mx) ** 2 for a in lx)
    return num / den


def test_table1_reproduction(sequential_records):
    degrees = bench_degrees()
    mu = bench_mu_digits()[-1]

    rows = []
    ratios = {"remainder": [], "tree": [], "interval": []}
    for n in degrees:
        rec = sequential_records[(n, mu)]
        model = asymptotic_table1(n, rec.m_bits, rec.mu_bits, rec.r_bits)
        obs_rem = rec.phase("remainder").total_bit_cost
        obs_tree = rec.phase("tree").total_bit_cost
        obs_int = rec.phase("interval").total_bit_cost
        ratios["remainder"].append(obs_rem / model["remainder"]["bit"])
        ratios["tree"].append(obs_tree / model["tree"]["bit"])
        ratios["interval"].append(obs_int / model["interval_avg"]["bit"])
        rows.append([n, obs_rem, obs_tree, obs_int])

    text = format_series(
        f"Table 1 (reproduced): measured phase bit costs, mu={mu} digits",
        "n", ["remainder", "tree", "interval"], rows,
    )
    # The Table 1 formulas are leading-order: the observed/model ratio
    # must stabilise (bounded drift) as n grows.
    for phase, rr in ratios.items():
        drift = max(rr[-3:]) / max(min(rr[-3:]), 1e-12)
        text += f"\nobs/model ratio drift over top degrees ({phase}): {drift:.2f}"
        assert drift < 4.0, (phase, rr)
    print("\n" + text)
    save_result("table1_asymptotics", text)


def test_deterministic_phase_exponent(sequential_records):
    """Exponent of remainder+tree bit cost against the full n^4 beta^2
    formula should be ~1 (i.e. the formula explains the growth)."""
    degrees = bench_degrees()
    mu = bench_mu_digits()[0]
    xs, ys = [], []
    for n in degrees:
        rec = sequential_records[(n, mu)]
        formula = n**4 * beta(n, rec.m_bits) ** 2
        obs = (
            rec.phase("remainder").total_bit_cost
            + rec.phase("tree").total_bit_cost
        )
        xs.append(formula)
        ys.append(obs)
    slope = fitted_exponent(xs, ys)
    assert 0.8 <= slope <= 1.2, slope


def test_arithmetic_complexity_quadratic(sequential_records):
    """O(n^2) multiplications for the deterministic phases."""
    degrees = bench_degrees()
    mu = bench_mu_digits()[0]
    xs = degrees
    ys = [
        sequential_records[(n, mu)].phase("remainder").mul_count
        + sequential_records[(n, mu)].phase("tree").mul_count
        for n in degrees
    ]
    slope = fitted_exponent(xs, ys)
    assert 1.7 <= slope <= 2.3, slope


def test_benchmark_asymptotic_eval(benchmark):
    benchmark(lambda: asymptotic_table1(70, 120, 107, 8))
