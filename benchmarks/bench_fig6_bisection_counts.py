"""Figure 6 — multiplication counts of the bisection sub-phase (mu = 32).

Paper: the bisection phase of the interval problems shows an excellent
fit between predicted and observed multiplication counts.

Our bisection-phase model: every case-2c solve performs (up to early
exit) ``ceil(log2(10 d^2))`` bisection evaluations of a degree-``d``
polynomial (``d`` multiplications each); summing over all solves at
every node of the tree gives the predicted count.
"""

from math import log2

from repro.bench.report import format_series, save_result
from repro.bench.workloads import bench_degrees
from repro.core.sieve import bisection_budget
from repro.core.tree import split_index

MU = 32


def predicted_bisection_muls(n: int) -> int:
    total = 0

    def visit(i, j):
        nonlocal total
        d = j - i + 1
        if d < 2:
            return
        k = split_index(i, j)
        visit(i, k - 1)
        visit(k + 1, j)
        total += d * bisection_budget(d) * d  # d solves x budget evals x d muls

    visit(1, n)
    return total


def test_fig6_reproduction(sequential_records):
    rows = []
    for n in bench_degrees():
        rec = sequential_records[(n, MU)]
        pred = predicted_bisection_muls(n)
        obs = rec.phase("interval.bisection").mul_count
        rows.append([n, pred, obs, pred / max(obs, 1)])
    text = format_series(
        f"Figure 6 (reproduced): bisection-phase multiplication counts, mu={MU} digits",
        "n", ["predicted", "observed", "pred/obs"], rows,
    )
    print("\n" + text)
    save_result("fig6_bisection_counts", text)

    # Excellent fit claim: within 25% at every degree (early exits make
    # the observation slightly below the budget-based prediction).
    for _n, _p, _o, ratio in rows:
        assert 0.9 <= ratio <= 1.35, rows


def test_bisection_counts_scale_quadratically(sequential_records):
    """#bisection muls ~ n^2 log n: check the n^2 factor dominates."""
    ns = bench_degrees()
    lo = sequential_records[(ns[0], MU)].phase("interval.bisection").mul_count
    hi = sequential_records[(ns[-1], MU)].phase("interval.bisection").mul_count
    ratio = hi / lo
    expected = (ns[-1] / ns[0]) ** 2
    assert 0.5 * expected <= ratio <= 4 * expected * log2(ns[-1])


def test_benchmark_bisection_prediction(benchmark):
    benchmark(lambda: predicted_bisection_muls(70))
