"""Ablation — task grain vs speedup (paper Section 3's design choice).

The paper chose the task grain "small enough so as to keep all
processors busy ... yet not so small as to make the overheads large",
and observed the 16-processor droop when grain was too coarse for the
input sizes considered.

This ablation sweeps the serialized task-queue acquisition cost
(``queue_overhead``, the lock the Sequent implementation's dynamic
queue needs) and the per-task bookkeeping cost (``overhead``) and
reports the 16-way speedup: fine-grained decomposition is great with a
cheap queue and collapses with an expensive one — quantifying the
paper's grain argument.
"""

import pytest

from repro.bench.report import format_series, save_result
from repro.bench.runner import run_parallel
from repro.bench.workloads import square_free_characteristic_input

N = 25
MU = 16
QUEUE_COSTS = [0, 10**3, 10**4, 10**5, 10**6]


@pytest.fixture(scope="module")
def sweep():
    inp = square_free_characteristic_input(N, 11)
    out = []
    for q in QUEUE_COSTS:
        rec = run_parallel(inp, MU, processors=[1, 8, 16], queue_overhead=q)
        out.append((q, rec))
    return out


def test_grain_ablation(sweep):
    rows = [
        [q, rec.speedup(8), rec.speedup(16), rec.makespans[16] / 1e9]
        for q, rec in sweep
    ]
    text = format_series(
        f"Ablation (reproduced): queue acquisition cost vs speedup, n={N}, mu={MU}",
        "qcost", ["speedup@8", "speedup@16", "sim_s@16"], rows,
    )
    print("\n" + text)
    save_result("ablation_grain", text)

    sp16 = [r[2] for r in rows]
    # speedup degrades monotonically (within noise) as the queue gets
    # more expensive, and collapses at the extreme.
    assert sp16[0] == max(sp16)
    assert sp16[-1] < 0.6 * sp16[0]
    # absolute simulated time strictly grows with queue cost
    spans = [rec.makespans[16] for _q, rec in sweep]
    assert spans == sorted(spans)


def test_queue_contention_hurts_16_more_than_8(sweep):
    """Contention scales with concurrency: the relative loss at p=16
    exceeds the loss at p=8."""
    q0, rec0 = sweep[0]
    qh, rech = sweep[-2]  # 1e5 grain
    loss8 = rec0.speedup(8) / max(rech.speedup(8), 1e-9)
    loss16 = rec0.speedup(16) / max(rech.speedup(16), 1e-9)
    assert loss16 >= loss8 - 0.05


def test_benchmark_contended_simulation(benchmark):
    from repro.core.scaling import digits_to_bits
    from repro.core.tasks import build_task_graph
    from repro.costmodel.counter import CostCounter
    from repro.sched.simulator import simulate

    inp = square_free_characteristic_input(15, 11)
    c = CostCounter()
    tg = build_task_graph(inp.poly, digits_to_bits(MU), c)
    tg.graph.run_recorded(c)
    benchmark(lambda: simulate(tg.graph, 16, queue_overhead=10**4))
