"""Appendix B, Tables 8-12 — complete running-time grids.

Paper: for each mu in {4, 8, 16, 24, 32} digits, the full degree x
processor-count grid of running times.  Reproduced as simulated seconds
over the bench grid (full grid under REPRO_BENCH_FULL=1).
"""

from repro.bench.report import format_runtime_grid, save_result
from repro.bench.runner import PAPER_PROCESSORS, run_parallel
from repro.bench.workloads import (
    bench_degrees,
    bench_mu_digits,
    square_free_characteristic_input,
)
import pytest


@pytest.fixture(scope="module")
def full_grid(parallel_records):
    """Extend the shared records with the small degrees Appendix B has."""
    grid = dict(parallel_records)
    small = [n for n in bench_degrees() if (n, bench_mu_digits()[0]) not in grid]
    for n in small:
        inp = square_free_characteristic_input(n, 11)
        for mu in bench_mu_digits():
            grid[(n, mu)] = run_parallel(inp, mu)
    return grid


def test_table8_12_reproduction(full_grid):
    chunks = []
    degrees = sorted({n for (n, _mu) in full_grid})
    for mu in bench_mu_digits():
        recs = [full_grid[(n, mu)] for n in degrees]
        chunks.append(
            f"Tables 8-12 (reproduced): simulated running times, mu={mu} digits\n"
            + format_runtime_grid(recs)
        )
    text = "\n\n".join(chunks)
    print("\n" + text)
    save_result("table8_12_runtime_grids", text)

    # Appendix B shape: at small degrees, high processor counts give
    # little or no benefit (grain starvation); at the largest degree,
    # p=16 helps substantially.
    mus = bench_mu_digits()
    small_rec = full_grid[(degrees[0], mus[0])]
    big_rec = full_grid[(degrees[-1], mus[0])]
    assert small_rec.speedup(16) < big_rec.speedup(16)

    for (_n, _mu), rec in full_grid.items():
        spans = [rec.makespans[p] for p in PAPER_PROCESSORS]
        assert spans == sorted(spans, reverse=True)


def test_benchmark_grid_row(benchmark):
    inp = square_free_characteristic_input(15, 11)
    benchmark(lambda: run_parallel(inp, 8))
