"""Shared fixtures for the benchmark harness.

Sequential and parallel records are computed once per session and
shared across bench files; the grids default to a fast subset and honor
``REPRO_BENCH_FULL=1`` for the paper's complete 10..70 x {4..32-digit}
sweep (several tens of minutes of pure Python).
"""

from __future__ import annotations

import pytest

from repro.bench.runner import run_parallel, run_sequential
from repro.bench.workloads import (
    bench_degrees,
    bench_mu_digits,
    square_free_characteristic_input,
)


@pytest.fixture(scope="session")
def sequential_records():
    """{(n, mu_digits): SequentialRecord} over the bench grid."""
    out = {}
    for n in bench_degrees():
        inp = square_free_characteristic_input(n, 11)
        for mu in bench_mu_digits():
            out[(n, mu)] = run_sequential(inp, mu)
    return out


@pytest.fixture(scope="session")
def parallel_records():
    """{(n, mu_digits): ParallelRecord} over the speedup-study grid.

    The paper's speedup tables start at degree 35; with the fast grid we
    keep the largest degrees available.
    """
    degrees = [n for n in bench_degrees() if n >= 20]
    out = {}
    for n in degrees:
        inp = square_free_characteristic_input(n, 11)
        for mu in bench_mu_digits():
            out[(n, mu)] = run_parallel(inp, mu)
    return out
