"""Shared fixtures for the benchmark harness.

Sequential and parallel records are computed once per session and
shared across bench files; the grids default to a fast subset and honor
``REPRO_BENCH_FULL=1`` for the paper's complete 10..70 x {4..32-digit}
sweep (several tens of minutes of pure Python).
"""

from __future__ import annotations

import pytest

from repro.bench.artifact import (
    add_parallel_metrics,
    add_sequential_metrics,
    bench_artifact,
    save_bench_artifact,
)
from repro.bench.runner import run_parallel, run_sequential
from repro.bench.workloads import (
    bench_degrees,
    bench_mu_digits,
    square_free_characteristic_input,
)


@pytest.fixture(scope="session")
def sequential_records():
    """{(n, mu_digits): SequentialRecord} over the bench grid.

    As a side effect the grid is folded into a schema-versioned
    ``BENCH_grid_sequential.json`` artifact next to the text tables, so
    every bench session leaves a machine-comparable trajectory point.
    """
    out = {}
    for n in bench_degrees():
        inp = square_free_characteristic_input(n, 11)
        for mu in bench_mu_digits():
            out[(n, mu)] = run_sequential(inp, mu)
    art = bench_artifact(
        "grid_sequential",
        {"degrees": bench_degrees(), "mu_digits": bench_mu_digits(),
         "seed": 11},
    )
    save_bench_artifact(add_sequential_metrics(art, out.values()))
    return out


@pytest.fixture(scope="session")
def parallel_records():
    """{(n, mu_digits): ParallelRecord} over the speedup-study grid.

    The paper's speedup tables start at degree 35; with the fast grid we
    keep the largest degrees available.  Emits
    ``BENCH_grid_parallel.json`` as a side effect (simulated work /
    critical-path / makespan metrics for every cell).
    """
    degrees = [n for n in bench_degrees() if n >= 20]
    out = {}
    for n in degrees:
        inp = square_free_characteristic_input(n, 11)
        for mu in bench_mu_digits():
            out[(n, mu)] = run_parallel(inp, mu)
    art = bench_artifact(
        "grid_parallel",
        {"degrees": degrees, "mu_digits": bench_mu_digits(), "seed": 11},
    )
    save_bench_artifact(add_parallel_metrics(art, out.values()))
    return out
