"""Ablation — quantifying the paper's dismissal of the NC-style method.

"We have not, however, implemented the NC version, which, although
theoretically efficient, is impractical due to the overheads associated
with its fine-grained parallelism."  (Paper, Section 2.)

The NC-flavoured way to produce the tree polynomials computes the
cofactor prefixes ``A_i, B_i`` and evaluates every node directly via
Eq. (5); the practical algorithm combines children's T-matrices
(Eq. 9).  Both produce *identical* polynomials; this ablation measures
the bit-cost ratio — the factor the practical version saves — and shows
it grows with the degree (~linearly), exactly the kind of overhead the
paper's remark is about.
"""

import pytest

from repro.bench.report import format_series, save_result
from repro.bench.workloads import square_free_characteristic_input
from repro.core.prefix import tree_polys_via_cofactors
from repro.core.remainder import compute_remainder_sequence
from repro.core.tree import InterleavingTree
from repro.costmodel.counter import CostCounter

DEGREES = [10, 20, 30, 40, 55]


@pytest.fixture(scope="module")
def sweep():
    rows = []
    for n in DEGREES:
        inp = square_free_characteristic_input(n, 11)
        seq = compute_remainder_sequence(inp.poly)

        c_tree = CostCounter()
        tree = InterleavingTree(seq)
        tree.compute_polynomials(c_tree)

        c_prefix = CostCounter()
        direct = tree_polys_via_cofactors(seq, counter=c_prefix)

        # identical outputs (the whole point of comparing costs)
        for node in tree.root:
            if not node.is_empty:
                assert direct[node.label] == node.poly

        rows.append(
            (n, c_tree.total_bit_cost, c_prefix.total_bit_cost)
        )
    return rows


def test_prefix_ablation(sweep):
    rows = [[n, t, p, p / t] for n, t, p in sweep]
    text = format_series(
        "Ablation (reproduced): tree combine (Eq 9) vs NC-style direct (Eq 5)",
        "n", ["tree bitcost", "prefix bitcost", "prefix/tree"], rows,
    )
    print("\n" + text)
    save_result("ablation_prefix", text)

    ratios = [r[3] for r in rows]
    # the practical method always wins...
    assert all(r > 1.5 for r in ratios)
    # ...by a factor that grows with the degree
    assert ratios[-1] > 2 * ratios[0]
    assert ratios == sorted(ratios)


def test_benchmark_tree_combine(benchmark):
    inp = square_free_characteristic_input(25, 11)
    seq = compute_remainder_sequence(inp.poly)

    def job():
        tree = InterleavingTree(seq)
        tree.compute_polynomials()
        return tree

    benchmark(job)


def test_benchmark_prefix_direct(benchmark):
    inp = square_free_characteristic_input(25, 11)
    seq = compute_remainder_sequence(inp.poly)
    benchmark(lambda: tree_polys_via_cofactors(seq))
