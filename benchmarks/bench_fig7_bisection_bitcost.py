"""Figure 7 — bit complexity of the bisection-phase multiplications.

Paper's point: multiplying the (well-fitting) operation counts by the
Collins coefficient-size *bounds* yields only a **weak upper bound** on
the observed bit cost — "we would need much tighter bounds on the sizes
of polynomial coefficients".

Reproduced: per degree, the bound-weighted predicted bit cost vs the
measured bit cost of the bisection phase.  Assertions: the prediction
is always a valid upper bound AND visibly weak (> 2x), with the gap
growing in n — exactly the paper's observation.
"""

from repro.analysis.bounds import bound_P, eval_bit_cost_bound
from repro.bench.report import format_series, save_result
from repro.bench.workloads import bench_degrees
from repro.core.scaling import digits_to_bits
from repro.core.sieve import bisection_budget
from repro.core.tree import split_index

MU = 32


def predicted_bisection_bitcost(n: int, m_bits: int, r_bits: int) -> int:
    x_bits = r_bits + digits_to_bits(MU)
    total = 0

    def visit(i, j):
        nonlocal total
        d = j - i + 1
        if d < 2:
            return
        k = split_index(i, j)
        visit(i, k - 1)
        visit(k + 1, j)
        per_eval = eval_bit_cost_bound(bound_P(i, j, n, m_bits), d, x_bits)
        total += d * bisection_budget(d) * per_eval

    visit(1, n)
    return total


def test_fig7_reproduction(sequential_records):
    rows = []
    for n in bench_degrees():
        rec = sequential_records[(n, MU)]
        pred = predicted_bisection_bitcost(n, rec.m_bits, rec.r_bits)
        obs = rec.phase("interval.bisection").total_bit_cost
        rows.append([n, pred, obs, pred / max(obs, 1)])
    text = format_series(
        "Figure 7 (reproduced): bisection-phase bit complexity "
        f"(bound-weighted prediction vs measured), mu={MU} digits",
        "n", ["predicted", "observed", "pred/obs"], rows,
    )
    print("\n" + text)
    save_result("fig7_bisection_bitcost", text)

    ratios = [r[3] for r in rows]
    # valid upper bound everywhere...
    assert all(r >= 1.0 for r in ratios)
    # ...and increasingly weak with n (the paper's point): the
    # overshoot grows monotonically-in-trend and exceeds ~1.7x by the
    # top of the grid even with the tight Fujiwara sentinels.
    assert ratios[-1] > 1.7
    assert ratios[-1] >= ratios[0] * 1.4


def test_counts_fit_but_bitcost_does_not(sequential_records):
    """The contrast between Fig 6 and Fig 7 in one assertion."""
    from bench_fig6_bisection_counts import predicted_bisection_muls

    n = bench_degrees()[-1]
    rec = sequential_records[(n, MU)]
    count_ratio = predicted_bisection_muls(n) / max(
        rec.phase("interval.bisection").mul_count, 1
    )
    bit_ratio = predicted_bisection_bitcost(
        n, rec.m_bits, rec.r_bits
    ) / max(rec.phase("interval.bisection").total_bit_cost, 1)
    assert count_ratio < 1.4
    assert bit_ratio > 1.6 * count_ratio


def test_benchmark_bitcost_prediction(benchmark):
    benchmark(lambda: predicted_bisection_bitcost(70, 120, 8))
