"""Figures 9-13 — execution time vs number of processors (mu = 4..32).

Paper: per mu, running time curves against p = 1, 2, 4, 8, 16 for each
degree; times fall steeply to p = 8 and flatten toward p = 16.

Reproduced with the recorded task DAG replayed through the
discrete-event Sequent substitute (DESIGN.md).  Cells are simulated
seconds (bit cost / 1e9).
"""

from repro.bench.plot import ascii_chart
from repro.bench.report import format_runtime_grid, save_result
from repro.bench.runner import PAPER_PROCESSORS
from repro.bench.workloads import bench_mu_digits


def test_fig9_13_reproduction(parallel_records):
    chunks = []
    mus = bench_mu_digits()
    degrees = sorted({n for (n, _mu) in parallel_records})
    for mu in mus:
        recs = [parallel_records[(n, mu)] for n in degrees]
        chunks.append(
            f"Figures 9-13 (reproduced): simulated running times, mu={mu} digits\n"
            + format_runtime_grid(recs)
        )
        chunks.append(
            ascii_chart(
                f"(figure) simulated time vs processors, mu={mu} digits (log scale)",
                PAPER_PROCESSORS,
                {
                    f"n={n}": [
                        parallel_records[(n, mu)].makespans[p] / 1e9
                        for p in PAPER_PROCESSORS
                    ]
                    for n in degrees[::3]
                },
                logy=True,
            )
        )
    text = "\n\n".join(chunks)
    print("\n" + text)
    save_result("fig9_13_parallel_times", text)

    for (_n, _mu), rec in parallel_records.items():
        spans = [rec.makespans[p] for p in PAPER_PROCESSORS]
        # monotone non-increasing in p
        assert spans == sorted(spans, reverse=True)
        # diminishing returns: p=8 -> p=16 gains less than p=1 -> p=2
        gain_2 = spans[0] / spans[1]
        gain_16 = spans[3] / spans[4]
        assert gain_16 <= gain_2 + 1e-9


def test_parallel_times_grow_with_mu(parallel_records):
    degrees = sorted({n for (n, _mu) in parallel_records})
    mus = bench_mu_digits()
    for n in degrees:
        # strict growth on one processor (more work is more time)...
        series1 = [parallel_records[(n, mu)].makespans[1] for mu in mus]
        assert series1 == sorted(series1)
        # ...and growth within scheduling noise at p=16 (a larger DAG can
        # occasionally pack marginally better).
        series16 = [parallel_records[(n, mu)].makespans[16] for mu in mus]
        for a, b in zip(series16, series16[1:]):
            assert b >= a * 0.99


def test_benchmark_simulation_replay(benchmark, parallel_records):
    """Wall-time of one 16-processor DES replay (not of the algorithm)."""
    from repro.core.tasks import build_task_graph
    from repro.costmodel.counter import CostCounter
    from repro.sched.simulator import simulate
    from repro.bench.workloads import square_free_characteristic_input
    from repro.core.scaling import digits_to_bits

    inp = square_free_characteristic_input(20, 11)
    c = CostCounter()
    tg = build_task_graph(inp.poly, digits_to_bits(8), c)
    tg.graph.run_recorded(c)
    benchmark(lambda: simulate(tg.graph, 16))
