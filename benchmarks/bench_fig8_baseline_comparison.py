"""Figure 8 — comparison with the PARI root finder (mu = 30 digits).

Paper: for degrees <= 30, their implementation beats PARI beyond degree
~15; PARI could not run above degree 30 at all, and was insensitive to
the precision parameter mu.

Substitution (DESIGN.md): the PARI role is played by two comparators —

* :class:`AberthFinder`: fixed-precision, mu-insensitive, and
  degree-limited on this workload (it stops converging on the
  characteristic polynomials near the paper's PARI wall);
* :class:`SturmBisectFinder`: the exact classical sequential method on
  the *same* arithmetic substrate, giving an apples-to-apples wall-time
  crossover curve.

Reproduced shapes: (a) Aberth fails beyond a moderate degree while the
exact algorithm keeps working (the paper's "does not suffer from
problems of stability"); (b) Aberth's cost does not change with mu while
ours does; (c) against the exact sequential baseline, our algorithm's
advantage grows with degree, crossing over at small degrees.
"""

import time

import pytest

from repro.baselines.aberth import AberthFailure, AberthFinder
from repro.baselines.sturm_bisect import SturmBisectFinder
from repro.bench.report import format_series, save_result
from repro.bench.workloads import square_free_characteristic_input
from repro.core.rootfinder import RealRootFinder
from repro.core.scaling import digits_to_bits

MU_DIGITS = 30
DEGREES = [10, 15, 20, 25, 30]


@pytest.fixture(scope="module")
def comparison():
    mu = digits_to_bits(MU_DIGITS)
    rows = []
    aberth_status = {}
    for n in DEGREES:
        inp = square_free_characteristic_input(n, 11)
        t0 = time.perf_counter()
        ours = RealRootFinder(mu_bits=mu).find_roots(inp.poly)
        t_ours = time.perf_counter() - t0
        t0 = time.perf_counter()
        base = SturmBisectFinder(mu=mu).find_roots_scaled(inp.poly)
        t_sturm = time.perf_counter() - t0
        assert ours.scaled == base
        try:
            t0 = time.perf_counter()
            AberthFinder().find_roots(inp.poly)
            t_aberth = time.perf_counter() - t0
            aberth_status[n] = "ok"
        except AberthFailure as exc:
            t_aberth = float("nan")
            aberth_status[n] = f"FAIL: {exc}"
        rows.append([n, t_ours, t_sturm, t_sturm / t_ours, t_aberth])
    return rows, aberth_status


def test_fig8_reproduction(comparison):
    rows, aberth_status = comparison
    text = format_series(
        f"Figure 8 (reproduced): wall seconds, mu={MU_DIGITS} digits",
        "n", ["ours", "sturm-bisect", "sturm/ours", "aberth(float)"], rows,
    )
    text += "\n\nAberth (fixed-precision comparator) status by degree:\n"
    for n, status in aberth_status.items():
        text += f"  n={n}: {status}\n"
    print("\n" + text)
    save_result("fig8_baseline_comparison", text)

    # exact sequential baseline: our advantage grows with degree
    advantage = [r[3] for r in rows]
    assert advantage[-1] > advantage[0]
    assert advantage[-1] > 1.5  # clear win at degree 30, mu=30 digits


def test_fixed_precision_comparator_hits_degree_wall():
    """The paper could not run PARI above degree 30.  Modern float64 is
    better than 1991 PARI but hits the same kind of wall on this
    workload (at degree ~55 for the Aberth comparator); past it only
    the exact algorithm keeps working."""
    wall_found = None
    for n in (40, 50, 55, 60):
        inp = square_free_characteristic_input(n, 11)
        try:
            AberthFinder().find_roots(inp.poly)
        except AberthFailure:
            wall_found = n
            break
    assert wall_found is not None, "no degree wall up to 60?"
    # the exact algorithm sails past the wall
    inp = square_free_characteristic_input(wall_found, 11)
    mu = digits_to_bits(4)
    res = RealRootFinder(mu_bits=mu).find_roots(inp.poly)
    assert len(res) == wall_found


def test_fixed_precision_cannot_deliver_30_digits(comparison):
    """Even where the float comparator 'succeeds', its accuracy ceiling
    is ~1e-13 — it can never satisfy the mu = 30-digit problem the
    exact algorithm solves.  (In the paper, multiprecision PARI could,
    just slowly; with a float package the precision gap is absolute.)"""
    from repro.baselines.numpy_eig import eigvalsh_roots
    from repro.charpoly.generator import random_symmetric_01_matrix

    inp = square_free_characteristic_input(25, 11)
    res = AberthFinder().find_roots(inp.poly)
    eig = eigvalsh_roots(random_symmetric_01_matrix(25, inp.seed))
    err = max(abs(a - b) for a, b in zip(res.roots, eig))
    assert err > 1e-14  # nowhere near 10^-30
    # while ours is exact to the requested grid
    mu = digits_to_bits(MU_DIGITS)
    ours = RealRootFinder(mu_bits=mu).find_roots(inp.poly)
    assert ours.error_bound().denominator >= 10**29


def test_aberth_insensitive_to_mu_ours_sensitive():
    """The paper: 'the PARI algorithm seemed insensitive to this
    parameter' while our cost drops for small mu."""
    inp = square_free_characteristic_input(15, 11)
    from repro.bench.runner import run_sequential

    lo = run_sequential(inp, 4)
    hi = run_sequential(inp, 30)
    assert hi.total_bit_cost > 1.2 * lo.total_bit_cost
    # Aberth does identical work regardless of requested digits: its
    # iteration count depends only on the polynomial.
    r1 = AberthFinder().find_roots(inp.poly)
    r2 = AberthFinder().find_roots(inp.poly)
    assert r1.iterations == r2.iterations


def test_benchmark_ours_n20(benchmark):
    inp = square_free_characteristic_input(20, 11)
    mu = digits_to_bits(MU_DIGITS)
    benchmark(lambda: RealRootFinder(mu_bits=mu).find_roots(inp.poly))


def test_benchmark_sturm_baseline_n20(benchmark):
    inp = square_free_characteristic_input(20, 11)
    mu = digits_to_bits(MU_DIGITS)
    benchmark(lambda: SturmBisectFinder(mu=mu).find_roots_scaled(inp.poly))


def test_benchmark_aberth_n20(benchmark):
    inp = square_free_characteristic_input(20, 11)
    benchmark(lambda: AberthFinder().find_roots(inp.poly))
