"""Tables 3-7 — speedups w.r.t. the single-processor parallel program.

Paper (n = 35..70, mu = 4..32 digits): p=2 speedups 1.96-2.08, p=4 near
3.8-4.1, p=8 near 6.2-7.9, p=16 between 5.9 and 12.1 with the droop at
16 caused by task grain; larger degrees and larger mu scale better.

Reproduced from the simulated schedules.  The >2 superlinear cells the
paper attributes to cache effects are out of scope for the DES model
(documented in EXPERIMENTS.md); everything else is asserted in band.
"""

from repro.bench.report import format_speedup_grid, save_result
from repro.bench.runner import PAPER_PROCESSORS
from repro.bench.workloads import bench_mu_digits


def test_table3_7_reproduction(parallel_records):
    chunks = []
    mus = bench_mu_digits()
    degrees = sorted({n for (n, _mu) in parallel_records})
    for mu in mus:
        recs = [parallel_records[(n, mu)] for n in degrees]
        chunks.append(
            f"Tables 3-7 (reproduced): speedups, mu={mu} digits\n"
            + format_speedup_grid(recs)
        )
    text = "\n\n".join(chunks)
    print("\n" + text)
    save_result("table3_7_speedups", text)

    for (n, mu), rec in parallel_records.items():
        # p=2 close to 2 (paper: 1.96-2.08; we cannot exceed 2)
        assert 1.55 <= rec.speedup(2) <= 2.0 + 1e-9, (n, mu, rec.speedup(2))
        # speedups monotone in p
        sp = [rec.speedup(p) for p in PAPER_PROCESSORS]
        assert all(b >= a - 1e-12 for a, b in zip(sp, sp[1:]))
        # p=16 in the paper's plausible band for moderate degrees
        assert 2.0 <= rec.speedup(16) <= 16.0


def test_scaling_improves_with_mu(parallel_records):
    """Paper: mu=32 tables show better 16-way speedups than mu=4 —
    interval tasks dominate at large mu and parallelize well."""
    degrees = sorted({n for (n, _mu) in parallel_records})
    mus = bench_mu_digits()
    n = degrees[-1]
    assert (
        parallel_records[(n, mus[-1])].speedup(16)
        >= parallel_records[(n, mus[0])].speedup(16) - 1e-9
    )


def test_scaling_improves_with_degree(parallel_records):
    degrees = sorted({n for (n, _mu) in parallel_records})
    mus = bench_mu_digits()
    mu = mus[-1]
    lo = parallel_records[(degrees[0], mu)].speedup(16)
    hi = parallel_records[(degrees[-1], mu)].speedup(16)
    assert hi >= lo * 0.9


def test_utilization_explains_the_droop(parallel_records):
    """The paper attributes the p=16 droop to task granularity "not fine
    enough to keep all the processors busy at all times" — i.e. falling
    utilization, not rising overhead.  Check exactly that: simulated
    utilization at p=16 is below p=8 for every workload, and the
    absolute 16-way utilization grows with the degree."""
    degrees = sorted({n for (n, _mu) in parallel_records})
    mus = bench_mu_digits()
    mu = mus[-1]
    utils = {}
    for n in degrees:
        rec = parallel_records[(n, mu)]
        utils[n] = {
            p: rec.total_work / (rec.makespans[p] * p) for p in (8, 16)
        }
        assert utils[n][16] < utils[n][8] + 1e-9, (n, utils[n])
    assert utils[degrees[-1]][16] > utils[degrees[0]][16] - 0.05


def test_benchmark_speedup_table(benchmark, parallel_records):
    from repro.sched.metrics import format_speedup_table  # noqa: F401

    recs = list(parallel_records.values())
    benchmark(lambda: format_speedup_grid(recs))
