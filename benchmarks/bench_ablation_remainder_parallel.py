"""Ablation — parallel vs sequential remainder precomputation.

Paper Section 3: "As a run-time option, the implementation allows this
stage to be executed sequentially, if so desired", and Section 3.1
justifies the very fine 5(n-i)-task grain of the parallel version.

This ablation runs both modes through the simulator.  The remainder
phase matters most at small mu (where it is a large share of total
work), so the speedup gap is widest there.
"""

import pytest

from repro.bench.report import format_series, save_result
from repro.bench.workloads import square_free_characteristic_input
from repro.core.scaling import digits_to_bits
from repro.core.tasks import build_task_graph
from repro.costmodel.counter import CostCounter
from repro.sched.simulator import speedup_curve

N = 25
MUS = [4, 16, 32]


def run(mu_digits: int, sequential: bool):
    inp = square_free_characteristic_input(N, 11)
    c = CostCounter()
    tg = build_task_graph(
        inp.poly, digits_to_bits(mu_digits), c,
        sequential_remainder=sequential,
    )
    tg.graph.run_recorded(c)
    curve = speedup_curve(tg.graph, [8, 16])
    return {
        p: curve[1].makespan / curve[p].makespan for p in (1, 8, 16)
    }, tg.roots_scaled()


@pytest.fixture(scope="module")
def sweep():
    out = {}
    for mu in MUS:
        out[(mu, False)] = run(mu, False)
        out[(mu, True)] = run(mu, True)
    return out


def test_remainder_parallelism_ablation(sweep):
    rows = []
    for mu in MUS:
        par, _ = sweep[(mu, False)]
        seq, _ = sweep[(mu, True)]
        rows.append([mu, par[16], seq[16], par[16] / seq[16]])
    text = format_series(
        f"Ablation (reproduced): remainder-phase parallelism, n={N}, p=16",
        "mu", ["parallel-rem", "sequential-rem", "gain"], rows,
    )
    print("\n" + text)
    save_result("ablation_remainder_parallel", text)

    # identical results either way
    for mu in MUS:
        assert sweep[(mu, False)][1] == sweep[(mu, True)][1]

    # parallel remainder always at least as good, and clearly better at
    # small mu where the phase dominates
    for mu in MUS:
        assert sweep[(mu, False)][0][16] >= sweep[(mu, True)][0][16] - 1e-9
    gains = [r[3] for r in rows]
    assert gains[0] > 1.3          # big win at mu=4
    assert gains[0] >= gains[-1]   # shrinking with mu


def test_benchmark_sequential_remainder_build(benchmark):
    inp = square_free_characteristic_input(15, 11)

    def job():
        c = CostCounter()
        tg = build_task_graph(inp.poly, 27, c, sequential_remainder=True)
        tg.graph.run_recorded(c)
        return tg

    benchmark(job)
