"""Ablation — double-exponential sieve: average vs worst case.

Paper Section 4.3: the worst-case sieve bound is (1/2) log^2 X
evaluations (Eq. 38), but under uniformly-placed roots it runs a
*constant* number of iterations (Eq. 41), which is why the average-case
model fits the observations.

Reproduced: measured sieve evaluations per solve on (a) the paper's
random characteristic polynomials — expected ~constant in mu — and
(b) an adversarial close-root family where isolating intervals are
extremely lopsided, pushing the sieve toward its log-log behaviour.
"""

import pytest

from repro.bench.report import format_series, save_result
from repro.bench.workloads import close_roots, square_free_characteristic_input
from repro.core.rootfinder import RealRootFinder
from repro.core.scaling import digits_to_bits

MUS = [4, 8, 16, 32, 64]


def sieve_per_solve(poly, mu_bits):
    res = RealRootFinder(mu_bits=mu_bits).find_roots(poly)
    st = res.stats
    return st.sieve_evals / max(st.solves, 1), st


@pytest.fixture(scope="module")
def measurements():
    random_rows = []
    inp = square_free_characteristic_input(20, 11)
    for mu in MUS:
        per, _ = sieve_per_solve(inp.poly, digits_to_bits(mu))
        random_rows.append([mu, per])

    adversarial_rows = []
    for gap_bits in (8, 32, 128, 512):
        p = close_roots(8, gap_bits)
        per, _ = sieve_per_solve(p, gap_bits + 8)
        adversarial_rows.append([gap_bits, per])
    return random_rows, adversarial_rows


def test_sieve_ablation(measurements):
    random_rows, adversarial_rows = measurements
    text = format_series(
        "Ablation (reproduced): sieve evals/solve on random inputs vs mu (digits)",
        "mu", ["evals/solve"], random_rows,
    )
    text += "\n\n" + format_series(
        "Adversarial close-root family: sieve evals/solve vs root gap (bits)",
        "gap", ["evals/solve"], adversarial_rows,
    )
    print("\n" + text)
    save_result("ablation_sieve", text)

    # (a) Eq. 41's premise: on random inputs the sieve cost is bounded
    # by a constant independent of mu.
    per_solves = [r[1] for r in random_rows]
    assert max(per_solves) - min(per_solves) < 4.0
    assert max(per_solves) < 16.0

    # (b) adversarial lopsided intervals cost more sieve evals than the
    # random case, but only ~log log of the gap (double-exponential
    # convergence), far below the bisection-equivalent gap_bits.
    adv = [r[1] for r in adversarial_rows]
    assert adv[-1] > per_solves[0]
    assert adv[-1] < 64  # << 512 evals a bisection-only sieve would need
    assert adv[-1] >= adv[0] - 1.0


def test_worst_case_model_dominates_average(measurements):
    from repro.analysis.predict import (
        iterations_average_case,
        iterations_worst_case,
    )

    for x in (30, 120, 300):
        for d in (10, 40, 70):
            assert iterations_worst_case(x, d) + 12 >= iterations_average_case(x, d)


def test_benchmark_close_root_solve(benchmark):
    p = close_roots(6, 64)
    benchmark(lambda: RealRootFinder(mu_bits=72).find_roots(p))
