"""Ablation — static vs dynamic scheduling (the paper's footnote 3).

"An earlier implementation used a static scheduling policy" — replaced
by the dynamic task queue the paper reports on.  This ablation replays
the same recorded DAG under both policies and quantifies why: static
round-robin pre-assignment cannot migrate work, so the wildly uneven
task costs (interval solves vs scalar remainder grains) leave
processors idle.
"""

import pytest

from repro.bench.report import format_series, save_result
from repro.bench.workloads import square_free_characteristic_input
from repro.core.scaling import digits_to_bits
from repro.core.tasks import build_task_graph
from repro.costmodel.counter import CostCounter
from repro.sched.simulator import simulate, simulate_static

DEGREES = [15, 25, 40]
MU = 16


@pytest.fixture(scope="module")
def sweep():
    out = {}
    for n in DEGREES:
        inp = square_free_characteristic_input(n, 11)
        c = CostCounter()
        tg = build_task_graph(inp.poly, digits_to_bits(MU), c)
        tg.graph.run_recorded(c)
        t1 = simulate(tg.graph, 1).makespan
        out[n] = {
            "t1": t1,
            "dynamic": {p: simulate(tg.graph, p).makespan for p in (8, 16)},
            "static": {
                p: simulate_static(tg.graph, p).makespan for p in (8, 16)
            },
        }
    return out


def test_static_vs_dynamic(sweep):
    rows = []
    for n, rec in sweep.items():
        rows.append([
            n,
            rec["t1"] / rec["dynamic"][16],
            rec["t1"] / rec["static"][16],
            rec["static"][16] / rec["dynamic"][16],
        ])
    text = format_series(
        f"Ablation (reproduced): dynamic vs static scheduling at p=16, mu={MU}",
        "n", ["dynamic speedup", "static speedup", "static/dynamic time"],
        rows,
    )
    print("\n" + text)
    save_result("ablation_static_scheduling", text)

    for n, rec in sweep.items():
        for p in (8, 16):
            # dynamic never loses to static
            assert rec["dynamic"][p] <= rec["static"][p], (n, p)
    # The gap widens with degree (more cost variance to balance):
    # decisive at the largest degree.
    top = sweep[max(sweep)]
    assert top["static"][16] > 1.3 * top["dynamic"][16]
    gaps = [rec["static"][16] / rec["dynamic"][16] for rec in sweep.values()]
    assert gaps[-1] >= gaps[0]


def test_static_correct_despite_slow(sweep):
    """Static scheduling is slower, not wrong: makespan still respects
    the work and critical-path lower bounds."""
    for rec in sweep.values():
        for p in (8, 16):
            assert rec["static"][p] >= rec["t1"] // p
            assert rec["static"][p] >= rec["dynamic"][p]


def test_benchmark_static_simulation(benchmark):
    inp = square_free_characteristic_input(20, 11)
    c = CostCounter()
    tg = build_task_graph(inp.poly, digits_to_bits(MU), c)
    tg.graph.run_recorded(c)
    benchmark(lambda: simulate_static(tg.graph, 16))
