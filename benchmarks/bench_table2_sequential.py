"""Table 2 — single-processor running times.

Paper: degrees 10..70 step 5 (rows, with measured m(n)), precision mu in
{4, 8, 16, 24, 32} decimal digits (columns), cells are seconds on one
Sequent processor.  Reproduced cells are simulated seconds (total
quadratic bit cost scaled by a nominal 10^9 bit-ops/s) plus, for
reference, real wall seconds of this Python implementation.

Shape assertions: cost grows steeply (superquadratically) in n, grows
monotonically in mu, and the relative mu-sensitivity shrinks as n grows
— all visible in the paper's Table 2.
"""

from repro.bench.report import format_table2, save_result
from repro.bench.runner import run_sequential
from repro.bench.workloads import bench_degrees, bench_mu_digits, paper_suite


def test_table2_reproduction(sequential_records):
    recs = list(sequential_records.values())
    table_sim = format_table2(recs, value="sim_seconds")
    table_wall = format_table2(recs, value="wall_seconds")
    text = (
        "Table 2 (reproduced): simulated single-processor seconds\n"
        "(total quadratic bit cost / 1e9)\n\n" + table_sim +
        "\n\nSame grid, wall-clock seconds of this implementation:\n\n"
        + table_wall
    )
    print("\n" + text)
    save_result("table2_sequential", text)

    degrees = bench_degrees()
    mus = bench_mu_digits()
    lo_n, hi_n = degrees[0], degrees[-1]
    lo_mu, hi_mu = mus[0], mus[-1]

    # growth in n is superquadratic at fixed mu
    ratio_n = (
        sequential_records[(hi_n, lo_mu)].total_bit_cost
        / sequential_records[(lo_n, lo_mu)].total_bit_cost
    )
    assert ratio_n > (hi_n / lo_n) ** 2

    # monotone in mu at fixed n
    for n in degrees:
        costs = [sequential_records[(n, mu)].total_bit_cost for mu in mus]
        assert costs == sorted(costs)

    # mu-sensitivity (mu_max / mu_min cost ratio) decreases with n
    sens_lo = (
        sequential_records[(lo_n, hi_mu)].total_bit_cost
        / sequential_records[(lo_n, lo_mu)].total_bit_cost
    )
    sens_hi = (
        sequential_records[(hi_n, hi_mu)].total_bit_cost
        / sequential_records[(hi_n, lo_mu)].total_bit_cost
    )
    assert sens_hi < sens_lo


def test_benchmark_single_run_n20(benchmark):
    """Wall-time of one full sequential solve (n=20, mu=16 digits)."""
    inp = paper_suite([20], (11,))[0]
    benchmark(lambda: run_sequential(inp, 16))


def test_benchmark_single_run_n35(benchmark):
    inp = paper_suite([35], (11,))[0]
    benchmark.pedantic(lambda: run_sequential(inp, 16), rounds=3, iterations=1)
