"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.poly.dense import IntPoly


def random_real_rooted(rng: random.Random, max_roots: int = 8,
                       lo: int = -50, hi: int = 50) -> tuple[IntPoly, list[int]]:
    """A polynomial with distinct random integer roots (lc > 0)."""
    k = rng.randint(1, max_roots)
    roots = sorted(rng.sample(range(lo, hi), k))
    return IntPoly.from_roots(roots), roots


def rational_rooted(rng: random.Random, max_roots: int = 6
                    ) -> tuple[IntPoly, list[Fraction]]:
    """A polynomial with distinct rational roots and positive lc."""
    fracs: set[Fraction] = set()
    while len(fracs) < rng.randint(2, max_roots):
        fracs.add(Fraction(rng.randint(-60, 60), rng.randint(1, 9)))
    sorted_fracs = sorted(fracs)
    p = IntPoly.one()
    for f in sorted_fracs:
        p = p * IntPoly([-f.numerator, f.denominator])
    if p.leading_coefficient < 0:
        p = -p
    return p, sorted_fracs


def scaled_ceil(f: Fraction, mu: int) -> int:
    """ceil(2**mu * f) for a Fraction — the expected mu-approximation."""
    return -((-f.numerator << mu) // f.denominator)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


@pytest.fixture(autouse=True)
def _isolated_ledger(tmp_path_factory, monkeypatch):
    """Keep test runs from appending to the repository's run ledger."""
    monkeypatch.setenv(
        "REPRO_LEDGER_DIR", str(tmp_path_factory.mktemp("ledger"))
    )
