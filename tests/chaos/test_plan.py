"""ChaosPlan/ChaosPhase: validation, JSON round-trip, pinned schedules."""

import pytest

from repro.chaos import PHASE_KINDS, ChaosPhase, ChaosPlan, full_plan, smoke_plan


class TestPhase:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown phase kind"):
            ChaosPhase("meteor_strike")

    def test_negative_requests_rejected(self):
        with pytest.raises(ValueError):
            ChaosPhase("baseline", requests=-1)

    def test_round_trip(self):
        ph = ChaosPhase("daemon_kill", requests=6,
                        params={"kill_after": 4})
        assert ChaosPhase.from_dict(ph.to_dict()) == ph

    def test_from_dict_requires_kind(self):
        with pytest.raises(ValueError):
            ChaosPhase.from_dict({"requests": 3})


class TestPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChaosPlan(degrees=())
        with pytest.raises(ValueError):
            ChaosPlan(duplicate_fraction=1.0)
        with pytest.raises(ValueError):
            ChaosPlan(mu=0)

    def test_round_trip(self):
        plan = smoke_plan(17)
        again = ChaosPlan.from_dict(plan.to_dict())
        assert again == plan

    def test_phase_seeds_distinct_and_pinned(self):
        plan = smoke_plan(11)
        seeds = [plan.phase_seed(i) for i in range(len(plan.phases))]
        assert len(set(seeds)) == len(seeds)
        assert seeds == [smoke_plan(11).phase_seed(i)
                         for i in range(len(plan.phases))]

    def test_pinned_schedules_cover_every_kind(self):
        for factory in (smoke_plan, full_plan):
            kinds = {ph.kind for ph in factory(11).phases}
            assert kinds == set(PHASE_KINDS)

    def test_smoke_has_one_daemon_kill(self):
        plan = smoke_plan(11)
        kills = [ph for ph in plan.phases if ph.kind == "daemon_kill"]
        assert len(kills) == 1
        # The kill index must land inside the phase's stream, or the
        # daemon never dies and the phase fails vacuously.
        assert 0 < kills[0].params["kill_after"] <= kills[0].requests
