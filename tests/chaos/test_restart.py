"""Daemon restart end-to-end (the issue's crash-safety acceptance):
a real ``repro serve --http`` subprocess is SIGKILL'd mid-flight, then
restarted on the same ``--journal``/``--cache-dir``; the replayed
results must be bit-exact and each accepted request answered exactly
once (the retry sees one cached result, never a second solve)."""

import asyncio
import json

import pytest

from repro.chaos.driver import Daemon, run_campaign
from repro.chaos.plan import ChaosPhase, ChaosPlan
from repro.resilience.checkpoint import poly_key
from repro.serve.journal import incomplete_entries, read_journal
from repro.serve.loadtest import expected_answers

REQS = [
    {"id": 0, "coeffs": [-6, 1, 1], "bits": 16, "strategy": "hybrid"},
    {"id": 1, "coeffs": [-2, 0, 1], "bits": 16, "strategy": "hybrid"},
    # (x-1)(x+2)(x-3): all-real cubic.
    {"id": 2, "coeffs": [6, -5, -2, 1], "bits": 16, "strategy": "hybrid"},
    {"id": 3, "coeffs": [-3, 0, 1], "bits": 16, "strategy": "hybrid"},
]
PLAN = ChaosPlan(seed=11, mu=16, degrees=(2, 3), processes=2, phases=())


def keys(reqs):
    return [poly_key(r["coeffs"], r["bits"], r["strategy"]) for r in reqs]


@pytest.mark.slow
def test_sigkill_restart_replays_bit_exact(tmp_path):
    workdir = str(tmp_path)
    expected = expected_answers(REQS)

    async def go():
        # Phase 1: daemon self-SIGKILLs right after the 3rd accept.
        daemon = await Daemon.start(PLAN, workdir, name="victim",
                                    extra=["--fault-kill-after", "3"])
        client = daemon.client()
        live = []
        for r in REQS:
            try:
                live.append(await client.request(r))
            except (ConnectionError, OSError) as e:
                live.append({"status": "error", "error": str(e)})
        rc = await daemon.wait_exit()
        daemon.cleanup()
        assert rc != 0  # died by signal, not a clean exit

        journal_path = f"{workdir}/journal.jsonl"
        records = read_journal(journal_path)
        lost = incomplete_entries(records)
        accepted = {str(r["key"]) for r in records
                    if r.get("ev") == "accept"}
        # Sequential sends + kill-after-3: requests 0,1 completed,
        # request 2's accept is the kill trigger, request 3 never
        # connected.
        assert len(accepted) == 3
        assert [e.key for e in lost] == [keys(REQS)[2]]
        assert live[2]["status"] == "error"
        assert live[3]["status"] == "error"

        # Phase 2: restart on the same journal + cache dir.
        daemon = await Daemon.start(PLAN, workdir, name="restarted")
        client = daemon.client()
        body = await client.get_json("/readyz")
        jh = body["journal"]
        assert jh["recovered"] == 1
        assert jh["replayed"] + jh["replay_cached"] == 1

        # Every retry is answered bit-exact, and every request the dead
        # daemon accepted comes back as a cache hit — exactly one
        # result per accepted request across the crash.
        for r in REQS:
            resp = await client.request(r)
            k = poly_key(r["coeffs"], r["bits"], r["strategy"])
            assert resp["status"] == "ok"
            assert resp["scaled"] == expected[k]
            if k in accepted:
                assert resp["cached"] is True
        # The live answers and the post-restart answers agree.
        for r, a in zip(REQS, live):
            if a.get("status") == "ok":
                assert a["scaled"] == expected[
                    poly_key(r["coeffs"], r["bits"], r["strategy"])]
        await daemon.stop()

    asyncio.run(go())


@pytest.mark.slow
def test_micro_campaign_passes(tmp_path):
    """run_campaign end-to-end on a two-phase plan (the CI gate's
    machinery, sized for the unit suite)."""
    plan = ChaosPlan(
        seed=23, mu=16, degrees=(2, 3), duplicate_fraction=0.25,
        processes=2,
        phases=(
            ChaosPhase("baseline", requests=4),
            ChaosPhase("daemon_kill", requests=4,
                       params={"kill_after": 2}),
        ),
    )
    report = run_campaign(plan, str(tmp_path / "campaign"))
    assert report.ok, json.dumps(report.to_dict(), indent=2)
    assert [ph.kind for ph in report.phases] == ["baseline", "daemon_kill"]
    d = report.to_dict()
    assert d["schema"] == "repro.chaos-report/1" and d["ok"] is True
