"""Hang guard for the chaos suite (subprocess daemons under faults).

The serve tests drive asyncio event loops, a live worker pool, and in
the slow tier a real daemon subprocess — so the worst failure mode is a
*hang*, not a wrong answer.  Same watchdog as the resilience suite:
``faulthandler`` dumps every thread and hard-exits when a single test
exceeds ``REPRO_TEST_TIMEOUT`` seconds (default 180; 0 disables).
"""

import faulthandler
import os

import pytest


@pytest.fixture(autouse=True)
def _hang_guard():
    timeout = float(os.environ.get("REPRO_TEST_TIMEOUT", "180"))
    if timeout <= 0:
        yield
        return
    faulthandler.dump_traceback_later(timeout, exit=True)
    try:
        yield
    finally:
        faulthandler.cancel_dump_traceback_later()
