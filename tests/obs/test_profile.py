"""Tests for the sampling profiler and collapsed-stack tooling."""

import threading
import time

import pytest

from repro.obs.profile import (
    DEFAULT_INTERVAL,
    SamplingProfiler,
    collapse,
    merge_collapsed,
    profile_chrome_events,
    read_collapsed,
    write_collapsed,
)


def _burn(seconds: float) -> None:
    t0 = time.perf_counter()
    while time.perf_counter() - t0 < seconds:
        sum(i * i for i in range(200))


class TestSamplingProfiler:
    def test_anchor_sample_on_start(self):
        prof = SamplingProfiler()
        prof.start()
        prof.stop()
        samples = prof.drain()
        assert len(samples) >= 1  # the anchor, even with zero dwell time
        t_ns, stack = samples[0]
        assert isinstance(t_ns, int) and stack
        assert all(":" in frame for frame in stack)

    def test_samples_accumulate_under_load(self):
        prof = SamplingProfiler(interval=0.001)
        with prof:
            _burn(0.05)
        samples = prof.drain()
        assert len(samples) > 3
        # stacks are root-first: this test function appears before _burn
        joined = [";".join(stack) for _, stack in samples]
        assert any("_burn" in s for s in joined)

    def test_drain_clears(self):
        prof = SamplingProfiler()
        prof.start()
        prof.stop()
        assert prof.drain()
        assert prof.drain() == []

    def test_restartable(self):
        prof = SamplingProfiler()
        prof.start()
        prof.stop()
        first = prof.drain()
        prof.start()
        prof.stop()
        assert first and prof.drain()

    def test_start_idempotent(self):
        prof = SamplingProfiler()
        prof.start()
        thread = prof._thread
        prof.start()
        assert prof._thread is thread
        prof.stop()
        assert not prof.running

    def test_can_target_another_thread(self):
        done = threading.Event()

        def victim():
            while not done.wait(0.001):
                pass

        t = threading.Thread(target=victim, daemon=True)
        t.start()
        prof = SamplingProfiler(interval=0.001, thread_id=t.ident)
        with prof:
            time.sleep(0.03)
        done.set()
        t.join(timeout=1.0)
        assert any("victim" in ";".join(stack)
                   for _, stack in prof.drain())

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0)

    def test_default_interval_is_low_overhead(self):
        assert DEFAULT_INTERVAL >= 0.001  # <= 1 kHz keeps overhead < 5%


class TestCollapsed:
    def test_collapse_counts(self):
        samples = [(1, ("a:f", "b:g")), (2, ("a:f", "b:g")), (3, ("a:f",))]
        assert collapse(samples) == {"a:f;b:g": 2, "a:f": 1}

    def test_merge(self):
        assert merge_collapsed({"a": 1}, {"a": 2, "b": 5}) == {"a": 3, "b": 5}
        assert merge_collapsed() == {}

    def test_write_read_roundtrip(self, tmp_path):
        folded = {"main;work;inner": 7, "main;idle": 2}
        path = str(tmp_path / "x.folded")
        write_collapsed(path, folded)
        with open(path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        assert lines == sorted(lines)  # deterministic output order
        assert all(line.rsplit(" ", 1)[1].isdigit() for line in lines)
        assert read_collapsed(path) == folded

    def test_chrome_instant_events(self):
        samples = [(1_000, ("a:f", "b:g")), (2_000, ("a:f",))]
        events = profile_chrome_events(samples, t0=1_000, pid=3, tid=42)
        assert [e["ph"] for e in events] == ["i", "i"]
        assert events[0]["name"] == "b:g"  # leaf frame names the event
        assert events[0]["args"]["stack"] == "a:f;b:g"
        assert events[0]["ts"] == 0.0 and events[1]["ts"] == 1.0
        assert all(e["pid"] == 3 and e["tid"] == 42 for e in events)
