"""Tests for the Chrome trace-event export (real spans and schedules)."""

import json

from repro.costmodel.counter import CostCounter
from repro.obs.chrometrace import (
    schedule_to_chrome,
    schedules_to_chrome,
    spans_to_chrome,
    worker_busy_series,
    write_chrome_trace,
)
from repro.obs.trace import Span, Tracer
from repro.core.tasks import build_task_graph
from repro.poly.dense import IntPoly
from repro.sched.simulator import simulate, speedup_curve


def _traced_spans():
    counter = CostCounter()
    tr = Tracer(counter=counter)
    with tr.span("run", degree=4):
        with tr.span("remainder", phase="remainder"):
            counter.mul(1 << 8, 1 << 8)
    return tr.spans


def _recorded_graph():
    counter = CostCounter()
    tg = build_task_graph(IntPoly.from_roots([-3, 1, 4, 9]), 12, counter)
    tg.graph.run_recorded(counter)
    return tg.graph


class TestSpansToChrome:
    def test_complete_events_with_args(self):
        trace = spans_to_chrome(_traced_spans())
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 2
        rem = next(e for e in xs if e["name"] == "remainder")
        assert rem["cat"] == "remainder"
        assert rem["args"]["bit_cost"] == 9 * 9
        assert all(e["dur"] >= 0 for e in xs)

    def test_metadata_names_lanes(self):
        trace = spans_to_chrome(_traced_spans(), process_name="myrun")
        metas = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert any(e["args"]["name"] == "myrun" for e in metas)
        assert any(e["args"]["name"] == "main" for e in metas)

    def test_open_spans_skipped(self):
        tr = Tracer()
        cm = tr.span("never_closed")
        cm.__enter__()
        trace = spans_to_chrome(tr.spans)
        assert all(e["ph"] != "X" for e in trace["traceEvents"])


def _adopted_worker_spans():
    """Main dispatch span plus two adopted worker-lane task spans."""
    return [
        Span(sid=1, name="dispatch", phase="", depth=0, parent=None,
             start_ns=0, end_ns=1000, track=0),
        Span(sid=2, name="task_a", phase="interval", depth=1, parent=1,
             start_ns=100, end_ns=400, track=1),
        Span(sid=3, name="inner", phase="interval.sieve", depth=2, parent=2,
             start_ns=150, end_ns=300, track=1),
        Span(sid=4, name="task_b", phase="interval", depth=1, parent=1,
             start_ns=200, end_ns=900, track=2),
    ]


class TestCounterLanes:
    def test_sampled_counters_become_counter_events(self):
        tr = Tracer()
        with tr.span("run"):
            tr.sample("executor.queue_depth", 3)
            tr.sample("executor.queue_depth", 0)
            tr.sample("executor.in_flight", 2)
        trace = spans_to_chrome(tr.spans, counters=tr.counters)
        cs = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        depth = [e for e in cs if e["name"] == "executor.queue_depth"]
        assert [e["args"]["value"] for e in depth] == [3, 0]
        assert all(e["ts"] >= 0 for e in cs)
        assert any(e["name"] == "executor.in_flight" for e in cs)

    def test_counter_events_share_span_timebase(self):
        tr = Tracer()
        with tr.span("run"):
            tr.sample("g", 1.0)
        trace = spans_to_chrome(tr.spans, counters=tr.counters)
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        cs = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert xs[0]["ts"] <= cs[0]["ts"] <= xs[0]["ts"] + xs[0]["dur"]

    def test_worker_busy_lanes_from_adopted_spans(self):
        trace = spans_to_chrome(_adopted_worker_spans())
        busy = [e for e in trace["traceEvents"]
                if e["ph"] == "C" and e["name"].endswith("busy")]
        names = {e["name"] for e in busy}
        assert names == {"worker-1 busy", "worker-2 busy"}
        w1 = [(e["ts"], e["args"]["busy"]) for e in busy
              if e["name"] == "worker-1 busy"]
        # rising edge at task start, falling edge at task end (us units)
        assert w1 == [(0.1, 1), (0.4, 0)]

    def test_worker_busy_series_merges_nested_spans(self):
        series = worker_busy_series(_adopted_worker_spans())
        # the inner span on track 1 must not produce extra transitions
        assert series[1] == [(100, 1), (400, 0)]
        assert series[2] == [(200, 1), (900, 0)]

    def test_counters_only_trace_has_timebase(self):
        tr = Tracer()
        tr.sample("lonely", 7.0)
        trace = spans_to_chrome([], counters=tr.counters)
        cs = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert len(cs) == 1 and cs[0]["ts"] == 0.0


class TestScheduleToChrome:
    def test_four_processor_schedule_is_valid_chrome_json(self, tmp_path):
        graph = _recorded_graph()
        result = simulate(graph, 4, keep_trace=True)
        trace = schedule_to_chrome(result, graph.tasks)
        path = tmp_path / "sim.json"
        write_chrome_trace(str(path), trace)
        loaded = json.loads(path.read_text())
        events = loaded["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == result.n_tasks
        assert {e["tid"] for e in xs} <= set(range(4))
        # Every event sits inside the makespan and durations match costs.
        assert all(0 <= e["ts"] and e["ts"] + e["dur"] <= result.makespan + 1
                   for e in xs)
        # Task kinds name the slices.
        assert any(e["name"] == "interval" for e in xs)

    def test_requires_kept_trace(self):
        graph = _recorded_graph()
        result = simulate(graph, 2)
        try:
            schedule_to_chrome(result)
        except ValueError as e:
            assert "keep_trace" in str(e)
        else:
            raise AssertionError("expected ValueError")

    def test_curve_merges_one_pid_per_count(self):
        graph = _recorded_graph()
        curve = {
            p: simulate(graph, p, keep_trace=True) for p in (1, 2, 4)
        }
        trace = schedules_to_chrome(curve, graph.tasks)
        pids = {e["pid"] for e in trace["traceEvents"]}
        assert pids == {1, 2, 4}

    def test_speedup_curve_results_work_when_retraced(self):
        graph = _recorded_graph()
        curve = speedup_curve(graph, [2])
        retraced = {
            p: simulate(graph, p, keep_trace=True) for p in curve
        }
        trace = schedules_to_chrome(retraced, graph.tasks)
        assert trace["traceEvents"]

    def test_writes_to_file_object(self, tmp_path):
        import io

        graph = _recorded_graph()
        result = simulate(graph, 2, keep_trace=True)
        buf = io.StringIO()
        write_chrome_trace(buf, schedule_to_chrome(result))
        assert json.loads(buf.getvalue())["traceEvents"]


class TestLaneOrderingAndProfile:
    def test_thread_sort_index_pins_lane_order(self):
        trace = spans_to_chrome(_adopted_worker_spans())
        sorts = [e for e in trace["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_sort_index"]
        by_tid = {e["tid"]: e["args"]["sort_index"] for e in sorts}
        # main (track 0) first, then workers in track order
        assert by_tid == {0: 0, 1: 1, 2: 2}

    def test_worker_lane_names_carry_pid_when_known(self):
        spans = _adopted_worker_spans()
        spans[1] = Span(sid=2, name="task_a", phase="interval", depth=1,
                        parent=1, start_ns=100, end_ns=400, track=1,
                        attrs={"pid": 4242})
        trace = spans_to_chrome(spans)
        names = {e["args"]["name"]
                 for e in trace["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert "worker-1 (pid 4242)" in names
        assert "worker-2" in names  # no pid attr -> plain label

    def test_profile_lane_appended_after_workers(self):
        samples = [(150, ("m:f", "m:g")), (250, ("m:f",))]
        trace = spans_to_chrome(_adopted_worker_spans(), profile=samples)
        events = trace["traceEvents"]
        prof_names = [e for e in events
                      if e["ph"] == "M" and e["name"] == "thread_name"
                      and e["args"]["name"] == "profiler"]
        assert len(prof_names) == 1
        prof_tid = prof_names[0]["tid"]
        assert prof_tid > 2  # after every worker lane
        instants = [e for e in events
                    if e["ph"] == "i" and e["tid"] == prof_tid]
        assert len(instants) == 2
        assert instants[0]["args"]["stack"] == "m:f;m:g"
        # same timebase as the spans: first span starts at ts 0
        assert instants[0]["ts"] == (150 - 0) / 1000.0

    def test_profile_only_trace_has_own_timebase(self):
        samples = [(5_000, ("m:f",)), (6_000, ("m:f",))]
        trace = spans_to_chrome([], profile=samples)
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert [e["ts"] for e in instants] == [0.0, 1.0]
