"""Tests for the Chrome trace-event export (real spans and schedules)."""

import json

from repro.costmodel.counter import CostCounter
from repro.obs.chrometrace import (
    schedule_to_chrome,
    schedules_to_chrome,
    spans_to_chrome,
    write_chrome_trace,
)
from repro.obs.trace import Tracer
from repro.core.tasks import build_task_graph
from repro.poly.dense import IntPoly
from repro.sched.simulator import simulate, speedup_curve


def _traced_spans():
    counter = CostCounter()
    tr = Tracer(counter=counter)
    with tr.span("run", degree=4):
        with tr.span("remainder", phase="remainder"):
            counter.mul(1 << 8, 1 << 8)
    return tr.spans


def _recorded_graph():
    counter = CostCounter()
    tg = build_task_graph(IntPoly.from_roots([-3, 1, 4, 9]), 12, counter)
    tg.graph.run_recorded(counter)
    return tg.graph


class TestSpansToChrome:
    def test_complete_events_with_args(self):
        trace = spans_to_chrome(_traced_spans())
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 2
        rem = next(e for e in xs if e["name"] == "remainder")
        assert rem["cat"] == "remainder"
        assert rem["args"]["bit_cost"] == 9 * 9
        assert all(e["dur"] >= 0 for e in xs)

    def test_metadata_names_lanes(self):
        trace = spans_to_chrome(_traced_spans(), process_name="myrun")
        metas = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert any(e["args"]["name"] == "myrun" for e in metas)
        assert any(e["args"]["name"] == "main" for e in metas)

    def test_open_spans_skipped(self):
        tr = Tracer()
        cm = tr.span("never_closed")
        cm.__enter__()
        trace = spans_to_chrome(tr.spans)
        assert all(e["ph"] != "X" for e in trace["traceEvents"])


class TestScheduleToChrome:
    def test_four_processor_schedule_is_valid_chrome_json(self, tmp_path):
        graph = _recorded_graph()
        result = simulate(graph, 4, keep_trace=True)
        trace = schedule_to_chrome(result, graph.tasks)
        path = tmp_path / "sim.json"
        write_chrome_trace(str(path), trace)
        loaded = json.loads(path.read_text())
        events = loaded["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == result.n_tasks
        assert {e["tid"] for e in xs} <= set(range(4))
        # Every event sits inside the makespan and durations match costs.
        assert all(0 <= e["ts"] and e["ts"] + e["dur"] <= result.makespan + 1
                   for e in xs)
        # Task kinds name the slices.
        assert any(e["name"] == "interval" for e in xs)

    def test_requires_kept_trace(self):
        graph = _recorded_graph()
        result = simulate(graph, 2)
        try:
            schedule_to_chrome(result)
        except ValueError as e:
            assert "keep_trace" in str(e)
        else:
            raise AssertionError("expected ValueError")

    def test_curve_merges_one_pid_per_count(self):
        graph = _recorded_graph()
        curve = {
            p: simulate(graph, p, keep_trace=True) for p in (1, 2, 4)
        }
        trace = schedules_to_chrome(curve, graph.tasks)
        pids = {e["pid"] for e in trace["traceEvents"]}
        assert pids == {1, 2, 4}

    def test_speedup_curve_results_work_when_retraced(self):
        graph = _recorded_graph()
        curve = speedup_curve(graph, [2])
        retraced = {
            p: simulate(graph, p, keep_trace=True) for p in curve
        }
        trace = schedules_to_chrome(retraced, graph.tasks)
        assert trace["traceEvents"]

    def test_writes_to_file_object(self, tmp_path):
        import io

        graph = _recorded_graph()
        result = simulate(graph, 2, keep_trace=True)
        buf = io.StringIO()
        write_chrome_trace(buf, schedule_to_chrome(result))
        assert json.loads(buf.getvalue())["traceEvents"]
