"""Tests for the append-only cross-run performance ledger."""

import json
import os

import pytest

from repro.obs.ledger import (
    SCHEMA,
    Ledger,
    RunRecord,
    ledger_dir,
    new_run_id,
    record_from_artifact,
    validate_record,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.perf import BenchArtifact


def _record(command="bench", name="smoke", **kw) -> RunRecord:
    rec = RunRecord(command=command, name=name, **kw)
    rec.add_metric("bit_cost", 1000)
    rec.add_metric("wall_seconds", 0.25, kind="wall")
    return rec


class TestRunRecord:
    def test_roundtrip(self):
        rec = _record(params={"degrees": [10, 15]})
        rec.phases = {"remainder": {"bit_cost": 600, "wall_ns": 10}}
        rec.reliability = {"executor.retries": 1}
        back = RunRecord.from_dict(rec.to_dict())
        assert back.to_dict() == rec.to_dict()
        assert back.metric("bit_cost") == 1000

    def test_dump_is_json_safe_and_versioned(self):
        d = json.loads(json.dumps(_record().to_dict()))
        assert d["schema"] == SCHEMA
        validate_record(d)

    def test_unique_sortable_run_ids(self):
        ids = [new_run_id() for _ in range(50)]
        assert len(set(ids)) == 50

    def test_rejects_bad_metric_kind(self):
        with pytest.raises(ValueError, match="kind"):
            _record().add_metric("x", 1, kind="weird")

    def test_env_fingerprint_stamped(self):
        assert "python" in _record().env


class TestValidateRecord:
    def test_rejects_wrong_schema(self):
        d = _record().to_dict()
        d["schema"] = "something/else"
        with pytest.raises(ValueError, match="schema"):
            validate_record(d)

    def test_rejects_missing_run_id(self):
        d = _record().to_dict()
        d["run_id"] = ""
        with pytest.raises(ValueError, match="run_id"):
            validate_record(d)

    def test_rejects_malformed_metric(self):
        d = _record().to_dict()
        d["metrics"]["bad"] = {"value": 1}  # no kind
        with pytest.raises(ValueError, match="bad"):
            validate_record(d)


class TestRecordFromArtifact:
    def _artifact(self) -> BenchArtifact:
        a = BenchArtifact(name="smoke", params={"seed": 11})
        a.add_metric("bit_cost", 500)
        a.add_metric("executor.retries", 2)
        a.phases = {"tree": {"bit_cost": 100, "wall_ns": 5}}
        a.parallel = {"workers": 2, "efficiency": 0.8}
        return a

    def test_copies_artifact_sections(self):
        rec = record_from_artifact(self._artifact())
        assert rec.command == "bench" and rec.name == "smoke"
        assert rec.params == {"seed": 11}
        assert rec.metric("bit_cost") == 500
        assert rec.phases["tree"]["bit_cost"] == 100
        assert rec.parallel["workers"] == 2

    def test_reliability_from_registry(self):
        reg = MetricsRegistry()
        reg.counter("executor.retries").inc(7)
        rec = record_from_artifact(self._artifact(), registry=reg)
        assert rec.reliability["executor.retries"] == 7
        assert rec.reliability["executor.fallbacks"] == 0  # zero-filled

    def test_reliability_from_artifact_metrics_without_registry(self):
        rec = record_from_artifact(self._artifact())
        assert rec.reliability == {"executor.retries": 2}


class TestLedger:
    def test_append_and_read_back(self, tmp_path):
        led = Ledger(root=str(tmp_path))
        path = led.append(_record())
        assert path == led.path("local") and os.path.exists(path)
        recs = led.records()
        assert len(recs) == 1 and recs[0].metric("bit_cost") == 1000

    def test_tiers_are_separate_files(self, tmp_path):
        led = Ledger(root=str(tmp_path))
        led.append(_record(name="local-run"), tier="local")
        led.append(_record(name="committed-run"), tier="committed")
        assert [r.name for r in led.records("local")] == ["local-run"]
        assert [r.name for r in led.records("committed")] == ["committed-run"]
        assert {r.name for r in led.records("all")} == {
            "local-run", "committed-run"
        }

    def test_unknown_tier_rejected(self, tmp_path):
        led = Ledger(root=str(tmp_path))
        with pytest.raises(ValueError, match="tier"):
            led.path("nope")

    def test_torn_tail_line_skipped(self, tmp_path):
        led = Ledger(root=str(tmp_path))
        led.append(_record())
        with open(led.path("local"), "a", encoding="utf-8") as fh:
            fh.write('{"schema": "repro.run-led')  # crash mid-append
        assert len(led.records()) == 1

    def test_records_sorted_oldest_first(self, tmp_path):
        led = Ledger(root=str(tmp_path))
        led.append(_record(time_unix=200.0, name="later"))
        led.append(_record(time_unix=100.0, name="earlier"))
        assert [r.name for r in led.records()] == ["earlier", "later"]

    def test_query_filters_newest_first(self, tmp_path):
        led = Ledger(root=str(tmp_path))
        led.append(_record(command="roots", time_unix=1.0))
        led.append(_record(command="bench", name="a", time_unix=2.0))
        led.append(_record(command="bench", name="b", time_unix=3.0))
        bench = led.query(command="bench")
        assert [r.name for r in bench] == ["b", "a"]
        assert len(led.query(command="bench", limit=1)) == 1
        assert [r.name for r in led.query(name="a")] == ["a"]

    def test_get_by_prefix(self, tmp_path):
        led = Ledger(root=str(tmp_path))
        rec = _record()
        led.append(rec)
        assert led.get(rec.run_id).run_id == rec.run_id
        assert led.get(rec.run_id[:12]).run_id == rec.run_id
        with pytest.raises(KeyError):
            led.get("zzzz-no-such")

    def test_get_ambiguous_prefix(self, tmp_path):
        led = Ledger(root=str(tmp_path))
        a = _record(run_id="abc-1")
        b = _record(run_id="abc-2")
        led.append(a)
        led.append(b)
        with pytest.raises(ValueError, match="ambiguous"):
            led.get("abc")
        assert led.get("abc-1").run_id == "abc-1"

    def test_ledger_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "custom"))
        assert ledger_dir() == str(tmp_path / "custom")
        assert os.path.isdir(str(tmp_path / "custom"))
        led = Ledger()
        assert led.root == str(tmp_path / "custom")
