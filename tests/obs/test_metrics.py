"""Tests for the metrics registry and the standard run metric set."""

import pytest

from repro.core.rootfinder import RealRootFinder
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
    histogram_from_dict,
    labeled,
    run_metrics,
    split_labels,
)
from repro.poly.dense import IntPoly


class TestPrimitives:
    def test_counter(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.as_dict() == {"type": "counter", "value": 5}

    def test_gauge(self):
        g = Gauge("g")
        g.set(2.5)
        g.set(1.5)
        assert g.value == 1.5

    def test_histogram_buckets_by_bit_length(self):
        h = Histogram("h")
        for v in (0, 1, 2, 3, 4, 100):
            h.observe(v)
        assert h.count == 6
        assert h.min == 0 and h.max == 100
        assert h.buckets[0] == 1   # {0}
        assert h.buckets[1] == 1   # {1}
        assert h.buckets[2] == 2   # {2, 3}
        assert h.buckets[3] == 1   # {4..7}
        assert h.buckets[7] == 1   # {64..127}
        assert h.mean == pytest.approx(110 / 6)

    def test_histogram_rejects_negative(self):
        with pytest.raises(ValueError):
            Histogram("h").observe(-1)

    def test_empty_histogram_mean(self):
        assert Histogram("h").mean == 0.0

    def test_empty_histogram_percentiles_are_none(self):
        h = Histogram("h")
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.percentile(q) is None

    def test_percentile_bucket_upper_bounds(self):
        h = Histogram("h")
        for v in (0, 0, 0, 100):
            h.observe(v)
        assert h.percentile(0.5) == 0
        # 100 lives in the 64..127 bucket; its upper bound is clamped
        # to the observed max.
        assert h.percentile(0.9) == 100
        assert h.percentile(1.0) == 100
        h2 = Histogram("h2")
        for v in (1, 2, 5):
            h2.observe(v)
        assert h2.percentile(0.5) == 3  # bucket {2,3} upper bound

    def test_percentile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(1.5)

    def test_percentile_q0_is_exact_min_not_bucket_upper(self):
        # Regression: q=0 used to return the upper bound of the
        # minimum's bucket (3 for min=2), a max-clamp-style surprise.
        h = Histogram("h")
        for v in (2, 100):
            h.observe(v)
        assert h.percentile(0.0) == 2
        assert h.percentile(1.0) == 100

    def test_percentile_single_sample_every_q(self):
        h = Histogram("h")
        h.observe(5)
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert h.percentile(q) == 5

    def test_percentile_clamped_into_min_max(self):
        h = Histogram("h")
        for v in (9, 10, 11, 1000):
            h.observe(v)
        for q in (0.0, 0.5, 0.9, 1.0):
            assert 9 <= h.percentile(q) <= 1000

    def test_percentile_empty_documented_none(self):
        h = Histogram("h")
        assert h.percentile(0.0) is None
        assert h.percentile(1.0) is None

    def test_gauge_set_add_interleavings(self):
        g = Gauge("g")
        g.add(2.0)          # add before any set starts from 0
        assert g.value == 2.0
        g.set(10.0)
        g.add(-3.5)
        g.add(1.0)
        assert g.value == 7.5
        g.set(0.0)
        assert g.value == 0.0


class TestRegistry:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.names() == ["a"]

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="Counter"):
            reg.histogram("x")

    def test_as_dict_json_safe(self):
        import json

        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1.0)
        reg.histogram("h").observe(3)
        json.dumps(reg.as_dict())

    def test_snapshot_deterministic_across_creation_order(self):
        import json

        a, b = MetricsRegistry(), MetricsRegistry()
        for reg, order in ((a, ("x", "m", "z")), (b, ("z", "x", "m"))):
            for name in order:
                reg.counter(name).inc()
        assert a.names() == b.names() == ["m", "x", "z"]
        assert json.dumps(a.as_dict(), sort_keys=True) == json.dumps(
            b.as_dict(), sort_keys=True
        )

    def test_snapshot_is_a_copy(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        snap = reg.as_dict()
        reg.counter("c").inc(10)
        assert snap["c"]["value"] == 1


class TestLabeledNames:
    def test_labeled_sorts_keys_and_quotes_values(self):
        name = labeled("server.latency_us", priority=1, degree_bucket="3-4")
        assert name == ('server.latency_us'
                        '{degree_bucket="3-4",priority="1"}')
        # Key order in the call never changes the name.
        assert labeled("m", b=2, a=1) == labeled("m", a=1, b=2)

    def test_labeled_without_labels_is_the_bare_name(self):
        assert labeled("m") == "m"

    def test_escape_label_value(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"
        assert escape_label_value(7) == "7"

    def test_split_labels_roundtrip(self):
        name = labeled("server.latency_us", priority=0)
        base, body = split_labels(name)
        assert base == "server.latency_us"
        assert body == 'priority="0"'
        assert split_labels("plain") == ("plain", "")

    def test_labeled_metrics_are_distinct_registry_entries(self):
        reg = MetricsRegistry()
        reg.histogram(labeled("h", p=0)).observe(1)
        reg.histogram(labeled("h", p=1)).observe(2)
        reg.histogram("h").observe(3)
        assert len(reg.names()) == 3

    def test_histogram_from_dict_roundtrip(self):
        h = Histogram("lat")
        for v in (0, 1, 5, 900):
            h.observe(v)
        back = histogram_from_dict(h.as_dict(), name="lat")
        assert back.count == h.count
        assert back.total == h.total
        assert back.buckets == h.buckets
        assert back.percentile(0.5) == h.percentile(0.5)
        assert back.percentile(0.99) == h.percentile(0.99)


class TestRunMetrics:
    def test_standard_set_from_real_run(self):
        result = RealRootFinder(mu_bits=24).find_roots(
            IntPoly.from_roots([-9, -2, 3, 11])
        )
        reg = run_metrics(result)
        d = reg.as_dict()
        st = result.stats
        cases = sum(
            d[f"interval.case{c}"]["value"] for c in ("1", "2a", "2b", "2c")
        )
        assert cases == st.case1 + st.case2a + st.case2b + st.case2c
        assert d["interval.solves"]["value"] == st.solves
        assert d["interval.newton_iters"]["count"] == len(st.per_solve)
        assert d["run.degree"]["value"] == 4
        assert d["run.n_roots"]["value"] == 4
