"""Format-validation tests for the OpenMetrics exposition export.

The round-trip check here is the acceptance gate for the export
module: render a registry holding every metric kind, then *parse the
text back* and verify the structural invariants OpenMetrics requires
(HELP/TYPE preambles, counter ``_total`` suffix, strictly increasing
``le`` bounds with monotone cumulative bucket counts, ``_sum`` /
``_count`` consistency, terminal ``# EOF``).
"""

import io
import math

import pytest

from repro.obs.export import (
    CONTENT_TYPE,
    render_openmetrics,
    sanitize_metric_name,
    snapshot,
    write_openmetrics,
)
from repro.obs.metrics import MetricsRegistry, labeled


def _registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("executor.retries").inc(3)
    reg.counter("executor.fallbacks")  # zero-valued counter stays exported
    reg.gauge("executor.queue_depth").set(2.5)
    h = reg.histogram("interval.sieve_evals")
    for v in (0, 1, 1, 3, 8, 900):
        h.observe(v)
    return reg


def _parse(text: str):
    """Parse an exposition into {family: {help, type, samples}}.

    ``samples`` maps sample name -> list of (labels-dict, float value).
    """
    families: dict = {}
    lines = text.splitlines()
    for line in lines:
        if line == "# EOF":
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families.setdefault(name, {"samples": {}})["help"] = help_text
        elif line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            families.setdefault(name, {"samples": {}})["type"] = kind
        else:
            sample, _, value = line.rpartition(" ")
            labels = {}
            if "{" in sample:
                sample, _, labelpart = sample.partition("{")
                for item in labelpart.rstrip("}").split(","):
                    k, _, v = item.partition("=")
                    labels[k] = v.strip('"')
            # attach to the family whose name prefixes the sample
            fam = max((f for f in families if sample.startswith(f)),
                      key=len)
            families[fam]["samples"].setdefault(sample, []).append(
                (labels, float(value))
            )
    return families


class TestExpositionFormat:
    def test_ends_with_eof_newline(self):
        text = render_openmetrics(_registry())
        assert text.endswith("# EOF\n")

    def test_every_family_has_help_and_type(self):
        families = _parse(render_openmetrics(_registry()))
        assert len(families) == 4
        for name, fam in families.items():
            assert fam.get("help"), f"{name} lacks HELP"
            assert fam.get("type") in ("counter", "gauge", "histogram")

    def test_counter_total_suffix(self):
        families = _parse(render_openmetrics(_registry()))
        fam = families["repro_executor_retries"]
        assert fam["type"] == "counter"
        assert list(fam["samples"]) == ["repro_executor_retries_total"]
        assert fam["samples"]["repro_executor_retries_total"][0][1] == 3.0

    def test_zero_counter_exported(self):
        families = _parse(render_openmetrics(_registry()))
        samples = families["repro_executor_fallbacks"]["samples"]
        assert samples["repro_executor_fallbacks_total"][0][1] == 0.0

    def test_gauge_plain_sample(self):
        families = _parse(render_openmetrics(_registry()))
        fam = families["repro_executor_queue_depth"]
        assert fam["type"] == "gauge"
        assert fam["samples"]["repro_executor_queue_depth"][0][1] == 2.5

    def test_histogram_buckets_cumulative_and_consistent(self):
        families = _parse(render_openmetrics(_registry()))
        fam = families["repro_interval_sieve_evals"]
        assert fam["type"] == "histogram"
        s = fam["samples"]
        buckets = s["repro_interval_sieve_evals_bucket"]
        uppers = [b[0]["le"] for b in buckets]
        assert uppers[-1] == "+Inf"
        finite = [int(u) for u in uppers[:-1]]
        assert finite == sorted(set(finite)), "le bounds must increase"
        counts = [b[1] for b in buckets]
        assert counts == sorted(counts), "cumulative counts must be monotone"
        count = s["repro_interval_sieve_evals_count"][0][1]
        total = s["repro_interval_sieve_evals_sum"][0][1]
        assert buckets[-1][1] == count == 6
        assert total == 0 + 1 + 1 + 3 + 8 + 900
        # every finite upper bound really is a power-of-two bucket edge
        assert all(u == 0 or math.log2(u + 1).is_integer() for u in finite)

    def test_bucket_membership_matches_bit_length(self):
        """An observation of v lands in the bucket whose le >= v."""
        reg = MetricsRegistry()
        h = reg.histogram("x")
        h.observe(7)   # bit_length 3 -> le="7"
        h.observe(8)   # bit_length 4 -> le="15"
        families = _parse(render_openmetrics(reg))
        buckets = families["repro_x"]["samples"]["repro_x_bucket"]
        by_le = {b[0]["le"]: b[1] for b in buckets}
        assert by_le["7"] == 1
        assert by_le["15"] == 2  # cumulative


class TestLabeledFamilies:
    """Labeled registry names render as one family with per-member
    label blocks — the per-priority / per-degree-bucket histograms the
    daemon exports."""

    def _labeled_registry(self):
        reg = MetricsRegistry()
        for prio, bucket, value in [(0, "1-2", 100), (0, "3-4", 200),
                                    (1, "1-2", 50)]:
            reg.histogram(labeled("server.latency_us", priority=prio,
                                  degree_bucket=bucket)).observe(value)
        return reg

    def test_one_family_one_help_one_type(self):
        text = render_openmetrics(self._labeled_registry())
        assert text.count("# HELP repro_server_latency_us ") == 1
        assert text.count("# TYPE repro_server_latency_us histogram") == 1

    def test_members_carry_labels_and_merge_le(self):
        families = _parse(render_openmetrics(self._labeled_registry()))
        fam = families["repro_server_latency_us"]
        buckets = fam["samples"]["repro_server_latency_us_bucket"]
        # Every bucket sample carries the member labels plus le.
        assert all({"degree_bucket", "priority", "le"} == set(b[0])
                   for b in buckets)
        # Three members, each with its own +Inf bucket of count 1.
        infs = [b for b in buckets if b[0]["le"] == "+Inf"]
        assert len(infs) == 3 and all(b[1] == 1.0 for b in infs)
        counts = fam["samples"]["repro_server_latency_us_count"]
        assert sum(c[1] for c in counts) == 3

    def test_label_order_is_stable(self):
        """Key order in labeled() input never changes the rendered line,
        and members render in sorted label-body order."""
        a = MetricsRegistry()
        a.histogram(labeled("m", b="2", a="1")).observe(5)
        b = MetricsRegistry()
        b.histogram(labeled("m", a="1", b="2")).observe(5)
        ta, tb = render_openmetrics(a), render_openmetrics(b)
        assert ta == tb
        assert 'repro_m_count{a="1",b="2"} 1' in ta

    def test_members_sorted_deterministically(self):
        reg = MetricsRegistry()
        # Insert out of sorted order.
        reg.counter(labeled("hits", route="b")).inc(2)
        reg.counter(labeled("hits", route="a")).inc(1)
        text = render_openmetrics(reg)
        pos_a = text.index('route="a"')
        pos_b = text.index('route="b"')
        assert pos_a < pos_b

    def test_unlabeled_and_labeled_share_a_family(self):
        """The daemon keeps the historical unlabeled histogram and the
        labeled variants under one base name; the unlabeled member
        renders first (empty label body sorts first), with exactly one
        HELP/TYPE preamble."""
        reg = MetricsRegistry()
        reg.histogram("server.latency_us").observe(10)
        reg.histogram(labeled("server.latency_us", priority=0,
                              degree_bucket="1-2")).observe(10)
        text = render_openmetrics(reg)
        assert text.count("# TYPE repro_server_latency_us histogram") == 1
        plain = text.index("repro_server_latency_us_count ")
        labeled_pos = text.index("repro_server_latency_us_count{")
        assert plain < labeled_pos

    def test_mixed_types_in_family_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m")
        reg.histogram(labeled("m", k="v"))
        with pytest.raises(TypeError, match="mixes types"):
            render_openmetrics(reg)

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        reg.counter(labeled("odd", path='a"b\\c\nd')).inc()
        text = render_openmetrics(reg)
        assert '{path="a\\"b\\\\c\\nd"}' in text
        # The raw newline was escaped: the sample stays on one line.
        sample_lines = [l for l in text.splitlines()
                        if l.startswith("repro_odd_total")]
        assert len(sample_lines) == 1 and sample_lines[0].endswith(" 1")

    def test_labeled_counter_total_suffix(self):
        reg = MetricsRegistry()
        reg.counter(labeled("cache.hits", tier="mem")).inc(4)
        text = render_openmetrics(reg)
        assert 'repro_cache_hits_total{tier="mem"} 4' in text


class TestSanitize:
    def test_dots_and_dashes(self):
        assert (sanitize_metric_name("executor.queue-depth")
                == "repro_executor_queue_depth")

    def test_custom_namespace_sanitized_too(self):
        assert sanitize_metric_name("x", namespace="my.ns") == "my_ns_x"

    def test_leading_digit_guard(self):
        assert sanitize_metric_name("9lives", namespace="") == "_9lives"

    def test_content_type_is_openmetrics(self):
        assert "openmetrics-text" in CONTENT_TYPE


class TestSnapshotAndWrite:
    def test_snapshot_shape(self):
        snap = snapshot(_registry())
        assert set(snap) == {"time_unix", "metrics"}
        assert snap["metrics"]["executor.retries"]["value"] == 3
        assert snap["metrics"]["interval.sieve_evals"]["type"] == "histogram"

    def test_write_to_file_object_and_path(self, tmp_path):
        reg = _registry()
        buf = io.StringIO()
        write_openmetrics(buf, reg)
        path = str(tmp_path / "metrics.txt")
        write_openmetrics(path, reg)
        with open(path, encoding="utf-8") as fh:
            assert fh.read() == buf.getvalue() == render_openmetrics(reg)

    def test_help_text_override(self):
        text = render_openmetrics(
            _registry(), help_texts={"executor.retries": "task retries"}
        )
        assert "# HELP repro_executor_retries task retries" in text

    def test_empty_registry_is_just_eof(self):
        assert render_openmetrics(MetricsRegistry()) == "# EOF\n"
