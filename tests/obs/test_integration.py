"""End-to-end observability: traced runs vs. the cost counter's truth."""

import io
import json

from repro.core.rootfinder import RealRootFinder
from repro.costmodel.counter import CostCounter
from repro.obs.events import EventLog, validate_events
from repro.obs.rollup import level_wall_ns, phase_wall_ns, self_wall_ns
from repro.obs.trace import Tracer
from repro.poly.dense import IntPoly


def _traced_find_roots(roots, mu=24, **kwargs):
    counter = CostCounter()
    buf = io.StringIO()
    log = EventLog(buf)
    log.run_header("test", mu_bits=mu)
    tracer = Tracer(counter=counter, sink=log)
    finder = RealRootFinder(mu_bits=mu, counter=counter, tracer=tracer,
                            **kwargs)
    result = finder.find_roots(IntPoly.from_roots(roots))
    log.run_end(counter=counter, stats=result.stats)
    log.close()
    events = [json.loads(ln) for ln in buf.getvalue().splitlines()]
    return result, counter, tracer, events


class TestTracedRun:
    def test_every_span_closes_and_costs_match_counter(self):
        # The acceptance criterion: per-phase bit costs in the JSONL
        # exactly match CostCounter.phases totals.
        result, counter, tracer, events = _traced_find_roots([-7, -1, 0, 3, 12])
        validate_events(events)
        assert result.as_floats() == [-7.0, -1.0, 0.0, 3.0, 12.0]
        root = tracer.spans[0]
        assert root.name == "find_roots"
        got = {ph: st.total_bit_cost for ph, st in root.cost.items()}
        expect = {
            ph: st.total_bit_cost
            for ph, st in counter.stats.items() if st.total_bit_cost
        }
        assert got == expect
        assert set(counter.phases()) >= set(got)

    def test_interval_case_events_match_stats(self):
        result, _, _, events = _traced_find_roots([-7, -1, 0, 3, 12])
        cases = [e for e in events if e["ev"] == "interval_case"]
        st = result.stats
        assert len(cases) == st.case1 + st.case2a + st.case2b + st.case2c
        by_case = {}
        for e in cases:
            by_case[e["case"]] = by_case.get(e["case"], 0) + 1
        assert by_case.get("2c", 0) == st.case2c
        # 2c events report the per-solve phase step counts.
        for e in cases:
            if e["case"] == "2c":
                assert {"sieve_evals", "bisection_evals",
                        "newton_iters"} <= set(e)

    def test_hybrid_solve_events_one_per_2c(self):
        result, _, _, events = _traced_find_roots([-7, -1, 0, 3, 12])
        solves = [e for e in events if e["ev"] == "hybrid_solve"]
        assert len(solves) == result.stats.case2c == result.stats.solves

    def test_multiplicity_path_traces_factors(self):
        result, counter, tracer, events = _traced_find_roots([2, 2, 7])
        validate_events(events)
        assert result.multiplicities == [2, 1]
        names = [s.name for s in tracer.spans]
        assert "square_free_decomposition" in names
        assert "factor" in names

    def test_untraced_run_unchanged(self):
        # Null path: same answers, no spans anywhere.
        counter = CostCounter()
        finder = RealRootFinder(mu_bits=24, counter=counter)
        result = finder.find_roots(IntPoly.from_roots([-7, -1, 0, 3, 12]))
        traced = _traced_find_roots([-7, -1, 0, 3, 12])[0]
        assert result.scaled == traced.scaled


class TestRollups:
    def test_phase_walls_sum_to_root_wall(self):
        _, _, tracer, _ = _traced_find_roots([-7, -1, 0, 3, 12])
        walls = phase_wall_ns(tracer.spans)
        root = tracer.spans[0]
        assert sum(walls.values()) == root.wall_ns
        assert walls.get("remainder", 0) > 0
        assert walls.get("interval", 0) > 0

    def test_self_time_nonnegative_for_sequential_spans(self):
        _, _, tracer, _ = _traced_find_roots([-7, -1, 0, 3, 12])
        self_ns = self_wall_ns(tracer.spans)
        assert all(v >= 0 for v in self_ns.values())

    def test_level_rollup_uses_node_attrs(self):
        _, _, tracer, _ = _traced_find_roots([-9, -4, -1, 3, 8, 15, 22])
        levels = level_wall_ns(tracer.spans)
        assert levels, "per-node spans should carry level attrs"
        assert all(isinstance(k, int) for k in levels)
