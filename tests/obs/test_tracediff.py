"""Tests for phase/worker trace diffing and gate attribution."""

from repro.obs.perf import BenchArtifact, MetricDiff
from repro.obs.tracediff import (
    TraceDiff,
    attribute,
    diff_histograms,
    diff_parallel,
    diff_phases,
    diff_runs,
)


def _artifact(name, bit_costs, parallel=None) -> BenchArtifact:
    a = BenchArtifact(name=name)
    a.phases = {
        ph: {"bit_cost": c, "wall_ns": c * 10} for ph, c in bit_costs.items()
    }
    a.parallel = parallel or {}
    return a


class TestDiffPhases:
    def test_union_of_phases(self):
        deltas = diff_phases(
            {"tree": {"bit_cost": 100, "wall_ns": 10}},
            {"tree": {"bit_cost": 150, "wall_ns": 20},
             "sieve": {"bit_cost": 5, "wall_ns": 1}},
        )
        assert [d.name for d in deltas] == ["sieve", "tree"]
        tree = deltas[1]
        assert tree.bit_rel == 0.5
        assert tree.wall_rel == 1.0

    def test_one_sided_phase_has_none_and_counts_as_mover(self):
        (d,) = diff_phases({}, {"new": {"bit_cost": 40, "wall_ns": None}})
        assert d.bit_cost_a is None and d.bit_cost_b == 40
        assert d.bit_rel is None
        assert d.bit_abs == 40  # vanishing/appearing is a signal

    def test_zero_baseline_rel_is_inf(self):
        (d,) = diff_phases(
            {"p": {"bit_cost": 0}}, {"p": {"bit_cost": 3}}
        )
        assert d.bit_rel == float("inf")


class TestDiffHistograms:
    def test_intersection_only(self):
        a = {"x": {"count": 2, "total": 10, "mean": 5.0, "max": 8},
             "only_a": {"count": 1, "total": 1, "mean": 1.0, "max": 1}}
        b = {"x": {"count": 2, "total": 14, "mean": 7.0, "max": 12}}
        (d,) = diff_histograms(a, b)
        assert d.name == "x"
        assert d.total_rel == 0.4
        assert d.moved

    def test_unmoved_histogram(self):
        h = {"count": 2, "total": 10, "mean": 5.0, "max": 8}
        (d,) = diff_histograms({"x": h}, {"x": dict(h)})
        assert not d.moved


class TestDiffParallel:
    def test_empty_side_yields_nothing(self):
        assert diff_parallel({}, {"workers": 2}) == ({}, [])
        assert diff_parallel({"workers": 2}, {}) == ({}, [])

    def test_summary_and_lanes(self):
        a = {"workers": 2, "makespan_ns": 100, "efficiency": 0.9,
             "per_worker": {1: {"busy_ns": 80, "tasks": 3,
                                "idle_tail_ns": 5}}}
        # JSON round-trip stringifies lane keys; must still line up
        b = {"workers": 2, "makespan_ns": 120, "efficiency": 0.7,
             "per_worker": {"1": {"busy_ns": 60, "tasks": 2,
                                  "idle_tail_ns": 30},
                            "2": {"busy_ns": 10, "tasks": 1,
                                  "idle_tail_ns": 0}}}
        summary, lanes = diff_parallel(a, b)
        assert summary["makespan_ns"] == (100, 120)
        assert summary["efficiency"] == (0.9, 0.7)
        assert [l.lane for l in lanes] == [1, 2]
        assert lanes[0].busy_ns_a == 80 and lanes[0].busy_ns_b == 60
        assert lanes[0].busy_rel == -0.25
        assert lanes[1].busy_ns_a is None and lanes[1].tasks_b == 1


class TestTraceDiff:
    def _td(self) -> TraceDiff:
        a = _artifact("a", {"remainder": 1000, "tree": 200, "glue": 50})
        b = _artifact("b", {"remainder": 1400, "tree": 210, "glue": 50})
        return diff_runs(a, b)

    def test_phase_movers_biggest_first(self):
        movers = self._td().phase_movers()
        assert [d.name for d in movers] == ["remainder", "tree", "glue"]

    def test_dominant_phase_by_kind(self):
        td = self._td()
        assert td.dominant_phase("count").name == "remainder"
        assert td.dominant_phase("wall").name == "remainder"

    def test_dominant_phase_none_when_static(self):
        a = _artifact("a", {"tree": 100})
        td = diff_runs(a, _artifact("b", {"tree": 100}))
        assert td.dominant_phase("count") is None
        assert td.dominant_phase("wall") is None

    def test_to_dict_json_shape(self):
        d = self._td().to_dict()
        assert set(d) == {"phases", "histograms", "lanes", "parallel"}
        assert d["phases"][0]["name"] == "remainder"
        assert d["phases"][0]["bit_cost"] == [1000, 1400]

    def test_format_table_lists_all_phases(self):
        text = self._td().format_table()
        for ph in ("remainder", "tree", "glue"):
            assert ph in text
        assert "+40.0%" in text

    def test_diff_runs_tolerates_missing_parallel_attr(self):
        class Bare:
            phases = {"p": {"bit_cost": 1}}
            histograms: dict = {}

        td = diff_runs(Bare(), Bare())
        assert td.parallel == {} and td.lanes == []


class TestAttribute:
    def _diffs(self, failed=True):
        rtol = 0.05 if failed else None
        return [
            MetricDiff(name="bit_cost", kind="count",
                       baseline=1250, current=1660, rtol=rtol),
            MetricDiff(name="ok_metric", kind="count",
                       baseline=100, current=100, rtol=0.05),
        ]

    def test_failures_first_with_dominant_phase(self):
        a = _artifact("a", {"remainder": 1000, "tree": 250})
        b = _artifact("b", {"remainder": 1400, "tree": 260})
        text = attribute(self._diffs(), diff_runs(a, b))
        first, second = text.splitlines()[:2]
        assert first.startswith("attribution")
        assert "bit_cost" in second and "'remainder'" in second
        assert "+40.0%" in second
        assert "ok_metric" not in text  # passing rows omitted
        assert "phase" in text  # full table follows

    def test_no_failing_metrics(self):
        td = diff_runs(_artifact("a", {"p": 1}), _artifact("b", {"p": 1}))
        text = attribute(self._diffs(failed=False), td)
        assert text.splitlines()[0] == "attribution: no failing metrics"

    def test_no_phase_rollup_fallback(self):
        td = diff_runs(_artifact("a", {}), _artifact("b", {}))
        text = attribute(self._diffs(), td)
        assert "no phase rollup to attribute" in text
