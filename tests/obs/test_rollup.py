"""Tests for the worker-utilization / parallel-efficiency rollup."""

import pytest

from repro.obs.rollup import parallel_rollup, worker_busy_intervals
from repro.obs.trace import Span


def _span(sid, parent, start, end, track, name="t"):
    return Span(sid=sid, name=name, phase="", depth=0, parent=parent,
                start_ns=start, end_ns=end, track=track)


class TestWorkerBusyIntervals:
    def test_main_lane_ignored(self):
        assert worker_busy_intervals([_span(1, None, 0, 100, 0)]) == {}

    def test_task_roots_only(self):
        spans = [
            _span(1, None, 0, 1000, 0),
            _span(2, 1, 100, 400, 1),
            _span(3, 2, 150, 300, 1),  # nested on same track: not a root
        ]
        assert worker_busy_intervals(spans) == {1: [(100, 400)]}

    def test_overlapping_tasks_coalesce(self):
        spans = [
            _span(1, None, 0, 1000, 0),
            _span(2, 1, 100, 400, 1),
            _span(3, 1, 350, 600, 1),
            _span(4, 1, 700, 800, 1),
        ]
        assert worker_busy_intervals(spans) == {
            1: [(100, 600), (700, 800)]
        }

    def test_open_spans_dropped(self):
        spans = [_span(1, None, 0, 1000, 0),
                 Span(sid=2, name="t", phase="", depth=0, parent=1,
                      start_ns=100, end_ns=None, track=1)]
        assert worker_busy_intervals(spans) == {}


class TestParallelRollup:
    def test_empty_without_worker_lanes(self):
        assert parallel_rollup([_span(1, None, 0, 100, 0)]) == {}

    def test_two_worker_arithmetic(self):
        spans = [
            _span(1, None, 0, 1200, 0),
            _span(2, 1, 0, 600, 1),     # worker 1 busy 600
            _span(3, 1, 0, 1000, 2),    # worker 2 busy 1000
        ]
        r = parallel_rollup(spans)
        assert r["workers"] == 2
        assert r["makespan_ns"] == 1000
        assert r["work_ns"] == 1600
        assert r["speedup"] == pytest.approx(1.6)
        assert r["efficiency"] == pytest.approx(0.8)
        # worker 1 idles for the last 400 ns, worker 2 not at all
        assert r["per_worker"][1]["idle_tail_ns"] == 400
        assert r["per_worker"][2]["idle_tail_ns"] == 0
        assert r["idle_tail_fraction"] == pytest.approx(400 / 2000)
        assert r["per_worker"][1]["utilization"] == pytest.approx(0.6)

    def test_perfect_pipelining_is_efficiency_one(self):
        spans = [
            _span(1, None, 0, 500, 0),
            _span(2, 1, 0, 500, 1),
            _span(3, 1, 0, 500, 2),
        ]
        r = parallel_rollup(spans)
        assert r["efficiency"] == pytest.approx(1.0)
        assert r["idle_tail_fraction"] == pytest.approx(0.0)

    def test_real_executor_spans_roll_up(self):
        """End-to-end: adopt worker spans from a real traced pool run."""
        from repro.costmodel.counter import CostCounter
        from repro.obs.trace import Tracer
        from repro.poly.dense import IntPoly
        from repro.sched.executor import ParallelRootFinder

        tracer = Tracer(counter=CostCounter())
        finder = ParallelRootFinder(mu=20, processes=2, tracer=tracer)
        try:
            roots = finder.find_roots_scaled(IntPoly.from_roots([-5, -1, 2, 7]))
        finally:
            finder.close()
        assert len(roots) == 4
        r = parallel_rollup(tracer.spans)
        if finder.metrics.counter("executor.fallbacks").value:
            pytest.skip("pool degraded to sequential on this host")
        assert 1 <= r["workers"] <= 2
        assert 0 < r["efficiency"] <= 1.0
        assert 0 <= r["idle_tail_fraction"] < 1.0
        assert r["work_ns"] <= r["workers"] * r["makespan_ns"]


class TestRollupEdgeCases:
    def test_empty_span_list(self):
        assert worker_busy_intervals([]) == {}
        assert parallel_rollup([]) == {}

    def test_single_worker_single_task(self):
        spans = [_span(1, None, 0, 100, 0), _span(2, 1, 0, 100, 1)]
        r = parallel_rollup(spans)
        assert r["workers"] == 1
        assert r["makespan_ns"] == 100
        assert r["speedup"] == pytest.approx(1.0)
        assert r["efficiency"] == pytest.approx(1.0)
        assert r["per_worker"][1]["tasks"] == 1
        assert r["idle_tail_fraction"] == pytest.approx(0.0)

    def test_zero_length_task_span(self):
        spans = [_span(1, None, 0, 100, 0), _span(2, 1, 50, 50, 1)]
        r = parallel_rollup(spans)
        assert r["workers"] == 1
        assert r["work_ns"] == 0
        assert r["efficiency"] == pytest.approx(0.0)

    def test_histogram_percentile_extremes_single_sample(self):
        from repro.obs.metrics import Histogram

        h = Histogram("x")
        assert h.percentile(0.5) is None  # empty histogram
        h.observe(5)
        assert h.percentile(0.0) == 5
        assert h.percentile(1.0) == 5
        with pytest.raises(ValueError):
            h.percentile(1.5)
        with pytest.raises(ValueError):
            h.percentile(-0.1)
