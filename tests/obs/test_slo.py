"""SLO objectives: config parsing, the rolling window, and burn math."""

import json

import pytest

from repro.obs.slo import (
    DEFAULT_SLO,
    Objective,
    SLOConfig,
    evaluate_slo,
    timeline_samples,
)


def sample(t=100.0, ms=10.0, status="ok"):
    return {"time_unix": t, "total_ms": ms, "status": status}


class TestObjective:
    def test_percentile_kinds(self):
        assert Objective("lat", "p99_ms", 500.0).quantile == 0.99
        assert Objective("med", "p50_ms", 100.0).quantile == 0.5
        assert Objective("avail", "error_rate", 0.01).quantile is None

    @pytest.mark.parametrize("kind", ["p999_ms", "mean_ms", "p99", "ms"])
    def test_unknown_kind_rejected(self, kind):
        with pytest.raises(ValueError, match="unknown kind"):
            Objective("x", kind, 1.0)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            Objective("x", "p99_ms", -1.0)


class TestSLOConfig:
    def test_from_dict(self):
        cfg = SLOConfig.from_dict({
            "window_seconds": 60,
            "objectives": [
                {"name": "lat", "kind": "p95_ms", "threshold": 250},
                {"name": "avail", "kind": "error_rate", "threshold": 0.1},
            ],
        })
        assert cfg.window_seconds == 60.0
        assert [o.name for o in cfg.objectives] == ["lat", "avail"]
        assert cfg.objectives[0].threshold == 250.0

    def test_from_file(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({"objectives": [
            {"name": "lat", "kind": "p99_ms", "threshold": 500}]}))
        cfg = SLOConfig.from_file(str(path))
        assert cfg.window_seconds == 300.0
        assert cfg.objectives[0].kind == "p99_ms"

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError, match="window_seconds"):
            SLOConfig(window_seconds=0)

    def test_defaults_are_sane(self):
        kinds = {o.kind for o in DEFAULT_SLO.objectives}
        assert kinds == {"p99_ms", "error_rate"}


class TestEvaluate:
    def test_zero_samples_pass(self):
        report = evaluate_slo([], DEFAULT_SLO)
        assert report["ok"] is True and report["samples"] == 0
        assert all(o["observed"] is None and o["ok"]
                   for o in report["objectives"])

    def test_burn_math(self):
        cfg = SLOConfig(objectives=(
            Objective("lat", "p99_ms", 100.0),
            Objective("avail", "error_rate", 0.5),
        ))
        samples = [sample(ms=50.0), sample(ms=200.0, status="error")]
        report = evaluate_slo(samples, cfg)
        by_name = {o["name"]: o for o in report["objectives"]}
        # p99 over 2 samples is the max (nearest-rank).
        assert by_name["lat"]["observed"] == 200.0
        assert by_name["lat"]["burn"] == pytest.approx(2.0)
        assert by_name["lat"]["ok"] is False
        assert by_name["avail"]["observed"] == pytest.approx(0.5)
        assert by_name["avail"]["burn"] == pytest.approx(1.0)
        assert by_name["avail"]["ok"] is True       # at the budget line
        assert report["ok"] is False

    def test_overloaded_counts_as_error_partial_does_not(self):
        cfg = SLOConfig(objectives=(
            Objective("avail", "error_rate", 1.0),))
        report = evaluate_slo(
            [sample(status="overloaded"), sample(status="partial"),
             sample(status="ok"), sample(status="error")], cfg)
        avail = report["objectives"][0]
        assert avail["observed"] == pytest.approx(0.5)

    def test_window_excludes_old_samples(self):
        cfg = SLOConfig(objectives=(
            Objective("lat", "p50_ms", 100.0),), window_seconds=60.0)
        samples = [sample(t=0.0, ms=1000.0),       # stale — outside window
                   sample(t=100.0, ms=50.0)]
        report = evaluate_slo(samples, cfg, now=100.0)
        assert report["samples"] == 1
        assert report["objectives"][0]["observed"] == 50.0
        assert report["ok"] is True

    def test_now_defaults_to_newest_sample(self):
        """Replayed access logs evaluate in their own time frame."""
        cfg = SLOConfig(objectives=(
            Objective("lat", "p50_ms", 100.0),), window_seconds=60.0)
        samples = [sample(t=1000.0, ms=50.0), sample(t=1010.0, ms=60.0)]
        report = evaluate_slo(samples, cfg)
        assert report["samples"] == 2

    def test_zero_threshold(self):
        cfg = SLOConfig(objectives=(
            Objective("strict", "error_rate", 0.0),))
        ok = evaluate_slo([sample()], cfg)
        assert ok["ok"] is True and ok["objectives"][0]["burn"] == 0.0
        bad = evaluate_slo([sample(status="error")], cfg)
        assert bad["ok"] is False
        assert bad["objectives"][0]["burn"] == float("inf")

    def test_timeline_samples_from_objects_and_dicts(self):
        class TL:
            time_unix = 5.0
            total_ns = 2_000_000
            status = "ok"

        out = timeline_samples([
            TL(), {"time_unix": 7.0, "total_ns": 3_000_000,
                   "status": "error"}])
        assert out[0] == {"time_unix": 5.0, "total_ms": 2.0,
                          "status": "ok"}
        assert out[1]["total_ms"] == 3.0 and out[1]["status"] == "error"
