"""Tests for the JSONL event log and its validator."""

import io
import json

import pytest

from repro.costmodel.counter import CostCounter
from repro.core.sieve import IntervalStats
from repro.obs.events import EventLog, read_events, validate_events
from repro.obs.trace import Tracer


def _traced_run(counter: CostCounter, log: EventLog) -> None:
    tr = Tracer(counter=counter, sink=log)
    with tr.span("run"):
        with counter.phase("alpha"):
            counter.mul(1 << 8, 1 << 8)
        with tr.span("child", phase="alpha"):
            with counter.phase("alpha"):
                counter.mul(1 << 4, 1 << 4)
        tr.event("interval_case", node="[1,3]", gap=0, case="2c")


class TestEventLog:
    def test_every_line_is_json(self):
        buf = io.StringIO()
        counter = CostCounter()
        log = EventLog(buf)
        log.run_header("test", degree=3)
        _traced_run(counter, log)
        log.run_end(counter=counter, stats=IntervalStats())
        log.close()
        lines = [ln for ln in buf.getvalue().splitlines() if ln]
        events = [json.loads(ln) for ln in lines]
        assert events[0]["ev"] == "run"
        assert events[-1]["ev"] == "run_end"
        assert {"span_open", "span_close", "interval_case"} <= {
            e["ev"] for e in events
        }

    def test_validator_accepts_complete_run(self):
        buf = io.StringIO()
        counter = CostCounter()
        log = EventLog(buf)
        log.run_header("test")
        _traced_run(counter, log)
        log.run_end(counter=counter)
        validate_events([json.loads(ln) for ln in buf.getvalue().splitlines()])

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        counter = CostCounter()
        with EventLog(path) as log:
            log.run_header("test")
            _traced_run(counter, log)
            log.run_end(counter=counter)
        events = read_events(path)
        validate_events(events)
        closes = [e for e in events if e["ev"] == "span_close"]
        assert closes and all("phases" in e for e in closes)

    def test_run_end_carries_interval_stats(self):
        buf = io.StringIO()
        log = EventLog(buf)
        st = IntervalStats(case2c=3, solves=3, newton_iters=7)
        log.run_end(stats=st)
        ev = json.loads(buf.getvalue())
        assert ev["interval_stats"]["case2c"] == 3
        assert ev["interval_stats"]["newton_iters"] == 7


class TestValidator:
    def _base(self):
        return [{"ev": "run", "command": "t"}]

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            validate_events([])

    def test_rejects_missing_header(self):
        with pytest.raises(ValueError, match="header"):
            validate_events([{"ev": "span_open", "id": 0}])

    def test_rejects_unclosed_span(self):
        evs = self._base() + [
            {"ev": "span_open", "id": 0, "parent": None},
        ]
        with pytest.raises(ValueError, match="never closed"):
            validate_events(evs)

    def test_rejects_close_without_open(self):
        evs = self._base() + [{"ev": "span_close", "id": 5}]
        with pytest.raises(ValueError, match="never opened"):
            validate_events(evs)

    def test_rejects_double_close(self):
        evs = self._base() + [
            {"ev": "span_open", "id": 0, "parent": None},
            {"ev": "span_close", "id": 0, "phases": {}},
            {"ev": "span_close", "id": 0, "phases": {}},
        ]
        with pytest.raises(ValueError, match="closed twice"):
            validate_events(evs)

    def test_rejects_cost_mismatch(self):
        evs = self._base() + [
            {"ev": "span_open", "id": 0, "parent": None},
            {"ev": "span_close", "id": 0,
             "phases": {"p": [1, 10, 0, 0, 0, 0]}},
            {"ev": "run_end", "phases": {"p": [2, 20, 0, 0, 0, 0]}},
        ]
        with pytest.raises(ValueError, match="do not sum"):
            validate_events(evs)

    def test_accepts_matching_costs(self):
        evs = self._base() + [
            {"ev": "span_open", "id": 0, "parent": None},
            {"ev": "span_close", "id": 0,
             "phases": {"p": [1, 10, 0, 0, 0, 0]}},
            {"ev": "run_end", "phases": {"p": [1, 10, 0, 0, 0, 0]}},
        ]
        validate_events(evs)


class TestValidatorDiagnostics:
    """Error messages point at the offending line with its payload."""

    def _base(self):
        return [{"ev": "run", "command": "t"}]

    def test_read_events_names_file_line_and_payload(self, tmp_path):
        path = str(tmp_path / "broken.jsonl")
        junk = '{"ev": "span_open", "id": '
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"ev": "run", "command": "t"}\n')
            fh.write(junk + "\n")
        with pytest.raises(ValueError) as exc:
            read_events(path)
        msg = str(exc.value)
        assert f"{path}:2:" in msg
        assert "invalid JSON" in msg and junk.strip() in msg

    def test_read_events_truncates_long_payloads(self, tmp_path):
        path = str(tmp_path / "broken.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"pad": "' + "x" * 500 + "\n")
        with pytest.raises(ValueError) as exc:
            read_events(path)
        msg = str(exc.value)
        assert "..." in msg
        assert "x" * 500 not in msg  # payload was bounded

    def test_close_without_open_names_line(self):
        evs = self._base() + [{"ev": "span_close", "id": 5}]
        with pytest.raises(ValueError, match=r"line 2"):
            validate_events(evs)

    def test_open_twice_names_both_lines(self):
        evs = self._base() + [
            {"ev": "span_open", "id": 0, "parent": None},
            {"ev": "span_open", "id": 0, "parent": None},
        ]
        with pytest.raises(ValueError) as exc:
            validate_events(evs)
        msg = str(exc.value)
        assert "line 3" in msg and "line 2" in msg

    def test_unclosed_span_names_opening_line_and_payload(self):
        evs = self._base() + [
            {"ev": "span_open", "id": 7, "parent": None,
             "name": "tree.build"},
        ]
        with pytest.raises(ValueError) as exc:
            validate_events(evs)
        msg = str(exc.value)
        assert "opened at line 2" in msg and "tree.build" in msg

    def test_cost_mismatch_names_footer_line(self):
        evs = self._base() + [
            {"ev": "span_open", "id": 0, "parent": None},
            {"ev": "span_close", "id": 0,
             "phases": {"p": [1, 10, 0, 0, 0, 0]}},
            {"ev": "run_end", "phases": {"p": [2, 20, 0, 0, 0, 0]}},
        ]
        with pytest.raises(ValueError, match=r"footer at line 4"):
            validate_events(evs)
