"""Tests for the JSONL event log and its validator."""

import io
import json

import pytest

from repro.costmodel.counter import CostCounter
from repro.core.sieve import IntervalStats
from repro.obs.events import EventLog, read_events, validate_events
from repro.obs.trace import Tracer


def _traced_run(counter: CostCounter, log: EventLog) -> None:
    tr = Tracer(counter=counter, sink=log)
    with tr.span("run"):
        with counter.phase("alpha"):
            counter.mul(1 << 8, 1 << 8)
        with tr.span("child", phase="alpha"):
            with counter.phase("alpha"):
                counter.mul(1 << 4, 1 << 4)
        tr.event("interval_case", node="[1,3]", gap=0, case="2c")


class TestEventLog:
    def test_every_line_is_json(self):
        buf = io.StringIO()
        counter = CostCounter()
        log = EventLog(buf)
        log.run_header("test", degree=3)
        _traced_run(counter, log)
        log.run_end(counter=counter, stats=IntervalStats())
        log.close()
        lines = [ln for ln in buf.getvalue().splitlines() if ln]
        events = [json.loads(ln) for ln in lines]
        assert events[0]["ev"] == "run"
        assert events[-1]["ev"] == "run_end"
        assert {"span_open", "span_close", "interval_case"} <= {
            e["ev"] for e in events
        }

    def test_validator_accepts_complete_run(self):
        buf = io.StringIO()
        counter = CostCounter()
        log = EventLog(buf)
        log.run_header("test")
        _traced_run(counter, log)
        log.run_end(counter=counter)
        validate_events([json.loads(ln) for ln in buf.getvalue().splitlines()])

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        counter = CostCounter()
        with EventLog(path) as log:
            log.run_header("test")
            _traced_run(counter, log)
            log.run_end(counter=counter)
        events = read_events(path)
        validate_events(events)
        closes = [e for e in events if e["ev"] == "span_close"]
        assert closes and all("phases" in e for e in closes)

    def test_run_end_carries_interval_stats(self):
        buf = io.StringIO()
        log = EventLog(buf)
        st = IntervalStats(case2c=3, solves=3, newton_iters=7)
        log.run_end(stats=st)
        ev = json.loads(buf.getvalue())
        assert ev["interval_stats"]["case2c"] == 3
        assert ev["interval_stats"]["newton_iters"] == 7


class TestValidator:
    def _base(self):
        return [{"ev": "run", "command": "t"}]

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            validate_events([])

    def test_rejects_missing_header(self):
        with pytest.raises(ValueError, match="header"):
            validate_events([{"ev": "span_open", "id": 0}])

    def test_rejects_unclosed_span(self):
        evs = self._base() + [
            {"ev": "span_open", "id": 0, "parent": None},
        ]
        with pytest.raises(ValueError, match="never closed"):
            validate_events(evs)

    def test_rejects_close_without_open(self):
        evs = self._base() + [{"ev": "span_close", "id": 5}]
        with pytest.raises(ValueError, match="never opened"):
            validate_events(evs)

    def test_rejects_double_close(self):
        evs = self._base() + [
            {"ev": "span_open", "id": 0, "parent": None},
            {"ev": "span_close", "id": 0, "phases": {}},
            {"ev": "span_close", "id": 0, "phases": {}},
        ]
        with pytest.raises(ValueError, match="closed twice"):
            validate_events(evs)

    def test_rejects_cost_mismatch(self):
        evs = self._base() + [
            {"ev": "span_open", "id": 0, "parent": None},
            {"ev": "span_close", "id": 0,
             "phases": {"p": [1, 10, 0, 0, 0, 0]}},
            {"ev": "run_end", "phases": {"p": [2, 20, 0, 0, 0, 0]}},
        ]
        with pytest.raises(ValueError, match="do not sum"):
            validate_events(evs)

    def test_accepts_matching_costs(self):
        evs = self._base() + [
            {"ev": "span_open", "id": 0, "parent": None},
            {"ev": "span_close", "id": 0,
             "phases": {"p": [1, 10, 0, 0, 0, 0]}},
            {"ev": "run_end", "phases": {"p": [1, 10, 0, 0, 0, 0]}},
        ]
        validate_events(evs)
