"""Tests for the span tracer."""

import pickle

import pytest

from repro.costmodel.counter import CostCounter, PhaseStats
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer


class TestSpans:
    def test_nesting_and_depth(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            with tr.span("inner", phase="tree") as inner:
                pass
        assert outer.depth == 0 and outer.parent is None
        assert inner.depth == 1 and inner.parent == outer.sid
        assert inner.phase == "tree"
        assert outer.end_ns is not None and outer.wall_ns >= inner.wall_ns

    def test_attrs_recorded(self):
        tr = Tracer()
        with tr.span("node", i=1, j=4, level=2) as sp:
            pass
        assert sp.attrs == {"i": 1, "j": 4, "level": 2}

    def test_span_closes_on_exception(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("boom"):
                raise RuntimeError("x")
        assert tr.spans[0].end_ns is not None

    def test_current(self):
        tr = Tracer()
        assert tr.current is None
        with tr.span("a") as a:
            assert tr.current is a
        assert tr.current is None


class TestCostAttribution:
    def test_span_costs_are_deltas(self):
        counter = CostCounter()
        tr = Tracer(counter=counter)
        counter.mul(3, 5)  # before any span: not attributed
        with tr.span("outer") as outer:
            with counter.phase("alpha"):
                counter.mul(1 << 10, 1 << 10)
            with tr.span("inner") as inner:
                with counter.phase("beta"):
                    counter.mul(1 << 4, 1 << 4)
        assert set(outer.cost) == {"alpha", "beta"}
        assert outer.cost["alpha"].mul_count == 1
        assert outer.cost["alpha"].mul_bit_cost == 11 * 11
        assert set(inner.cost) == {"beta"}
        assert inner.cost["beta"].mul_bit_cost == 5 * 5

    def test_counter_snapshot_diff_roundtrip(self):
        counter = CostCounter()
        snap = counter.snapshot()
        with counter.phase("p"):
            counter.add(7, 9)
            counter.divmod(100, 7)
        delta = counter.diff(snap)
        assert delta["p"].add_count == 1
        assert delta["p"].div_count == 1
        assert counter.diff(counter.snapshot()) == {}

    def test_bit_cost_and_mul_count_properties(self):
        counter = CostCounter()
        tr = Tracer(counter=counter)
        with tr.span("s") as sp:
            counter.mul(1 << 7, 1 << 7)
        assert sp.mul_count == 1
        assert sp.bit_cost == 8 * 8


class TestExportAdopt:
    def _worker_spans(self):
        counter = CostCounter()
        tr = Tracer(counter=counter)
        with tr.span("gap", phase="interval", gap=2, pid=1234):
            with counter.phase("interval"):
                counter.mul(1 << 3, 1 << 3)
            with tr.span("sub"):
                pass
        return tr.export()

    def test_roundtrip_dict(self):
        exported = self._worker_spans()
        sp = Span.from_dict(exported[0])
        assert sp.name == "gap" and sp.attrs["gap"] == 2
        assert sp.cost["interval"].mul_count == 1

    def test_export_pickles(self):
        exported = self._worker_spans()
        assert pickle.loads(pickle.dumps(exported)) == exported

    def test_adopt_reparents_and_tracks(self):
        tr = Tracer()
        with tr.span("parent") as parent:
            tr.adopt(self._worker_spans())
        gap = next(s for s in tr.spans if s.name == "gap")
        sub = next(s for s in tr.spans if s.name == "sub")
        assert gap.parent == parent.sid
        assert gap.depth == parent.depth + 1
        assert sub.parent == gap.sid and sub.depth == gap.depth + 1
        assert gap.track > 0 and sub.track == gap.track
        assert gap.start_ns >= parent.start_ns

    def test_adopt_key_reuses_track(self):
        tr = Tracer()
        tr.adopt(self._worker_spans(), key="w1")
        tr.adopt(self._worker_spans(), key="w2")
        tr.adopt(self._worker_spans(), key="w1")
        tracks = [s.track for s in tr.spans if s.name == "gap"]
        assert tracks[0] == tracks[2] != tracks[1]

    def test_adopt_empty_is_noop(self):
        tr = Tracer()
        tr.adopt([])
        assert tr.spans == []


class TestNullTracer:
    def test_is_disabled_and_records_nothing(self):
        assert not NULL_TRACER.enabled
        with NULL_TRACER.span("x", phase="p", attr=1) as sp:
            assert sp is None
        NULL_TRACER.event("e", field=1)
        NULL_TRACER.adopt([{"sid": 0}])
        assert NULL_TRACER.spans == []

    def test_fresh_null_tracer(self):
        assert isinstance(NullTracer(), Tracer)
        assert not NullTracer().enabled


class TestPhaseStatsMerge:
    def test_merged_is_fieldwise_sum(self):
        a = PhaseStats(1, 10, 2, 20, 3, 30)
        b = PhaseStats(4, 40, 5, 50, 6, 60)
        m = a.merged(b)
        assert (m.mul_count, m.div_count, m.add_count) == (5, 7, 9)
        assert m.total_bit_cost == 210
