"""Tests for the benchmark-artifact schema and the regression gate."""

import io
import json

import pytest

from repro.obs.perf import (
    SCHEMA,
    BenchArtifact,
    compare_artifacts,
    env_fingerprint,
    format_diff_table,
    read_artifact,
    validate_artifact,
    write_artifact,
)


def _artifact(**metrics):
    art = BenchArtifact(name="t", params={"seed": 11})
    for k, v in metrics.items():
        art.add_metric(k, v)
    return art


class TestBenchArtifact:
    def test_round_trip_through_file(self, tmp_path):
        art = _artifact(bit_cost=123, solves=7)
        art.add_metric("wall_seconds", 0.25, kind="wall")
        art.histograms["h"] = {"count": 2, "buckets": {"1": 2}}
        art.phases["tree"] = {"bit_cost": 100, "wall_ns": 5000}
        path = tmp_path / "BENCH_t.json"
        write_artifact(str(path), art)
        back = read_artifact(str(path))
        assert back.to_dict() == art.to_dict()
        assert back.metric("bit_cost") == 123
        assert back.metrics["wall_seconds"]["kind"] == "wall"

    def test_round_trip_through_file_object(self):
        art = _artifact(x=1)
        buf = io.StringIO()
        write_artifact(buf, art)
        d = json.loads(buf.getvalue())
        assert d["schema"] == SCHEMA
        assert BenchArtifact.from_dict(d).metric("x") == 1

    def test_serialization_is_deterministic(self):
        a, b = io.StringIO(), io.StringIO()
        art1, art2 = _artifact(z=1, a=2), _artifact(a=2, z=1)
        art1.created_unix = art2.created_unix = 1.0
        write_artifact(a, art1)
        write_artifact(b, art2)
        assert a.getvalue() == b.getvalue()

    def test_env_fingerprint_stamped(self):
        fp = env_fingerprint()
        assert set(fp) == {
            "python", "implementation", "platform", "machine", "cpu_count"
        }
        assert _artifact().env == fp

    def test_add_metric_rejects_bad_kind(self):
        with pytest.raises(ValueError, match="kind"):
            _artifact().add_metric("x", 1, kind="speed")

    def test_metric_missing_raises(self):
        with pytest.raises(KeyError):
            _artifact(a=1).metric("b")


class TestValidate:
    def test_valid_artifact_passes(self):
        validate_artifact(_artifact(a=1).to_dict())

    @pytest.mark.parametrize("mutate", [
        lambda d: d.update(schema="other/9"),
        lambda d: d.pop("name"),
        lambda d: d.update(metrics={"a": 1}),
        lambda d: d.update(metrics={"a": {"kind": "speed", "value": 1}}),
        lambda d: d.update(metrics={"a": {"kind": "count"}}),
        lambda d: d.update(tolerances={"a": "big"}),
    ])
    def test_malformed_artifacts_rejected(self, mutate):
        d = _artifact(a=1).to_dict()
        mutate(d)
        with pytest.raises(ValueError):
            validate_artifact(d)

    def test_read_artifact_validates(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": SCHEMA}))
        with pytest.raises(ValueError):
            read_artifact(str(path))


class TestCompare:
    def test_identical_artifacts_pass(self):
        base = _artifact(bit_cost=100, solves=5)
        diffs = compare_artifacts(base, _artifact(bit_cost=100, solves=5))
        assert [d.status for d in diffs] == ["ok", "ok"]
        assert not any(d.failed for d in diffs)

    def test_count_drift_fails_at_zero_tolerance(self):
        base = _artifact(bit_cost=100)
        diffs = compare_artifacts(base, _artifact(bit_cost=101))
        assert diffs[0].status == "FAIL" and diffs[0].failed
        assert diffs[0].rel_delta == pytest.approx(0.01)

    def test_baseline_tolerance_overrides_default(self):
        base = _artifact(bit_cost=100)
        base.tolerances["bit_cost"] = 0.05
        diffs = compare_artifacts(base, _artifact(bit_cost=103))
        assert diffs[0].status == "ok"
        diffs = compare_artifacts(base, _artifact(bit_cost=110))
        assert diffs[0].status == "FAIL"

    def test_wall_metrics_are_informational(self):
        base = _artifact()
        base.add_metric("wall_seconds", 1.0, kind="wall")
        cur = _artifact()
        cur.add_metric("wall_seconds", 50.0, kind="wall")
        diffs = compare_artifacts(base, cur)
        assert diffs[0].status == "info" and not diffs[0].failed

    def test_metric_missing_from_current_fails(self):
        diffs = compare_artifacts(_artifact(gone=1), _artifact())
        assert diffs[0].status == "missing" and diffs[0].failed

    def test_new_metric_never_fails(self):
        diffs = compare_artifacts(_artifact(), _artifact(fresh=9))
        assert diffs[0].status == "new" and not diffs[0].failed

    def test_format_diff_table_lists_failures_first(self):
        base = _artifact(aaa=1, zzz=2)
        cur = _artifact(aaa=1, zzz=3)
        text = format_diff_table(compare_artifacts(base, cur))
        rows = [l for l in text.splitlines()
                if l.startswith(("aaa", "zzz"))]
        assert "zzz" in rows[0] and "FAIL" in rows[0]
        assert "1 failed" in text.splitlines()[-1]
