"""Public-API quality gate.

Every name exported via ``__all__`` in every subpackage must resolve
and carry a docstring — keeping deliverable (a)'s "clean, documented
public API" true by construction.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.poly",
    "repro.mpint",
    "repro.costmodel",
    "repro.sched",
    "repro.analysis",
    "repro.obs",
    "repro.charpoly",
    "repro.baselines",
    "repro.bench",
    "repro.verify",
    "repro.serve",
]

MODULES = [
    "repro.core.remainder",
    "repro.core.tree",
    "repro.core.interval",
    "repro.core.sieve",
    "repro.core.rootfinder",
    "repro.core.tasks",
    "repro.core.certify",
    "repro.core.scaling",
    "repro.core.refine",
    "repro.core.isolate",
    "repro.core.prefix",
    "repro.poly.dense",
    "repro.poly.matrix",
    "repro.poly.eval",
    "repro.poly.sturm",
    "repro.poly.gcd",
    "repro.poly.roots_bounds",
    "repro.poly.convert",
    "repro.mpint.mpint",
    "repro.costmodel.counter",
    "repro.costmodel.backend",
    "repro.sched.task",
    "repro.sched.graph",
    "repro.sched.simulator",
    "repro.sched.metrics",
    "repro.sched.executor",
    "repro.sched.render",
    "repro.sched.reference",
    "repro.obs.trace",
    "repro.obs.events",
    "repro.obs.chrometrace",
    "repro.obs.metrics",
    "repro.obs.rollup",
    "repro.obs.perf",
    "repro.obs.ledger",
    "repro.obs.tracediff",
    "repro.obs.profile",
    "repro.obs.export",
    "repro.analysis.bounds",
    "repro.analysis.predict",
    "repro.analysis.sizes",
    "repro.analysis.fit",
    "repro.charpoly.berkowitz",
    "repro.charpoly.generator",
    "repro.baselines.sturm_bisect",
    "repro.baselines.aberth",
    "repro.baselines.numpy_eig",
    "repro.bench.workloads",
    "repro.bench.runner",
    "repro.bench.report",
    "repro.verify.generators",
    "repro.verify.fuzz",
    "repro.verify.shrink",
    "repro.verify.faults",
    "repro.serve.protocol",
    "repro.serve.cache",
    "repro.serve.server",
    "repro.serve.stdio",
    "repro.serve.http",
    "repro.serve.loadtest",
    "repro.serve.reqtrace",
    "repro.obs.slo",
    "repro.cli",
]


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_module_importable_and_documented(name):
    mod = importlib.import_module(name)
    assert mod.__doc__, f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_all_exports_resolve(name):
    mod = importlib.import_module(name)
    for export in getattr(mod, "__all__", []):
        assert hasattr(mod, export), f"{name}.__all__ lists missing {export}"


@pytest.mark.parametrize("name", MODULES)
def test_public_callables_documented(name):
    mod = importlib.import_module(name)
    for export in getattr(mod, "__all__", []):
        obj = getattr(mod, export)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            assert obj.__doc__, f"{name}.{export} lacks a docstring"


def test_top_level_version():
    import repro

    assert repro.__version__
