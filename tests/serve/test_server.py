"""RootServer: admission, priorities, cache determinism, budgets, drain.

Most tests inject a fake finder so scheduling behavior is deterministic
and pool-free; one slow test drives the real multiprocessing pool
end-to-end and checks for orphaned workers after ``aclose``.
"""

import asyncio
import threading

import pytest

from repro.costmodel.counter import NULL_COUNTER, CostCounter
from repro.resilience.budget import Budget, BudgetExceeded, PartialResult
from repro.serve.server import RootServer


class FakeFinder:
    """Duck-typed stand-in for ParallelRootFinder.

    Records every solve (coeffs, mu, strategy, budget); an optional
    ``gate`` event blocks solves on the lane thread until released, so
    tests can pin the dispatcher mid-solve and observe queueing.
    """

    def __init__(self, mu=16, strategy="hybrid"):
        self.mu = mu
        self.strategy = strategy
        self.budget = None
        self.counter = NULL_COUNTER
        self.sample_hook = None
        self.calls = []
        self.closed = False
        self.gate = None
        self.fail = None

    def find_roots_scaled(self, p):
        self.calls.append((tuple(p.coeffs), self.mu, self.strategy,
                           self.budget))
        if self.gate is not None and not self.gate.wait(timeout=30):
            raise RuntimeError("test gate never opened")
        if self.fail is not None:
            raise self.fail
        # Mimic the real finder's dispatch span (request_tag stamping
        # included) when the server has equipped us with a tracer.
        tracer = getattr(self, "tracer", None)
        if tracer is not None and getattr(tracer, "enabled", False):
            tag = ({"request_id": self.request_tag}
                   if getattr(self, "request_tag", None) is not None else {})
            with tracer.span("executor.dispatch", degree=len(p.coeffs) - 1,
                             **tag):
                pass
        return [sum(abs(c) for c in p.coeffs) << 4]

    def close(self, join_timeout=5.0):
        self.closed = True


def run(coro):
    return asyncio.run(coro)


async def make_server(**kw):
    kw.setdefault("finder", FakeFinder())
    kw.setdefault("cache_dir", "")
    server = RootServer(mu=16, **kw)
    await server.start()
    return server


async def wait_for(predicate, timeout=10.0):
    for _ in range(int(timeout / 0.005)):
        if predicate():
            return
        await asyncio.sleep(0.005)
    raise AssertionError("condition never became true")


class TestRequestPath:
    def test_ok_and_cached(self):
        async def go():
            server = await make_server()
            r1 = await server.submit({"id": 1, "coeffs": [-6, 1, 1]})
            r2 = await server.submit({"id": 2, "coeffs": [-6, 1, 1]})
            r3 = await server.submit({"id": 3, "coeffs": [-6, 1, 1],
                                      "bits": 20})
            await server.aclose()
            return server, r1, r2, r3

        server, r1, r2, r3 = run(go())
        assert r1["status"] == "ok" and r1["cached"] is False
        assert r2["status"] == "ok" and r2["cached"] is True
        assert r2["scaled"] == r1["scaled"]
        # Different mu is a different cache key.
        assert r3["cached"] is False
        assert len(server.finder.calls) == 2
        assert server.metrics.counter("cache.hits").value == 1
        assert server.metrics.counter("server.ok").value == 3

    def test_bad_request_never_reaches_finder(self):
        async def go():
            server = await make_server()
            resp = await server.submit({"id": "bad", "coeffs": [0]})
            await server.aclose()
            return server, resp

        server, resp = run(go())
        assert (resp["status"], resp["code"]) == ("error", 400)
        assert resp["id"] == "bad"
        assert server.finder.calls == []
        assert server.metrics.counter("server.bad_requests").value == 1

    def test_solver_exception_is_a_500(self):
        async def go():
            server = await make_server()
            server.finder.fail = ValueError("boom")
            resp = await server.submit({"id": 9, "coeffs": [-2, 0, 1]})
            # Errors are not cached: a retry after the fault clears
            # computes for real.
            server.finder.fail = None
            retry = await server.submit({"id": 10, "coeffs": [-2, 0, 1]})
            await server.aclose()
            return server, resp, retry

        server, resp, retry = run(go())
        assert (resp["status"], resp["code"]) == ("error", 500)
        assert "ValueError: boom" in resp["error"]
        assert retry["status"] == "ok" and retry["cached"] is False
        assert server.metrics.counter("server.errors").value == 1

    def test_concurrent_duplicates_hit_deterministically(self):
        """cache.hits == total - unique for concurrently submitted
        traffic — the property the loadtest gate pins."""
        polys = [[-6, 1, 1], [-2, 0, 1], [-6, 1, 1], [-12, 1, 1],
                 [-2, 0, 1], [-6, 1, 1], [-2, 0, 1], [-12, 1, 1]]

        async def go():
            server = await make_server()
            resps = await asyncio.gather(*(
                server.submit({"id": i, "coeffs": c})
                for i, c in enumerate(polys)))
            await server.aclose()
            return server, resps

        server, resps = run(go())
        unique = len({tuple(c) for c in polys})
        assert all(r["status"] == "ok" for r in resps)
        assert sum(r["cached"] for r in resps) == len(polys) - unique
        assert len(server.finder.calls) == unique
        # Duplicates answer byte-identically.
        by_poly = {}
        for c, r in zip(polys, resps):
            by_poly.setdefault(tuple(c), set()).add(tuple(r["scaled"]))
        assert all(len(v) == 1 for v in by_poly.values())


class TestBudgets:
    def test_per_request_budget_plumbed_and_cleared(self):
        async def go():
            server = await make_server()
            await server.submit({"id": 1, "coeffs": [-2, 0, 1],
                                 "deadline_seconds": 5, "bit_budget": 10**9})
            await server.submit({"id": 2, "coeffs": [-3, 0, 1]})
            await server.aclose()
            return server

        server = run(go())
        b1 = server.finder.calls[0][3]
        assert isinstance(b1, Budget)
        assert b1.deadline_seconds == 5 and b1.max_bit_ops == 10**9
        # A budget-free request runs unbudgeted; nothing leaks across.
        assert server.finder.calls[1][3] is None
        assert server.finder.budget is None
        # The bit ceiling forced a real counter onto the fake finder.
        assert isinstance(server.finder.counter, CostCounter)

    def test_max_deadline_assigned_to_every_request(self):
        async def go():
            server = await make_server(max_deadline_seconds=2.0)
            await server.submit({"id": 1, "coeffs": [-2, 0, 1]})
            await server.aclose()
            return server

        server = run(go())
        assert server.finder.calls[0][3].deadline_seconds == 2.0

    def test_budget_trip_is_a_partial_and_not_cached(self):
        partial = PartialResult(mu=16, scaled=[3], degree=2,
                                phase="solve", reason="deadline",
                                elapsed_seconds=0.0, bit_cost=7)

        async def go():
            server = await make_server()
            server.finder.fail = BudgetExceeded("deadline", partial)
            resp = await server.submit({"id": 1, "coeffs": [-2, 0, 1],
                                        "deadline_seconds": 0})
            server.finder.fail = None
            retry = await server.submit({"id": 2, "coeffs": [-2, 0, 1]})
            await server.aclose()
            return server, resp, retry

        server, resp, retry = run(go())
        assert (resp["status"], resp["code"]) == ("partial", 206)
        assert resp["exit_code"] == 3
        assert resp["reason"] == "deadline" and resp["phase"] == "solve"
        assert resp["scaled"] == ["3"]
        # Partials are a property of one request's budget, never cached.
        assert retry["status"] == "ok" and retry["cached"] is False
        assert server.metrics.counter("server.partial").value == 1

    def test_mu_and_strategy_plumbed(self):
        async def go():
            server = await make_server()
            await server.submit({"id": 1, "coeffs": [-2, 0, 1],
                                 "bits": 24, "strategy": "newton"})
            await server.aclose()
            return server

        server = run(go())
        assert server.finder.calls[0][1:3] == (24, "newton")


class TestAdmission:
    def test_backpressure_sheds_with_429(self):
        async def go():
            server = await make_server(max_pending=2)
            server.finder.gate = threading.Event()
            t1 = asyncio.ensure_future(
                server.submit({"id": 1, "coeffs": [-2, 0, 1]}))
            await wait_for(lambda: len(server.finder.calls) == 1)
            t2 = asyncio.ensure_future(
                server.submit({"id": 2, "coeffs": [-3, 0, 1]}))
            await wait_for(lambda: server.queue_depth() >= 2)
            shed = await server.submit({"id": 3, "coeffs": [-5, 0, 1]})
            server.finder.gate.set()
            r1, r2 = await asyncio.gather(t1, t2)
            await server.aclose()
            return server, shed, r1, r2

        server, shed, r1, r2 = run(go())
        assert (shed["status"], shed["code"]) == ("overloaded", 429)
        assert shed["limit"] == 2 and shed["queue_depth"] >= 2
        assert shed["retry_after_seconds"] > 0
        # The admitted requests still completed.
        assert r1["status"] == "ok" and r2["status"] == "ok"
        assert server.metrics.counter("server.rejected").value == 1
        assert server.finder.calls[-1][0] != (-5, 0, 1)

    def test_priority_orders_the_queue(self):
        async def go():
            server = await make_server(max_pending=100)
            server.finder.gate = threading.Event()
            ta = asyncio.ensure_future(
                server.submit({"id": "a", "coeffs": [-2, 0, 1]}))
            await wait_for(lambda: len(server.finder.calls) == 1)
            # Queued while the lane is pinned: low before high.
            tb = asyncio.ensure_future(
                server.submit({"id": "b", "coeffs": [-3, 0, 1],
                               "priority": 0}))
            tc = asyncio.ensure_future(
                server.submit({"id": "c", "coeffs": [-5, 0, 1],
                               "priority": 10}))
            td = asyncio.ensure_future(
                server.submit({"id": "d", "coeffs": [-7, 0, 1],
                               "priority": 10}))
            await asyncio.sleep(0)      # both put_nowait before release
            server.finder.gate.set()
            await asyncio.gather(ta, tb, tc, td)
            await server.aclose()
            return server

        server = run(go())
        order = [c[0] for c in server.finder.calls]
        # High priority jumps the line; FIFO within a priority level.
        assert order == [(-2, 0, 1), (-5, 0, 1), (-7, 0, 1), (-3, 0, 1)]

    def test_executor_backlog_feeds_queue_depth(self):
        async def go():
            server = await make_server()
            assert server.finder.sample_hook is not None
            server.finder.sample_hook(depth=7, in_flight=2)
            depth = server.queue_depth()
            server.finder.sample_hook(depth=0, in_flight=0)
            await server.aclose()
            return depth, server.queue_depth()

        busy, idle = run(go())
        assert busy == 7 and idle == 0


class TestLifecycle:
    def test_draining_rejects_with_503(self):
        async def go():
            server = await make_server()
            await server.aclose()
            resp = await server.submit({"id": 1, "coeffs": [-2, 0, 1]})
            await server.aclose()       # idempotent
            return server, resp

        server, resp = run(go())
        assert (resp["status"], resp["code"]) == ("error", 503)
        assert "draining" in resp["error"]
        assert server.finder.closed is True

    def test_closed_server_cannot_restart(self):
        async def go():
            server = await make_server()
            await server.aclose()
            with pytest.raises(RuntimeError, match="closed"):
                await server.start()

        run(go())

    def test_aclose_waits_for_inflight(self):
        async def go():
            server = await make_server()
            server.finder.gate = threading.Event()
            t = asyncio.ensure_future(
                server.submit({"id": 1, "coeffs": [-2, 0, 1]}))
            await wait_for(lambda: len(server.finder.calls) == 1)
            closer = asyncio.ensure_future(server.aclose())
            await asyncio.sleep(0.02)
            assert not t.done()         # close is draining, not dropping
            server.finder.gate.set()
            await closer
            return await t

        resp = run(go())
        assert resp["status"] == "ok"


class TestRequestTracing:
    def test_every_response_carries_a_request_id(self):
        async def go():
            server = await make_server()
            ok = await server.submit({"id": 1, "coeffs": [-6, 1, 1]})
            bad = await server.submit({"id": 2, "coeffs": [0]})
            await server.aclose()
            drained = await server.submit({"id": 3, "coeffs": [-2, 0, 1]})
            return ok, bad, drained

        ok, bad, drained = run(go())
        rids = [r["request_id"] for r in (ok, bad, drained)]
        assert all(isinstance(r, str) and r for r in rids)
        assert len(set(rids)) == 3

    def test_timeline_stages_reconcile_with_total(self):
        """Stage sums stay within the end-to-end window — the untimed
        seams (thread handoff, loop scheduling) only *lose* time."""
        async def go():
            server = await make_server()
            resp = await server.submit({"id": 1, "coeffs": [-6, 1, 1]})
            await server.aclose()
            return server, resp

        server, resp = run(go())
        (tl,) = server.tracker.ring.snapshot()
        assert tl.request_id == resp["request_id"]
        assert tl.status == "ok" and tl.code == 200
        names = [s.name for s in tl.stages]
        assert names == ["validate", "admission", "queue_wait",
                         "cache_lookup", "budget_setup", "solve"]
        assert 0 < tl.stage_sum_ns <= tl.total_ns
        assert tl.degree == 2

    def test_cached_request_skips_solve_stage(self):
        async def go():
            server = await make_server()
            await server.submit({"id": 1, "coeffs": [-6, 1, 1]})
            await server.submit({"id": 2, "coeffs": [-6, 1, 1]})
            await server.aclose()
            return server

        server = run(go())
        tl = server.tracker.ring.snapshot()[-1]
        assert tl.cached is True
        assert tl.stage_ns("solve") == 0
        assert tl.stage_ns("cache_lookup") > 0

    def test_labeled_latency_histograms_populated(self):
        async def go():
            server = await make_server()
            await server.submit({"id": 1, "coeffs": [-6, 1, 1],
                                 "priority": 2})
            await server.aclose()
            return server

        server = run(go())
        name = ('server.latency_us'
                '{degree_bucket="1-2",priority="2"}')
        assert server.metrics.histogram(name).count == 1
        assert server.metrics.histogram("server.queue_wait_us").count == 1

    def test_reject_records_a_timeline(self):
        async def go():
            server = await make_server()
            resp = server.reject("cli-7", "not valid JSON: boom")
            await server.aclose()
            return server, resp

        server, resp = run(go())
        assert (resp["status"], resp["code"]) == ("error", 400)
        assert resp["id"] == "cli-7" and resp["request_id"]
        (tl,) = server.tracker.ring.snapshot()
        assert tl.client_id == "cli-7" and tl.status == "error"
        assert server.metrics.counter("server.bad_requests").value == 1

    def test_trace_solves_attaches_executor_spans(self, tmp_path):
        async def go():
            server = await make_server(
                capture_dir=str(tmp_path / "caps"),
                slow_threshold_ms=0.0)     # everything is "slow"
            await server.submit({"id": 1, "coeffs": [-6, 1, 1]})
            await server.aclose()
            return server

        server = run(go())
        (tl,) = server.tracker.ring.snapshot()
        # The injected FakeFinder has no tracer of its own, so the
        # server equips it and the dispatch span carries the request id.
        names = {d["name"] for d in tl.solve_spans}
        assert "executor.dispatch" in names
        disp = next(d for d in tl.solve_spans
                    if d["name"] == "executor.dispatch")
        assert disp["attrs"]["request_id"] == tl.request_id
        import os
        assert os.listdir(tmp_path / "caps")


class TestHealthAndSlo:
    def test_ready_when_accepting(self):
        async def go():
            server = await make_server()
            code, body = server.health()
            await server.aclose()
            return code, body

        code, body = run(go())
        assert code == 200 and body["status"] == "ready"
        assert body["accepting"] is True
        assert body["headroom"] == body["limit"] - body["queue_depth"]

    def test_unready_after_close(self):
        async def go():
            server = await make_server()
            await server.aclose()
            return server.health()

        code, body = run(go())
        assert code == 503 and body["status"] == "unready"
        assert body["accepting"] is False

    def test_unready_when_breaker_open(self):
        class Breaker:
            state = "open"

        async def go():
            server = await make_server()
            server.finder.breaker = Breaker()
            result = server.health()
            await server.aclose()
            return result

        code, body = run(go())
        assert code == 503 and body["breaker"] == "open"

    def test_worker_liveness_reported(self):
        import os as _os

        async def go():
            server = await make_server()
            # One live pid (ours) and one that cannot exist.
            server.finder.worker_pids = lambda: [_os.getpid(), 2**22 + 17]
            result = server.health()
            await server.aclose()
            return result

        code, body = run(go())
        assert code == 200
        assert body["workers"]["pids"][0] == _os.getpid()
        assert body["workers"]["alive"] == 1

    def test_slo_report_over_live_traffic(self):
        async def go():
            server = await make_server()
            for i in range(4):
                await server.submit({"id": i, "coeffs": [-6 - i, 1, 1]})
            report = server.slo_report()
            await server.aclose()
            return report

        report = run(go())
        assert report["ok"] is True and report["samples"] == 4
        assert report["ring_size"] == 4
        names = {o["name"] for o in report["objectives"]}
        assert names == {"latency_p99", "availability"}


@pytest.mark.slow
class TestRealPool:
    def test_end_to_end_with_real_finder(self):
        """Concurrent clients against the real pool: exact answers,
        deterministic cache hits, a budget partial, and a worker-clean
        shutdown."""
        from repro.core.rootfinder import RealRootFinder
        from repro.poly.dense import IntPoly

        polys = [[-6, 1, 1], [-2, 0, 1], [6, -5, 1],
                 [-6, 1, 1], [-2, 0, 1], [-6, 1, 1]]
        expected = {
            tuple(c): [str(s) for s in RealRootFinder(mu_bits=16)
                       .find_roots(IntPoly(c)).scaled]
            for c in map(tuple, polys)
        }

        async def go():
            server = RootServer(mu=16, processes=2, cache_dir="")
            await server.start()
            resps = await asyncio.gather(*(
                server.submit({"id": i, "coeffs": c})
                for i, c in enumerate(polys)))
            # Fair budgets: a zero-deadline request trips immediately
            # (the Budget zero-deadline fix) without poisoning others.
            part = await server.submit({"id": "z", "coeffs": [-10, 0, 1],
                                        "deadline_seconds": 0})
            after = await server.submit({"id": "w", "coeffs": [-6, 1, 1]})
            pids = server.finder.worker_pids()
            await server.aclose()
            return server, resps, part, after, pids

        server, resps, part, after, pids = run(go())
        assert all(r["status"] == "ok" for r in resps)
        for c, r in zip(polys, resps):
            assert r["scaled"] == expected[tuple(c)], c
        unique = len({tuple(c) for c in polys})
        assert sum(r["cached"] for r in resps) == len(polys) - unique
        # +1: the post-partial "after" request below also hit.
        assert server.metrics.counter("cache.hits").value == \
            len(polys) - unique + 1
        assert part["status"] == "partial" and part["exit_code"] == 3
        assert after["status"] == "ok" and after["cached"] is True
        # The pool was alive during the run and fully joined after.
        assert pids
        assert server.finder.worker_pids() == []
