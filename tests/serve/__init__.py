"""Tests for the root-finding daemon (``repro.serve``)."""
