"""ResultCache: byte-bounded LRU semantics and the disk tier."""

import json
import os

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve.cache import ResultCache


def counters(cache):
    m = cache.metrics
    return {n: m.counter(n).value
            for n in ("cache.hits", "cache.misses", "cache.evictions",
                      "cache.disk_hits")}


class TestMemoryTier:
    def test_miss_then_hit(self):
        c = ResultCache(disk_dir="")
        assert c.get("k1") is None
        c.put("k1", [3, -7])
        assert c.get("k1") == [3, -7]
        assert counters(c) == {"cache.hits": 1, "cache.misses": 1,
                               "cache.evictions": 0, "cache.disk_hits": 0}

    def test_returned_list_is_a_copy(self):
        c = ResultCache(disk_dir="")
        c.put("k", [1, 2])
        got = c.get("k")
        got.append(99)
        assert c.get("k") == [1, 2]

    def test_byte_accounting(self):
        c = ResultCache(disk_dir="")
        c.put("ab", [10])       # 2 + len('["10"]') = 8
        assert c.bytes_used == 2 + len(json.dumps(["10"],
                                                  separators=(",", ":")))
        assert len(c) == 1
        c.put("ab", [10, 11])   # refresh replaces the old charge
        assert len(c) == 1
        assert c.bytes_used == 2 + len(
            json.dumps(["10", "11"], separators=(",", ":")))

    def test_lru_eviction_order(self):
        # Each entry charges 8 bytes (2-char key + '["10"]'); budget
        # holds exactly two.
        c = ResultCache(max_bytes=16, disk_dir="")
        c.put("k1", [10])
        c.put("k2", [20])
        assert c.get("k1") == [10]          # k1 is now most recent
        c.put("k3", [30])                   # evicts k2, the LRU
        assert c.get("k2") is None
        assert c.get("k1") == [10]
        assert c.get("k3") == [30]
        assert counters(c)["cache.evictions"] == 1
        assert c.metrics.gauge("cache.entries").value == 2
        assert c.metrics.gauge("cache.bytes").value == c.bytes_used

    def test_oversize_entry_never_admitted(self):
        c = ResultCache(max_bytes=10, disk_dir="")
        c.put("k", [1])                     # 1 + len('["1"]') = 6: fits
        c.put("kb", [10 ** 40])             # payload alone exceeds budget
        assert c.get("kb") is None
        assert c.get("k") == [1]            # the small entry survived
        assert c.bytes_used <= c.max_bytes
        assert counters(c)["cache.evictions"] == 0

    def test_zero_budget_caches_nothing(self):
        c = ResultCache(max_bytes=0, disk_dir="")
        c.put("k", [1])
        assert len(c) == 0
        assert c.get("k") is None

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(max_bytes=-1)


class TestDiskTier:
    def test_write_through_and_reload(self, tmp_path):
        d = str(tmp_path / "cache")
        c1 = ResultCache(disk_dir=d)
        c1.put("deadbeef", [5, -9])
        # A fresh cache (daemon restart) finds the entry on disk.
        c2 = ResultCache(disk_dir=d)
        assert c2.get("deadbeef") == [5, -9]
        got = counters(c2)
        assert got["cache.hits"] == 1 and got["cache.disk_hits"] == 1
        # ... and promoted it into memory: next hit is memory-tier.
        assert c2.get("deadbeef") == [5, -9]
        assert counters(c2)["cache.disk_hits"] == 1

    def test_sharded_layout(self, tmp_path):
        d = str(tmp_path)
        ResultCache(disk_dir=d).put("deadbeef", [1])
        assert os.path.exists(os.path.join(d, "de", "deadbeef.json"))

    def test_corrupt_file_is_a_miss(self, tmp_path):
        d = str(tmp_path)
        c = ResultCache(disk_dir=d)
        c.put("deadbeef", [1])
        path = os.path.join(d, "de", "deadbeef.json")
        with open(path, "w") as fh:
            fh.write('{"schema": "repro.serve-cache/1", "scaled": [truncat')
        fresh = ResultCache(disk_dir=d)
        assert fresh.get("deadbeef") is None

    def test_wrong_schema_is_a_miss(self, tmp_path):
        d = str(tmp_path)
        path = os.path.join(d, "de", "deadbeef.json")
        os.makedirs(os.path.dirname(path))
        with open(path, "w") as fh:
            json.dump({"schema": "other/9", "scaled": ["1"]}, fh)
        assert ResultCache(disk_dir=d).get("deadbeef") is None

    def test_unwritable_dir_does_not_fail_put(self, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file where the cache dir should be")
        c = ResultCache(disk_dir=str(blocked))
        c.put("deadbeef", [4])              # must not raise
        assert c.get("deadbeef") == [4]     # memory tier still serves

    def test_env_var_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        c = ResultCache()
        assert c.disk_dir == str(tmp_path)
        c.put("deadbeef", [7])
        assert os.path.exists(tmp_path / "de" / "deadbeef.json")

    def test_empty_env_disables_tier(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "")
        assert ResultCache().disk_dir is None

    def test_shared_registry(self, tmp_path):
        reg = MetricsRegistry()
        c = ResultCache(disk_dir="", metrics=reg)
        c.get("nope")
        assert reg.counter("cache.misses").value == 1


class TestIntegrity:
    """Per-entry checksums, quarantine-on-corruption, and the fsck
    sweep (the /readyz recovery tally)."""

    def entry_path(self, d, key="deadbeef"):
        return os.path.join(d, key[:2], key + ".json")

    def test_corrupt_file_quarantined_once(self, tmp_path):
        d = str(tmp_path)
        ResultCache(disk_dir=d).put("deadbeef", [1])
        path = self.entry_path(d)
        with open(path, "w") as fh:
            fh.write('{"schema": "repro.serve-cache/2", "scaled": [tru')
        fresh = ResultCache(disk_dir=d)
        assert fresh.get("deadbeef") is None
        # Renamed aside and counted — never re-parsed on later lookups.
        assert not os.path.exists(path)
        assert os.path.exists(path + ".corrupt")
        assert fresh.metrics.counter("cache.disk_corrupt").value == 1
        fresh.get("deadbeef")
        assert fresh.metrics.counter("cache.disk_corrupt").value == 1

    def test_tampered_payload_caught_by_checksum(self, tmp_path):
        d = str(tmp_path)
        ResultCache(disk_dir=d).put("deadbeef", [41])
        path = self.entry_path(d)
        with open(path) as fh:
            data = json.load(fh)
        data["scaled"][0] = "42"  # valid JSON, wrong root
        with open(path, "w") as fh:
            json.dump(data, fh)
        fresh = ResultCache(disk_dir=d)
        assert fresh.get("deadbeef") is None  # never served
        assert os.path.exists(path + ".corrupt")
        assert fresh.metrics.counter("cache.disk_corrupt").value == 1

    def test_old_schema_quarantined(self, tmp_path):
        # /1 entries carry no checksum: unverifiable, so re-solved.
        d = str(tmp_path)
        path = self.entry_path(d)
        os.makedirs(os.path.dirname(path))
        with open(path, "w") as fh:
            json.dump({"schema": "repro.serve-cache/1",
                       "key": "deadbeef", "scaled": ["1"]}, fh)
        c = ResultCache(disk_dir=d)
        assert c.get("deadbeef") is None
        assert os.path.exists(path + ".corrupt")

    def test_key_mismatch_quarantined(self, tmp_path):
        # An entry copied under the wrong filename must not be served.
        d = str(tmp_path)
        c = ResultCache(disk_dir=d)
        c.put("deadbeef", [7])
        other = self.entry_path(d, "cafebabe")
        os.makedirs(os.path.dirname(other), exist_ok=True)
        os.replace(self.entry_path(d), other)
        fresh = ResultCache(disk_dir=d)
        assert fresh.get("cafebabe") is None
        assert os.path.exists(other + ".corrupt")

    def test_fsck_sweep(self, tmp_path):
        d = str(tmp_path)
        c = ResultCache(disk_dir=d)
        c.put("deadbeef", [1])
        c.put("cafebabe", [2, 3])
        # Damage one entry, plant a leftover .tmp from a killed put.
        with open(self.entry_path(d), "w") as fh:
            fh.write("garbage")
        tmp_file = self.entry_path(d, "cafebabe") + ".tmp"
        with open(tmp_file, "w") as fh:
            fh.write("half-written")
        fresh = ResultCache(disk_dir=d)
        summary = fresh.fsck()
        assert summary == {"scanned": 2, "ok": 1, "quarantined": 1}
        assert not os.path.exists(tmp_file)
        assert os.path.exists(self.entry_path(d) + ".corrupt")
        assert fresh.metrics.counter("cache.disk_corrupt").value == 1
        # Quarantine files are left alone by a second sweep.
        assert fresh.fsck() == {"scanned": 1, "ok": 1, "quarantined": 0}

    def test_fsck_without_disk_tier(self):
        assert ResultCache(disk_dir="").fsck() == {
            "scanned": 0, "ok": 0, "quarantined": 0}

    def test_good_entry_round_trips_with_checksum(self, tmp_path):
        d = str(tmp_path)
        ResultCache(disk_dir=d).put("deadbeef", [5, -9])
        with open(self.entry_path(d)) as fh:
            data = json.load(fh)
        assert data["schema"] == "repro.serve-cache/2"
        assert data["key"] == "deadbeef"
        assert len(data["sha256"]) == 64
        assert ResultCache(disk_dir=d).get("deadbeef") == [5, -9]
