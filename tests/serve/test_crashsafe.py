"""Crash safety in-process: journaling on the request path, replay at
start(), the startup fsck, and the four-state pool-liveness probe.

The end-to-end versions of these scenarios (real subprocess, real
SIGKILL) live in ``tests/chaos/``; here a fake finder pins the
scheduling so each property is checked in isolation.
"""

import asyncio
import os

from repro.resilience.checkpoint import poly_key
from repro.serve.journal import RequestJournal, read_journal
from repro.serve.server import RootServer
from tests.serve.test_server import FakeFinder


def run(coro):
    return asyncio.run(coro)


def journal_events(path):
    return [(r["ev"], r.get("status")) for r in read_journal(path)]


class TestJournaling:
    def test_accept_and_complete_recorded(self, tmp_path):
        path = str(tmp_path / "j.jsonl")

        async def go():
            server = RootServer(mu=16, finder=FakeFinder(), cache_dir="",
                                journal_path=path, fsync_interval=1)
            await server.start()
            resp = await server.submit({"id": 1, "coeffs": [-6, 1, 1]})
            await server.aclose()
            return resp

        resp = go_resp = run(go())
        assert go_resp["status"] == "ok"
        recs = read_journal(path)
        assert [r["ev"] for r in recs] == ["accept", "complete"]
        assert recs[0]["request_id"] == resp["request_id"]
        assert recs[0]["key"] == poly_key([-6, 1, 1], 16, "hybrid")
        assert recs[1]["status"] == "ok"

    def test_shed_and_bad_requests_not_journaled(self, tmp_path):
        path = str(tmp_path / "j.jsonl")

        async def go():
            server = RootServer(mu=16, finder=FakeFinder(), cache_dir="",
                                journal_path=path, fsync_interval=1)
            await server.start()
            bad = await server.submit({"id": 1, "coeffs": "nope"})
            await server.aclose()
            return bad

        bad = run(go())
        assert bad["status"] == "error"
        # The WAL records only admitted requests: nothing to replay for
        # a request that never owed an answer.
        assert read_journal(path) == []

    def test_cache_hit_still_journaled(self, tmp_path):
        # A duplicate admitted behind its leader is still an accepted
        # request — it owes (and gets) a completion.
        path = str(tmp_path / "j.jsonl")

        async def go():
            server = RootServer(mu=16, finder=FakeFinder(), cache_dir="",
                                journal_path=path, fsync_interval=1)
            await server.start()
            await server.submit({"id": 1, "coeffs": [-6, 1, 1]})
            r2 = await server.submit({"id": 2, "coeffs": [-6, 1, 1]})
            await server.aclose()
            return r2

        assert run(go())["cached"] is True
        assert journal_events(path) == [
            ("accept", None), ("complete", "ok"),
            ("accept", None), ("complete", "ok")]


class TestReplay:
    def seed_journal(self, path, coeffs, mu=16):
        j = RequestJournal(path, fsync_interval=1)
        j.accept("lost-1", poly_key(coeffs, mu, "hybrid"), coeffs, mu,
                 "hybrid")
        j.close()

    def test_incomplete_entry_replayed_into_cache(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        self.seed_journal(path, [-6, 1, 1])

        async def go():
            finder = FakeFinder()
            server = RootServer(mu=16, finder=finder, cache_dir="",
                                journal_path=path, fsync_interval=1)
            await server.start()
            # The replayed result is already cached: the retry is a hit.
            resp = await server.submit({"id": 9, "coeffs": [-6, 1, 1]})
            await server.aclose()
            return finder, resp, server

        finder, resp, server = run(go())
        assert resp["status"] == "ok" and resp["cached"] is True
        # Exactly one solve: the replay's (the retry hit the cache).
        assert len(finder.calls) == 1
        assert server.metrics.counter("journal.replayed").value == 1
        # Replays are not client traffic: server.ok counts only the
        # retry (served from cache), so chaos reconciliation stays
        # exact.
        assert server.metrics.counter("server.ok").value == 1
        # The completion was journaled, so a second restart is a no-op.
        assert ("complete", "replayed") in journal_events(path)

    def test_already_cached_entry_not_resolved(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        cache_dir = str(tmp_path / "cache")
        key = poly_key([-6, 1, 1], 16, "hybrid")

        async def go():
            f1 = FakeFinder()
            s1 = RootServer(mu=16, finder=f1, cache_dir=cache_dir)
            await s1.start()
            await s1.submit({"id": 1, "coeffs": [-6, 1, 1]})
            await s1.aclose()

            self.seed_journal(path, [-6, 1, 1])
            f2 = FakeFinder()
            s2 = RootServer(mu=16, finder=f2, cache_dir=cache_dir,
                            journal_path=path, fsync_interval=1)
            await s2.start()
            await s2.aclose()
            return f2, s2

        f2, s2 = run(go())
        assert f2.calls == []  # disk cache already held the answer
        assert s2.metrics.counter("journal.replay_cached").value == 1
        assert s2.cache.get(key) is not None

    def test_unparseable_entry_completed_as_error(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        # Degree-zero polynomial: survives journal parsing but fails
        # protocol validation at replay.
        j = RequestJournal(path, fsync_interval=1)
        j.accept("lost-1", "somekey", [7], 16, "hybrid")
        j.close()

        async def go():
            server = RootServer(mu=16, finder=FakeFinder(), cache_dir="",
                                journal_path=path, fsync_interval=1)
            await server.start()
            await server.aclose()
            return server

        server = run(go())
        assert server.metrics.counter("journal.replay_errors").value == 1
        assert ("complete", "replay_error") in journal_events(path)

    def test_startup_fsck_populates_summary(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        bad = os.path.join(cache_dir, "de", "deadbeef.json")
        os.makedirs(os.path.dirname(bad))
        with open(bad, "w") as fh:
            fh.write("garbage")

        async def go():
            server = RootServer(mu=16, finder=FakeFinder(),
                                cache_dir=cache_dir)
            await server.start()
            await server.aclose()
            return server

        server = run(go())
        assert server.fsck_summary == {"scanned": 1, "ok": 0,
                                       "quarantined": 1}
        assert os.path.exists(bad + ".corrupt")


class PidFinder(FakeFinder):
    """FakeFinder with a controllable worker_pids() probe."""

    def __init__(self, pids=None, raise_probe=False):
        super().__init__()
        self._pids = pids if pids is not None else []
        self._raise = raise_probe

    def worker_pids(self):
        if self._raise:
            raise ValueError("pool mutated mid-probe")
        return list(self._pids)


class TestPoolLiveness:
    async def started(self, finder):
        server = RootServer(mu=16, finder=finder, cache_dir="")
        await server.start()
        return server

    def test_unspawned_pool_is_ready(self):
        async def go():
            server = await self.started(FakeFinder())
            code, body = server.health()
            await server.aclose()
            return code, body

        code, body = run(go())
        # FakeFinder has no worker_pids at all -> unspawned, ready.
        assert code == 200 and body["workers"]["pool"] == "unspawned"

    def test_live_pool_is_ready(self):
        async def go():
            server = await self.started(PidFinder(pids=[os.getpid()]))
            code, body = server.health()
            await server.aclose()
            return code, body

        code, body = run(go())
        assert code == 200
        assert body["workers"]["pool"] == "live"
        assert body["workers"]["alive"] == 1

    def test_dead_pool_flips_unready(self):
        async def go():
            # A pid that certainly isn't running (freshly reaped child).
            pid = os.fork()
            if pid == 0:
                os._exit(0)
            os.waitpid(pid, 0)
            server = await self.started(PidFinder(pids=[pid]))
            code, body = server.health()
            m = server.metrics.counter("server.pool_dead").value
            await server.aclose()
            return code, body, m

        code, body, pool_dead = run(go())
        assert code == 503
        assert body["status"] == "unready"
        assert body["workers"]["pool"] == "dead"
        assert pool_dead == 1

    def test_probe_race_stays_ready(self):
        async def go():
            server = await self.started(PidFinder(raise_probe=True))
            code, body = server.health()
            m = server.metrics.counter("server.probe_races").value
            await server.aclose()
            return code, body, m

        code, body, races = run(go())
        # A transient enumeration race must not flap readiness.
        assert code == 200
        assert body["workers"]["pool"] == "respawning"
        assert races == 1

    def test_readyz_reports_cache_and_journal(self, tmp_path):
        path = str(tmp_path / "j.jsonl")

        async def go():
            server = RootServer(mu=16, finder=FakeFinder(), cache_dir="",
                                journal_path=path, fsync_interval=1)
            await server.start()
            await server.submit({"id": 1, "coeffs": [-6, 1, 1]})
            _, body = server.health()
            await server.aclose()
            return body

        body = run(go())
        assert body["cache"]["fsck"] == {"scanned": 0, "ok": 0,
                                         "quarantined": 0}
        j = body["journal"]
        assert j["enabled"] is True and j["broken"] is False
        assert j["accepts"] == 1 and j["completes"] == 1

    def test_journal_disabled_reported(self):
        async def go():
            server = await self.started(FakeFinder())
            _, body = server.health()
            await server.aclose()
            return body

        assert run(go())["journal"] == {"enabled": False}
