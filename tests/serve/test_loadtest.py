"""The loadtest driver: workload determinism, scoring, artifact shape."""

import asyncio

import pytest

from repro.obs.perf import compare_artifacts
from repro.resilience.checkpoint import poly_key
from repro.serve.loadtest import (
    LoadtestReport,
    build_artifact,
    exact_percentile,
    expected_answers,
    generate_requests,
    run_loadtest,
)


class TestGenerateRequests:
    def test_deterministic(self):
        a = generate_requests(50, seed=7, degrees=[2, 3],
                              duplicate_fraction=0.3, mu=16)
        b = generate_requests(50, seed=7, degrees=[2, 3],
                              duplicate_fraction=0.3, mu=16)
        assert a == b
        c = generate_requests(50, seed=8, degrees=[2, 3],
                              duplicate_fraction=0.3, mu=16)
        assert a != c

    def test_shape_and_ids(self):
        reqs = generate_requests(20, seed=1, degrees=[2],
                                 duplicate_fraction=0.0, mu=12)
        assert [r["id"] for r in reqs] == list(range(20))
        assert all(r["bits"] == 12 for r in reqs)
        assert all(r["strategy"] == "hybrid" for r in reqs)
        # duplicate_fraction=0 means every polynomial is a fresh draw
        # (rare accidental collisions are possible and handled — the
        # report counts unique polynomials by actual key, not by draw).
        assert len({tuple(r["coeffs"]) for r in reqs}) >= 18

    def test_duplicates_present(self):
        reqs = generate_requests(100, seed=3, degrees=[2, 3],
                                 duplicate_fraction=0.5, mu=16)
        unique = len({tuple(r["coeffs"]) for r in reqs})
        assert unique < 100    # the cache has something to hit

    def test_degrees_respected(self):
        reqs = generate_requests(30, seed=2, degrees=[2, 4],
                                 duplicate_fraction=0.0, mu=16)
        degs = {len(r["coeffs"]) - 1 for r in reqs}
        assert degs == {2, 4}

    def test_empty_degrees_rejected(self):
        with pytest.raises(ValueError):
            generate_requests(5, 1, [], 0.0, 16)


class TestExactPercentile:
    def test_boundaries(self):
        vals = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert exact_percentile(vals, 0.0) == 1.0
        assert exact_percentile(vals, 1.0) == 5.0
        assert exact_percentile(vals, 0.5) == 3.0
        assert exact_percentile([7.0], 0.99) == 7.0

    def test_nearest_rank(self):
        vals = [float(i) for i in range(1, 11)]
        assert exact_percentile(vals, 0.99) == 10.0
        assert exact_percentile(vals, 0.90) == 9.0

    def test_errors(self):
        with pytest.raises(ValueError):
            exact_percentile([], 0.5)
        with pytest.raises(ValueError):
            exact_percentile([1.0], 1.5)


class ScriptedClient:
    """Returns canned responses keyed by request id."""

    def __init__(self, responses):
        self.responses = responses

    async def request(self, obj):
        return self.responses[obj["id"]]


class TestRunLoadtest:
    def test_scoring(self):
        reqs = [{"id": i, "coeffs": [-6, 1, 1], "bits": 4}
                for i in range(5)]
        key = poly_key([-6, 1, 1], 4, "hybrid")
        expected = {key: ["-48", "32"]}
        responses = {
            0: {"status": "ok", "cached": False, "scaled": ["-48", "32"]},
            1: {"status": "ok", "cached": True, "scaled": ["-48", "32"]},
            2: {"status": "ok", "cached": True, "scaled": ["-48", "99"]},
            3: {"status": "partial", "exit_code": 3, "scaled": []},
            4: {"status": "overloaded", "code": 429},
        }
        report = asyncio.run(run_loadtest(
            ScriptedClient(responses), reqs, expected, concurrency=2))
        assert report.requests == 5 and report.unique == 1
        assert report.completed == 5
        assert report.ok == 3
        assert report.cache_hits == 2
        assert report.incorrect == 1    # id 2's wrong payload
        assert report.partial == 1 and report.overloaded == 1
        assert report.errors == 0
        assert len(report.latencies) == 5
        assert report.cache_hit_rate == pytest.approx(0.4)
        assert "INCORRECT 1" in report.summary()

    def test_client_failure_counts_as_error(self):
        class DyingClient:
            async def request(self, obj):
                raise ConnectionError("gone")

        reqs = [{"id": 0, "coeffs": [-2, 0, 1], "bits": 4}]
        report = asyncio.run(run_loadtest(DyingClient(), reqs, {}))
        assert report.errors == 1 and report.ok == 0


class TestBuildArtifact:
    def _report(self):
        return LoadtestReport(
            requests=10, unique=6, completed=10, ok=9, cache_hits=4,
            partial=1, overloaded=0, errors=0, incorrect=0,
            wall_seconds=2.0, latencies=[0.01 * (i + 1) for i in range(10)],
        )

    def test_kinds(self):
        art = build_artifact("serve", {"seed": 1}, self._report())
        counts = {n for n, m in art.metrics.items()
                  if m["kind"] == "count"}
        walls = {n for n, m in art.metrics.items() if m["kind"] == "wall"}
        assert {"loadtest.requests", "loadtest.unique",
                "loadtest.completed", "loadtest.ok",
                "loadtest.cache_hits", "loadtest.incorrect",
                "loadtest.partial", "loadtest.overloaded",
                "loadtest.errors"} == counts
        assert {"loadtest.p50_seconds", "loadtest.p99_seconds",
                "loadtest.mean_seconds", "loadtest.wall_seconds",
                "loadtest.throughput_rps",
                "loadtest.cache_hit_rate"} == walls

    def test_gates_exactly_on_counts(self):
        base = build_artifact("serve", {}, self._report())
        drifted = self._report()
        drifted.cache_hits = 3          # one lost hit must fail the gate
        drifted.wall_seconds = 9.0      # wall drift must NOT fail it
        cur = build_artifact("serve", {}, drifted)
        diffs = compare_artifacts(base, cur)
        failed = {d.name for d in diffs if d.failed}
        assert "loadtest.cache_hits" in failed
        assert "loadtest.wall_seconds" not in failed

    def test_identical_reports_pass(self):
        base = build_artifact("serve", {}, self._report())
        cur = build_artifact("serve", {}, self._report())
        assert not any(d.failed for d in compare_artifacts(base, cur))

    def _snapshot(self):
        """A daemon metrics snapshot carrying stage histograms."""
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        for us in (100, 200, 50_000):
            reg.histogram("server.queue_wait_us").observe(us)
            reg.histogram("server.solve_us").observe(us * 2)
        return {"metrics": reg.as_dict()}

    def test_decomposition_metrics_from_snapshot(self):
        report = self._report()
        report.metrics_snapshot = self._snapshot()
        art = build_artifact("serve", {}, report)
        for name in ("loadtest.queue_wait_p50_seconds",
                     "loadtest.queue_wait_p99_seconds",
                     "loadtest.queue_wait_mean_seconds",
                     "loadtest.solve_p50_seconds",
                     "loadtest.solve_p99_seconds",
                     "loadtest.solve_mean_seconds"):
            assert name in art.metrics, name
            assert art.metrics[name]["kind"] == "wall"
        # p99 >= p50 and the solve stage is 2x the queue wait here.
        q99 = art.metrics["loadtest.queue_wait_p99_seconds"]["value"]
        q50 = art.metrics["loadtest.queue_wait_p50_seconds"]["value"]
        assert q99 >= q50 > 0
        assert art.metrics["loadtest.solve_mean_seconds"]["value"] == \
            pytest.approx(
                2 * art.metrics["loadtest.queue_wait_mean_seconds"]["value"])

    def test_slo_verdict_metrics(self):
        from repro.obs.slo import Objective, SLOConfig

        report = self._report()
        report.samples = [{"time_unix": 100.0, "total_ms": 10.0,
                           "status": "ok"},
                          {"time_unix": 100.0, "total_ms": 400.0,
                           "status": "ok"}]
        tight = SLOConfig(objectives=(
            Objective("lat", "p99_ms", 100.0),))
        art = build_artifact("serve", {}, report, slo_config=tight)
        assert art.metrics["loadtest.slo_ok"]["value"] == 0.0
        assert art.metrics["loadtest.slo_burn.lat"]["value"] == \
            pytest.approx(4.0)
        assert art.metrics["loadtest.slo_ok"]["kind"] == "wall"
        loose = SLOConfig(objectives=(
            Objective("lat", "p99_ms", 1000.0),))
        ok = build_artifact("serve", {}, report, slo_config=loose)
        assert ok.metrics["loadtest.slo_ok"]["value"] == 1.0

    def test_infinite_burn_is_json_safe(self):
        import json as _json

        from repro.obs.slo import Objective, SLOConfig

        report = self._report()
        report.samples = [{"time_unix": 1.0, "total_ms": 5.0,
                           "status": "error"}]
        strict = SLOConfig(objectives=(
            Objective("avail", "error_rate", 0.0),))
        art = build_artifact("serve", {}, report, slo_config=strict)
        burn = art.metrics["loadtest.slo_burn.avail"]["value"]
        assert burn == 1e9                  # clamped, not inf
        _json.dumps(art.to_dict())          # round-trips as strict JSON

    def test_new_metrics_never_fail_against_old_baseline(self):
        """A pre-decomposition baseline gates cleanly against a new
        artifact that carries the extra wall metrics."""
        base = build_artifact("serve", {}, self._report())
        enriched = self._report()
        enriched.metrics_snapshot = self._snapshot()
        enriched.samples = [{"time_unix": 1.0, "total_ms": 5.0,
                             "status": "ok"}]
        cur = build_artifact("serve", {}, enriched)
        assert not any(d.failed for d in compare_artifacts(base, cur))


@pytest.mark.slow
class TestInprocessRun:
    def test_small_run_is_exact(self):
        """A real end-to-end loadtest: every answer byte-exact, cache
        hits exactly requests - unique."""
        from repro.serve.loadtest import InprocessClient

        reqs = generate_requests(24, seed=11, degrees=[2, 3],
                                 duplicate_fraction=0.4, mu=16)
        expected = expected_answers(reqs)

        async def go():
            async with InprocessClient(mu=16, processes=2,
                                       max_pending=4096,
                                       cache_dir="") as client:
                return await run_loadtest(client, reqs, expected,
                                          concurrency=8)

        report = asyncio.run(go())
        assert report.completed == 24
        assert report.incorrect == 0
        assert report.errors == 0 and report.overloaded == 0
        assert report.cache_hits == report.requests - report.unique
        assert report.throughput_rps > 0
