"""Request parsing / response building: the daemon's wire contract."""

import pytest

from repro.serve.protocol import (
    HTTP_REASONS,
    MAX_DEGREE,
    MAX_PRIORITY,
    ProtocolError,
    Request,
    control_op,
    error_response,
    metrics_response,
    ok_response,
    overloaded_response,
    parse_request,
    salvage_id,
    shutdown_response,
)


def parse(obj, **kw):
    kw.setdefault("default_mu", 16)
    return parse_request(obj, **kw)


class TestParseRequest:
    def test_minimal_coeffs(self):
        req = parse({"id": 7, "coeffs": [-6, 1, 1]})
        assert req.id == 7
        assert req.coeffs == (-6, 1, 1)
        assert req.mu == 16
        assert req.strategy == "hybrid"
        assert req.deadline_seconds is None
        assert req.max_bit_ops is None
        assert req.priority == 0

    def test_roots_input(self):
        req = parse({"roots": [-3, 2]})
        assert req.coeffs == (-6, 1, 1)

    def test_trailing_zeros_normalized(self):
        """Equivalent spellings share one coefficient tuple (one key)."""
        a = parse({"coeffs": [-2, 0, 1]})
        b = parse({"coeffs": [-2, 0, 1, 0, 0]})
        assert a.coeffs == b.coeffs

    def test_exactly_one_polynomial_spelling(self):
        with pytest.raises(ProtocolError, match="exactly one"):
            parse({"coeffs": [1, 2], "roots": [1]})
        with pytest.raises(ProtocolError, match="exactly one"):
            parse({"id": 1})

    @pytest.mark.parametrize("bad", [
        {"coeffs": []},
        {"coeffs": "nope"},
        {"coeffs": [0, 0]},          # the zero polynomial
        {"coeffs": [5]},             # constant
        {"coeffs": [1, "x"]},
        {"roots": []},
        {"roots": 3},
    ])
    def test_bad_polynomials(self, bad):
        with pytest.raises(ProtocolError):
            parse(bad)

    def test_not_an_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            parse([1, 2, 3])

    def test_degree_cap(self):
        coeffs = [0] * (MAX_DEGREE + 1) + [1]
        coeffs[0] = 1
        with pytest.raises(ProtocolError, match="exceeds the limit"):
            parse({"coeffs": coeffs})

    def test_overrides(self):
        req = parse({"coeffs": [-2, 0, 1], "bits": 24,
                     "strategy": "newton", "deadline_seconds": 1.5,
                     "bit_budget": 1000, "priority": -3})
        assert (req.mu, req.strategy) == (24, "newton")
        assert req.deadline_seconds == 1.5
        assert req.max_bit_ops == 1000
        assert req.priority == -3

    @pytest.mark.parametrize("field,value", [
        ("bits", 0), ("bits", 1.5), ("bits", True),
        ("strategy", "sorcery"),
        ("deadline_seconds", -1), ("deadline_seconds", "soon"),
        ("bit_budget", -1), ("bit_budget", 0.5),
        ("priority", MAX_PRIORITY + 1), ("priority", -(MAX_PRIORITY + 1)),
    ])
    def test_bad_fields(self, field, value):
        with pytest.raises(ProtocolError):
            parse({"coeffs": [-2, 0, 1], field: value})

    def test_zero_deadline_is_legal(self):
        """deadline_seconds=0 means "fail over budget immediately" — the
        Budget zero-deadline semantics, not an error."""
        req = parse({"coeffs": [-2, 0, 1], "deadline_seconds": 0})
        assert req.deadline_seconds == 0.0

    def test_max_deadline_caps_and_assigns(self):
        capped = parse({"coeffs": [-2, 0, 1], "deadline_seconds": 60},
                       max_deadline_seconds=2.0)
        assert capped.deadline_seconds == 2.0
        assigned = parse({"coeffs": [-2, 0, 1]}, max_deadline_seconds=2.0)
        assert assigned.deadline_seconds == 2.0
        under = parse({"coeffs": [-2, 0, 1], "deadline_seconds": 0.5},
                      max_deadline_seconds=2.0)
        assert under.deadline_seconds == 0.5


class TestControlOp:
    def test_ops(self):
        assert control_op({"op": "ping"}) == "ping"
        assert control_op({"op": "metrics", "id": 3}) == "metrics"
        assert control_op({"coeffs": [1, 2]}) is None
        assert control_op({"op": 7}) is None
        assert control_op("ping") is None


class TestSalvageId:
    """Recovering a client ``id`` from lines that don't parse as JSON,
    so error replies can still be correlated."""

    @pytest.mark.parametrize("line,expected", [
        ('{"id": 7, "coeffs": [1, 2,}', 7),
        ('{"id": "req-9", nope', "req-9"),
        ('{"coeffs": [1], "id": -3} trailing garbage', -3),
        ('{"id": 1.5, broken', 1.5),
        ('{"id": true, broken', True),
        ('{"id": null, broken', None),
        ('{"id": "with \\"escape\\"", bad', 'with "escape"'),
        ("total garbage", None),
        ("", None),
        ('{"ident": 3, bad', None),          # not the id field
    ])
    def test_salvage(self, line, expected):
        assert salvage_id(line) == expected

    def test_whitespace_around_colon(self):
        assert salvage_id('{ "id"  :   42 , oops') == 42


class TestResponses:
    def _req(self, **kw):
        base = dict(id="r1", coeffs=(-2, 0, 1), mu=4, strategy="hybrid",
                    deadline_seconds=None, max_bit_ops=None, priority=0)
        base.update(kw)
        return Request(**base)

    def test_ok_shape(self):
        resp = ok_response(self._req(), [-23, 23], cached=True,
                           elapsed_seconds=0.01)
        assert resp["status"] == "ok" and resp["code"] == 200
        assert resp["scaled"] == ["-23", "23"]
        assert resp["mu_bits"] == 4
        assert resp["cached"] is True
        assert resp["floats"][1] == pytest.approx(23 / 16)

    def test_error_and_overloaded(self):
        err = error_response("x", "boom")
        assert (err["status"], err["code"]) == ("error", 400)
        over = overloaded_response("y", queue_depth=9, limit=8)
        assert (over["status"], over["code"]) == ("overloaded", 429)
        assert over["queue_depth"] == 9 and over["limit"] == 8
        assert over["retry_after_seconds"] > 0

    def test_metrics_and_shutdown(self):
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("cache.hits").inc(3)
        resp = metrics_response(reg, rid="m")
        assert resp["status"] == "metrics" and resp["id"] == "m"
        assert resp["metrics"]["cache.hits"]["value"] == 3
        assert shutdown_response("s") == {"id": "s", "status": "shutdown",
                                          "code": 200}

    def test_every_code_has_a_reason(self):
        for resp in (ok_response(self._req(), [], cached=False,
                                 elapsed_seconds=0),
                     error_response(None, "x"),
                     error_response(None, "x", code=503),
                     overloaded_response(None, queue_depth=1, limit=1),
                     shutdown_response()):
            assert resp["code"] in HTTP_REASONS
