"""The HTTP front-end, over real sockets on an ephemeral port."""

import asyncio
import json
import threading

from repro.serve.http import start_http_server
from repro.serve.server import RootServer

from tests.serve.test_server import FakeFinder, wait_for


async def raw_exchange(host, port, payload, keepalive_payloads=()):
    """Send raw bytes, optionally pipeline more, return raw response
    bytes (all of them)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(payload)
        await writer.drain()
        chunks = [await read_one_response(reader)]
        for extra in keepalive_payloads:
            writer.write(extra)
            await writer.drain()
            chunks.append(await read_one_response(reader))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return chunks


async def read_one_response(reader):
    """One HTTP response from a keep-alive stream: (status, headers,
    body bytes)."""
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    body = await reader.readexactly(int(headers.get("content-length", 0)))
    return status, headers, body


def post_bytes(obj, close=False):
    body = json.dumps(obj).encode()
    conn = b"Connection: close\r\n" if close else b""
    return (b"POST /solve HTTP/1.1\r\nHost: t\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            + conn + b"\r\n" + body)


def get_bytes(path):
    return ("GET " + path + " HTTP/1.1\r\nHost: t\r\n\r\n").encode()


async def with_http_server(scenario, **server_kwargs):
    server_kwargs.setdefault("finder", FakeFinder())
    server_kwargs.setdefault("cache_dir", "")
    server = RootServer(mu=16, **server_kwargs)
    aio = await start_http_server(server, "127.0.0.1", 0)
    host, port = aio.sockets[0].getsockname()[:2]
    try:
        return await scenario(server, host, port)
    finally:
        aio.close()
        await aio.wait_closed()
        await server.aclose()


class TestHttp:
    def test_solve_and_cache_roundtrip(self):
        async def scenario(server, host, port):
            (s1, _, b1), = await raw_exchange(
                host, port, post_bytes({"id": 1, "coeffs": [-6, 1, 1]},
                                       close=True))
            (s2, _, b2), = await raw_exchange(
                host, port, post_bytes({"id": 2, "coeffs": [-6, 1, 1]},
                                       close=True))
            return s1, json.loads(b1), s2, json.loads(b2)

        s1, r1, s2, r2 = asyncio.run(with_http_server(scenario))
        assert s1 == 200 and r1["status"] == "ok" and not r1["cached"]
        assert s2 == 200 and r2["cached"] is True
        assert r2["scaled"] == r1["scaled"]

    def test_keepalive_pipelining(self):
        async def scenario(server, host, port):
            return await raw_exchange(
                host, port,
                post_bytes({"id": 1, "coeffs": [-2, 0, 1]}),
                keepalive_payloads=[get_bytes("/metrics"),
                                    get_bytes("/healthz")])

        solve, metrics, health = asyncio.run(with_http_server(scenario))
        assert solve[0] == 200
        assert metrics[0] == 200
        text = metrics[2].decode()
        assert "repro_server_ok_total 1" in text
        assert text.rstrip().endswith("# EOF")
        assert health[0] == 200
        hj = json.loads(health[2])
        assert hj["status"] == "ok" and "queue_depth" in hj

    def test_bad_json_is_400(self):
        async def scenario(server, host, port):
            body = b"{nope"
            payload = (b"POST /solve HTTP/1.1\r\nHost: t\r\n"
                       b"Content-Length: " + str(len(body)).encode()
                       + b"\r\nConnection: close\r\n\r\n" + body)
            (status, _, body), = await raw_exchange(host, port, payload)
            return status, json.loads(body)

        status, resp = asyncio.run(with_http_server(scenario))
        assert status == 400 and resp["status"] == "error"

    def test_protocol_error_is_400(self):
        async def scenario(server, host, port):
            (status, _, body), = await raw_exchange(
                host, port, post_bytes({"id": 1, "coeffs": [0]},
                                       close=True))
            return status, json.loads(body)

        status, resp = asyncio.run(with_http_server(scenario))
        assert status == 400 and resp["status"] == "error"

    def test_unknown_route_is_404(self):
        async def scenario(server, host, port):
            (status, _, body), = await raw_exchange(
                host, port, get_bytes("/nope"))
            return status, json.loads(body)

        status, resp = asyncio.run(with_http_server(scenario))
        assert status == 404 and "/nope" in resp["error"]

    def test_oversized_body_is_413(self):
        async def scenario(server, host, port):
            payload = (b"POST /solve HTTP/1.1\r\nHost: t\r\n"
                       b"Content-Length: 9999999999\r\n\r\n")
            (status, _, body), = await raw_exchange(host, port, payload)
            return status, json.loads(body)

        status, resp = asyncio.run(with_http_server(scenario))
        assert status == 413 and resp["status"] == "error"

    def test_overload_sets_retry_after(self):
        async def scenario(server, host, port):
            server.finder.gate = threading.Event()
            t1 = asyncio.ensure_future(raw_exchange(
                host, port, post_bytes({"id": 1, "coeffs": [-2, 0, 1]},
                                       close=True)))
            await wait_for(lambda: len(server.finder.calls) == 1)
            (status, headers, body), = await raw_exchange(
                host, port, post_bytes({"id": 2, "coeffs": [-3, 0, 1]},
                                       close=True))
            server.finder.gate.set()
            await t1
            return status, headers, json.loads(body)

        status, headers, resp = asyncio.run(
            with_http_server(scenario, max_pending=1))
        assert status == 429 and resp["status"] == "overloaded"
        assert int(headers["retry-after"]) >= 1

    def test_solve_echoes_request_id_in_header_and_body(self):
        async def scenario(server, host, port):
            (status, headers, body), = await raw_exchange(
                host, port, post_bytes({"id": 1, "coeffs": [-6, 1, 1]},
                                       close=True))
            return status, headers, json.loads(body)

        status, headers, resp = asyncio.run(with_http_server(scenario))
        assert status == 200
        assert headers["x-request-id"] == resp["request_id"]

    def test_bad_json_salvages_id_and_sets_header(self):
        async def scenario(server, host, port):
            body = b'{"id": 41, "coeffs": [1, 2,}'
            payload = (b"POST /solve HTTP/1.1\r\nHost: t\r\n"
                       b"Content-Length: " + str(len(body)).encode()
                       + b"\r\nConnection: close\r\n\r\n" + body)
            (status, headers, body), = await raw_exchange(host, port,
                                                          payload)
            return status, headers, json.loads(body)

        status, headers, resp = asyncio.run(with_http_server(scenario))
        assert status == 400 and resp["status"] == "error"
        # The recoverable client id was salvaged from the broken line.
        assert resp["id"] == 41
        assert headers["x-request-id"] == resp["request_id"]

    def test_http_write_completes_the_timeline(self):
        """The connection handler reports serialize/write back onto the
        request timeline — the access-log record gains both stages."""
        async def scenario(server, host, port):
            await raw_exchange(
                host, port, post_bytes({"id": 1, "coeffs": [-6, 1, 1]},
                                       close=True))
            for _ in range(200):
                if not server.tracker._pending_io:
                    break
                await asyncio.sleep(0.005)
            return server.tracker.ring.snapshot()

        (tl,) = asyncio.run(with_http_server(scenario))
        assert tl.stage_ns("serialize") > 0
        assert tl.stage_ns("write") > 0
        assert tl.stage_sum_ns <= tl.total_ns

    def test_readyz_flips_to_503_on_drain(self):
        async def scenario(server, host, port):
            (r1, _, b1), = await raw_exchange(host, port,
                                              get_bytes("/readyz"))
            server._accepting = False
            (r2, _, b2), = await raw_exchange(host, port,
                                              get_bytes("/readyz"))
            server._accepting = True
            return r1, json.loads(b1), r2, json.loads(b2)

        r1, b1, r2, b2 = asyncio.run(with_http_server(scenario))
        assert r1 == 200 and b1["status"] == "ready"
        assert "breaker" in b1 and "workers" in b1 and "headroom" in b1
        assert r2 == 503 and b2["status"] == "unready"

    def test_healthz_stays_200_while_unready(self):
        """Liveness vs readiness: /healthz answers 200 even when
        /readyz refuses — restart loops key off liveness only."""
        async def scenario(server, host, port):
            server._accepting = False
            (status, _, body), = await raw_exchange(host, port,
                                                    get_bytes("/healthz"))
            server._accepting = True
            return status, json.loads(body)

        status, body = asyncio.run(with_http_server(scenario))
        assert status == 200 and body["alive"] is True

    def test_slo_endpoint(self):
        async def scenario(server, host, port):
            await raw_exchange(host, port,
                               post_bytes({"id": 1, "coeffs": [-6, 1, 1]}))
            (status, _, body), = await raw_exchange(host, port,
                                                    get_bytes("/slo"))
            return status, json.loads(body)

        status, report = asyncio.run(with_http_server(scenario))
        assert status == 200
        assert report["ok"] is True and report["samples"] >= 1
        assert {o["name"] for o in report["objectives"]} == \
            {"latency_p99", "availability"}

    def test_metrics_json_endpoint(self):
        async def scenario(server, host, port):
            (status, headers, body), = await raw_exchange(
                host, port, get_bytes("/metrics.json"))
            return status, headers, json.loads(body)

        status, headers, snap = asyncio.run(with_http_server(scenario))
        assert status == 200
        assert headers["content-type"] == "application/json"
        assert "metrics" in snap and "time_unix" in snap
