"""The JSONL front-end: in-memory protocol walk plus a live daemon."""

import asyncio
import io
import json
import os
import signal
import subprocess
import sys

import pytest

from repro.serve.server import RootServer
from repro.serve.stdio import serve_stdio

from tests.serve.test_server import FakeFinder

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
EXAMPLE_FILE = os.path.join(REPO_ROOT, "examples", "serve_requests.jsonl")


def daemon_env():
    """Subprocess env that can import repro from the source tree."""
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def run_stdio(lines):
    """Feed request lines to serve_stdio over StringIO pipes; returns
    (exit_code, responses, server)."""
    server = RootServer(mu=16, finder=FakeFinder(), cache_dir="")
    in_fh = io.StringIO("".join(line + "\n" for line in lines))
    out_fh = io.StringIO()

    code = asyncio.run(serve_stdio(server, in_fh, out_fh))
    resps = [json.loads(line) for line in
             out_fh.getvalue().splitlines() if line]
    return code, resps, server


class TestStdioProtocol:
    def test_full_session(self):
        code, resps, server = run_stdio([
            json.dumps({"op": "ping", "id": "p"}),
            json.dumps({"id": 1, "coeffs": [-6, 1, 1]}),
            json.dumps({"id": 2, "coeffs": [-6, 1, 1]}),
            json.dumps({"op": "metrics", "id": "m"}),
            json.dumps({"op": "shutdown", "id": "s"}),
        ])
        assert code == 0
        by_id = {r["id"]: r for r in resps}
        assert by_id["p"]["op"] == "ping"
        assert by_id[1]["status"] == "ok" and by_id[1]["cached"] is False
        assert by_id[2]["status"] == "ok" and by_id[2]["cached"] is True
        # The metrics barrier: the snapshot observes both solves.
        m = by_id["m"]
        assert m["status"] == "metrics"
        assert m["metrics"]["server.ok"]["value"] == 2
        assert m["metrics"]["cache.hits"]["value"] == 1
        assert by_id["s"]["status"] == "shutdown"
        # Everything before shutdown was answered; finder released.
        assert server.finder.closed is True

    def test_metrics_barrier_precedes_snapshot(self):
        """A metrics line after N solves always reports all N."""
        lines = [json.dumps({"id": i, "coeffs": [-(i + 2), 0, 1]})
                 for i in range(6)]
        lines.append(json.dumps({"op": "metrics", "id": "m"}))
        code, resps, _ = run_stdio(lines)
        assert code == 0
        m = next(r for r in resps if r.get("status") == "metrics")
        assert m["metrics"]["server.requests"]["value"] == 6
        assert m["metrics"]["server.ok"]["value"] == 6

    def test_garbage_lines_answered_inline(self):
        code, resps, _ = run_stdio([
            "this is not json",
            json.dumps({"op": "dance", "id": "d"}),
            json.dumps({"id": 1, "coeffs": [-2, 0, 1]}),
        ])
        assert code == 0
        assert any(r["status"] == "error" and "not valid JSON" in r["error"]
                   for r in resps)
        unknown = next(r for r in resps if r.get("id") == "d")
        assert unknown["status"] == "error" and "dance" in unknown["error"]
        assert any(r.get("id") == 1 and r["status"] == "ok" for r in resps)

    def test_eof_drains_without_shutdown_line(self):
        code, resps, server = run_stdio([
            json.dumps({"id": 1, "coeffs": [-2, 0, 1]}),
        ])
        assert code == 0
        assert resps[-1]["status"] == "ok"
        assert server.finder.closed is True

    def test_blank_lines_skipped(self):
        code, resps, _ = run_stdio(["", "  ",
                                    json.dumps({"op": "ping", "id": 1})])
        assert code == 0
        assert len(resps) == 1

    def test_slo_op(self):
        code, resps, _ = run_stdio([
            json.dumps({"id": 1, "coeffs": [-6, 1, 1]}),
            json.dumps({"op": "metrics", "id": "barrier"}),
            json.dumps({"op": "slo", "id": "s"}),
        ])
        assert code == 0
        slo = next(r for r in resps if r.get("status") == "slo")
        assert slo["id"] == "s" and slo["code"] == 200
        report = slo["slo"]
        assert report["ok"] is True and report["samples"] >= 1
        assert {o["name"] for o in report["objectives"]} == \
            {"latency_p99", "availability"}

    def test_solve_responses_carry_request_ids(self):
        code, resps, _ = run_stdio([
            json.dumps({"id": 1, "coeffs": [-6, 1, 1]}),
            json.dumps({"id": 2, "coeffs": [-2, 0, 1]}),
        ])
        assert code == 0
        rids = [r["request_id"] for r in resps]
        assert all(isinstance(r, str) for r in rids)
        assert len(set(rids)) == 2

    def test_bad_json_salvages_client_id(self):
        code, resps, _ = run_stdio([
            '{"id": 77, "coeffs": [1, 2,}',
        ])
        assert code == 0
        (err,) = resps
        assert err["status"] == "error" and "not valid JSON" in err["error"]
        assert err["id"] == 77
        assert isinstance(err["request_id"], str)


@pytest.mark.slow
class TestLiveDaemon:
    def test_replay_example_file(self):
        """Boot the real daemon, replay the committed example request
        file, and check the cache worked — the CI smoke, as a test."""
        with open(EXAMPLE_FILE, encoding="utf-8") as fh:
            lines = [line for line in fh.read().splitlines() if line]
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--stdio",
             "--bits", "16", "--processes", "2"],
            input="\n".join(lines) + "\n",
            capture_output=True, text=True, timeout=150,
            cwd=REPO_ROOT, env=daemon_env(),
        )
        assert proc.returncode == 0, proc.stderr
        resps = [json.loads(line) for line in proc.stdout.splitlines()]
        by_id = {r.get("id"): r for r in resps}

        solves = [json.loads(line) for line in lines
                  if "coeffs" in line or "roots" in line]
        assert len(resps) == len(lines)    # every line answered
        oks = [by_id[s["id"]] for s in solves]
        assert all(r["status"] == "ok" for r in oks)

        # Duplicates in the file hit the cache, byte-identically.
        seen = {}
        hits = 0
        for s, r in zip(solves, oks):
            key = json.dumps(s["coeffs"])
            if key in seen:
                assert r["scaled"] == seen[key]
                hits += 1
            else:
                seen[key] = r["scaled"]
        assert hits > 0
        cached = sum(bool(r.get("cached")) for r in oks)
        assert cached == hits

        # The trailing metrics barrier saw every solve.
        m = next(r for r in resps if r.get("status") == "metrics")
        assert m["metrics"]["cache.hits"]["value"] == hits
        assert m["metrics"]["server.ok"]["value"] == len(oks)

    def test_sigterm_drains_and_leaves_no_torn_record(self, tmp_path):
        """SIGTERM is the graceful stop: the daemon drains, exits 0,
        and the fsynced access log parses to the last byte — no torn
        final record."""
        access = str(tmp_path / "access.jsonl")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--stdio",
             "--bits", "16", "--processes", "2", "--access-log", access],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True,
            cwd=REPO_ROOT, env=daemon_env(),
        )
        try:
            for i in range(3):
                proc.stdin.write(json.dumps(
                    {"id": i, "coeffs": [-6 - i, 1, 1]}) + "\n")
            proc.stdin.flush()
            resps = [json.loads(proc.stdout.readline()) for _ in range(3)]
            proc.send_signal(signal.SIGTERM)
            _, err = proc.communicate(timeout=120)
        finally:
            proc.kill()
        assert proc.returncode == 0, err
        assert all(r["status"] == "ok" for r in resps)

        with open(access, encoding="utf-8") as fh:
            raw = fh.read()
        assert raw.endswith("\n")              # complete final record
        records = [json.loads(line) for line in raw.splitlines() if line]
        assert len(records) == 3
        answered = {r["request_id"] for r in resps}
        assert {r["request_id"] for r in records} == answered
        # Every record closed with the full stage set through write.
        for rec in records:
            names = [s["name"] for s in rec["stages"]]
            assert "solve" in names and "write" in names

    def test_answers_match_repro_roots(self):
        """Byte-exact parity between the daemon and the one-shot CLI."""
        coeffs = [-6, 1, 1]
        daemon = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--stdio",
             "--bits", "16", "--processes", "2"],
            input=json.dumps({"id": 1, "coeffs": coeffs}) + "\n",
            capture_output=True, text=True, timeout=150,
            cwd=REPO_ROOT, env=daemon_env(),
        )
        assert daemon.returncode == 0, daemon.stderr
        served = json.loads(daemon.stdout.splitlines()[0])
        oneshot = subprocess.run(
            [sys.executable, "-m", "repro", "roots",
             "--coeffs=-6,1,1", "--bits", "16", "--json"],
            capture_output=True, text=True, timeout=150,
            cwd=REPO_ROOT, env=daemon_env(),
        )
        assert oneshot.returncode == 0, oneshot.stderr
        direct = json.loads(oneshot.stdout)
        assert served["scaled"] == direct["scaled"]
        assert served["mu_bits"] == direct["mu_bits"]
