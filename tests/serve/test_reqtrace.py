"""Request-scoped tracing: timelines, the ring, the access log, the
tracker's deferred-IO contract, and the tail table."""

import json
import os

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve.reqtrace import (
    FAILURE_STATUSES,
    SCHEMA,
    STAGES,
    AccessLog,
    RequestTimeline,
    RequestTracker,
    TimelineRing,
    degree_bucket,
    format_tail_table,
    rank_timelines,
    read_access_log,
)


def make_timeline(rid="aa-000001", status="ok", code=200, total_ms=10.0,
                  queue_ms=2.0, solve_ms=5.0, degree=4, priority=0,
                  cached=False, time_unix=100.0):
    tl = RequestTimeline(request_id=rid, client_id=rid, priority=priority,
                        degree=degree, start_ns=1_000,
                        time_unix=time_unix)
    t = tl.start_ns
    tl.add_stage("queue_wait", t, int(queue_ms * 1e6))
    t += int(queue_ms * 1e6)
    tl.add_stage("solve", t, int(solve_ms * 1e6), bit_cost=42)
    tl.close(status, code, cached=cached,
             end_ns=tl.start_ns + int(total_ms * 1e6))
    return tl


class TestDegreeBucket:
    @pytest.mark.parametrize("degree,label", [
        (0, "1-2"), (1, "1-2"), (2, "1-2"),
        (3, "3-4"), (4, "3-4"),
        (5, "5-8"), (8, "5-8"),
        (9, "9-16"), (16, "9-16"), (17, "17-32"),
        (100, "65-128"),
    ])
    def test_buckets(self, degree, label):
        assert degree_bucket(degree) == label


class TestRequestTimeline:
    def test_stage_accounting(self):
        tl = make_timeline()
        assert tl.stage_ns("queue_wait") == 2_000_000
        assert tl.stage_ns("solve") == 5_000_000
        assert tl.stage_ns("write") == 0
        assert tl.stage_sum_ns == 7_000_000
        assert tl.total_ns == 10_000_000
        assert tl.bit_cost == 42
        assert tl.dominant_stage() == "solve"

    def test_total_falls_back_to_stage_sum(self):
        tl = RequestTimeline(request_id="x", start_ns=50)
        tl.add_stage("validate", 50, 300)
        assert tl.end_ns is None and tl.total_ns == 300

    def test_durations_clamped_nonnegative(self):
        tl = RequestTimeline(request_id="x")
        tl.add_stage("solve", 0, -5, bit_cost=-3)
        assert tl.stage_ns("solve") == 0 and tl.bit_cost == 0

    def test_dict_roundtrip(self):
        tl = make_timeline(status="partial", code=206, cached=True)
        d = tl.to_dict()
        assert d["schema"] == SCHEMA
        assert d["dominant_stage"] == "solve"
        # Zero bit-cost stages omit the key; the solve stage keeps it.
        by_name = {s["name"]: s for s in d["stages"]}
        assert "bit_cost" not in by_name["queue_wait"]
        assert by_name["solve"]["bit_cost"] == 42
        back = RequestTimeline.from_dict(d)
        assert back.request_id == tl.request_id
        assert back.status == "partial" and back.cached is True
        assert back.total_ns == tl.total_ns
        assert back.stage_ns("solve") == tl.stage_ns("solve")

    def test_spans_cover_stages_and_adopted_solve_spans(self):
        tl = make_timeline()
        tl.solve_spans = [{
            "sid": 99, "name": "executor.dispatch", "phase": "dispatch",
            "depth": 0, "parent": None, "start_ns": 3_001_000,
            "end_ns": 7_001_000, "attrs": {"request_id": tl.request_id},
            "cost": {},
        }]
        spans = tl.spans()
        # Root + 2 stages + 1 adopted span, with unique sids.
        assert len(spans) == 4
        assert len({sp.sid for sp in spans}) == 4
        root = spans[0]
        assert root.name == f"request {tl.request_id}"
        assert root.end_ns - root.start_ns == tl.total_ns
        assert spans[-1].name == "executor.dispatch"

    def test_stage_names_are_canonical(self):
        """The module's STAGES tuple lists every stage the server and
        front-ends record, in request order."""
        assert STAGES == ("admission", "validate", "queue_wait",
                          "cache_lookup", "budget_setup", "solve",
                          "serialize", "write")


class TestTimelineRing:
    def test_bounded_eviction_oldest_first(self):
        ring = TimelineRing(maxlen=3)
        for i in range(5):
            ring.push(make_timeline(rid=f"r-{i}"))
        assert len(ring) == 3
        assert [tl.request_id for tl in ring.snapshot()] == \
            ["r-2", "r-3", "r-4"]

    def test_rejects_silly_maxlen(self):
        with pytest.raises(ValueError):
            TimelineRing(maxlen=0)


class TestAccessLog:
    def test_write_read_roundtrip(self, tmp_path):
        path = str(tmp_path / "access.jsonl")
        log = AccessLog(path)
        log.write(make_timeline(rid="a").to_dict())
        log.write(make_timeline(rid="b").to_dict())
        log.close()
        log.close()                       # idempotent
        recs = read_access_log(path)
        assert [r["request_id"] for r in recs] == ["a", "b"]

    def test_rotation_keeps_one_generation(self, tmp_path):
        path = str(tmp_path / "access.jsonl")
        line_len = len(json.dumps(make_timeline().to_dict(),
                                  separators=(",", ":"))) + 1
        log = AccessLog(path, max_bytes=line_len * 2 + 10)
        for i in range(6):
            log.write(make_timeline(rid=f"r-{i}").to_dict())
        log.close()
        assert os.path.exists(path + ".1")
        recs = read_access_log(path)
        # Rotated generation read before the live file, order preserved.
        ids = [r["request_id"] for r in recs]
        assert ids == sorted(ids)
        assert ids[-1] == "r-5"
        # Only one rotated generation is kept.
        assert not os.path.exists(path + ".2")

    def test_reader_skips_torn_and_blank_lines(self, tmp_path):
        path = str(tmp_path / "access.jsonl")
        with open(path, "w") as fh:
            fh.write(json.dumps({"request_id": "good-1"}) + "\n")
            fh.write("\n")
            fh.write('{"request_id": "torn-')        # no newline, cut
        recs = read_access_log(path)
        assert [r["request_id"] for r in recs] == ["good-1"]

    def test_fsync_interval_validated(self, tmp_path):
        with pytest.raises(ValueError):
            AccessLog(str(tmp_path / "a.jsonl"), fsync_interval=0)

    def test_fsync_interval_batches(self, tmp_path, monkeypatch):
        import os as _os

        synced = []
        real_fsync = _os.fsync
        monkeypatch.setattr("repro.serve.reqtrace.os.fsync",
                            lambda fd: synced.append(fd) or real_fsync(fd))
        log = AccessLog(str(tmp_path / "a.jsonl"), fsync_interval=2)
        log.write(make_timeline(rid="a").to_dict())
        assert synced == []              # below the interval: flushed only
        log.write(make_timeline(rid="b").to_dict())
        assert len(synced) == 1          # every 2nd line hits the platter
        log.write(make_timeline(rid="c").to_dict())
        log.close()                      # close always fsyncs the rest
        assert len(synced) == 2

    def test_write_after_close_is_noop(self, tmp_path):
        path = str(tmp_path / "access.jsonl")
        log = AccessLog(path)
        log.close()
        log.write({"request_id": "late"})
        assert read_access_log(path) == []


class TestRequestTracker:
    def test_request_ids_unique_and_ordered(self):
        tracker = RequestTracker(MetricsRegistry())
        ids = [tracker.new_request_id() for _ in range(100)]
        assert len(set(ids)) == 100
        assert ids == sorted(ids)
        prefix = ids[0].split("-")[0]
        assert all(i.startswith(prefix + "-") for i in ids)

    def test_finalize_updates_ring_and_metrics(self):
        m = MetricsRegistry()
        tracker = RequestTracker(m)
        tracker.finalize(make_timeline(queue_ms=2.0, solve_ms=5.0,
                                       degree=4, priority=1))
        assert len(tracker.ring) == 1
        assert m.counter("reqtrace.requests").value == 1
        assert m.histogram("server.queue_wait_us").count == 1
        assert m.histogram("server.solve_us").count == 1
        lbl = 'server.latency_us{degree_bucket="3-4",priority="1"}'
        assert m.histogram(lbl).count == 1

    def test_deferred_io_waits_for_finish(self, tmp_path):
        path = str(tmp_path / "access.jsonl")
        tracker = RequestTracker(MetricsRegistry(), access_log=path)
        tl = make_timeline(rid="defer-1")
        tracker.finalize(tl, defer_io=True)
        # Ring and histograms update immediately; the log line waits.
        assert len(tracker.ring) == 1
        assert read_access_log(path) == []
        tracker.finish_io("defer-1", serialize_ns=1_000_000,
                          write_ns=2_000_000, start_ns=tl.start_ns + 7_000_000)
        recs = read_access_log(path)
        assert len(recs) == 1
        by_name = {s["name"]: s for s in recs[0]["stages"]}
        assert by_name["serialize"]["wall_ns"] == 1_000_000
        assert by_name["write"]["wall_ns"] == 2_000_000
        # end_ns advanced to cover the IO stages.
        assert recs[0]["end_ns"] == tl.start_ns + 10_000_000
        tracker.close()

    def test_finish_io_unknown_id_is_ignored(self):
        tracker = RequestTracker(MetricsRegistry())
        tracker.finish_io("never-seen", 10, 10)      # must not raise

    def test_pending_overflow_completes_oldest(self, tmp_path):
        path = str(tmp_path / "access.jsonl")
        tracker = RequestTracker(MetricsRegistry(), access_log=path,
                                 max_pending_io=2)
        for i in range(3):
            tracker.finalize(make_timeline(rid=f"p-{i}"), defer_io=True)
        # p-0 was force-completed (without IO stages) to bound memory.
        assert [r["request_id"] for r in read_access_log(path)] == ["p-0"]
        assert len(tracker._pending_io) == 2
        tracker.close()
        assert len(read_access_log(path)) == 3

    def test_close_drains_pending(self, tmp_path):
        path = str(tmp_path / "access.jsonl")
        tracker = RequestTracker(MetricsRegistry(), access_log=path)
        tracker.finalize(make_timeline(rid="d-1"), defer_io=True)
        tracker.close()
        assert [r["request_id"] for r in read_access_log(path)] == ["d-1"]

    @pytest.mark.parametrize("status", FAILURE_STATUSES)
    def test_failures_are_tail_captured(self, tmp_path, status):
        m = MetricsRegistry()
        tracker = RequestTracker(m, capture_dir=str(tmp_path / "caps"))
        tracker.finalize(make_timeline(rid="f-1", status=status,
                                       total_ms=1.0))
        files = os.listdir(tmp_path / "caps")
        assert files == ["req-f-1.trace.json"]
        assert m.counter("reqtrace.tail_captured").value == 1
        trace = json.loads((tmp_path / "caps" / files[0]).read_text())
        names = [ev["name"] for ev in trace["traceEvents"]
                 if ev.get("ph") == "X"]
        assert "request f-1" in names and "solve" in names

    def test_slow_requests_are_tail_captured(self, tmp_path):
        tracker = RequestTracker(MetricsRegistry(),
                                 capture_dir=str(tmp_path / "caps"),
                                 slow_threshold_ns=int(5e6))
        tracker.finalize(make_timeline(rid="fast", total_ms=1.0))
        tracker.finalize(make_timeline(rid="slow", total_ms=50.0))
        assert os.listdir(tmp_path / "caps") == ["req-slow.trace.json"]

    def test_no_capture_dir_means_no_files(self, tmp_path):
        tracker = RequestTracker(MetricsRegistry())
        tracker.finalize(make_timeline(status="error", code=500))
        assert list(tmp_path.iterdir()) == []


class TestTailTable:
    def test_rank_failures_first_then_slowest(self):
        tls = [
            make_timeline(rid="ok-slow", total_ms=90.0),
            make_timeline(rid="err", status="error", code=500,
                          total_ms=5.0),
            make_timeline(rid="ok-fast", total_ms=1.0),
            make_timeline(rid="shed", status="overloaded", code=429,
                          total_ms=30.0),
        ]
        order = [tl.request_id for tl in rank_timelines(tls)]
        assert order == ["shed", "err", "ok-slow", "ok-fast"]

    def test_format_table(self):
        out = format_tail_table([
            make_timeline(rid="r-1", cached=True),
            make_timeline(rid="r-2", status="error", code=500),
        ], limit=10)
        lines = out.splitlines()
        assert lines[0].split()[:3] == ["request_id", "id", "status"]
        assert set(lines[1]) <= {"-", " "}
        # Failures first; cached requests flagged with a star.
        assert lines[2].startswith("r-2") and "error" in lines[2]
        assert "ok*" in lines[3]

    def test_format_empty(self):
        assert format_tail_table([]) == "no timelines"

    def test_limit_truncates(self):
        tls = [make_timeline(rid=f"r-{i}") for i in range(10)]
        out = format_tail_table(tls, limit=3)
        assert len(out.splitlines()) == 2 + 3
