"""RequestJournal: WAL semantics, recovery, compaction, fault hooks."""

import json
import os

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve.journal import (
    SCHEMA,
    JournalEntry,
    RequestJournal,
    incomplete_entries,
    read_journal,
)


def lines(path):
    with open(path, encoding="utf-8") as fh:
        return [json.loads(ln) for ln in fh if ln.strip()]


class TestWriteAndRead:
    def test_accept_complete_roundtrip(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        j = RequestJournal(path, fsync_interval=1)
        j.accept("r1", "k1", [-6, 1, 1], 16, "hybrid", priority=2)
        j.complete("r1", "k1", "ok")
        j.close()
        recs = read_journal(path)
        assert [r["ev"] for r in recs] == ["accept", "complete"]
        acc = recs[0]
        assert acc["schema"] == SCHEMA
        assert acc["key"] == "k1" and acc["request_id"] == "r1"
        assert acc["coeffs"] == ["-6", "1", "1"]
        assert acc["bits"] == 16 and acc["priority"] == 2
        assert j.metrics.counter("journal.accepts").value == 1
        assert j.metrics.counter("journal.completes").value == 1

    def test_close_is_idempotent(self, tmp_path):
        j = RequestJournal(str(tmp_path / "j.jsonl"))
        j.close()
        j.close()
        # Writes after close are silently dropped, not errors.
        j.accept("r", "k", [1, 1], 16, "hybrid")
        assert read_journal(str(tmp_path / "j.jsonl")) == []

    def test_fsync_interval_validated(self, tmp_path):
        with pytest.raises(ValueError):
            RequestJournal(str(tmp_path / "j.jsonl"), fsync_interval=0)

    def test_torn_line_skipped(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with open(path, "w") as fh:
            fh.write(json.dumps({"ev": "accept", "request_id": "a",
                                 "key": "k", "coeffs": ["2", "1"],
                                 "bits": 16}) + "\n")
            fh.write('{"ev": "complete", "request_id": "a", "k')  # torn
        recs = read_journal(path)
        assert len(recs) == 1 and recs[0]["ev"] == "accept"

    def test_foreign_records_ignored(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with open(path, "w") as fh:
            fh.write('{"ev": "other"}\n[1, 2]\nnull\n')
        assert read_journal(path) == []


class TestIncompleteEntries:
    def recs(self):
        return [
            {"ev": "accept", "request_id": "a", "key": "k1",
             "coeffs": ["-6", "1", "1"], "bits": 16},
            {"ev": "accept", "request_id": "b", "key": "k2",
             "coeffs": ["2", "1"], "bits": 16},
            {"ev": "complete", "request_id": "a", "key": "k1",
             "status": "ok"},
        ]

    def test_accept_without_complete_survives(self):
        out = incomplete_entries(self.recs())
        assert [e.request_id for e in out] == ["b"]
        assert out[0].key == "k2" and out[0].coeffs == [2, 1]
        assert out[0].mu == 16

    def test_duplicate_keys_deduped(self):
        recs = self.recs()
        recs.append({"ev": "accept", "request_id": "c", "key": "k2",
                     "coeffs": ["2", "1"], "bits": 16})
        out = incomplete_entries(recs)
        assert len(out) == 1  # one replayed solve serves both retries

    def test_unreplayable_accepts_dropped(self):
        out = incomplete_entries([
            {"ev": "accept", "request_id": "x", "key": "",
             "coeffs": ["1", "1"], "bits": 16},
            {"ev": "accept", "request_id": "y", "key": "k",
             "coeffs": [], "bits": 16},
            {"ev": "accept", "request_id": "z", "key": "k",
             "coeffs": ["1", "1"], "bits": 0},
        ])
        assert out == []


class TestRecovery:
    def test_recover_and_compact(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        j1 = RequestJournal(path, fsync_interval=1)
        j1.accept("a", "k1", [-6, 1, 1], 16, "hybrid")
        j1.complete("a", "k1", "ok")
        j1.accept("b", "k2", [2, 1], 16, "hybrid")
        j1.close()

        j2 = RequestJournal(path)
        assert [e.request_id for e in j2.recovered] == ["b"]
        # Compacted: only the incomplete accept remains on disk.
        recs = lines(path)
        assert len(recs) == 1 and recs[0]["request_id"] == "b"
        j2.complete("b", "k2", "replayed")
        j2.close()
        # Next generation recovers nothing and compacts to empty.
        j3 = RequestJournal(path)
        assert j3.recovered == []
        assert lines(path) == []
        j3.close()

    def test_dropped_lines_counted(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with open(path, "w") as fh:
            fh.write('{"ev": "accept", "request_id": "a", "key": "k",'
                     ' "coeffs": ["2", "1"], "bits": 16}\n')
            fh.write('{"ev": "accept", "req')  # torn by the kill
        m = MetricsRegistry()
        j = RequestJournal(path, metrics=m)
        assert j.dropped_lines == 1
        assert m.counter("journal.dropped_lines").value == 1
        assert len(j.recovered) == 1
        j.close()


class TestFaultHooks:
    def test_enospc_suspends_but_does_not_raise(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        m = MetricsRegistry()
        j = RequestJournal(path, fsync_interval=1, metrics=m)
        j.fail_writes_after = 1
        j.accept("a", "k1", [2, 1], 16, "hybrid")      # write 1: ok
        j.accept("b", "k2", [3, 1], 16, "hybrid")      # write 2: ENOSPC
        j.accept("c", "k3", [4, 1], 16, "hybrid")      # suspended
        assert j.broken
        assert m.counter("journal.write_errors").value == 1
        assert m.counter("journal.accepts").value == 1
        assert len(lines(path)) == 1
        j.close()

    def test_entry_typed_accessors(self):
        e = JournalEntry({"key": "k", "request_id": "r",
                          "coeffs": ["-1", "0", "1"], "bits": 24,
                          "strategy": "newton", "priority": 3})
        assert (e.key, e.request_id, e.mu, e.strategy, e.priority) == (
            "k", "r", 24, "newton", 3)
        assert e.coeffs == [-1, 0, 1]
