"""Tests for the NC-style cofactor/prefix alternative."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.prefix import compute_cofactors, tree_polys_via_cofactors
from repro.core.remainder import compute_remainder_sequence
from repro.core.tree import InterleavingTree
from repro.costmodel.counter import CostCounter
from repro.poly.dense import IntPoly

distinct_roots = st.lists(
    st.integers(min_value=-25, max_value=25), min_size=2, max_size=8,
    unique=True,
)


class TestCofactors:
    def test_base_cases(self):
        seq = compute_remainder_sequence(IntPoly.from_roots([1, 4, 9]))
        cof = compute_cofactors(seq)
        assert cof.A[0] == IntPoly.one() and cof.B[0].is_zero()
        assert cof.A[1].is_zero() and cof.B[1] == IntPoly.one()

    @settings(max_examples=30)
    @given(distinct_roots)
    def test_bezout_identity(self, roots):
        """F_i = A_i F_0 + B_i F_1 for every i."""
        p = IntPoly.from_roots(sorted(roots))
        seq = compute_remainder_sequence(p)
        cof = compute_cofactors(seq)
        for i, f in enumerate(seq.F):
            assert cof.A[i] * seq.F[0] + cof.B[i] * seq.F[1] == f

    def test_degrees(self):
        """deg A_i = i - 2, deg B_i = i - 1 (normal chain)."""
        seq = compute_remainder_sequence(
            IntPoly.from_roots([-9, -2, 3, 8, 15, 21])
        )
        cof = compute_cofactors(seq)
        for i in range(2, seq.n + 1):
            assert cof.A[i].degree == i - 2
            assert cof.B[i].degree == i - 1

    def test_costs_attributed_to_prefix_phase(self):
        c = CostCounter()
        seq = compute_remainder_sequence(IntPoly.from_roots([1, 3, 7, 12]))
        compute_cofactors(seq, c)
        assert c.phase_stats("prefix").mul_count > 0


class TestEq5Equivalence:
    @settings(max_examples=20, deadline=None)
    @given(distinct_roots)
    def test_matches_tree_polynomials(self, roots):
        p = IntPoly.from_roots(sorted(roots))
        seq = compute_remainder_sequence(p)
        tree = InterleavingTree(seq)
        tree.compute_polynomials()
        direct = tree_polys_via_cofactors(seq)
        for node in tree.root:
            if not node.is_empty:
                assert direct[node.label] == node.poly

    def test_root_node_is_input(self):
        p = IntPoly.from_roots([2, 5, 11, 17])
        seq = compute_remainder_sequence(p)
        direct = tree_polys_via_cofactors(seq)
        assert direct[(1, 4)] == p

    def test_more_expensive_than_tree(self):
        p = IntPoly.from_roots(list(range(-10, 11, 2)))
        seq = compute_remainder_sequence(p)
        c_tree, c_pre = CostCounter(), CostCounter()
        InterleavingTree(seq).compute_polynomials(c_tree)
        tree_polys_via_cofactors(seq, counter=c_pre)
        assert c_pre.total_bit_cost > c_tree.total_bit_cost
