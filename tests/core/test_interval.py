"""Tests for the interval-problem case analysis."""

import random
from fractions import Fraction

import pytest

from repro.core.interval import (
    IntervalProblemSolver,
    sign_plus,
    solve_linear_scaled,
)
from repro.core.sieve import IntervalStats
from repro.costmodel.counter import CostCounter
from repro.poly.dense import IntPoly

from tests.conftest import rational_rooted, scaled_ceil


class TestSignPlus:
    def test_nonzero_point(self):
        p = IntPoly.from_roots([0, 2])
        dp = p.derivative()
        assert sign_plus(p, dp, 1, 0) == -1
        assert sign_plus(p, dp, 3, 0) == 1

    def test_exact_root_uses_derivative(self):
        p = IntPoly.from_roots([0, 2])  # at x=0: p'(0) = -2 -> decreasing
        dp = p.derivative()
        assert sign_plus(p, dp, 0, 0) == -1
        assert sign_plus(p, dp, 2, 0) == 1  # p'(2) = 2 > 0

    def test_scaled_exact_root(self):
        # root at 1/2, grid mu=1
        p = IntPoly((-1, 2))  # 2x - 1
        dp = p.derivative()
        assert sign_plus(p, dp, 1, 1) == 1

    def test_double_root_raises(self):
        p = IntPoly.from_roots([1, 1])
        with pytest.raises(ArithmeticError):
            sign_plus(p, p.derivative(), 1, 0)


class TestLinearSolve:
    def test_integer_root(self):
        assert solve_linear_scaled(IntPoly((-6, 2)), 4) == 3 << 4

    def test_rounding_up(self):
        # root 1/3: ceil(2^4 / 3) = 6
        assert solve_linear_scaled(IntPoly((-1, 3)), 4) == 6

    def test_negative_root(self):
        # root -1/3: ceil(-16/3) = -5
        assert solve_linear_scaled(IntPoly((1, 3)), 4) == -5

    def test_negative_leading_coefficient(self):
        assert solve_linear_scaled(IntPoly((6, -2)), 4) == 3 << 4

    def test_nonlinear_raises(self):
        with pytest.raises(ValueError):
            solve_linear_scaled(IntPoly((1, 2, 3)), 4)


class TestCaseAnalysis:
    def _solver(self, p, mu, r_bits, stats=None):
        return IntervalProblemSolver(p, mu, r_bits, CostCounter(), stats)

    def test_case1_equal_approximations(self):
        """Two interleave points in the same grid cell pin the root."""
        # roots at 0 and 100; interleave value at 50 and 50+tiny -> same
        # grid point for coarse mu.
        p = IntPoly.from_roots([0, 50, 100])
        st = IntervalStats()
        solver = self._solver(p, 1, 8, st)
        # interleave approximations at scaled value 81, 100 (scale mu=1)
        out = solver.solve_all([100, 101])
        assert out[1] == 100  # root 50 -> 100 at scale 1
        assert len(out) == 3

    def test_case2a_root_just_below_point(self):
        # root at 9.9-ish: use root 99/10; interleave approx lands at its
        # own ceiling. Construct directly: p with roots 0 and 99/10,
        # interleave point y = 9.9 => ytilde = ceil(2^0 * 9.9) = 10;
        # root x_1 = 9.9 in (9, 10] -> case 2a (u = i+1) -> answer 10.
        p = IntPoly((0, 10)) * IntPoly((-99, 10))  # 10x * (10x - 99)
        if p.leading_coefficient < 0:
            p = -p
        st = IntervalStats()
        solver = self._solver(p, 0, 5, st)
        out = solver.solve_all([10])
        assert out == [0, 10]
        assert st.case2a >= 1

    def test_case2b_root_just_below_next_point(self):
        # roots 0 and 2; interleave y = 1.5 -> ytilde = 2 at mu=0;
        # gap 0: (sentinel, 2]: root 0; gap 1: (2, sentinel]: root 2.
        p = IntPoly.from_roots([0, 2])
        st = IntervalStats()
        solver = self._solver(p, 0, 4, st)
        out = solver.solve_all([2])
        assert out == [0, 2]

    def test_case2c_interior_isolation(self):
        p = IntPoly.from_roots([-7, 13])
        st = IntervalStats()
        solver = self._solver(p, 6, 6, st)
        out = solver.solve_all([3 << 6])
        assert out == [-7 << 6, 13 << 6]
        assert st.case2c >= 1

    def test_wrong_interleave_count_raises(self):
        p = IntPoly.from_roots([1, 2, 3])
        solver = self._solver(p, 4, 4)
        with pytest.raises(ValueError):
            solver.solve_all([1, 2, 3])  # need exactly 2

    def test_constant_poly_raises(self):
        with pytest.raises(ValueError):
            IntervalProblemSolver(IntPoly.constant(2), 4, 4)

    def test_solve_gap_standalone_matches_solve_all(self):
        p = IntPoly.from_roots([-9, -2, 4, 11])
        mu, r = 8, 5
        inter = [(-5) << mu, 1 << mu, 7 << mu]
        full = IntervalProblemSolver(p, mu, r).solve_all(inter)
        solver2 = IntervalProblemSolver(p, mu, r)
        sent = 1 << (r + mu)
        ys = [-sent] + inter + [sent]
        for gap in range(4):
            assert solver2.solve_gap_standalone(gap, ys[gap], ys[gap + 1]) == full[gap]


class TestRandomized:
    def test_rational_roots_randomized(self):
        rng = random.Random(1234)
        for _ in range(60):
            p, fracs = rational_rooted(rng)
            mu = rng.choice([3, 8, 16, 25])
            inter = [
                a + (b - a) * Fraction(rng.randint(10, 90), 100)
                for a, b in zip(fracs, fracs[1:])
            ]
            inter_scaled = [scaled_ceil(y, mu) for y in inter]
            r_bits = max(2, int(max(abs(f) for f in fracs)) .bit_length() + 2)
            got = IntervalProblemSolver(p, mu, r_bits).solve_all(inter_scaled)
            assert got == [scaled_ceil(f, mu) for f in fracs]

    def test_interleave_points_equal_to_roots(self):
        """Adversarial: interleave approximations exactly on grid roots."""
        p = IntPoly.from_roots([0, 4, 8])
        mu = 3
        # true interleaving values happen to be the neighbouring roots
        # themselves shifted by exact grid amounts
        got = IntervalProblemSolver(p, mu, 5).solve_all([2 << mu, 6 << mu])
        assert got == [0, 4 << mu, 8 << mu]

    def test_stats_accumulate(self):
        p = IntPoly.from_roots([-10, 0, 10])
        st = IntervalStats()
        IntervalProblemSolver(p, 10, 5, CostCounter(), st).solve_all(
            [(-5) << 10, 5 << 10]
        )
        assert st.solves == st.case2c
        assert st.evaluations > 0
        assert len(st.per_solve) == st.solves

    def test_stats_merge(self):
        a, b = IntervalStats(evaluations=3, solves=1), IntervalStats(
            evaluations=4, case2c=2
        )
        a.merge(b)
        assert a.evaluations == 7
        assert a.case2c == 2
