"""Tests for the public root-isolation API."""

from fractions import Fraction

import pytest

from repro.core.isolate import IsolatingInterval, isolate_real_roots
from repro.poly.dense import IntPoly
from repro.poly.sturm import count_roots_in_open, sturm_chain


class TestIsolatingInterval:
    def test_membership_half_open(self):
        iv = IsolatingInterval(Fraction(0), Fraction(1), 1)
        assert Fraction(1) in iv
        assert Fraction(0) not in iv
        assert Fraction(1, 2) in iv

    def test_width_and_midpoint(self):
        iv = IsolatingInterval(Fraction(1, 4), Fraction(3, 4), 2)
        assert iv.width == Fraction(1, 2)
        assert iv.midpoint == Fraction(1, 2)


class TestIsolation:
    def test_integer_roots(self):
        ivs = isolate_real_roots(IntPoly.from_roots([-5, 0, 7]))
        assert len(ivs) == 3
        for iv, root in zip(ivs, (-5, 0, 7)):
            assert root in iv
            assert iv.multiplicity == 1

    def test_intervals_disjoint_and_sorted(self):
        ivs = isolate_real_roots(IntPoly.from_roots([1, 2, 3, 4]))
        for a, b in zip(ivs, ivs[1:]):
            assert a.hi <= b.lo

    def test_each_interval_contains_exactly_one_root(self):
        p = IntPoly.from_roots([-9, -3, 2, 8]) * IntPoly((-2, 0, 1))
        ivs = isolate_real_roots(p)
        chain = sturm_chain(p)
        for iv in ivs:
            # count roots in (lo, hi] via scaled Sturm counts; fractions
            # reduce, so rescale both endpoints to a common dyadic grid
            mu = max(iv.lo.denominator, iv.hi.denominator).bit_length() - 1
            lo_s = iv.lo * (1 << mu)
            hi_s = iv.hi * (1 << mu)
            assert lo_s.denominator == 1 and hi_s.denominator == 1
            from repro.poly.sturm import variations_at_scaled

            v = variations_at_scaled(chain, int(lo_s), mu) - variations_at_scaled(
                chain, int(hi_s), mu
            )
            assert v == 1

    def test_precision_escalation_for_close_roots(self):
        # roots 1/4096 apart need mu > 12 — must escalate beyond initial 8
        p = IntPoly((-1, 4096)) * IntPoly((-2, 4096))
        ivs = isolate_real_roots(p, initial_mu=4)
        assert len(ivs) == 2
        assert ivs[0].hi <= ivs[1].lo
        assert Fraction(1, 4096) in ivs[0]
        assert Fraction(2, 4096) in ivs[1]

    def test_multiplicities_reported(self):
        ivs = isolate_real_roots(IntPoly.from_roots([2, 2, 2, 5]))
        assert [iv.multiplicity for iv in ivs] == [3, 1]

    def test_degree_zero(self):
        assert isolate_real_roots(IntPoly.constant(3)) == []

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            isolate_real_roots(IntPoly.zero())

    def test_max_mu_guard(self):
        p = IntPoly((-1, 1 << 40)) * IntPoly((-2, 1 << 40))
        with pytest.raises(RuntimeError):
            isolate_real_roots(p, initial_mu=4, max_mu=8)
