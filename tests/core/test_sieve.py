"""Tests for the hybrid sieve/bisection/Newton solver."""

import random

import pytest

from repro.core.sieve import HybridSolver, IntervalStats, bisection_budget
from repro.costmodel.counter import CostCounter
from repro.poly.dense import IntPoly


def make_solver(p, mu, stats=None):
    return HybridSolver(p, p.derivative(), mu, CostCounter(), stats)


class TestBudget:
    def test_bisection_budget_formula(self):
        assert bisection_budget(1) == 4    # ceil(log2(10))
        assert bisection_budget(10) == 10  # ceil(log2(1000))
        assert bisection_budget(70) == 16  # ceil(log2(49000))

    def test_budget_minimum(self):
        assert bisection_budget(0) >= 1


class TestSolve:
    def test_simple_root(self):
        p = IntPoly.from_roots([5])  # but degree-1 handled upstream; use deg 2
        p = IntPoly.from_roots([5, 100])
        mu = 6
        solver = make_solver(p, mu)
        # isolate root 5 inside (0, 64) scaled by 2^6
        got = solver.solve(0, 64 << mu, sigma_a=solver._sign_plus(0, "interval.sieve", "sieve_evals"))
        assert got == 5 << mu

    def test_root_close_to_left_end(self):
        # root at 1/1024 inside (0, big): sieve must zoom toward lo
        p = IntPoly((-1, 1024)) * IntPoly((-2000, 1))
        if p.leading_coefficient < 0:
            p = -p
        mu = 20
        st = IntervalStats()
        solver = make_solver(p, mu, st)
        sigma = 1 if p.sign_at_neg_inf() * (-1) ** 0 else 1
        sigma = solver._sign_plus(0, "interval.sieve", "sieve_evals")
        got = solver.solve(0, 1000 << mu, sigma)
        assert got == (1 << 20) // 1024  # 2^20/2^10 = 1024
        assert st.sieve_rounds >= 1

    def test_root_close_to_right_end(self):
        # root at 999.999-ish: (1000*2^mu - 1) region; mirrored sieve
        mu = 12
        p = IntPoly((-(999 << mu) - 1, 1 << mu)) * IntPoly((3000, 1))
        if p.leading_coefficient < 0:
            p = -p
        st = IntervalStats()
        solver = make_solver(p, mu, st)
        sigma = solver._sign_plus(0, "interval.sieve", "sieve_evals")
        got = solver.solve(0, 1000 << mu, sigma)
        assert got == (999 << mu) + 1

    def test_empty_bracket_raises(self):
        solver = make_solver(IntPoly.from_roots([1, 2]), 4)
        with pytest.raises(ValueError):
            solver.solve(5, 5, 1)

    def test_bracket_length_one(self):
        p = IntPoly.from_roots([1, 10])
        mu = 0
        solver = make_solver(p, mu)
        sigma = solver._sign_plus(0, "interval.sieve", "sieve_evals")
        assert solver.solve(0, 1, sigma) == 1

    def test_per_solve_recorded(self):
        st = IntervalStats()
        p = IntPoly.from_roots([7, 1000])
        solver = make_solver(p, 8, st)
        sigma = solver._sign_plus(0, "interval.sieve", "sieve_evals")
        solver.solve(0, 100 << 8, sigma)
        assert st.solves == 1
        assert len(st.per_solve) == 1
        s, b, n = st.per_solve[0]
        assert s == st.sieve_evals - 1  # minus the sigma probe above
        assert b == st.bisection_evals


class TestNewtonEfficiency:
    def test_newton_iteration_count_logarithmic(self):
        """Quadratic convergence: iterations ~ log2(mu), not ~ mu."""
        random.seed(3)
        mu = 160
        p = IntPoly.from_roots([3, 1000])
        st = IntervalStats()
        solver = make_solver(p, mu, st)
        sigma = solver._sign_plus(0, "interval.sieve", "sieve_evals")
        got = solver.solve(0, 500 << mu, sigma)
        assert got == 3 << mu
        assert st.newton_iters <= 20  # log2(160) ~ 7.3 plus slack

    def test_certification_probe_exactness(self):
        """The returned value is exactly ceil(2^mu * root) for an
        irrational root (sqrt(2))."""
        from decimal import Decimal, getcontext

        p = IntPoly((-2, 0, 1)) * IntPoly((-100, 1))  # (x^2-2)(x-100)
        mu = 64
        st = IntervalStats()
        solver = make_solver(p, mu, st)
        sigma = solver._sign_plus(1 << mu, "interval.sieve", "sieve_evals")
        got = solver.solve(1 << mu, 2 << mu, sigma)
        getcontext().prec = 60
        sqrt2 = Decimal(2).sqrt()
        expected = int((sqrt2 * (1 << mu)).to_integral_value(rounding="ROUND_CEILING"))
        assert got == expected


class TestStress:
    def test_many_random_isolations(self):
        rng = random.Random(77)
        for _ in range(40):
            r1 = rng.randint(-500, 500)
            r2 = r1 + rng.randint(1, 1000)
            p = IntPoly.from_roots([r1, r2])
            mu = rng.choice([1, 5, 11, 23])
            st = IntervalStats()
            solver = make_solver(p, mu, st)
            lo = (r1 - 1) << mu
            hi = ((r1 + r2) // 2 + 1) << mu
            sigma = solver._sign_plus(lo, "interval.sieve", "sieve_evals")
            assert solver.solve(lo, hi, sigma) == r1 << mu
