"""Tests for the exact certification oracle."""

import pytest

from repro.core.certify import CertificationError, certify_roots
from repro.core.rootfinder import RealRootFinder
from repro.poly.dense import IntPoly


class TestAcceptsCorrect:
    def test_integer_roots(self):
        p = IntPoly.from_roots([-4, 1, 7])
        res = RealRootFinder(mu_bits=12).find_roots(p)
        certify_roots(p, res.scaled, res.multiplicities, 12)

    def test_irrational_roots(self):
        p = IntPoly((-2, 0, 1)) * IntPoly((-3, 0, 1))  # sqrt2, sqrt3 pairs
        res = RealRootFinder(mu_bits=24).find_roots(p)
        certify_roots(p, res.scaled, res.multiplicities, 24)

    def test_repeated_roots(self):
        p = IntPoly.from_roots([2, 2, 5])
        res = RealRootFinder(mu_bits=10).find_roots(p)
        certify_roots(p, res.scaled, res.multiplicities, 10)

    def test_close_roots_same_cell(self):
        # roots 0 and 1/1024 share a cell at mu=4
        p = IntPoly((0, 1)) * IntPoly((-1, 1024))
        res = RealRootFinder(mu_bits=4).find_roots(p)
        assert res.scaled[0] == res.scaled[1] or res.scaled[0] + 1 == res.scaled[1]
        certify_roots(p, res.scaled, res.multiplicities, 4)


class TestRejectsWrong:
    def test_wrong_value(self):
        p = IntPoly.from_roots([-4, 1, 7])
        res = RealRootFinder(mu_bits=12).find_roots(p)
        bad = list(res.scaled)
        bad[1] += 1
        with pytest.raises(CertificationError):
            certify_roots(p, bad, res.multiplicities, 12)

    def test_missing_root(self):
        p = IntPoly.from_roots([-4, 1, 7])
        res = RealRootFinder(mu_bits=12).find_roots(p)
        with pytest.raises(CertificationError):
            certify_roots(p, res.scaled[:-1], res.multiplicities[:-1], 12)

    def test_wrong_multiplicity_sum(self):
        p = IntPoly.from_roots([2, 2, 5])
        res = RealRootFinder(mu_bits=10).find_roots(p)
        with pytest.raises(CertificationError):
            certify_roots(p, res.scaled, [1, 1], 10)

    def test_unsorted_rejected(self):
        p = IntPoly.from_roots([-4, 1])
        res = RealRootFinder(mu_bits=12).find_roots(p)
        with pytest.raises(CertificationError):
            certify_roots(p, list(reversed(res.scaled)),
                          res.multiplicities, 12)

    def test_length_mismatch(self):
        p = IntPoly.from_roots([1, 2])
        with pytest.raises(CertificationError):
            certify_roots(p, [1 << 4], [1, 1], 4)

    def test_zero_polynomial(self):
        with pytest.raises(CertificationError):
            certify_roots(IntPoly.zero(), [], [], 4)

    def test_duplicate_claim_with_single_root(self):
        p = IntPoly.from_roots([0, 100])  # far apart roots
        res = RealRootFinder(mu_bits=6).find_roots(p)
        # claim both roots in the same cell
        bad = [res.scaled[0], res.scaled[0]]
        with pytest.raises(CertificationError):
            certify_roots(p, bad, [1, 1], 6)
