"""Tests for the exact certification oracle."""

import pytest

from repro.core.certify import (
    CertificationError,
    _sign_right_limit,
    certify_roots,
)
from repro.core.rootfinder import RealRootFinder
from repro.costmodel.counter import NULL_COUNTER
from repro.poly.dense import IntPoly


class TestAcceptsCorrect:
    def test_integer_roots(self):
        p = IntPoly.from_roots([-4, 1, 7])
        res = RealRootFinder(mu_bits=12).find_roots(p)
        certify_roots(p, res.scaled, res.multiplicities, 12)

    def test_irrational_roots(self):
        p = IntPoly((-2, 0, 1)) * IntPoly((-3, 0, 1))  # sqrt2, sqrt3 pairs
        res = RealRootFinder(mu_bits=24).find_roots(p)
        certify_roots(p, res.scaled, res.multiplicities, 24)

    def test_repeated_roots(self):
        p = IntPoly.from_roots([2, 2, 5])
        res = RealRootFinder(mu_bits=10).find_roots(p)
        certify_roots(p, res.scaled, res.multiplicities, 10)

    def test_close_roots_same_cell(self):
        # roots 0 and 1/1024 share a cell at mu=4
        p = IntPoly((0, 1)) * IntPoly((-1, 1024))
        res = RealRootFinder(mu_bits=4).find_roots(p)
        assert res.scaled[0] == res.scaled[1] or res.scaled[0] + 1 == res.scaled[1]
        certify_roots(p, res.scaled, res.multiplicities, 4)


class TestRejectsWrong:
    def test_wrong_value(self):
        p = IntPoly.from_roots([-4, 1, 7])
        res = RealRootFinder(mu_bits=12).find_roots(p)
        bad = list(res.scaled)
        bad[1] += 1
        with pytest.raises(CertificationError):
            certify_roots(p, bad, res.multiplicities, 12)

    def test_missing_root(self):
        p = IntPoly.from_roots([-4, 1, 7])
        res = RealRootFinder(mu_bits=12).find_roots(p)
        with pytest.raises(CertificationError):
            certify_roots(p, res.scaled[:-1], res.multiplicities[:-1], 12)

    def test_wrong_multiplicity_sum(self):
        p = IntPoly.from_roots([2, 2, 5])
        res = RealRootFinder(mu_bits=10).find_roots(p)
        with pytest.raises(CertificationError):
            certify_roots(p, res.scaled, [1, 1], 10)

    def test_unsorted_rejected(self):
        p = IntPoly.from_roots([-4, 1])
        res = RealRootFinder(mu_bits=12).find_roots(p)
        with pytest.raises(CertificationError):
            certify_roots(p, list(reversed(res.scaled)),
                          res.multiplicities, 12)

    def test_length_mismatch(self):
        p = IntPoly.from_roots([1, 2])
        with pytest.raises(CertificationError):
            certify_roots(p, [1 << 4], [1, 1], 4)

    def test_zero_polynomial(self):
        with pytest.raises(CertificationError):
            certify_roots(IntPoly.zero(), [], [], 4)

    def test_duplicate_claim_with_single_root(self):
        p = IntPoly.from_roots([0, 100])  # far apart roots
        res = RealRootFinder(mu_bits=6).find_roots(p)
        # claim both roots in the same cell
        bad = [res.scaled[0], res.scaled[0]]
        with pytest.raises(CertificationError):
            certify_roots(p, bad, [1, 1], 6)


class TestEndpointDegeneracy:
    """The guard path: a chain member vanishing exactly at a probe point
    is resolved by the exact derivative walk (no epsilon probing)."""

    def test_sign_right_limit_at_simple_root(self):
        # x - 1 at the point 1: vanishes, derivative is +1.
        assert _sign_right_limit(IntPoly((-1, 1)), 1, 0, NULL_COUNTER) == 1
        assert _sign_right_limit(IntPoly((1, -1)), 1, 0, NULL_COUNTER) == -1

    def test_sign_right_limit_walks_past_repeated_vanishing(self):
        # x**3 at 0: p, p', p'' all vanish; the walk reaches p''' = 6.
        p = IntPoly((0, 0, 0, 1))
        assert _sign_right_limit(p, 0, 4, NULL_COUNTER) == 1
        assert _sign_right_limit(-p, 0, 4, NULL_COUNTER) == -1

    def test_sign_right_limit_zero_polynomial_member(self):
        assert _sign_right_limit(IntPoly.zero(), 3, 2, NULL_COUNTER) == 0

    def test_chain_member_vanishes_at_probe_point(self):
        # p = x**3 - 3x at mu=0 claims cells with probe points
        # {-2, -1, 0, 1, 2}: the chain's second member p' = 3x**2 - 3
        # vanishes at the probes -1 and 1, and p itself at the probe 0.
        # Certification must resolve all three exactly.
        p = IntPoly((0, -3, 0, 1))
        certify_roots(p, [-1, 0, 2], [1, 1, 1], 0)

    def test_root_exactly_on_probe_grid(self):
        # Root 1 at mu=1 claims cell (1/2, 1]; the probe point 1 is the
        # root itself, so chain[0] vanishes there.
        p = IntPoly.from_roots([1, 3])
        res = RealRootFinder(mu_bits=1).find_roots(p)
        assert res.scaled[0] == 2  # ceil(2 * 1)
        certify_roots(p, res.scaled, res.multiplicities, 1)

    def test_repeated_root_on_probe_grid(self):
        # Triple root at 0: square-free part x vanishes at the probe 0.
        p = IntPoly((0, 0, 0, 1))
        certify_roots(p, [0], [3], 4)

    def test_degenerate_probe_still_rejects_wrong_claim(self):
        # Same degenerate geometry, but a false claim: a shifted cell
        # whose count is wrong must still be refuted.
        p = IntPoly.from_roots([1, 3])
        res = RealRootFinder(mu_bits=1).find_roots(p)
        bad = [res.scaled[0] - 1, res.scaled[1]]
        with pytest.raises(CertificationError):
            certify_roots(p, bad, res.multiplicities, 1)
