"""Additional coverage: solver statistics under each strategy."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.interval import IntervalProblemSolver
from repro.core.sieve import STRATEGIES, IntervalStats, bisection_budget
from repro.poly.dense import IntPoly


class TestBudgetProperties:
    @given(st.integers(min_value=1, max_value=500))
    def test_budget_monotone(self, d):
        assert bisection_budget(d + 1) >= bisection_budget(d)

    @given(st.integers(min_value=1, max_value=500))
    def test_budget_covers_target(self, d):
        assert (1 << bisection_budget(d)) >= 10 * d * d


class TestPerSolveRecords:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_per_solve_triples(self, strategy):
        p = IntPoly.from_roots([-9, -2, 4, 11])
        st_ = IntervalStats()
        solver = IntervalProblemSolver(p, 12, 5, stats=st_, strategy=strategy)
        solver.solve_all([(-5) << 12, 1 << 12, 7 << 12])
        assert len(st_.per_solve) == st_.solves
        for s, b, nit in st_.per_solve:
            assert s >= 0 and b >= 0 and nit >= 0
        if strategy == "bisection":
            assert all(s == 0 and nit == 0 for s, _b, nit in st_.per_solve)
        if strategy == "newton":
            assert all(s == 0 and b == 0 for s, b, _n in st_.per_solve)

    def test_strategy_stored(self):
        p = IntPoly.from_roots([1, 5])
        solver = IntervalProblemSolver(p, 8, 4, strategy="newton")
        assert solver._solver.strategy == "newton"
