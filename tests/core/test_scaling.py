"""Tests for mu-scaled fixed-point helpers."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.scaling import (
    ceil_div,
    digits_to_bits,
    floor_div,
    mu_ceil_of_rational,
    rescale,
    scaled_to_float,
    scaled_to_fraction,
)


class TestDivisions:
    def test_ceil_div(self):
        assert ceil_div(7, 2) == 4
        assert ceil_div(-7, 2) == -3
        assert ceil_div(6, 2) == 3

    def test_floor_div(self):
        assert floor_div(7, 2) == 3
        assert floor_div(-7, 2) == -4

    def test_nonpositive_denominator_raises(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)
        with pytest.raises(ValueError):
            floor_div(1, -2)

    @given(st.integers(-10**9, 10**9), st.integers(1, 10**6))
    def test_ceil_floor_relation(self, a, b):
        assert ceil_div(a, b) == -floor_div(-a, b)
        assert 0 <= ceil_div(a, b) * b - a < b


class TestMuCeil:
    def test_positive(self):
        assert mu_ceil_of_rational(1, 3, 4) == 6  # ceil(16/3)

    def test_negative_value(self):
        assert mu_ceil_of_rational(-1, 3, 4) == -5

    def test_negative_denominator_normalized(self):
        assert mu_ceil_of_rational(1, -3, 4) == -5

    def test_zero_denominator_raises(self):
        with pytest.raises(ZeroDivisionError):
            mu_ceil_of_rational(1, 0, 4)

    @given(st.integers(-10**6, 10**6),
           st.integers(1, 10**4),
           st.integers(0, 40))
    def test_is_exact_ceiling(self, num, den, mu):
        v = mu_ceil_of_rational(num, den, mu)
        f = Fraction(num, den) * (1 << mu)
        assert v - 1 < f <= v


class TestConversions:
    def test_scaled_to_fraction(self):
        assert scaled_to_fraction(5, 2) == Fraction(5, 4)

    def test_scaled_to_float(self):
        assert scaled_to_float(5, 2) == 1.25

    def test_rescale_finer_exact(self):
        assert rescale(3, 2, 5) == 24

    def test_rescale_coarser_ceils(self):
        assert rescale(25, 5, 2) == 4  # 25/32 -> ceil(25/8)/... = ceil(3.125)

    def test_rescale_identity(self):
        assert rescale(9, 3, 3) == 9

    @given(st.integers(-10**9, 10**9), st.integers(0, 30), st.integers(0, 30))
    def test_rescale_roundtrip_upward(self, v, a, b):
        if b >= a:
            assert rescale(rescale(v, a, b), b, a) == v


class TestDigits:
    def test_digits_to_bits(self):
        assert digits_to_bits(0) == 0
        assert digits_to_bits(1) == 4      # ceil(3.32)
        assert digits_to_bits(4) == 14     # ceil(13.28)
        assert digits_to_bits(32) == 107   # ceil(106.3)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            digits_to_bits(-1)

    def test_monotone(self):
        vals = [digits_to_bits(d) for d in range(50)]
        assert vals == sorted(vals)
