"""Tests for the task-granular decomposition (Section 3 fidelity)."""

import pytest

from repro.bench.workloads import square_free_characteristic_input
from repro.core.rootfinder import RealRootFinder
from repro.core.tasks import build_task_graph
from repro.costmodel.counter import CostCounter
from repro.poly.dense import IntPoly
from repro.sched.task import TaskKind


def run_graph(p, mu):
    c = CostCounter()
    tg = build_task_graph(p, mu, c)
    tg.graph.run_recorded(c)
    return tg, c


class TestEquivalence:
    @pytest.mark.parametrize("roots", [
        [1, 2], [0, 5, -5], [-7, -1, 2, 9], [3, 8, 15, 22, 31, 40],
    ])
    def test_roots_identical_to_sequential(self, roots):
        p = IntPoly.from_roots(roots)
        mu = 18
        ref = RealRootFinder(mu_bits=mu).find_roots(p)
        tg, _ = run_graph(p, mu)
        assert tg.roots_scaled() == ref.scaled

    def test_charpoly_equivalence(self):
        inp = square_free_characteristic_input(14, 7)
        mu = 24
        ref = RealRootFinder(mu_bits=mu).find_roots(inp.poly)
        tg, _ = run_graph(inp.poly, mu)
        assert tg.roots_scaled() == ref.scaled

    def test_result_requires_execution(self):
        tg = build_task_graph(IntPoly.from_roots([1, 2]), 8)
        with pytest.raises(RuntimeError):
            tg.roots_scaled()


class TestGraphShape:
    def test_remainder_task_count(self):
        """Paper Section 3.1: iteration i contributes 5(n-i) body tasks
        plus 3 head tasks."""
        n = 9
        p = IntPoly.from_roots([k * 3 for k in range(n)])
        tg, _ = run_graph(p, 8)
        kinds = {}
        for t in tg.graph.tasks:
            kinds[t.kind] = kinds.get(t.kind, 0) + 1
        body = sum(5 * (n - i) for i in range(1, n))
        assert (
            kinds[TaskKind.REM_MUL] + kinds[TaskKind.REM_ADD]
            + kinds[TaskKind.REM_DIV]
        ) == body + 1  # +1 derivative init task (REM_MUL)
        assert kinds[TaskKind.REM_Q] == 3 * (n - 1)

    def test_interval_task_per_root(self):
        n = 8
        p = IntPoly.from_roots([k * 5 - 17 for k in range(n)])
        tg, _ = run_graph(p, 8)
        n_interval = sum(
            1 for t in tg.graph.tasks if t.kind is TaskKind.INTERVAL
        )
        n_lin = sum(1 for t in tg.graph.tasks if t.kind is TaskKind.LINROOT)
        # Across the whole tree, every node of degree d contributes d
        # root-producing tasks; total root tasks = sum of node degrees.
        assert n_interval + n_lin >= n  # at least the root node's

    def test_matmul_tasks_eight_per_interior_node(self):
        p = IntPoly.from_roots([1, 4, 9, 16, 25, 36, 49])
        tg, _ = run_graph(p, 8)
        matmul = [t for t in tg.graph.tasks if t.kind is TaskKind.MATMUL]
        assert len(matmul) % 8 == 0
        assert matmul, "interior non-rightmost nodes must exist for n=7"

    def test_recurse_tasks_cover_tree(self):
        p = IntPoly.from_roots([2, 4, 8, 16, 32])
        tg, _ = run_graph(p, 8)
        recs = [t for t in tg.graph.tasks
                if t.kind is TaskKind.RECURSE and t.label.startswith("recurse")]
        assert len(recs) >= 5

    def test_costs_recorded_on_all_tasks(self):
        p = IntPoly.from_roots([1, 3, 7, 12])
        tg, _ = run_graph(p, 12)
        assert all(t.cost is not None for t in tg.graph.tasks)
        assert any(t.cost > 0 for t in tg.graph.tasks)


class TestValidation:
    def test_not_square_free_fails_fast(self):
        p = IntPoly.from_roots([2, 2, 5])
        tg = build_task_graph(p, 8)
        with pytest.raises(ArithmeticError):
            tg.graph.run_recorded(CostCounter())

    def test_non_real_rooted_fails(self):
        p = IntPoly((1, 0, 0, 0, 1))
        tg = build_task_graph(p, 8)
        with pytest.raises(ArithmeticError):
            tg.graph.run_recorded(CostCounter())

    def test_constant_rejected_at_build(self):
        with pytest.raises(ValueError):
            build_task_graph(IntPoly.constant(3), 8)

    def test_negative_lead_normalized(self):
        tg, _ = run_graph(-IntPoly.from_roots([1, 6]), 8)
        assert tg.roots_scaled() == [1 << 8, 6 << 8]


class TestCostConsistency:
    def test_task_costs_sum_to_counter_total(self):
        p = IntPoly.from_roots([-9, -1, 4, 13, 21])
        c = CostCounter()
        tg = build_task_graph(p, 16, c)
        tg.graph.run_recorded(c)
        total_task_cost = sum(t.cost for t in tg.graph.tasks)
        assert total_task_cost == c.total_bit_cost
