"""Tests for incremental precision refinement."""

import dataclasses
from fractions import Fraction

import pytest

from repro.core.refine import (
    EvenMultiplicityError,
    SharedCellError,
    refine_result,
    refine_root,
)
from repro.core.rootfinder import RealRootFinder
from repro.costmodel.counter import CostCounter
from repro.poly.dense import IntPoly
from repro.poly.gcd import square_free_part

from tests.conftest import rational_rooted, scaled_ceil


class TestRefineRoot:
    def test_matches_direct_high_precision(self):
        p = IntPoly((-2, 0, 1)) * IntPoly.from_roots([-9])
        coarse = RealRootFinder(mu_bits=12).find_roots(p)
        direct = RealRootFinder(mu_bits=120).find_roots(p)
        for c, d in zip(coarse.scaled, direct.scaled):
            assert refine_root(p, c, 12, 120) == d

    def test_same_precision_identity(self):
        assert refine_root(IntPoly.from_roots([1, 5]), 1 << 8, 8, 8) == 1 << 8

    def test_decreasing_precision_rejected(self):
        with pytest.raises(ValueError):
            refine_root(IntPoly.from_roots([1, 5]), 1 << 8, 8, 4)

    def test_exact_grid_root(self):
        p = IntPoly.from_roots([3, 10])
        assert refine_root(p, 3 << 6, 6, 40) == 3 << 40

    def test_bad_bracket_rejected(self):
        p = IntPoly.from_roots([3, 10])
        with pytest.raises(ValueError):
            refine_root(p, 5 << 6, 6, 20)  # no root in (4, 5] cell


class TestBadBracketDiagnosis:
    """The bad-bracket error must say *why*: no root at all, a root of
    even multiplicity, or a cell shared by several roots."""

    def test_no_root_is_plain_value_error(self):
        p = IntPoly.from_roots([3, 10])
        with pytest.raises(ValueError, match="contains no root") as exc:
            refine_root(p, 5 << 6, 6, 20)
        assert not isinstance(exc.value, (EvenMultiplicityError,
                                          SharedCellError))

    def test_even_multiplicity_off_grid(self):
        # double root at 1/3: p never changes sign around it
        p = IntPoly((-1, 3)) * IntPoly((-1, 3)) * IntPoly((-7, 1))
        with pytest.raises(EvenMultiplicityError, match="square-free"):
            refine_root(p, 6, 4, 20)  # ceil(16/3) = 6

    def test_even_multiplicity_on_grid(self):
        # double root exactly at 2: p and p' both vanish at the probe
        # point, which used to crash with ArithmeticError
        p = IntPoly.from_roots([2, 2, 7])
        with pytest.raises(EvenMultiplicityError):
            refine_root(p, 2 << 4, 4, 20)

    def test_shared_cell(self):
        p = IntPoly((-1, 4096)) * IntPoly((-3, 4096))
        res = RealRootFinder(mu_bits=4).find_roots(p)
        assert res.scaled[0] == res.scaled[1] == 1
        with pytest.raises(SharedCellError, match="refine_result"):
            refine_root(p, 1, 4, 20)

    def test_diagnosis_errors_are_value_errors(self):
        # back-compat: callers catching ValueError keep working
        assert issubclass(EvenMultiplicityError, ValueError)
        assert issubclass(SharedCellError, ValueError)

    def test_refine_result_handles_even_multiplicity(self):
        # the actionable advice actually works: refine_result refines
        # the same polynomial refine_root refuses
        p = IntPoly((-1, 3)) * IntPoly((-1, 3)) * IntPoly((-7, 1))
        res = RealRootFinder(mu_bits=4).find_roots(p)
        fine = refine_result(res, p, 30)
        assert fine.scaled == [scaled_ceil(Fraction(1, 3), 30), 7 << 30]


class TestAccountingFixes:
    def test_square_free_cost_is_counted(self):
        """The gcd inside refine_result must bill the caller's counter:
        total cost == (square-free gcd cost) + (refinement-only cost)."""
        p = IntPoly.from_roots([2, 2, 7])
        res = RealRootFinder(mu_bits=10).find_roots(p)
        c_all = CostCounter()
        fine = refine_result(res, p, 50, counter=c_all)
        assert fine.scaled == [2 << 50, 7 << 50]

        c_gcd = CostCounter()
        sf = square_free_part(p, c_gcd)
        c_refine = CostCounter()
        res_sf = dataclasses.replace(res, degree=sf.degree,
                                     square_free_degree=sf.degree)
        refine_result(res_sf, sf, 50, counter=c_refine)
        assert c_gcd.mul_count > 0
        assert c_all.mul_count == c_gcd.mul_count + c_refine.mul_count

    def test_elapsed_seconds_is_measured(self):
        p = IntPoly.from_roots([-11, -2, 3, 9, 17])
        res = RealRootFinder(mu_bits=16).find_roots(p)
        fine = refine_result(res, p, 512)
        assert fine.elapsed_seconds > 0.0

    def test_elapsed_seconds_on_shared_cell_rerun(self):
        p = IntPoly((-1, 4096)) * IntPoly((-3, 4096))
        res = RealRootFinder(mu_bits=4).find_roots(p)
        fine = refine_result(res, p, 20)
        assert fine.elapsed_seconds > 0.0


class TestRefineResult:
    def test_matches_direct_run(self):
        import random

        rng = random.Random(7)
        for _ in range(10):
            p, fracs = rational_rooted(rng)
            res = RealRootFinder(mu_bits=10).find_roots(p)
            fine = refine_result(res, p, 60)
            assert fine.scaled == [scaled_ceil(f, 60) for f in fracs]
            assert fine.mu == 60

    def test_repeated_roots_refined(self):
        p = IntPoly.from_roots([2, 2, 7])
        res = RealRootFinder(mu_bits=10).find_roots(p)
        fine = refine_result(res, p, 50)
        assert fine.scaled == [2 << 50, 7 << 50]
        assert fine.multiplicities == [2, 1]

    def test_shared_cell_falls_back_to_full_run(self):
        # two roots within one coarse cell: refine must re-separate
        p = IntPoly((-1, 4096)) * IntPoly((-3, 4096))  # roots 1/4096, 3/4096
        res = RealRootFinder(mu_bits=4).find_roots(p)
        assert res.scaled[0] == res.scaled[1]  # shared cell at mu=4
        fine = refine_result(res, p, 20)
        assert fine.scaled == [
            scaled_ceil(Fraction(1, 4096), 20),
            scaled_ceil(Fraction(3, 4096), 20),
        ]

    def test_lower_precision_rejected(self):
        p = IntPoly.from_roots([1, 5])
        res = RealRootFinder(mu_bits=20).find_roots(p)
        with pytest.raises(ValueError):
            refine_result(res, p, 10)

    def test_refinement_is_cheap(self):
        """Refining 16 -> 512 bits costs far fewer evaluations than a
        fresh 512-bit run (no tree, Newton doubling)."""
        p = IntPoly.from_roots([-11, -2, 3, 9, 17]) * IntPoly((-7, 0, 2))
        res = RealRootFinder(mu_bits=16).find_roots(p)
        from repro.costmodel.counter import CostCounter

        c_ref = CostCounter()
        fine = refine_result(res, p, 512, counter=c_ref)
        c_full = CostCounter()
        direct = RealRootFinder(mu_bits=512, counter=c_full).find_roots(p)
        assert fine.scaled == direct.scaled
        assert c_ref.mul_count < 0.5 * c_full.mul_count
