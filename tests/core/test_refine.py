"""Tests for incremental precision refinement."""

from fractions import Fraction

import pytest

from repro.core.refine import refine_result, refine_root
from repro.core.rootfinder import RealRootFinder
from repro.poly.dense import IntPoly

from tests.conftest import rational_rooted, scaled_ceil


class TestRefineRoot:
    def test_matches_direct_high_precision(self):
        p = IntPoly((-2, 0, 1)) * IntPoly.from_roots([-9])
        coarse = RealRootFinder(mu_bits=12).find_roots(p)
        direct = RealRootFinder(mu_bits=120).find_roots(p)
        for c, d in zip(coarse.scaled, direct.scaled):
            assert refine_root(p, c, 12, 120) == d

    def test_same_precision_identity(self):
        assert refine_root(IntPoly.from_roots([1, 5]), 1 << 8, 8, 8) == 1 << 8

    def test_decreasing_precision_rejected(self):
        with pytest.raises(ValueError):
            refine_root(IntPoly.from_roots([1, 5]), 1 << 8, 8, 4)

    def test_exact_grid_root(self):
        p = IntPoly.from_roots([3, 10])
        assert refine_root(p, 3 << 6, 6, 40) == 3 << 40

    def test_bad_bracket_rejected(self):
        p = IntPoly.from_roots([3, 10])
        with pytest.raises(ValueError):
            refine_root(p, 5 << 6, 6, 20)  # no root in (4, 5] cell


class TestRefineResult:
    def test_matches_direct_run(self):
        import random

        rng = random.Random(7)
        for _ in range(10):
            p, fracs = rational_rooted(rng)
            res = RealRootFinder(mu_bits=10).find_roots(p)
            fine = refine_result(res, p, 60)
            assert fine.scaled == [scaled_ceil(f, 60) for f in fracs]
            assert fine.mu == 60

    def test_repeated_roots_refined(self):
        p = IntPoly.from_roots([2, 2, 7])
        res = RealRootFinder(mu_bits=10).find_roots(p)
        fine = refine_result(res, p, 50)
        assert fine.scaled == [2 << 50, 7 << 50]
        assert fine.multiplicities == [2, 1]

    def test_shared_cell_falls_back_to_full_run(self):
        # two roots within one coarse cell: refine must re-separate
        p = IntPoly((-1, 4096)) * IntPoly((-3, 4096))  # roots 1/4096, 3/4096
        res = RealRootFinder(mu_bits=4).find_roots(p)
        assert res.scaled[0] == res.scaled[1]  # shared cell at mu=4
        fine = refine_result(res, p, 20)
        assert fine.scaled == [
            scaled_ceil(Fraction(1, 4096), 20),
            scaled_ceil(Fraction(3, 4096), 20),
        ]

    def test_lower_precision_rejected(self):
        p = IntPoly.from_roots([1, 5])
        res = RealRootFinder(mu_bits=20).find_roots(p)
        with pytest.raises(ValueError):
            refine_result(res, p, 10)

    def test_refinement_is_cheap(self):
        """Refining 16 -> 512 bits costs far fewer evaluations than a
        fresh 512-bit run (no tree, Newton doubling)."""
        p = IntPoly.from_roots([-11, -2, 3, 9, 17]) * IntPoly((-7, 0, 2))
        res = RealRootFinder(mu_bits=16).find_roots(p)
        from repro.costmodel.counter import CostCounter

        c_ref = CostCounter()
        fine = refine_result(res, p, 512, counter=c_ref)
        c_full = CostCounter()
        direct = RealRootFinder(mu_bits=512, counter=c_full).find_roots(p)
        assert fine.scaled == direct.scaled
        assert c_ref.mul_count < 0.5 * c_full.mul_count
