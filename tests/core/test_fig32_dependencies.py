"""Structural fidelity to the paper's Fig. 3.2 task dependencies.

The figure prescribes, per tree node: RECURSE precedes everything at
the node; COMPUTEPOLY (the matrix-entry tasks) feeds PREINTERVAL;
SORT merges the children's roots and also feeds PREINTERVAL; each
INTERVAL task needs its PREINTERVAL evaluations; parents' SORTs wait on
children's INTERVALs.  These tests check the *recorded DAG's* reachability
relation encodes exactly those orderings.
"""

import re

import pytest

from repro.core.tasks import build_task_graph
from repro.costmodel.counter import CostCounter
from repro.poly.dense import IntPoly
from repro.sched.task import TaskKind


@pytest.fixture(scope="module")
def graph():
    p = IntPoly.from_roots([-13, -6, -1, 3, 8, 14, 21, 29])
    tg = build_task_graph(p, 16, CostCounter())
    tg.graph.run_recorded(CostCounter())
    return tg.graph


@pytest.fixture(scope="module")
def reach(graph):
    """Boolean reachability: reach[a] = set of ancestors (deps closure)."""
    anc: list[set[int]] = []
    for t in graph.tasks:
        s = set(t.deps)
        for d in t.deps:
            s |= anc[d]
        anc.append(s)
    return anc


def tasks_of(graph, kind, label_re=None):
    out = []
    for t in graph.tasks:
        if t.kind is kind and (label_re is None or re.search(label_re, t.label)):
            out.append(t)
    return out


def node_of(label):
    m = re.search(r"\[(\d+),(\d+)\]", label)
    return (int(m.group(1)), int(m.group(2))) if m else None


class TestFig32:
    def test_interval_needs_its_preintervals(self, graph, reach):
        pre_by_node = {}
        for t in tasks_of(graph, TaskKind.PREINTERVAL):
            pre_by_node.setdefault(node_of(t.label), []).append(t.tid)
        for t in tasks_of(graph, TaskKind.INTERVAL):
            node = node_of(t.label)
            gap = int(t.label.split("#")[1])
            pres = sorted(pre_by_node[node])
            assert pres[gap] in reach[t.tid]
            assert pres[gap + 1] in reach[t.tid]

    def test_sort_needs_all_children_intervals(self, graph, reach):
        roots_by_node = {}
        for t in tasks_of(graph, TaskKind.INTERVAL) + tasks_of(
            graph, TaskKind.LINROOT
        ):
            roots_by_node.setdefault(node_of(t.label), []).append(t.tid)
        for t in tasks_of(graph, TaskKind.SORT):
            i, j = node_of(t.label)
            # children labels
            k = (i + j) // 2
            for child in ((i, k - 1), (k + 1, j)):
                for tid in roots_by_node.get(child, []):
                    assert tid in reach[t.tid], (t.label, child)

    def test_preinterval_needs_sort_and_polynomial(self, graph, reach):
        sort_by_node = {
            node_of(t.label): t.tid for t in tasks_of(graph, TaskKind.SORT)
        }
        poly_ready_kinds = (TaskKind.DIVSCALE, TaskKind.SPINEPOLY,
                            TaskKind.LEAFPOLY)
        poly_by_node = {}
        for kind in poly_ready_kinds:
            for t in tasks_of(graph, kind):
                node = node_of(t.label)
                if node:
                    poly_by_node[node] = t.tid
        for t in tasks_of(graph, TaskKind.PREINTERVAL):
            node = node_of(t.label)
            assert sort_by_node[node] in reach[t.tid]
            if node in poly_by_node:
                assert poly_by_node[node] in reach[t.tid]

    def test_matmul_second_product_needs_first(self, graph, reach):
        m1 = {}
        for t in tasks_of(graph, TaskKind.MATMUL, r"^m1"):
            node = node_of(t.label)
            m1.setdefault(node, []).append(t.tid)
        for t in tasks_of(graph, TaskKind.MATMUL, r"^m2"):
            node = node_of(t.label)
            # each m2 entry needs the two m1 entries of its row
            row_hits = sum(1 for tid in m1[node] if tid in reach[t.tid])
            assert row_hits >= 2

    def test_recurse_precedes_node_work(self, graph, reach):
        recurse_by_node = {
            node_of(t.label): t.tid
            for t in tasks_of(graph, TaskKind.RECURSE, r"recurse")
        }
        for kind in (TaskKind.MATMUL, TaskKind.LEAFPOLY, TaskKind.SPINEPOLY):
            for t in tasks_of(graph, kind):
                node = node_of(t.label)
                if node in recurse_by_node:
                    assert recurse_by_node[node] in reach[t.tid], t.label

    def test_remainder_feeds_tree(self, graph, reach):
        """Every SPINEPOLY (adopting F_{i-1}) transitively needs the
        remainder divisions that produced those coefficients."""
        rem_div = [t.tid for t in tasks_of(graph, TaskKind.REM_DIV)]
        spines = tasks_of(graph, TaskKind.SPINEPOLY)
        assert spines
        for t in spines:
            i, _j = node_of(t.label)
            if i >= 3:  # F_{i-1} with i-1 >= 2 required actual divisions
                assert any(tid in reach[t.tid] for tid in rem_div), t.label
