"""Tests for the standard remainder/quotient sequence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel.counter import CostCounter
from repro.core.remainder import (
    NotRealRootedError,
    NotSquareFreeError,
    compute_remainder_sequence,
)
from repro.poly.dense import IntPoly
from repro.poly.sturm import sign_variations

distinct_roots = st.lists(
    st.integers(min_value=-30, max_value=30), min_size=2, max_size=7, unique=True
)


class TestStructure:
    def test_degrees_descend_by_one(self):
        p = IntPoly.from_roots([-4, -1, 2, 6])
        seq = compute_remainder_sequence(p)
        for i, f in enumerate(seq.F):
            assert f.degree == seq.n - i

    def test_first_two_elements(self):
        p = IntPoly.from_roots([1, 5, 9])
        seq = compute_remainder_sequence(p)
        assert seq.F[0] == p
        assert seq.F[1] == p.derivative()

    def test_quotients_linear_with_positive_lead(self):
        p = IntPoly.from_roots([-7, 0, 3, 11, 20])
        seq = compute_remainder_sequence(p)
        for i in range(1, seq.n):
            q = seq.quotient(i)
            assert q.degree == 1
            assert q.leading_coefficient > 0

    def test_quotient_index_bounds(self):
        seq = compute_remainder_sequence(IntPoly.from_roots([0, 1, 2]))
        with pytest.raises(IndexError):
            seq.quotient(0)
        with pytest.raises(IndexError):
            seq.quotient(seq.n)

    def test_leads_same_sign(self):
        seq = compute_remainder_sequence(IntPoly.from_roots([-2, 1, 4]))
        assert seq.same_sign_leads()
        assert all(c > 0 for c in seq.c[1:])

    def test_c0_is_normalized_to_one(self):
        seq = compute_remainder_sequence(5 * IntPoly.from_roots([1, 2]))
        assert seq.c[0] == 1

    def test_recurrence_identity(self):
        """F_{i+1} = (Q_i F_i - c_i^2 F_{i-1}) / c_{i-1}^2 exactly."""
        p = IntPoly.from_roots([-9, -2, 0, 5, 13])
        seq = compute_remainder_sequence(p)
        for i in range(1, seq.n):
            lhs = seq.quotient(i) * seq.F[i] - (seq.c[i] ** 2) * seq.F[i - 1]
            divisor = 1 if i == 1 else seq.c[i - 1] ** 2
            assert lhs == seq.F[i + 1].scale(divisor)


class TestSturmProperty:
    def test_is_sturm_chain(self):
        """V(-inf) - V(x) counts roots below x."""
        roots = [-8, -3, 1, 6, 14]
        seq = compute_remainder_sequence(IntPoly.from_roots(roots))

        def v_at(x):
            return sign_variations(
                [(f(x) > 0) - (f(x) < 0) for f in seq.F]
            )

        v_neg = sign_variations(
            [f.sign_at_neg_inf() for f in seq.F]
        )
        for x in (-10, -5, 0, 3, 10, 20):
            expected = sum(1 for r in roots if r < x)
            assert v_neg - v_at(x) == expected

    @settings(max_examples=40)
    @given(distinct_roots)
    def test_interleaving_of_consecutive_terms(self, roots):
        """Each F_{i+1}'s sign alternates at F_i's roots (interleaving)."""
        import numpy as np

        p = IntPoly.from_roots(sorted(roots))
        seq = compute_remainder_sequence(p)
        for i in range(len(seq.F) - 1):
            if seq.F[i].degree < 2:
                break
            ri = np.sort(np.roots(list(reversed(seq.F[i].coeffs))).real)
            rn = np.sort(np.roots(list(reversed(seq.F[i + 1].coeffs))).real)
            for a, b in zip(rn, ri[1:]):
                pass  # ordering checked below
            # interleaving: ri[t] <= rn[t] <= ri[t+1]
            for t in range(len(rn)):
                assert ri[t] <= rn[t] + 1e-6
                assert rn[t] <= ri[t + 1] + 1e-6


class TestErrors:
    def test_repeated_roots_detected(self):
        with pytest.raises(NotSquareFreeError) as ei:
            compute_remainder_sequence(IntPoly.from_roots([3, 3, 5]))
        err = ei.value
        assert err.n_star == 2
        assert err.gcd.degree == 1  # proportional to (x - 3)

    def test_complex_roots_detected(self):
        with pytest.raises(NotRealRootedError):
            compute_remainder_sequence(IntPoly((1, 0, 0, 0, 1)))  # x^4 + 1

    def test_complex_roots_detected_mixed(self):
        # (x^2 + 1)(x - 2)(x + 5): 2 real, 2 complex
        p = IntPoly((1, 0, 1)) * IntPoly.from_roots([2, -5])
        with pytest.raises(NotRealRootedError):
            compute_remainder_sequence(p)

    def test_negative_leading_coefficient_rejected(self):
        with pytest.raises(ValueError):
            compute_remainder_sequence(-IntPoly.from_roots([1, 2]))

    def test_constant_rejected(self):
        with pytest.raises(ValueError):
            compute_remainder_sequence(IntPoly.constant(3))

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            compute_remainder_sequence(IntPoly.zero())


class TestCosts:
    def test_costs_attributed_to_remainder_phase(self):
        c = CostCounter()
        compute_remainder_sequence(IntPoly.from_roots([-3, 1, 4, 9]), c)
        assert c.phase_stats("remainder").mul_count > 0
        assert c.phase_stats("interval").mul_count == 0

    def test_linear_input_trivial_sequence(self):
        seq = compute_remainder_sequence(IntPoly.from_roots([7]))
        assert seq.n == 1
        assert len(seq.F) == 2
        assert seq.F[1].degree == 0
