"""Additional tree-shape coverage, including the paper's 2^K - 1 case."""

from repro.core.remainder import compute_remainder_sequence
from repro.core.tree import InterleavingTree
from repro.poly.dense import IntPoly


def build(n):
    p = IntPoly.from_roots([7 * k + (-1) ** k for k in range(n)])
    seq = compute_remainder_sequence(p)
    return InterleavingTree(seq)


class TestShapes:
    def test_power_of_two_minus_one_is_complete(self):
        """The Section 4.2 analysis assumes n = 2^K - 1: every level l
        then has 2^l non-empty nodes of degree 2^(K-l) - 1."""
        tree = build(15)  # K = 4
        levels = tree.nodes_by_level()
        for lvl, nodes in levels.items():
            nonempty = [nd for nd in nodes if not nd.is_empty]
            if nonempty:
                assert len(nonempty) <= 2**lvl
                for nd in nonempty:
                    assert nd.degree in (2 ** (4 - lvl) - 1, 2 ** (4 - lvl)), (
                        lvl, nd.label
                    )

    def test_degrees_sum_to_n_per_full_level(self):
        tree = build(15)
        levels = tree.nodes_by_level()
        # level 1's two nodes carry n-1 roots between them
        lvl1 = [nd.degree for nd in levels[1] if not nd.is_empty]
        assert sum(lvl1) == 14

    def test_general_n_total_root_tasks(self):
        for n in (5, 9, 12):
            tree = build(n)
            total = sum(nd.degree for nd in tree.root if not nd.is_empty)
            # every node contributes its degree in roots; the total over
            # the tree is at most ~2n (geometric halving)
            assert n <= total <= 2 * n + tree.node_count()

    def test_single_node_tree(self):
        tree = build(1)
        assert tree.root.is_leaf
        assert tree.node_count() == 1
