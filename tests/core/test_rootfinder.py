"""End-to-end tests for RealRootFinder."""

import random
from fractions import Fraction

import numpy as np
import pytest

from repro.charpoly.generator import random_symmetric_01_matrix
from repro.charpoly import characteristic_input
from repro.core.remainder import NotRealRootedError
from repro.core.rootfinder import RealRootFinder, RootResult, merge_sorted
from repro.costmodel.counter import CostCounter
from repro.poly.dense import IntPoly

from tests.conftest import rational_rooted, scaled_ceil


class TestMergeSorted:
    def test_basic(self):
        assert merge_sorted([1, 4, 9], [2, 3, 10]) == [1, 2, 3, 4, 9, 10]

    def test_empty(self):
        assert merge_sorted([], [5]) == [5]
        assert merge_sorted([], []) == []

    def test_duplicates_kept(self):
        assert merge_sorted([1, 2], [2, 3]) == [1, 2, 2, 3]


class TestBasicRoots:
    def test_integer_roots_exact(self):
        res = RealRootFinder(mu_bits=16).find_roots(IntPoly.from_roots([-3, 0, 2]))
        assert res.as_floats() == [-3.0, 0.0, 2.0]
        assert res.multiplicities == [1, 1, 1]

    def test_linear(self):
        res = RealRootFinder(mu_bits=8).find_roots(IntPoly((-10, 4)))  # root 2.5
        assert res.as_floats() == [2.5]

    def test_degree_zero(self):
        res = RealRootFinder(mu_bits=8).find_roots(IntPoly.constant(7))
        assert len(res) == 0

    def test_degree_zero_measures_elapsed(self):
        # The early return must still report a measured (nonzero) wall time.
        res = RealRootFinder(mu_bits=8).find_roots(IntPoly.constant(7))
        assert res.elapsed_seconds > 0.0

    def test_zero_polynomial_raises(self):
        with pytest.raises(ValueError):
            RealRootFinder(mu_bits=8).find_roots(IntPoly.zero())

    def test_unknown_strategy_rejected_at_construction(self):
        # Fail fast, not lazily inside the solver on the first gap.
        with pytest.raises(ValueError, match="unknown strategy"):
            RealRootFinder(mu_bits=8, strategy="bogus")

    def test_negative_leading_coefficient_normalized(self):
        res = RealRootFinder(mu_bits=10).find_roots(-IntPoly.from_roots([1, 5]))
        assert res.as_floats() == [1.0, 5.0]

    def test_non_real_rooted_raises(self):
        with pytest.raises(NotRealRootedError):
            RealRootFinder(mu_bits=8).find_roots(IntPoly((1, 0, 1)))

    def test_bad_mu_raises(self):
        with pytest.raises(ValueError):
            RealRootFinder(mu_bits=0)

    def test_from_digits(self):
        f = RealRootFinder.from_digits(4)
        assert f.mu == 14

    def test_irrational_roots_are_ceilings(self):
        # x^2 - 2: roots +-sqrt(2)
        res = RealRootFinder(mu_bits=40).find_roots(IntPoly((-2, 0, 1)))
        for s, x in zip(res.scaled, [-2**0.5, 2**0.5]):
            f = Fraction(s, 1 << 40)
            assert abs(float(f) - x) < 2**-39
        # exact ceiling property via Fractions: p(s/2^mu) >= 0 boundary
        p = IntPoly((-2, 0, 1))
        for s in res.scaled:
            v_at = p.sign_at_rational(s, 1 << 40)
            v_before = p.sign_at_rational(s - 1, 1 << 40)
            # root in (s-1, s] at scale: signs differ or zero at s
            assert v_at == 0 or v_at != v_before


class TestResultObject:
    def test_error_bound(self):
        res = RealRootFinder(mu_bits=5).find_roots(IntPoly.from_roots([1]))
        assert res.error_bound() == Fraction(1, 32)

    def test_as_fractions(self):
        res = RealRootFinder(mu_bits=3).find_roots(IntPoly.from_roots([2]))
        assert res.as_fractions() == [Fraction(2)]

    def test_keep_structures(self):
        f = RealRootFinder(mu_bits=8, keep_structures=True)
        res = f.find_roots(IntPoly.from_roots([1, 2, 3]))
        assert res.tree is not None
        assert res.sequence is not None
        assert res.tree.root.poly == IntPoly.from_roots([1, 2, 3])

    def test_structures_dropped_by_default(self):
        res = RealRootFinder(mu_bits=8).find_roots(IntPoly.from_roots([1, 2]))
        assert res.tree is None

    def test_elapsed_recorded(self):
        res = RealRootFinder(mu_bits=8).find_roots(IntPoly.from_roots([1, 2]))
        assert res.elapsed_seconds >= 0


class TestRepeatedRoots:
    def test_multiplicities(self):
        p = IntPoly.from_roots([1, 1, 1, 2, 2, -3])
        res = RealRootFinder(mu_bits=16).find_roots(p)
        assert res.as_floats() == [-3.0, 1.0, 2.0]
        assert res.multiplicities == [1, 3, 2]
        assert res.degree == 6
        assert res.square_free_degree == 3

    def test_all_same_root(self):
        res = RealRootFinder(mu_bits=8).find_roots(IntPoly.from_roots([4] * 5))
        assert res.as_floats() == [4.0]
        assert res.multiplicities == [5]

    def test_mixed_content(self):
        p = 6 * IntPoly.from_roots([0, 0, 7])
        res = RealRootFinder(mu_bits=12).find_roots(p)
        assert res.as_floats() == [0.0, 7.0]
        assert res.multiplicities == [2, 1]


class TestAgainstOracles:
    def test_charpoly_vs_eigvalsh(self):
        for n, seed in [(8, 3), (12, 5), (16, 9), (24, 2)]:
            inp = characteristic_input(n, seed)
            res = RealRootFinder(mu_bits=30).find_roots(inp.poly)
            eig = np.sort(np.linalg.eigvalsh(
                np.array(random_symmetric_01_matrix(n, seed), dtype=float)
            ))
            approx = np.array([
                f for f, m in zip(res.as_floats(), res.multiplicities)
                for _ in range(m)
            ])
            assert len(approx) == n
            assert np.max(np.abs(approx - eig)) < 1e-7

    def test_rational_roots_randomized(self):
        rng = random.Random(42)
        for _ in range(30):
            p, fracs = rational_rooted(rng)
            mu = rng.choice([4, 10, 20])
            res = RealRootFinder(mu_bits=mu).find_roots(p)
            assert res.scaled == [scaled_ceil(f, mu) for f in fracs]

    def test_precision_refinement_consistency(self):
        """Higher-precision answers refine lower-precision ones."""
        p = IntPoly.from_roots([-6, 1, 9]) * IntPoly((-7, 3))
        prev = None
        for mu in (4, 8, 16, 32):
            res = RealRootFinder(mu_bits=mu).find_roots(p)
            vals = res.as_fractions()
            if prev is not None:
                for lo_v, hi_v in zip(prev, vals):
                    # coarser ceiling is >= finer ceiling, within one step
                    assert 0 <= lo_v - hi_v < Fraction(1, 1 << (mu // 2))
            prev = vals


class TestCostAccounting:
    def test_counter_collects_phases(self):
        c = CostCounter()
        RealRootFinder(mu_bits=20, counter=c).find_roots(
            IntPoly.from_roots([-11, -2, 3, 8, 15])
        )
        phases = set(c.phases())
        assert "remainder" in phases
        assert any(p.startswith("interval") for p in phases)

    def test_stats_populated(self):
        res = RealRootFinder(mu_bits=20).find_roots(
            IntPoly.from_roots([-11, -2, 3, 8, 15])
        )
        assert res.stats.evaluations > 0
        assert res.stats.solves > 0


class TestTinyPrecision:
    def test_mu_one_bit(self):
        """Half-integer grid: ceil(2x)/2."""
        p = IntPoly.from_roots([1, 4]) * IntPoly((-3, 0, 4))  # +-sqrt(3)/2
        res = RealRootFinder(mu_bits=1).find_roots(p)
        # sqrt(3)/2 ~ 0.866 -> ceil at grid 1/2 is 1.0; -0.866 -> -0.5
        assert res.as_floats() == [-0.5, 1.0, 1.0, 4.0]

    def test_mu_one_integer_roots(self):
        res = RealRootFinder(mu_bits=1).find_roots(IntPoly.from_roots([-2, 3]))
        assert res.as_floats() == [-2.0, 3.0]
