"""Tests for the interleaving tree (Theorem 1 in executable form)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.remainder import compute_remainder_sequence
from repro.core.tree import InterleavingTree, split_index, u_matrix
from repro.poly.dense import IntPoly
from repro.poly.sturm import count_roots_in_open, sturm_chain

distinct_roots = st.lists(
    st.integers(min_value=-25, max_value=25), min_size=2, max_size=8, unique=True
)


def build(roots):
    p = IntPoly.from_roots(sorted(roots))
    seq = compute_remainder_sequence(p)
    tree = InterleavingTree(seq)
    tree.compute_polynomials(check=True)
    return p, tree


class TestStructure:
    def test_root_label(self):
        _p, tree = build([1, 2, 3, 4, 5])
        assert tree.root.label == (1, 5)

    def test_node_count_linear_in_n(self):
        _p, tree = build(list(range(1, 9)))
        # Every node splits into two children; counting empties the node
        # count is bounded by ~3n.
        assert tree.node_count() <= 3 * 8

    def test_children_partition_indices(self):
        _p, tree = build(list(range(1, 8)))
        for node in tree.root:
            if node.left is None:
                continue
            k = node.pivot
            assert node.left.label == (node.i, k - 1)
            assert node.right.label == (k + 1, node.j)
            assert node.i <= k <= node.j

    def test_postorder_children_before_parents(self):
        _p, tree = build(list(range(1, 7)))
        seen = set()
        for node in tree.root:
            if node.left is not None:
                assert node.left.label in seen
                assert node.right.label in seen
            seen.add(node.label)

    def test_levels(self):
        _p, tree = build(list(range(1, 8)))  # n = 7 = 2^3 - 1
        levels = tree.nodes_by_level()
        assert len(levels[0]) == 1
        assert all(nd.level == lvl for lvl, lst in levels.items() for nd in lst)

    def test_split_index_midpoint(self):
        assert split_index(1, 10) == 5
        assert split_index(3, 4) == 3


class TestPolynomials:
    def test_root_poly_is_input(self):
        p, tree = build([-5, -1, 0, 3, 8, 12])
        assert tree.root.poly == p

    def test_rightmost_spine_is_remainder_sequence(self):
        _p, tree = build(list(range(0, 12, 2)))
        for node in tree.root:
            if node.j == tree.n and not node.is_empty:
                assert node.poly == tree.seq.F[node.i - 1]
                assert node.matrix is None

    def test_leaf_polys_are_quotients(self):
        _p, tree = build([-3, 1, 5, 9, 14])
        for node in tree.root:
            if node.is_leaf and node.j < tree.n:
                assert node.poly == tree.seq.quotient(node.i)

    def test_degree_equals_label_width(self):
        _p, tree = build([-9, -4, 0, 2, 7, 11, 19])
        for node in tree.root:
            if not node.is_empty:
                assert node.poly.degree == node.degree

    def test_positive_leading_coefficients(self):
        _p, tree = build([-6, -2, 3, 10, 15, 21])
        for node in tree.root:
            if not node.is_empty and node.j < tree.n:
                assert node.poly.leading_coefficient > 0

    def test_combine_matches_direct_product(self):
        _p, tree = build([-8, -3, -1, 4, 9, 13, 17, 22])
        for node in tree.root:
            if node.matrix is not None and not node.is_empty and node.j < tree.n:
                assert tree.direct_t_matrix(node.i, node.j) == node.matrix

    def test_empty_nodes(self):
        _p, tree = build([1, 2])
        empties = [nd for nd in tree.root if nd.is_empty]
        assert empties, "n=2 tree must contain an empty child"
        for nd in empties:
            assert nd.poly == IntPoly.one()

    def test_u_matrix_entries(self):
        seq = compute_remainder_sequence(IntPoly.from_roots([1, 4, 7]))
        u1 = u_matrix(seq, 1)
        assert u1.entry(1, 1).is_zero()
        assert u1.entry(1, 2) == IntPoly.constant(1)  # c_0^2 = 1
        assert u1.entry(2, 1) == IntPoly.constant(-seq.c[1] ** 2)
        assert u1.entry(2, 2) == seq.quotient(1)


class TestInterleavingTheorem:
    @settings(max_examples=25, deadline=None)
    @given(distinct_roots)
    def test_children_roots_interleave_parent(self, roots):
        """Theorem 1(ii), certified with exact Sturm counts: strictly
        between consecutive roots of any node there is exactly one
        child root, checked via float root brackets + exact counting."""
        p, tree = build(roots)
        for node in tree.root:
            if node.is_empty or node.degree < 2:
                continue
            pr = np.sort(np.roots(list(reversed(node.poly.coeffs))).real)
            kids = []
            for ch in (node.left, node.right):
                if ch is not None and not ch.is_empty:
                    kids.extend(np.roots(list(reversed(ch.poly.coeffs))).real)
            kids = np.sort(np.array(kids))
            assert len(kids) == node.degree - 1
            for t in range(len(kids)):
                assert pr[t] <= kids[t] + 1e-6
                assert kids[t] <= pr[t + 1] + 1e-6

    def test_tree_polys_have_all_real_distinct_roots(self):
        p, tree = build([-11, -5, 0, 4, 9, 16, 23])
        for node in tree.root:
            if node.is_empty or node.degree < 1:
                continue
            chain = sturm_chain(node.poly)
            lo, hi = -(10**6), 10**6
            assert count_roots_in_open(chain, lo, hi, 0) == node.degree


class TestChecks:
    def test_check_flag_catches_corruption(self):
        p = IntPoly.from_roots([1, 3, 6, 10])
        seq = compute_remainder_sequence(p)
        tree = InterleavingTree(seq)
        # Corrupt a quotient to break Theorem 1, then expect the check
        # to fire.
        seq.Q[1] = IntPoly((1, 0, 1))  # not linear
        with pytest.raises(Exception):
            tree.compute_polynomials(check=True)
