"""Tests for the interval-solver strategy variants."""

import pytest

from repro.bench.workloads import square_free_characteristic_input
from repro.core.rootfinder import RealRootFinder
from repro.core.sieve import STRATEGIES, HybridSolver
from repro.costmodel.counter import CostCounter
from repro.poly.dense import IntPoly


class TestStrategyEquivalence:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_identical_answers(self, strategy):
        p = IntPoly.from_roots([-9, -2, 0, 5, 13]) * IntPoly((-3, 0, 1))
        ref = RealRootFinder(mu_bits=40).find_roots(p)
        got = RealRootFinder(mu_bits=40, strategy=strategy).find_roots(p)
        assert got.scaled == ref.scaled

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_charpoly_answers(self, strategy):
        inp = square_free_characteristic_input(12, 11)
        ref = RealRootFinder(mu_bits=27).find_roots(inp.poly)
        got = RealRootFinder(mu_bits=27, strategy=strategy).find_roots(inp.poly)
        assert got.scaled == ref.scaled

    def test_unknown_strategy_rejected(self):
        p = IntPoly.from_roots([1, 2])
        with pytest.raises(ValueError):
            HybridSolver(p, p.derivative(), 8, strategy="secant")


class TestStrategyCosts:
    def test_bisection_cost_linear_in_mu(self):
        inp = square_free_characteristic_input(12, 11)
        evals = {}
        for mu in (16, 64):
            res = RealRootFinder(
                mu_bits=mu, strategy="bisection"
            ).find_roots(inp.poly)
            evals[mu] = res.stats.evaluations / max(res.stats.solves, 1)
        # 4x the precision => roughly 2-4x the evals (linear-ish + consts)
        assert evals[64] > 1.8 * evals[16]

    def test_hybrid_cost_sublinear_in_mu(self):
        inp = square_free_characteristic_input(12, 11)
        evals = {}
        for mu in (16, 64):
            res = RealRootFinder(mu_bits=mu).find_roots(inp.poly)
            evals[mu] = res.stats.evaluations / max(res.stats.solves, 1)
        assert evals[64] < 1.6 * evals[16]

    def test_bisection_strategy_uses_only_bisection_phase(self):
        inp = square_free_characteristic_input(10, 11)
        res = RealRootFinder(
            mu_bits=20, strategy="bisection"
        ).find_roots(inp.poly)
        assert res.stats.sieve_evals == 0
        assert res.stats.newton_evals == 0
        assert res.stats.bisection_evals > 0

    def test_newton_strategy_uses_only_newton_phase(self):
        inp = square_free_characteristic_input(10, 11)
        res = RealRootFinder(
            mu_bits=20, strategy="newton"
        ).find_roots(inp.poly)
        assert res.stats.sieve_evals == 0
        assert res.stats.bisection_evals == 0
        assert res.stats.newton_evals > 0
