"""Tests for the task-graph run-time options."""

from repro.bench.workloads import square_free_characteristic_input
from repro.core.tasks import build_task_graph
from repro.costmodel.counter import CostCounter
from repro.poly.dense import IntPoly
from repro.sched.simulator import speedup_curve
from repro.sched.task import TaskKind


def record(p, mu, **kwargs):
    c = CostCounter()
    tg = build_task_graph(p, mu, c, **kwargs)
    tg.graph.run_recorded(c)
    return tg


class TestSequentialRemainder:
    def test_same_results(self):
        p = IntPoly.from_roots([-11, -4, 0, 3, 9, 16])
        a = record(p, 20)
        b = record(p, 20, sequential_remainder=True)
        assert a.roots_scaled() == b.roots_scaled()

    def test_remainder_tasks_form_a_chain(self):
        p = IntPoly.from_roots([1, 4, 9, 16, 25])
        tg = record(p, 12, sequential_remainder=True)
        rem_tids = [
            t.tid for t in tg.graph.tasks if t.phase == "remainder"
        ]
        # every remainder task (after the first) depends on its
        # predecessor in creation order
        for prev, cur in zip(rem_tids, rem_tids[1:]):
            assert prev in tg.graph.tasks[cur].deps

    def test_parallel_mode_has_no_chain(self):
        p = IntPoly.from_roots([1, 4, 9, 16, 25])
        tg = record(p, 12)
        rem_tids = [t.tid for t in tg.graph.tasks if t.phase == "remainder"]
        chained = sum(
            1
            for prev, cur in zip(rem_tids, rem_tids[1:])
            if prev in tg.graph.tasks[cur].deps
        )
        assert chained < len(rem_tids) - 1

    def test_sequential_remainder_reduces_parallelism(self):
        inp = square_free_characteristic_input(15, 11)
        par = record(inp.poly, 14)
        seq = record(inp.poly, 14, sequential_remainder=True)
        s_par = speedup_curve(par.graph, [16])
        s_seq = speedup_curve(seq.graph, [16])
        sp_par = s_par[1].makespan / s_par[16].makespan
        sp_seq = s_seq[1].makespan / s_seq[16].makespan
        assert sp_seq < sp_par

    def test_total_work_unchanged(self):
        p = IntPoly.from_roots([-6, -1, 2, 8])
        a = record(p, 16)
        b = record(p, 16, sequential_remainder=True)
        assert a.graph.stats().total_work == b.graph.stats().total_work

    def test_critical_path_grows(self):
        inp = square_free_characteristic_input(12, 11)
        a = record(inp.poly, 14)
        b = record(inp.poly, 14, sequential_remainder=True)
        assert b.graph.stats().critical_path > a.graph.stats().critical_path
