"""Tests for the division-free Berkowitz characteristic polynomial."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.charpoly.berkowitz import berkowitz_charpoly, charpoly_int
from repro.poly.dense import IntPoly


def np_charpoly(mat):
    """Reference: numpy.poly, highest-degree-first, rounded to int."""
    return [round(c) for c in np.poly(np.array(mat, dtype=float))]


class TestSmallCases:
    def test_empty_matrix(self):
        assert berkowitz_charpoly([]) == IntPoly.one()

    def test_1x1(self):
        assert berkowitz_charpoly([[7]]) == IntPoly((-7, 1))

    def test_2x2(self):
        # det(xI - A) = x^2 - tr x + det
        p = berkowitz_charpoly([[1, 2], [3, 4]])
        assert p == IntPoly((-2, -5, 1))

    def test_identity_matrix(self):
        p = berkowitz_charpoly([[1, 0, 0], [0, 1, 0], [0, 0, 1]])
        assert p == IntPoly.from_roots([1, 1, 1])

    def test_diagonal(self):
        p = berkowitz_charpoly([[2, 0, 0], [0, -3, 0], [0, 0, 5]])
        assert p == IntPoly.from_roots([2, -3, 5])

    def test_nilpotent(self):
        p = berkowitz_charpoly([[0, 1], [0, 0]])
        assert p == IntPoly((0, 0, 1))

    def test_monic_and_degree(self):
        m = [[1, 2, 0], [2, 0, 1], [0, 1, 1]]
        p = berkowitz_charpoly(m)
        assert p.degree == 3
        assert p.leading_coefficient == 1

    def test_rectangular_raises(self):
        with pytest.raises(ValueError):
            berkowitz_charpoly([[1, 2], [3, 4], [5, 6]][0:2] + [[1]])

    def test_alias(self):
        assert charpoly_int([[3]]) == berkowitz_charpoly([[3]])


class TestAgainstNumpy:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=1, max_value=6), st.randoms())
    def test_random_integer_matrices(self, n, pyrandom):
        mat = [
            [pyrandom.randint(-5, 5) for _ in range(n)] for _ in range(n)
        ]
        ours = list(reversed(berkowitz_charpoly(mat).coeffs))
        ref = np_charpoly(mat)
        assert ours == ref

    def test_trace_and_determinant_coefficients(self):
        mat = [[2, 1, 0], [1, 3, 1], [0, 1, 4]]
        p = berkowitz_charpoly(mat)
        trace = 9
        det = round(float(np.linalg.det(np.array(mat, dtype=float))))
        assert p.coefficient(2) == -trace
        assert p.coefficient(0) == (-1) ** 3 * det

    def test_large_entries_exact(self):
        """Exactness where float64 would lose digits."""
        big = 10**12
        mat = [[big, 1], [1, big]]
        p = berkowitz_charpoly(mat)
        assert p == IntPoly((big * big - 1, -2 * big, 1))

    def test_eigenvalues_of_symmetric_match(self):
        rng = np.random.default_rng(5)
        mat = rng.integers(0, 2, size=(7, 7))
        mat = (mat + mat.T) // 1
        mat = [[int(mat[i][j] if j >= i else mat[j][i]) for j in range(7)]
               for i in range(7)]
        p = berkowitz_charpoly(mat)
        eig = np.sort(np.linalg.eigvalsh(np.array(mat, dtype=float)))
        vals = [p.eval_float(x) for x in eig]
        # char poly nearly vanishes at the eigenvalues
        scale = max(abs(c) for c in p.coeffs)
        assert all(abs(v) < 1e-6 * scale * 10 for v in vals)
