"""Tests for the workload matrix/polynomial generators."""

from repro.charpoly.generator import (
    PAPER_SEEDS,
    characteristic_input,
    paper_degrees,
    random_symmetric_01_matrix,
    random_symmetric_matrix,
)


class TestMatrices:
    def test_symmetric(self):
        a = random_symmetric_01_matrix(10, 3)
        for i in range(10):
            for j in range(10):
                assert a[i][j] == a[j][i]

    def test_01_entries(self):
        a = random_symmetric_01_matrix(8, 1)
        assert all(v in (0, 1) for row in a for v in row)

    def test_deterministic_by_seed(self):
        assert random_symmetric_01_matrix(6, 9) == random_symmetric_01_matrix(6, 9)
        assert random_symmetric_01_matrix(6, 9) != random_symmetric_01_matrix(6, 10)

    def test_bounded_entries(self):
        a = random_symmetric_matrix(7, 2, entry_bound=3)
        assert all(-3 <= v <= 3 for row in a for v in row)
        for i in range(7):
            for j in range(7):
                assert a[i][j] == a[j][i]


class TestInputs:
    def test_characteristic_input_fields(self):
        inp = characteristic_input(9, 4)
        assert inp.degree == 9
        assert inp.poly.degree == 9
        assert inp.poly.leading_coefficient == 1
        assert inp.coeff_bits == inp.poly.max_coefficient_bits()
        assert "n=9" in inp.label

    def test_coefficient_growth_with_degree(self):
        """The paper's m(n) column grows with n."""
        m10 = characteristic_input(10, 1).coeff_bits
        m30 = characteristic_input(30, 1).coeff_bits
        assert m30 > m10

    def test_entry_bound_variant(self):
        inp = characteristic_input(6, 2, entry_bound=4)
        assert inp.poly.degree == 6

    def test_paper_degrees(self):
        assert paper_degrees(70) == list(range(10, 71, 5))
        assert paper_degrees(30) == [10, 15, 20, 25, 30]

    def test_three_paper_seeds(self):
        assert len(PAPER_SEEDS) == 3
