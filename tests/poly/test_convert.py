"""Tests for exact coefficient conversions."""

from fractions import Fraction

import pytest

from repro.poly.convert import from_any, from_floats, from_fractions
from repro.poly.dense import IntPoly


class TestFromFractions:
    def test_denominators_cleared(self):
        p = from_fractions([Fraction(1, 2), Fraction(1, 3)])
        assert p == IntPoly((3, 2))  # x/3 + 1/2 scaled by 6

    def test_tuples_accepted(self):
        assert from_fractions([(1, 2), (1, 3)]) == IntPoly((3, 2))

    def test_integers_passthrough(self):
        assert from_fractions([1, -2, 3]) == IntPoly((1, -2, 3))

    def test_empty(self):
        assert from_fractions([]).is_zero()

    def test_roots_preserved(self):
        # root 2/3 of x - 2/3
        p = from_fractions([Fraction(-2, 3), 1])
        assert p.sign_at_rational(2, 3) == 0


class TestFromFloats:
    def test_dyadic_exact(self):
        assert from_floats([-0.25, 1.0]) == IntPoly((-1, 4))

    def test_repr_exactness(self):
        # 0.1 is NOT 1/10 in binary; the conversion is exact w.r.t. the
        # actual double, so scaling by 10 does not give integer coeffs.
        p = from_floats([0.5, 0.1])
        assert p.coefficient(1) != 0
        # exactness: evaluating at 0 recovers the double exactly
        from fractions import Fraction as F

        assert F(p.coefficient(0), p.coefficient(1)) == F(0.5) / F(0.1)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            from_floats([float("nan"), 1.0])

    def test_inf_rejected(self):
        with pytest.raises(ValueError):
            from_floats([float("inf")])


class TestFromAny:
    def test_mixed(self):
        p = from_any([1, 0.5, Fraction(1, 3), (1, 6)])
        # lcm(1,2,3,6) = 6: [6, 3, 2, 1]
        assert p == IntPoly((6, 3, 2, 1))

    def test_bool_coerced(self):
        assert from_any([True, False, True]) == IntPoly((1, 0, 1))

    def test_numpy_scalars(self):
        import numpy as np

        p = from_any(np.array([0.5, 1.0]))
        assert p == IntPoly((1, 2))

    def test_end_to_end_root_finding(self):
        from repro.core.rootfinder import RealRootFinder

        p = from_fractions([Fraction(-3, 4), Fraction(1, 2)])  # root 3/2
        res = RealRootFinder(mu_bits=8).find_roots(p)
        assert res.as_floats() == [1.5]
