"""Tests for the Fujiwara root bound and the combined bound."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.workloads import square_free_characteristic_input, wilkinson
from repro.poly.dense import IntPoly
from repro.poly.roots_bounds import (
    cauchy_root_bound_bits,
    fujiwara_root_bound_bits,
    root_bound_bits,
)


class TestFujiwara:
    def test_zero_raises(self):
        with pytest.raises(ValueError):
            fujiwara_root_bound_bits(IntPoly.zero())

    def test_constant(self):
        assert fujiwara_root_bound_bits(IntPoly.constant(9)) == 1

    def test_known_roots_inside(self):
        p = IntPoly.from_roots([100, -100])
        r = fujiwara_root_bound_bits(p)
        assert (1 << r) > 100

    def test_much_tighter_than_cauchy_on_charpoly(self):
        """The motivating case: characteristic polynomials have huge low
        coefficients but moderate roots."""
        inp = square_free_characteristic_input(40, 11)
        f = fujiwara_root_bound_bits(inp.poly)
        c = cauchy_root_bound_bits(inp.poly)
        assert f + 10 < c
        # all eigenvalues of a 0-1 symmetric n=40 matrix are within +-40
        assert (1 << f) > 40 or f >= 6

    def test_tighter_on_wilkinson(self):
        p = wilkinson(20)  # roots 1..20, coefficients ~2^61
        f = fujiwara_root_bound_bits(p)
        assert (1 << f) > 20
        # 2 * |a_19/a_20| = 2 * 210 -> 9 bits + strictness margin
        assert f <= 11
        assert cauchy_root_bound_bits(p) > 50

    @settings(max_examples=80)
    @given(st.lists(st.integers(min_value=-(10**5), max_value=10**5),
                    min_size=2, max_size=7).filter(lambda c: c[-1] != 0))
    def test_always_valid(self, coeffs):
        p = IntPoly(coeffs)
        if p.degree < 1:
            return
        r = fujiwara_root_bound_bits(p)
        roots = np.roots(list(reversed(p.coeffs)))
        assert all(abs(z) < (1 << r) + 1e-9 for z in roots)

    @settings(max_examples=60)
    @given(st.lists(st.integers(min_value=-(10**5), max_value=10**5),
                    min_size=2, max_size=7).filter(lambda c: c[-1] != 0))
    def test_combined_bound_valid_and_minimal(self, coeffs):
        p = IntPoly(coeffs)
        if p.degree < 1:
            return
        r = root_bound_bits(p)
        assert r == min(cauchy_root_bound_bits(p), fujiwara_root_bound_bits(p))
        roots = np.roots(list(reversed(p.coeffs)))
        assert all(abs(z) < (1 << r) + 1e-9 for z in roots)

    def test_sparse_polynomial_skips_zero_coefficients(self):
        p = IntPoly((1, 0, 0, 0, 0, 1))  # x^5 + 1: roots on unit circle
        r = fujiwara_root_bound_bits(p)
        assert 1 <= r <= 3
