"""Tests for 2x2 polynomial matrices."""

import pytest

from repro.costmodel.counter import CostCounter
from repro.poly.dense import IntPoly
from repro.poly.matrix import PolyMatrix2x2


def mat(a, b, c, d):
    return PolyMatrix2x2(IntPoly(a), IntPoly(b), IntPoly(c), IntPoly(d))


class TestBasics:
    def test_identity(self):
        i = PolyMatrix2x2.identity()
        m = mat((1, 2), (3,), (0, 0, 1), (5, 1))
        assert i.mul(m) == m
        assert m.mul(i) == m

    def test_scalar(self):
        s = PolyMatrix2x2.scalar(3)
        m = mat((1,), (2,), (3,), (4,))
        prod = s.mul(m)
        assert prod.entry(1, 1) == IntPoly((3,))
        assert prod.entry(2, 2) == IntPoly((12,))

    def test_entry_access_one_based(self):
        m = mat((1,), (2,), (3,), (4,))
        assert m.entry(1, 1).coeffs == (1,)
        assert m.entry(1, 2).coeffs == (2,)
        assert m.entry(2, 1).coeffs == (3,)
        assert m.entry(2, 2).coeffs == (4,)

    def test_entry_bad_index_raises(self):
        with pytest.raises(KeyError):
            mat((1,), (2,), (3,), (4,)).entry(0, 1)


class TestProducts:
    def test_mul_matches_manual(self):
        a = mat((1, 1), (0, 1), (2,), (1,))
        b = mat((1,), (0, 2), (3,), (1, 1))
        p = a.mul(b)
        # (1,1) entry: (x+1)*1 + x*3 = 4x + 1
        assert p.entry(1, 1).coeffs == (1, 4)

    def test_matmul_operator(self):
        a = mat((2,), (0,), (0,), (2,))
        b = mat((1, 1), (0,), (0,), (1, 1))
        assert (a @ b).entry(1, 1).coeffs == (2, 2)

    def test_entry_product_matches_full_mul(self):
        a = mat((1, 2), (3, 4), (5,), (6, 7, 8))
        b = mat((1,), (2, 3), (4, 5), (6,))
        full = a.mul(b)
        for r in (1, 2):
            for c in (1, 2):
                assert a.entry_product(b, r, c) == full.entry(r, c)

    def test_mul_is_associative(self):
        a = mat((1, 1), (2,), (0, 3), (1,))
        b = mat((0, 1), (1,), (2,), (1, 1))
        c = mat((5,), (1, 2), (3,), (0, 1))
        assert a.mul(b).mul(c) == a.mul(b.mul(c))

    def test_mul_charges_counter(self):
        counter = CostCounter()
        a = mat((1, 1), (2,), (0, 3), (1,))
        a.mul(a, counter)
        assert counter.mul_count > 0


class TestScalarOps:
    def test_scale(self):
        m = mat((1, 2), (0,), (3,), (4,))
        s = m.scale(5)
        assert s.entry(1, 1).coeffs == (5, 10)

    def test_exact_div_scalar(self):
        m = mat((4, 8), (0,), (12,), (16,))
        d = m.exact_div_scalar(4)
        assert d.entry(1, 1).coeffs == (1, 2)
        assert d.entry(2, 2).coeffs == (4,)

    def test_exact_div_scalar_inexact_raises(self):
        with pytest.raises(ArithmeticError):
            mat((5,), (0,), (0,), (4,)).exact_div_scalar(4)

    def test_determinant(self):
        m = mat((1, 1), (2,), (3,), (0, 1))  # (x+1)x - 2*3
        assert m.determinant().coeffs == (-6, 1, 1)


class TestMeasures:
    def test_max_coefficient_bits(self):
        m = mat((1,), (255,), (0,), (3,))
        assert m.max_coefficient_bits() == 8

    def test_max_degree(self):
        m = mat((1,), (0, 0, 7), (0,), (3,))
        assert m.max_degree() == 2
