"""Unit tests for IntPoly: exact dense integer polynomials."""

import pytest

from repro.costmodel.counter import CostCounter
from repro.poly.dense import IntPoly


class TestConstruction:
    def test_zero_polynomial_has_degree_minus_one(self):
        assert IntPoly.zero().degree == -1
        assert IntPoly(()).is_zero()

    def test_trailing_zeros_trimmed(self):
        assert IntPoly((1, 2, 0, 0)).coeffs == (1, 2)

    def test_all_zero_coeffs_is_zero(self):
        assert IntPoly((0, 0, 0)).is_zero()

    def test_constant(self):
        p = IntPoly.constant(7)
        assert p.degree == 0
        assert p.coefficient(0) == 7

    def test_x(self):
        assert IntPoly.x().coeffs == (0, 1)

    def test_monomial(self):
        assert IntPoly.monomial(5, 3).coeffs == (0, 0, 0, 5)

    def test_monomial_zero_coefficient(self):
        assert IntPoly.monomial(0, 3).is_zero()

    def test_monomial_negative_exponent_raises(self):
        with pytest.raises(ValueError):
            IntPoly.monomial(1, -1)

    def test_from_roots(self):
        p = IntPoly.from_roots([1, 2])
        assert p.coeffs == (2, -3, 1)  # (x-1)(x-2) = x^2 - 3x + 2

    def test_from_roots_empty_is_one(self):
        assert IntPoly.from_roots([]) == IntPoly.one()

    def test_coefficients_coerced_to_int(self):
        p = IntPoly([True, 2])
        assert p.coeffs == (1, 2)
        assert all(type(c) is int for c in p.coeffs)


class TestQueries:
    def test_leading_coefficient(self):
        assert IntPoly((1, 2, 3)).leading_coefficient == 3
        assert IntPoly.zero().leading_coefficient == 0

    def test_coefficient_out_of_range_is_zero(self):
        p = IntPoly((1, 2))
        assert p.coefficient(5) == 0
        assert p.coefficient(-1) == 0

    def test_max_coefficient_bits(self):
        assert IntPoly((1, -8)).max_coefficient_bits() == 4
        assert IntPoly.zero().max_coefficient_bits() == 0

    def test_height(self):
        assert IntPoly((3, -17, 4)).height() == 17

    def test_equality_with_int(self):
        assert IntPoly.constant(5) == 5
        assert IntPoly.zero() == 0
        assert IntPoly((0, 1)) != 0

    def test_hash_consistency(self):
        assert hash(IntPoly((1, 2))) == hash(IntPoly([1, 2, 0]))

    def test_bool(self):
        assert not IntPoly.zero()
        assert IntPoly.one()

    def test_repr_readable(self):
        r = repr(IntPoly((2, -3, 1)))
        assert "x^2" in r and "-3*x" in r


class TestRingOps:
    def test_add(self):
        assert (IntPoly((1, 2)) + IntPoly((3, 0, 5))).coeffs == (4, 2, 5)

    def test_add_int(self):
        assert (IntPoly((1, 2)) + 10).coeffs == (11, 2)
        assert (10 + IntPoly((1, 2))).coeffs == (11, 2)

    def test_add_cancels_leading(self):
        assert (IntPoly((0, 1)) + IntPoly((1, -1))).coeffs == (1,)

    def test_sub(self):
        assert (IntPoly((5, 5)) - IntPoly((1, 2, 3))).coeffs == (4, 3, -3)

    def test_rsub(self):
        assert (7 - IntPoly((2, 1))).coeffs == (5, -1)

    def test_neg(self):
        assert (-IntPoly((1, -2))).coeffs == (-1, 2)

    def test_mul(self):
        # (1+x)(1-x) = 1 - x^2
        assert (IntPoly((1, 1)) * IntPoly((1, -1))).coeffs == (1, 0, -1)

    def test_mul_by_zero(self):
        assert (IntPoly((1, 2)) * IntPoly.zero()).is_zero()

    def test_scalar_mul(self):
        assert (3 * IntPoly((1, 2))).coeffs == (3, 6)
        assert (IntPoly((1, 2)) * 3).coeffs == (3, 6)

    def test_scale_by_zero(self):
        assert IntPoly((1, 2)).scale(0).is_zero()

    def test_scale_by_one_returns_same_object(self):
        p = IntPoly((1, 2))
        assert p.scale(1) is p

    def test_shift_up(self):
        assert IntPoly((1, 2)).shift_up(2).coeffs == (0, 0, 1, 2)

    def test_mul_counts_operations(self):
        c = CostCounter()
        IntPoly((1, 2, 3)).mul(IntPoly((4, 5)), c)
        assert c.mul_count == 6  # dense 3x2 products

    def test_mul_skips_zero_coefficients(self):
        c = CostCounter()
        IntPoly((1, 0, 3)).mul(IntPoly((4, 5)), c)
        assert c.mul_count == 4


class TestDivision:
    def test_exact_div_scalar(self):
        assert IntPoly((4, 8)).exact_div_scalar(4).coeffs == (1, 2)

    def test_exact_div_scalar_inexact_raises(self):
        with pytest.raises(ArithmeticError):
            IntPoly((4, 9)).exact_div_scalar(4)

    def test_exact_div_scalar_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            IntPoly((4,)).exact_div_scalar(0)

    def test_divmod_exact(self):
        num = IntPoly.from_roots([1, 2, 3])
        den = IntPoly.from_roots([2])
        q, r = num.divmod(den)
        assert r.is_zero()
        assert q == IntPoly.from_roots([1, 3])

    def test_divmod_with_remainder(self):
        q, r = IntPoly((1, 0, 1)).divmod(IntPoly((-1, 1)))  # x^2+1 by x-1
        assert q.coeffs == (1, 1)
        assert r.coeffs == (2,)

    def test_divmod_smaller_degree(self):
        q, r = IntPoly((1, 2)).divmod(IntPoly((0, 0, 1)))
        assert q.is_zero() and r == IntPoly((1, 2))

    def test_divmod_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            IntPoly((1,)).divmod(IntPoly.zero())

    def test_divmod_nonexact_lead_raises(self):
        with pytest.raises(ArithmeticError):
            IntPoly((0, 0, 1)).divmod(IntPoly((1, 2)))  # x^2 / (2x+1)

    def test_pseudo_divmod_invariant(self):
        a = IntPoly((3, -2, 0, 7, 1))
        b = IntPoly((1, 5, 2))
        q, r, k = a.pseudo_divmod(b)
        lc = b.leading_coefficient
        assert k == a.degree - b.degree + 1
        assert a.scale(lc**k) == q * b + r
        assert r.degree < b.degree

    def test_pseudo_divmod_smaller_degree(self):
        a, b = IntPoly((1, 2)), IntPoly((1, 1, 1))
        q, r, k = a.pseudo_divmod(b)
        assert q.is_zero() and r == a and k == 0

    def test_pseudo_divmod_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            IntPoly((1,)).pseudo_divmod(IntPoly.zero())


class TestCalculus:
    def test_derivative(self):
        assert IntPoly((5, 3, 2)).derivative().coeffs == (3, 4)

    def test_derivative_constant_is_zero(self):
        assert IntPoly.constant(5).derivative().is_zero()

    def test_compose_linear(self):
        p = IntPoly((0, 0, 1))  # x^2
        assert p.compose_linear(2, 1).coeffs == (1, 4, 4)  # (2x+1)^2

    def test_reversed_coeffs(self):
        assert IntPoly((1, 2, 3)).reversed_coeffs().coeffs == (3, 2, 1)

    def test_primitive_part(self):
        c, prim = IntPoly((6, -9, 3)).primitive_part()
        assert c == 3 and prim.coeffs == (2, -3, 1)

    def test_primitive_part_keeps_sign(self):
        c, prim = IntPoly((-6, -9)).primitive_part()
        assert c == 3 and prim.coeffs == (-2, -3)

    def test_primitive_part_of_zero(self):
        c, prim = IntPoly.zero().primitive_part()
        assert c == 0 and prim.is_zero()


class TestEvaluation:
    def test_eval_int(self):
        p = IntPoly((1, -2, 1))  # (x-1)^2
        assert p(3) == 4
        assert p(1) == 0

    def test_eval_float(self):
        assert IntPoly((0, 1)).eval_float(2.5) == 2.5

    def test_sign_at_rational(self):
        p = IntPoly.from_roots([0, 2])  # roots 0, 2
        assert p.sign_at_rational(1, 1) == -1
        assert p.sign_at_rational(5, 2) == 1
        assert p.sign_at_rational(2, 1) == 0

    def test_sign_at_rational_requires_positive_den(self):
        with pytest.raises(ValueError):
            IntPoly((1,)).sign_at_rational(1, -1)

    def test_sign_at_neg_inf(self):
        assert IntPoly((0, 1)).sign_at_neg_inf() == -1       # x
        assert IntPoly((0, 0, 1)).sign_at_neg_inf() == 1     # x^2
        assert IntPoly((0, 0, -1)).sign_at_neg_inf() == -1   # -x^2
        assert IntPoly.zero().sign_at_neg_inf() == 0
