"""Tests for polynomial gcd and square-free machinery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.poly.dense import IntPoly
from repro.poly.gcd import (
    is_square_free,
    poly_gcd,
    square_free_decomposition,
    square_free_part,
)

small_roots = st.lists(
    st.integers(min_value=-12, max_value=12), min_size=0, max_size=4
)


class TestGcd:
    def test_gcd_of_coprime_is_constant(self):
        g = poly_gcd(IntPoly.from_roots([1, 2]), IntPoly.from_roots([3, 4]))
        assert g.degree == 0

    def test_gcd_shared_factor(self):
        shared = IntPoly.from_roots([5, -3])
        a = shared * IntPoly.from_roots([1])
        b = shared * IntPoly.from_roots([2, 7])
        g = poly_gcd(a, b)
        assert g == shared

    def test_gcd_with_zero(self):
        p = IntPoly.from_roots([1, 2])
        assert poly_gcd(p, IntPoly.zero()) == p
        assert poly_gcd(IntPoly.zero(), p) == p
        assert poly_gcd(IntPoly.zero(), IntPoly.zero()).is_zero()

    def test_gcd_normalizes_sign(self):
        a = -IntPoly.from_roots([1, 2])
        b = -IntPoly.from_roots([1, 3])
        g = poly_gcd(a, b)
        assert g.leading_coefficient > 0
        assert g == IntPoly.from_roots([1])

    def test_gcd_includes_content(self):
        a = IntPoly((6, 6))     # 6(x+1)
        b = IntPoly((0, 4))     # 4x
        g = poly_gcd(a, b)
        assert g == IntPoly.constant(2)

    def test_gcd_of_constants(self):
        assert poly_gcd(IntPoly.constant(12), IntPoly.constant(18)) == 6

    def test_gcd_nonmonic(self):
        shared = IntPoly((1, 3))  # 3x + 1
        a = shared * IntPoly((2, 5))
        b = shared * IntPoly((-1, 7, 2))
        assert poly_gcd(a, b) == shared

    @settings(max_examples=50)
    @given(small_roots, small_roots)
    def test_gcd_divides_both(self, ra, rb):
        a = IntPoly.from_roots(ra) * 3
        b = IntPoly.from_roots(rb) * 2
        g = poly_gcd(a, b)
        if a.is_zero() and b.is_zero():
            assert g.is_zero()
            return
        for p in (a, b):
            if not p.is_zero():
                _q, r = p.divmod(g)
                assert r.is_zero()


class TestSquareFree:
    def test_square_free_part_strips_multiplicity(self):
        p = IntPoly.from_roots([1, 1, 1, 4])
        assert square_free_part(p) == IntPoly.from_roots([1, 4])

    def test_square_free_part_of_squarefree_is_self(self):
        p = IntPoly.from_roots([2, 3])
        assert square_free_part(p * 5) == p

    def test_square_free_part_zero_raises(self):
        with pytest.raises(ValueError):
            square_free_part(IntPoly.zero())

    def test_is_square_free(self):
        assert is_square_free(IntPoly.from_roots([1, 2]))
        assert not is_square_free(IntPoly.from_roots([1, 1]))
        assert not is_square_free(IntPoly.zero())
        assert is_square_free(IntPoly.constant(3)) is False or True  # degree 0 OK

    def test_decomposition_simple(self):
        # (x-1)^2 (x-2)^3
        p = IntPoly.from_roots([1, 1, 2, 2, 2])
        decomp = square_free_decomposition(p)
        assert (IntPoly.from_roots([1]), 2) in decomp
        assert (IntPoly.from_roots([2]), 3) in decomp
        assert len(decomp) == 2

    def test_decomposition_mixed(self):
        p = IntPoly.from_roots([0, 5, 5, -3, -3, -3, -3])
        decomp = dict((m, f) for f, m in square_free_decomposition(p))
        assert decomp[1] == IntPoly.from_roots([0])
        assert decomp[2] == IntPoly.from_roots([5])
        assert decomp[4] == IntPoly.from_roots([-3])

    def test_decomposition_reconstructs_product(self):
        p = IntPoly.from_roots([1, 1, 4, 7, 7, 7])
        prod = IntPoly.one()
        for f, m in square_free_decomposition(p):
            for _ in range(m):
                prod = prod * f
        assert prod == p  # monic input, content 1

    def test_decomposition_drops_content_and_sign(self):
        p = (-6) * IntPoly.from_roots([2, 2])
        decomp = square_free_decomposition(p)
        assert decomp == [(IntPoly.from_roots([2]), 2)]

    @settings(max_examples=40)
    @given(st.lists(st.integers(min_value=-8, max_value=8),
                    min_size=1, max_size=6))
    def test_decomposition_multiplicities_match(self, roots):
        from collections import Counter

        p = IntPoly.from_roots(roots)
        counts = Counter(roots)
        decomp = square_free_decomposition(p)
        for f, m in decomp:
            # every root of factor f must occur exactly m times in input
            for r, c in counts.items():
                if f(r) == 0:
                    assert c == m
        assert sum(f.degree * m for f, m in decomp) == p.degree
