"""Tests for root magnitude bounds."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.poly.dense import IntPoly
from repro.poly.roots_bounds import cauchy_root_bound_bits, root_bracket_scaled


class TestCauchyBound:
    def test_monic_small(self):
        # roots of x^2 - 1 are +-1 < 2
        assert cauchy_root_bound_bits(IntPoly((-1, 0, 1))) >= 1

    def test_zero_raises(self):
        with pytest.raises(ValueError):
            cauchy_root_bound_bits(IntPoly.zero())

    def test_constant(self):
        assert cauchy_root_bound_bits(IntPoly.constant(5)) == 1

    def test_known_large_root(self):
        p = IntPoly.from_roots([1000])
        r = cauchy_root_bound_bits(p)
        assert (1 << r) > 1000

    def test_bound_is_reasonably_tight(self):
        p = IntPoly.from_roots([3])
        # Cauchy gives 1 + 3 = 4 -> 2 bits
        assert cauchy_root_bound_bits(p) <= 3

    @given(st.lists(st.integers(min_value=-10**4, max_value=10**4),
                    min_size=1, max_size=6, unique=True))
    def test_all_roots_strictly_inside(self, roots):
        p = IntPoly.from_roots(roots)
        r = cauchy_root_bound_bits(p)
        assert all(abs(x) < (1 << r) for x in roots)

    @given(st.lists(st.integers(min_value=-100, max_value=100),
                    min_size=2, max_size=6).filter(lambda c: c[-1] != 0))
    def test_bound_valid_for_arbitrary_polys(self, coeffs):
        import numpy as np

        p = IntPoly(coeffs)
        if p.degree < 1:
            return
        r = cauchy_root_bound_bits(p)
        roots = np.roots(list(reversed(p.coeffs)))
        assert all(abs(z) < (1 << r) + 1e-9 for z in roots)


class TestBracket:
    def test_bracket_scaled(self):
        p = IntPoly.from_roots([-3, 7])
        lo, hi = root_bracket_scaled(p, 4)
        assert lo == -hi
        assert hi >= 7 * 16

    def test_bracket_contains_roots_strictly(self):
        p = IntPoly.from_roots([15])
        lo, hi = root_bracket_scaled(p, 8)
        assert lo < 15 * 256 < hi
