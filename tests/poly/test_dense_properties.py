"""Property-based tests (hypothesis) for the polynomial ring."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.poly.dense import IntPoly

coeff = st.integers(min_value=-(10**6), max_value=10**6)
polys = st.lists(coeff, min_size=0, max_size=9).map(IntPoly)
nonzero_polys = polys.filter(lambda p: not p.is_zero())
points = st.integers(min_value=-(10**3), max_value=10**3)


@given(polys, polys)
def test_addition_commutative(a, b):
    assert a + b == b + a


@given(polys, polys, polys)
def test_addition_associative(a, b, c):
    assert (a + b) + c == a + (b + c)


@given(polys)
def test_additive_inverse(a):
    assert (a + (-a)).is_zero()


@given(polys, polys)
def test_multiplication_commutative(a, b):
    assert a * b == b * a


@settings(max_examples=60)
@given(polys, polys, polys)
def test_multiplication_associative(a, b, c):
    assert (a * b) * c == a * (b * c)


@settings(max_examples=60)
@given(polys, polys, polys)
def test_distributivity(a, b, c):
    assert a * (b + c) == a * b + a * c


@given(polys, polys)
def test_degree_of_product(a, b):
    if a.is_zero() or b.is_zero():
        assert (a * b).is_zero()
    else:
        assert (a * b).degree == a.degree + b.degree


@given(polys, polys, points)
def test_evaluation_is_ring_homomorphism(a, b, x):
    assert (a + b)(x) == a(x) + b(x)
    assert (a * b)(x) == a(x) * b(x)


@given(polys, nonzero_polys)
def test_pseudo_divmod_identity(a, b):
    q, r, k = a.pseudo_divmod(b)
    lc = b.leading_coefficient
    assert a.scale(lc**k) == q * b + r
    assert r.is_zero() or r.degree < b.degree


@given(nonzero_polys, points)
def test_derivative_product_rule(p, x):
    q = IntPoly((1, 1))  # x + 1
    lhs = (p * q).derivative()
    rhs = p.derivative() * q + p * q.derivative()
    assert lhs == rhs


@given(polys, points)
def test_sign_at_rational_matches_fraction_eval(p, x):
    den = 7
    exact = sum(Fraction(c) * Fraction(x, den) ** j for j, c in enumerate(p.coeffs))
    s = p.sign_at_rational(x, den)
    assert s == (exact > 0) - (exact < 0)


@given(st.lists(st.integers(min_value=-30, max_value=30), min_size=1,
                max_size=6, unique=True))
def test_from_roots_vanishes_at_roots(roots):
    p = IntPoly.from_roots(roots)
    assert all(p(r) == 0 for r in roots)
    assert p.degree == len(roots)
    assert p.leading_coefficient == 1
