"""Tests for scaled-integer evaluation (the algorithm's hot primitive)."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.bounds import horner_partial_bound
from repro.costmodel.counter import CostCounter
from repro.poly.dense import IntPoly
from repro.poly.eval import horner_partial_sizes, scaled_eval, scaled_sign

polys = st.lists(
    st.integers(min_value=-(10**4), max_value=10**4), min_size=1, max_size=7
).map(IntPoly)


class TestScaledEval:
    def test_matches_definition(self):
        p = IntPoly((1, -2, 3))
        # 2^(2*4) * p(5/16) = 256*(1 - 10/16 + 75/256)
        assert scaled_eval(p, 5, 4) == 256 - 2 * 5 * 16 + 3 * 25

    def test_zero_scale_is_plain_eval(self):
        p = IntPoly((7, 0, -1))
        assert scaled_eval(p, 3, 0) == p(3)

    def test_zero_polynomial(self):
        assert scaled_eval(IntPoly.zero(), 10, 4) == 0

    def test_negative_scale_raises(self):
        with pytest.raises(ValueError):
            scaled_eval(IntPoly((1,)), 1, -1)

    def test_counts_one_mul_per_degree(self):
        c = CostCounter()
        p = IntPoly((1, 2, 3, 4, 5))
        scaled_eval(p, 7, 3, c)
        assert c.mul_count == p.degree

    @given(polys, st.integers(min_value=-(10**5), max_value=10**5),
           st.integers(min_value=0, max_value=24))
    def test_matches_fraction_evaluation(self, p, y, w):
        exact = sum(
            Fraction(c) * Fraction(y, 1 << w) ** j
            for j, c in enumerate(p.coeffs)
        ) * Fraction(1 << (w * max(p.degree, 0)))
        assert scaled_eval(p, y, w) == exact

    @given(polys, st.integers(min_value=-(10**5), max_value=10**5),
           st.integers(min_value=0, max_value=24))
    def test_sign_matches_fraction_sign(self, p, y, w):
        exact = sum(
            Fraction(c) * Fraction(y, 1 << w) ** j
            for j, c in enumerate(p.coeffs)
        )
        assert scaled_sign(p, y, w) == (exact > 0) - (exact < 0)


class TestPartialSizes:
    def test_partial_sizes_respect_paper_bound(self):
        """Section 4.3: ||E_i|| <= m + i*X + log(i+1)."""
        p = IntPoly([(-1) ** j * (j + 1) * 12345 for j in range(20)])
        y, w = (1 << 30) + 12345, 20
        m = p.max_coefficient_bits()
        x_bits = abs(y).bit_length()
        sizes = horner_partial_sizes(p, y, w)
        for i, s in enumerate(sizes):
            assert s <= horner_partial_bound(m, i, max(x_bits, w))

    def test_partial_sizes_length(self):
        p = IntPoly((1, 2, 3))
        assert len(horner_partial_sizes(p, 5, 2)) == p.degree + 1
