"""Tests for Sturm chains and exact root counting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.poly.dense import IntPoly
from repro.poly.sturm import (
    count_real_roots,
    count_roots_below,
    count_roots_in_open,
    sign_variations,
    sturm_chain,
    variations_at_neg_inf,
    variations_at_pos_inf,
    variations_at_scaled,
)


class TestSignVariations:
    def test_basic(self):
        assert sign_variations([1, -1, 1]) == 2

    def test_zeros_ignored(self):
        assert sign_variations([1, 0, -1, 0, 0, 1]) == 2

    def test_empty_and_constant(self):
        assert sign_variations([]) == 0
        assert sign_variations([0, 0]) == 0
        assert sign_variations([5]) == 0


class TestChain:
    def test_chain_starts_with_p_and_derivative_direction(self):
        p = IntPoly.from_roots([0, 3, 7])
        chain = sturm_chain(p)
        assert chain[0] == p
        assert chain[1] == p.derivative()

    def test_chain_of_constant(self):
        assert len(sturm_chain(IntPoly.constant(5))) == 1

    def test_chain_of_zero_raises(self):
        with pytest.raises(ValueError):
            sturm_chain(IntPoly.zero())

    def test_chain_terminates_with_constant_for_squarefree(self):
        chain = sturm_chain(IntPoly.from_roots([-2, 1, 4, 9]))
        assert chain[-1].degree == 0

    def test_chain_for_repeated_roots_ends_at_gcd_degree(self):
        p = IntPoly.from_roots([1, 1, 2])
        chain = sturm_chain(p)
        # last element is proportional to gcd(p, p') = (x-1)
        assert chain[-1].degree == 1


class TestCounting:
    def test_count_all_real_roots(self):
        assert count_real_roots(IntPoly.from_roots([-5, 0, 5])) == 3

    def test_count_no_real_roots(self):
        assert count_real_roots(IntPoly((1, 0, 1))) == 0  # x^2 + 1

    def test_count_distinct_for_repeated(self):
        assert count_real_roots(IntPoly.from_roots([2, 2, 2, -1])) == 2

    def test_count_mixed_real_complex(self):
        # (x^2+1)(x-3)
        p = IntPoly((1, 0, 1)) * IntPoly((-3, 1))
        assert count_real_roots(p) == 1

    def test_count_in_open_interval(self):
        p = IntPoly.from_roots([1, 3, 5])
        chain = sturm_chain(p)
        assert count_roots_in_open(chain, 0, 4, 0) == 2
        assert count_roots_in_open(chain, 4, 10, 0) == 1
        assert count_roots_in_open(chain, 6, 10, 0) == 0

    def test_count_in_open_endpoint_root_raises(self):
        p = IntPoly.from_roots([1, 3])
        chain = sturm_chain(p)
        with pytest.raises(ValueError):
            count_roots_in_open(chain, 1, 2, 0)

    def test_count_below(self):
        p = IntPoly.from_roots([-10, 0, 10])
        chain = sturm_chain(p)
        assert count_roots_below(chain, -11, 0) == 0
        assert count_roots_below(chain, 1, 0) == 2
        assert count_roots_below(chain, 11, 0) == 3

    def test_count_with_scaled_endpoints(self):
        p = IntPoly.from_roots([0, 1])
        chain = sturm_chain(p)
        # interval (1/4, 9/8) at scale 3: contains root 1
        assert count_roots_in_open(chain, 2, 9, 3) == 1

    @given(st.lists(st.integers(min_value=-40, max_value=40),
                    min_size=1, max_size=7, unique=True))
    def test_count_matches_known_roots(self, roots):
        p = IntPoly.from_roots(roots)
        assert count_real_roots(p) == len(roots)

    @given(st.lists(st.integers(min_value=-40, max_value=40),
                    min_size=1, max_size=6, unique=True),
           st.integers(min_value=-50, max_value=50),
           st.integers(min_value=-50, max_value=50))
    def test_interval_count_matches_known_roots(self, roots, a, b):
        if a >= b or a in roots or b in roots:
            return
        p = IntPoly.from_roots(roots)
        chain = sturm_chain(p)
        expected = sum(1 for r in roots if a < r < b)
        assert count_roots_in_open(chain, a, b, 0) == expected


class TestInfinityVariations:
    def test_real_rooted_has_zero_variations_at_pos_inf(self):
        chain = sturm_chain(IntPoly.from_roots([-7, -1, 2, 8]))
        assert variations_at_pos_inf(chain) == 0
        assert variations_at_neg_inf(chain) == 4

    def test_variations_at_scaled_matches_infinite_far_out(self):
        p = IntPoly.from_roots([-3, 2])
        chain = sturm_chain(p)
        assert variations_at_scaled(chain, -1000, 0) == variations_at_neg_inf(chain)
        assert variations_at_scaled(chain, 1000, 0) == variations_at_pos_inf(chain)
