"""Tests for the one-time-scaling evaluator (paper Sec 4.3 practice)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.costmodel.counter import CostCounter
from repro.poly.dense import IntPoly
from repro.poly.eval import ScaledEvaluator, scaled_eval

polys = st.lists(
    st.integers(min_value=-(10**4), max_value=10**4), min_size=1, max_size=8
).map(IntPoly)


class TestScaledEvaluator:
    @given(polys, st.integers(min_value=-(10**6), max_value=10**6),
           st.integers(min_value=0, max_value=20))
    def test_matches_scaled_eval(self, p, y, w):
        ev = ScaledEvaluator(p, w)
        assert ev.eval(y) == scaled_eval(p, y, w)

    @given(polys, st.integers(min_value=-(10**6), max_value=10**6))
    def test_sign(self, p, y):
        ev = ScaledEvaluator(p, 6)
        v = scaled_eval(p, y, 6)
        assert ev.sign(y) == (v > 0) - (v < 0)

    def test_zero_polynomial(self):
        ev = ScaledEvaluator(IntPoly.zero(), 5)
        assert ev.eval(123) == 0
        assert ev.sign(123) == 0

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            ScaledEvaluator(IntPoly.one(), -1)

    def test_mul_counts_match_scaled_eval(self):
        p = IntPoly((3, -1, 4, -1, 5))
        c1, c2 = CostCounter(), CostCounter()
        scaled_eval(p, 77, 9, c1)
        ScaledEvaluator(p, 9).eval(77, c2)
        assert c1.mul_count == c2.mul_count == p.degree

    def test_shifted_coefficients_precomputed(self):
        p = IntPoly((1, 1))
        ev = ScaledEvaluator(p, 4)
        assert ev.shifted == (16, 1)  # 1 << (1*4), 1 << 0

    def test_constant_polynomial(self):
        ev = ScaledEvaluator(IntPoly.constant(-7), 12)
        assert ev.eval(999) == -7
