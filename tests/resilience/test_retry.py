"""Unit tests for the retry policy's deterministic backoff schedule."""

import pytest

from repro.resilience import RetryPolicy


class TestRetryPolicy:
    def test_defaults(self):
        r = RetryPolicy()
        assert r.max_retries == 2
        assert r.delay(1) == pytest.approx(0.05)
        assert r.delay(2) == pytest.approx(0.10)

    def test_exponential_then_capped(self):
        r = RetryPolicy(max_retries=10, backoff_base=0.5,
                        backoff_factor=2.0, backoff_max=3.0)
        assert [r.delay(a) for a in (1, 2, 3, 4, 5)] == [
            0.5, 1.0, 2.0, 3.0, 3.0  # capped at backoff_max
        ]

    def test_zero_retries_allowed(self):
        assert RetryPolicy(max_retries=0).max_retries == 0

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            RetryPolicy().delay(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=1.0, backoff_max=0.5)

    def test_frozen(self):
        with pytest.raises(Exception):
            RetryPolicy().max_retries = 5
