"""Checkpoint/resume: file-format unit tests, executor integration, and
the end-to-end kill-and-resume round trip through the ``repro batch``
CLI (the batch dies by SIGKILL mid-run, a rerun with the same
checkpoint completes bit-exactly without re-solving)."""

import json
import os
import subprocess
import sys

import pytest

from repro.core.rootfinder import RealRootFinder
from repro.poly.dense import IntPoly
from repro.resilience import BatchCheckpoint, CheckpointMismatch, poly_key

MU = 16
ROOT_SETS = ["-3,0,2", "1,4", "-2,5", "0,6,9", "2,3,4"]
POLYS = [IntPoly.from_roots([int(r) for r in s.split(",")])
         for s in ROOT_SETS]


class TestPolyKey:
    def test_stable_and_parameter_sensitive(self):
        k = poly_key([1, 2, 3], 16, "hybrid")
        assert k == poly_key([1, 2, 3], 16, "hybrid")
        assert k != poly_key([1, 2, 4], 16, "hybrid")
        assert k != poly_key([1, 2, 3], 17, "hybrid")
        assert k != poly_key([1, 2, 3], 16, "newton")

    def test_huge_coefficients_are_exact(self):
        big = 10**100
        assert poly_key([big], 16, "hybrid") != poly_key([big + 1], 16,
                                                         "hybrid")

    def test_no_digit_bleed_between_coeffs_and_mu(self):
        # ([1, 23], mu=4) vs ([1, 2], mu=34): a flat join like
        # "1 23 4" / "1 2 34" would collide; the JSON-canonical list
        # structure must keep the fields apart.
        assert poly_key([1, 23], 4, "hybrid") != poly_key([1, 2], 34,
                                                          "hybrid")
        assert poly_key([12], 3, "hybrid") != poly_key([1], 23, "hybrid")

    def test_no_digit_bleed_between_adjacent_coeffs(self):
        assert poly_key([1, 23], 16, "h") != poly_key([12, 3], 16, "h")
        assert poly_key([1, -2], 16, "h") != poly_key([1], -216, "h")

    def test_adversarial_strategy_strings_cannot_collide(self):
        # A strategy containing the payload's own delimiters (quotes,
        # commas, brackets) must hash differently from the job whose
        # fields it tries to imitate.
        k_plain = poly_key([1, 2], 16, "hybrid")
        k_spoof = poly_key([1], 16, '2"],16,"hybrid')
        assert k_plain != k_spoof
        assert (poly_key([1], 2, 'a","b')
                != poly_key([1], 2, 'a"') != poly_key([1], 2, "a"))

    def test_non_ascii_strategy_is_hashable_and_distinct(self):
        assert poly_key([1], 16, "hybrideé") != poly_key([1], 16,
                                                              "hybridee")

    def test_bool_coefficients_normalize_to_ints(self):
        # json would render True as "True" != "1"; int-normalization
        # keeps numeric look-alikes on one key.
        assert poly_key([True, 0], 16, "h") == poly_key([1, 0], 16, "h")
        assert poly_key([1, 0], True, "h") == poly_key([1, 0], 1, "h")

    def test_non_string_strategy_rejected(self):
        with pytest.raises(TypeError, match="strategy"):
            poly_key([1, 2], 16, None)

    def test_existing_integer_keys_unchanged(self):
        # The hardening must keep every old checkpoint readable: the
        # canonical payload for plain int inputs is byte-identical, so
        # the digest is pinned here against the pre-fix encoding.
        import hashlib

        payload = '[["1","-2","3"],16,"hybrid"]'
        expected = hashlib.sha256(payload.encode("ascii")).hexdigest()
        assert poly_key([1, -2, 3], 16, "hybrid") == expected


class TestCheckpointFile:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        with BatchCheckpoint(path, MU, "hybrid") as ck:
            key = ck.key_for([1, 2, 3])
            assert ck.get(key) is None
            ck.record(key, 0, [-(1 << MU), 5 << MU])
        with BatchCheckpoint(path, MU, "hybrid") as ck2:
            assert ck2.get(key) == [-(1 << MU), 5 << MU]
            assert ck2.dropped_lines == 0

    def test_mismatched_parameters_rejected(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        BatchCheckpoint(path, MU, "hybrid").close()
        with pytest.raises(CheckpointMismatch, match="mu_bits"):
            BatchCheckpoint(path, MU + 1, "hybrid")
        with pytest.raises(CheckpointMismatch):
            BatchCheckpoint(path, MU, "newton")

    def test_foreign_file_rejected(self, tmp_path):
        path = str(tmp_path / "notack.jsonl")
        with open(path, "w") as fh:
            fh.write(json.dumps({"schema": "something-else"}) + "\n")
        with pytest.raises(CheckpointMismatch, match="not a"):
            BatchCheckpoint(path, MU, "hybrid")

    def test_truncated_final_line_is_dropped(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        with BatchCheckpoint(path, MU, "hybrid") as ck:
            k1 = ck.key_for([1, 1])
            ck.record(k1, 0, [7])
        with open(path, "a") as fh:
            fh.write('{"key": "deadbeef", "scaled": ["1", "2"')  # the kill
        with BatchCheckpoint(path, MU, "hybrid") as ck2:
            assert ck2.dropped_lines == 1
            assert ck2.get(k1) == [7]
            assert ck2.get("deadbeef") is None

    def test_duplicate_record_is_single_entry(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        with BatchCheckpoint(path, MU, "hybrid") as ck:
            key = ck.key_for([0, 1])
            ck.record(key, 0, [0])
            ck.record(key, 3, [999])  # ignored: first write wins
        with BatchCheckpoint(path, MU, "hybrid") as ck2:
            assert ck2.get(key) == [0]
        with open(path) as fh:
            assert len(fh.readlines()) == 2  # header + one entry

    def test_big_scaled_values_survive_json(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        huge = -(10**60)
        with BatchCheckpoint(path, MU, "hybrid") as ck:
            ck.record(ck.key_for([5]), 0, [huge])
        with BatchCheckpoint(path, MU, "hybrid") as ck2:
            assert ck2.get(ck2.key_for([5])) == [huge]


@pytest.mark.slow
class TestExecutorCheckpoint:
    def test_find_roots_many_uses_and_fills_checkpoint(self, tmp_path):
        from repro.sched.executor import ParallelRootFinder

        path = str(tmp_path / "ck.jsonl")
        refs = [RealRootFinder(mu_bits=MU).find_roots(p).scaled
                for p in POLYS[:3]]
        with ParallelRootFinder(mu=MU, processes=2) as finder:
            with BatchCheckpoint(path, MU, "hybrid") as ck:
                assert finder.find_roots_many(POLYS[:3], checkpoint=ck) == refs
                assert ck.hits == 0
            with BatchCheckpoint(path, MU, "hybrid") as ck2:
                # Second run: everything answered from the checkpoint.
                assert finder.find_roots_many(POLYS[:3],
                                              checkpoint=ck2) == refs
                assert ck2.hits == 3
            assert finder.metrics.counter(
                "executor.checkpoint_hits").value == 3


def _run_batch(args, timeout=240):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    return subprocess.run(
        [sys.executable, "-m", "repro", "batch", "--bits", str(MU),
         "--roots-sets=" + ";".join(ROOT_SETS), "--json", *args],
        capture_output=True, text=True, timeout=timeout, env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))),
    )


@pytest.mark.slow
class TestBatchKillResume:
    def test_killed_batch_resumes_bit_exactly(self, tmp_path):
        ck = str(tmp_path / "ck.jsonl")

        # 1. The batch is SIGKILLed after 2 durably recorded results
        #    (deterministic mid-run death via the hidden test hook).
        dead = _run_batch(["--checkpoint", ck, "--fault-exit-after", "2"])
        assert dead.returncode == -9, dead.stderr
        with open(ck) as fh:
            lines = fh.readlines()
        assert len(lines) == 3  # header + exactly 2 durable entries

        # 2. Resume with the same checkpoint: completes, reports the
        #    2 recovered results, and solves only the remaining 3.
        resumed = _run_batch(["--checkpoint", ck])
        assert resumed.returncode == 0, resumed.stderr
        out = json.loads(resumed.stdout)
        assert out["resumed"] == 2

        # 3. Bit-exact union with an uninterrupted run.
        plain = _run_batch([])
        assert plain.returncode == 0, plain.stderr
        assert out["results"] == json.loads(plain.stdout)["results"]

        # 4. No re-solving happened: the checkpoint gained exactly the
        #    3 missing entries, and the first 2 were not rewritten.
        with open(ck) as fh:
            final = fh.readlines()
        assert len(final) == 6  # header + 5 entries
        assert final[:3] == lines

    def test_resume_with_wrong_precision_fails_loudly(self, tmp_path):
        ck = str(tmp_path / "ck.jsonl")
        done = _run_batch(["--checkpoint", ck])
        assert done.returncode == 0, done.stderr
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        clash = subprocess.run(
            [sys.executable, "-m", "repro", "batch", "--bits", str(MU + 1),
             "--roots-sets=" + ";".join(ROOT_SETS), "--checkpoint", ck],
            capture_output=True, text=True, timeout=240, env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(
                os.path.abspath(__file__)))),
        )
        assert clash.returncode != 0
        assert "checkpoint" in clash.stderr.lower()
