"""Unit tests for the circuit breaker's state machine, driven by a fake
clock so every transition is deterministic."""

import pytest

from repro.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


@pytest.fixture()
def clock():
    return FakeClock()


def make(clock, threshold=3, cooldown=10.0, transitions=None):
    b = CircuitBreaker(failure_threshold=threshold,
                       cooldown_seconds=cooldown, clock=clock)
    if transitions is not None:
        b.on_transition = lambda old, new: transitions.append((old, new))
    return b


class TestClosed:
    def test_starts_closed_and_allows(self, clock):
        b = make(clock)
        assert b.state == BREAKER_CLOSED
        assert b.allow() and b.allow()

    def test_success_resets_the_streak(self, clock):
        b = make(clock, threshold=3)
        b.record_failure()
        b.record_failure()
        b.record_success()
        b.record_failure()
        b.record_failure()
        assert b.state == BREAKER_CLOSED  # never 3 consecutive

    def test_threshold_consecutive_failures_trip_it(self, clock):
        transitions = []
        b = make(clock, threshold=3, transitions=transitions)
        for _ in range(3):
            b.record_failure()
        assert b.state == BREAKER_OPEN
        assert transitions == [(BREAKER_CLOSED, BREAKER_OPEN)]


class TestOpen:
    def test_blocks_until_cooldown(self, clock):
        b = make(clock, threshold=1, cooldown=10.0)
        b.record_failure()
        assert not b.allow()
        clock.advance(9.9)
        assert not b.allow()

    def test_cooldown_expiry_half_opens_with_one_probe(self, clock):
        transitions = []
        b = make(clock, threshold=1, cooldown=10.0, transitions=transitions)
        b.record_failure()
        clock.advance(10.0)
        assert b.allow()  # the probe
        assert b.state == BREAKER_HALF_OPEN
        assert not b.allow()  # only one probe at a time
        assert transitions == [(BREAKER_CLOSED, BREAKER_OPEN),
                               (BREAKER_OPEN, BREAKER_HALF_OPEN)]


class TestHalfOpen:
    def _half_open(self, clock, transitions=None):
        b = make(clock, threshold=1, cooldown=5.0, transitions=transitions)
        b.record_failure()
        clock.advance(5.0)
        assert b.allow()
        return b

    def test_probe_success_closes(self, clock):
        transitions = []
        b = self._half_open(clock, transitions)
        b.record_success()
        assert b.state == BREAKER_CLOSED
        assert transitions[-1] == (BREAKER_HALF_OPEN, BREAKER_CLOSED)
        assert b.allow()

    def test_probe_failure_reopens_and_restarts_cooldown(self, clock):
        b = self._half_open(clock)
        clock.advance(4.0)
        b.record_failure()
        assert b.state == BREAKER_OPEN
        clock.advance(4.9)  # cool-down restarted at the probe failure
        assert not b.allow()
        clock.advance(0.1)
        assert b.allow()
        assert b.state == BREAKER_HALF_OPEN

    def test_probe_slot_frees_after_close(self, clock):
        b = self._half_open(clock)
        b.record_success()
        assert b.allow() and b.allow()  # closed again: no probe gating


class TestValidationAndCallback:
    def test_validation(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_seconds=-1.0)

    def test_no_callback_on_same_state(self, clock):
        transitions = []
        b = make(clock, threshold=3, transitions=transitions)
        b.record_failure()
        b.record_success()
        assert transitions == []
