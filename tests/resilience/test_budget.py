"""Budget semantics: deterministic unit tests on a fake clock, plus the
end-to-end acceptance scenario — a bit-budgeted Wilkinson-20 run raises
:class:`BudgetExceeded` whose partial roots all pass the exact Sturm
certificate in partial mode."""

import pytest

from repro.core.certify import CertificationError, certify_roots
from repro.core.rootfinder import RealRootFinder
from repro.costmodel.counter import CostCounter
from repro.poly.dense import IntPoly
from repro.resilience import Budget, BudgetExceeded, PartialResult

WILKINSON_20 = IntPoly.from_roots(list(range(1, 21)))
MU = 32


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestBudgetUnit:
    def test_unstarted_budget_never_trips(self):
        b = Budget(deadline_seconds=0.0)
        assert b.over() is None
        b.check(phase="anything")  # no raise before start

    def test_deadline_axis(self):
        clock = FakeClock()
        b = Budget(deadline_seconds=5.0, clock=clock).start()
        b.check()
        clock.t = 5.0
        b.check()  # boundary is inclusive: elapsed must *exceed*
        clock.t = 5.01
        assert b.over() == "deadline"
        with pytest.raises(BudgetExceeded) as ei:
            b.check(scaled=[1, 2], phase="interval", mu=8, degree=3)
        part = ei.value.partial
        assert ei.value.reason == "deadline"
        assert isinstance(part, PartialResult)
        assert (part.scaled, part.phase, part.mu, part.degree) == (
            [1, 2], "interval", 8, 3)
        assert part.elapsed_seconds == pytest.approx(5.01)

    def test_zero_deadline_trips_on_coarse_clock_tie(self):
        # Regression: with strict `>` a deadline of 0 never fired while
        # a coarse clock kept reading elapsed == 0.0 exactly.
        clock = FakeClock()  # frozen at 0.0: the coarsest possible clock
        b = Budget(deadline_seconds=0.0, clock=clock).start()
        assert b.elapsed_seconds() == 0.0
        assert b.over() == "deadline"
        with pytest.raises(BudgetExceeded) as ei:
            b.check(phase="remainder")
        assert ei.value.reason == "deadline"

    def test_positive_deadline_boundary_stays_inclusive(self):
        # The zero-case fix must not change the documented `elapsed
        # must exceed` contract for positive deadlines.
        clock = FakeClock()
        b = Budget(deadline_seconds=2.0, clock=clock).start()
        clock.t = 2.0
        assert b.over() is None
        clock.t = 2.0000001
        assert b.over() == "deadline"

    def test_default_clock_is_monotonic(self):
        # Audit: the budget and the executor dispatch loop
        # (sched/executor.py `clock = time.monotonic`) must share one
        # timebase; mixing time.time in would let wall-clock steps
        # fire deadlines early or never.
        import time

        assert Budget().clock is time.monotonic

    def test_bit_axis_measures_delta_since_start(self):
        counter = CostCounter()
        with counter.phase("warmup"):
            counter.mul(1 << 999, 1 << 999)  # pre-start cost: not charged
        spent0 = counter.total_bit_cost
        b = Budget(max_bit_ops=50).start(counter)
        assert b.spent_bit_ops() == 0
        b.check()
        with counter.phase("work"):
            counter.mul(1 << 99, 1 << 99)  # 100x100 bits > the 50 ceiling
        assert b.spent_bit_ops() == counter.total_bit_cost - spent0
        assert b.over() == "bit_budget"
        with pytest.raises(BudgetExceeded) as ei:
            b.check(phase="tree")
        assert ei.value.reason == "bit_budget"
        assert ei.value.partial.bit_cost > 50

    def test_start_is_idempotent(self):
        clock = FakeClock()
        b = Budget(deadline_seconds=1.0, clock=clock).start()
        clock.t = 10.0
        b.start()  # must NOT reset the epoch
        assert b.elapsed_seconds() == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Budget(deadline_seconds=-1.0)
        with pytest.raises(ValueError):
            Budget(max_bit_ops=-1)

    def test_partial_result_floats(self):
        part = PartialResult(mu=8, scaled=[-256, 512], degree=5,
                             phase="interval", reason="deadline",
                             elapsed_seconds=1.0, bit_cost=0)
        assert len(part) == 2
        assert part.as_floats() == [-1.0, 2.0]


class TestSequentialBudget:
    def test_pre_expired_deadline_raises_with_empty_partial(self):
        b = Budget(deadline_seconds=0.0)
        finder = RealRootFinder(mu_bits=16, budget=b)
        with pytest.raises(BudgetExceeded) as ei:
            finder.find_roots(IntPoly.from_roots([-3, 0, 2]))
        assert ei.value.partial.scaled == []

    def test_unbudgeted_answer_is_unchanged(self):
        # The budget-aware per-gap path must replicate solve_all exactly.
        p = IntPoly.from_roots([-7, -2, 1, 5, 9])
        ref = RealRootFinder(mu_bits=MU).find_roots(p)
        b = Budget(deadline_seconds=3600.0)
        got = RealRootFinder(mu_bits=MU, budget=b).find_roots(p)
        assert got.scaled == ref.scaled

    def test_bit_budget_auto_creates_counter(self):
        finder = RealRootFinder(mu_bits=16, budget=Budget(max_bit_ops=10**12))
        assert finder.counter.total_bit_cost == 0  # a real CostCounter
        finder.find_roots(IntPoly.from_roots([-1, 1]))
        assert finder.counter.total_bit_cost > 0

    @pytest.mark.slow
    def test_wilkinson20_partial_roots_certify(self):
        # Acceptance scenario: measure the exact (deterministic) bit
        # cost of the full run, then rerun with 90% of it — the run
        # must trip mid-interval with a nonempty partial result whose
        # roots are a subset of the full answer and pass the exact
        # Sturm certificate in partial mode.
        counter = CostCounter()
        full = RealRootFinder(mu_bits=MU, counter=counter).find_roots(
            WILKINSON_20)
        total = counter.total_bit_cost
        budget = Budget(max_bit_ops=int(total * 0.9))
        finder = RealRootFinder(mu_bits=MU, counter=CostCounter(),
                                budget=budget)
        with pytest.raises(BudgetExceeded) as ei:
            finder.find_roots(WILKINSON_20)
        part = ei.value.partial
        assert ei.value.reason == "bit_budget"
        assert 0 < len(part.scaled) < len(full.scaled)
        assert all(s in full.scaled for s in part.scaled)
        certify_roots(WILKINSON_20, part.scaled, None, MU, partial=True)

    def test_repeated_roots_partial_accumulates_across_factors(self):
        # (x+1)^2 (x-2)^2 (x-5): the multiplicity path solves Yun
        # factors one at a time; a budget tripping between factors
        # reports the roots of the factors already solved.
        p = IntPoly.from_roots([-1, -1, 2, 2, 5])
        counter = CostCounter()
        RealRootFinder(mu_bits=16, counter=counter).find_roots(p)
        total = counter.total_bit_cost
        caught = None
        for frac in (0.9, 0.8, 0.7, 0.6, 0.5):
            budget = Budget(max_bit_ops=int(total * frac))
            finder = RealRootFinder(mu_bits=16, counter=CostCounter(),
                                    budget=budget)
            try:
                finder.find_roots(p)
            except BudgetExceeded as e:
                if e.partial.scaled:
                    caught = e
                    break
        if caught is None:
            pytest.skip("no fraction tripped with a nonempty partial")
        certify_roots(p, caught.partial.scaled, None, 16, partial=True)


class TestExecutorBudget:
    @pytest.mark.slow
    def test_pre_expired_deadline_raises_and_pool_survives(self):
        from repro.sched.executor import ParallelRootFinder

        p = IntPoly.from_roots([-5, -1, 2, 7, 11])
        ref = RealRootFinder(mu_bits=16).find_roots(p)
        with ParallelRootFinder(mu=16, processes=2,
                                budget=Budget(deadline_seconds=0.0)) as f:
            with pytest.raises(BudgetExceeded) as ei:
                f.find_roots_scaled(p)
            assert ei.value.partial.scaled == []
            assert f.fallback_count == 0  # an overrun is not a fallback
            f.budget = None  # lift the budget: the pool must still work
            assert f.find_roots_scaled(p) == ref.scaled

    @pytest.mark.slow
    def test_executor_bit_budget_reads_parent_side_costs(self):
        from repro.sched.executor import ParallelRootFinder

        p = IntPoly.from_roots([-5, -1, 2, 7, 11])
        # Ceiling below the parent-side remainder/tree cost: the run
        # must trip during the parent phases, deterministically.
        counter = CostCounter()
        RealRootFinder(mu_bits=16, counter=counter).find_roots(p)
        with ParallelRootFinder(mu=16, processes=2,
                                budget=Budget(max_bit_ops=10)) as f:
            assert f.counter is not None  # auto-created for the ceiling
            with pytest.raises(BudgetExceeded) as ei:
                f.find_roots_scaled(p)
            assert ei.value.reason == "bit_budget"


class TestPartialCertification:
    def test_partial_subset_passes(self):
        p = IntPoly.from_roots([-3, 0, 2])
        full = RealRootFinder(mu_bits=16).find_roots(p)
        certify_roots(p, full.scaled[:2], None, 16, partial=True)
        certify_roots(p, [], None, 16, partial=True)

    def test_partial_still_rejects_wrong_roots(self):
        p = IntPoly.from_roots([-3, 0, 2])
        with pytest.raises(CertificationError):
            certify_roots(p, [12345], None, 16, partial=True)

    def test_partial_rejects_overclaiming(self):
        p = IntPoly.from_roots([-3, 0, 2])
        full = RealRootFinder(mu_bits=16).find_roots(p)
        too_many = full.scaled + [full.scaled[-1] + (7 << 16)]
        with pytest.raises(CertificationError):
            certify_roots(p, too_many, None, 16, partial=True)

    def test_full_mode_still_requires_multiplicities(self):
        p = IntPoly.from_roots([-3, 0, 2])
        full = RealRootFinder(mu_bits=16).find_roots(p)
        with pytest.raises(CertificationError, match="multiplicities"):
            certify_roots(p, full.scaled, None, 16)
