"""Tests for the cost counter and the quadratic bit-cost model."""

import pytest

from repro.costmodel.counter import (
    NULL_COUNTER,
    CostCounter,
    NullCounter,
    PhaseStats,
    bit_length,
)


class TestBitLength:
    def test_zero_charges_one(self):
        assert bit_length(0) == 1

    def test_matches_abs_bit_length(self):
        assert bit_length(-255) == 8
        assert bit_length(256) == 9


class TestCharging:
    def test_mul_returns_product_and_charges(self):
        c = CostCounter()
        assert c.mul(6, 7) == 42
        st = c.phase_stats()
        assert st.mul_count == 1
        assert st.mul_bit_cost == 3 * 3

    def test_divmod_returns_pair(self):
        c = CostCounter()
        assert c.divmod(17, 5) == (3, 2)
        assert c.phase_stats().div_count == 1

    def test_exact_div(self):
        c = CostCounter()
        assert c.exact_div(15, 5) == 3
        with pytest.raises(ArithmeticError):
            c.exact_div(16, 5)

    def test_add_sub_linear_cost(self):
        c = CostCounter()
        c.add(255, 1)
        c.sub(255, 1)
        st = c.phase_stats()
        assert st.add_count == 2
        assert st.add_bit_cost == 16

    def test_shift(self):
        c = CostCounter()
        assert c.shift_left(3, 4) == 48
        assert c.phase_stats().add_count == 1


class TestPhases:
    def test_attribution(self):
        c = CostCounter()
        c.mul(2, 2)
        with c.phase("alpha"):
            c.mul(2, 2)
            with c.phase("beta"):
                c.mul(2, 2)
            c.mul(2, 2)
        assert c.stats[""].mul_count == 1
        assert c.stats["alpha"].mul_count == 2
        assert c.stats["beta"].mul_count == 1

    def test_prefix_aggregation(self):
        c = CostCounter()
        with c.phase("interval.sieve"):
            c.mul(2, 2)
        with c.phase("interval.newton"):
            c.mul(2, 2)
        with c.phase("tree"):
            c.mul(2, 2)
        assert c.phase_stats("interval").mul_count == 2
        assert c.phase_stats().mul_count == 3

    def test_phase_restored_after_exception(self):
        c = CostCounter()
        with pytest.raises(RuntimeError):
            with c.phase("x"):
                raise RuntimeError
        assert c.current_phase == ""

    def test_totals_properties(self):
        c = CostCounter()
        with c.phase("p"):
            c.mul(1000, 1000)
        assert c.mul_count == 1
        assert c.mul_bit_cost == 100
        assert c.total_bit_cost == 100

    def test_report_contains_phases(self):
        c = CostCounter()
        with c.phase("myphase"):
            c.mul(5, 5)
        rep = c.report()
        assert "myphase" in rep and "TOTAL" in rep

    def test_phases_listing(self):
        c = CostCounter()
        with c.phase("b"):
            c.mul(1, 1)
        with c.phase("a"):
            c.mul(1, 1)
        assert c.phases() == ["a", "b"]


class TestPhaseStats:
    def test_merged(self):
        a = PhaseStats(mul_count=1, mul_bit_cost=10)
        b = PhaseStats(mul_count=2, mul_bit_cost=20, add_count=3)
        m = a.merged(b)
        assert m.mul_count == 3
        assert m.mul_bit_cost == 30
        assert m.add_count == 3

    def test_op_count(self):
        s = PhaseStats(mul_count=1, div_count=2, add_count=3)
        assert s.op_count == 6


class TestNullCounter:
    def test_is_free_and_correct(self):
        n = NullCounter()
        assert n.mul(6, 7) == 42
        assert n.divmod(17, 5) == (3, 2)
        assert n.add(1, 2) == 3
        assert n.sub(5, 2) == 3
        assert n.shift_left(1, 3) == 8
        assert n.phase_stats().mul_count == 0

    def test_exact_div_still_checks(self):
        with pytest.raises(ArithmeticError):
            NullCounter().exact_div(7, 2)

    def test_phase_noop(self):
        with NULL_COUNTER.phase("anything"):
            pass
        assert NULL_COUNTER.phase_stats().op_count == 0
