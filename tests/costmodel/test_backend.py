"""Arithmetic-backend layer: resolution, charge parity, and the
cost-model contracts the backends must preserve.

The backend seam swaps integer kernels underneath the counters without
moving a single charged bit — these tests pin that invariant, plus the
two evaluation-cost bugs fixed alongside it (the eval_int off-by-one
against Eq. (37) and the eval_float overflow on huge coefficients).
"""

import math
import random

import pytest

from repro.analysis.bounds import eval_bit_cost_bound
from repro.costmodel.backend import (
    BACKEND_NAMES,
    BackendCounter,
    BackendNullCounter,
    BackendUnavailable,
    Gmpy2Backend,
    MPIntBackend,
    PythonBackend,
    available_backends,
    counter_for,
    get_backend,
    null_counter_for,
    resolve_backend,
)
from repro.costmodel.counter import NULL_COUNTER, CostCounter
from repro.poly.dense import IntPoly

HAVE_GMPY2 = Gmpy2Backend.available()


# -- resolution ------------------------------------------------------------

def test_default_is_python(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    assert resolve_backend(None).name == "python"
    assert resolve_backend("python").name == "python"


def test_env_variable_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "mpint")
    assert resolve_backend(None).name == "mpint"
    monkeypatch.setenv("REPRO_BACKEND", "  ")  # blank falls back
    assert resolve_backend(None).name == "python"


def test_explicit_name_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "mpint")
    assert resolve_backend("python").name == "python"


def test_auto_resolves_to_gmpy2_or_python():
    resolved = resolve_backend("auto")
    assert resolved.name == ("gmpy2" if HAVE_GMPY2 else "python")


def test_backend_instance_passes_through():
    b = MPIntBackend()
    assert resolve_backend(b) is b


def test_unknown_backend_raises():
    with pytest.raises(BackendUnavailable):
        get_backend("fortran")
    with pytest.raises(BackendUnavailable):
        resolve_backend("fortran")


@pytest.mark.skipif(HAVE_GMPY2, reason="gmpy2 installed here")
def test_unavailable_backend_raises():
    with pytest.raises(BackendUnavailable):
        get_backend("gmpy2")


def test_available_backends_always_has_python_and_mpint():
    names = available_backends()
    assert "python" in names and "mpint" in names
    assert set(names) <= set(BACKEND_NAMES)


def test_python_backend_gets_plain_counters():
    # The default hot path must keep zero indirection.
    assert type(counter_for("python")) is CostCounter
    assert null_counter_for("python") is NULL_COUNTER
    assert type(counter_for("mpint")) is BackendCounter
    assert type(null_counter_for("mpint")) is BackendNullCounter


# -- kernel correctness ----------------------------------------------------

def _op_cases():
    rng = random.Random(42)
    vals = [0, 1, -1, 2, -7, 10**6, -(10**12), rng.getrandbits(200),
            -rng.getrandbits(300), rng.getrandbits(1000)]
    return [(a, b) for a in vals for b in vals]


@pytest.mark.parametrize("backend", ["mpint"] + (["gmpy2"] if HAVE_GMPY2
                                                 else []))
def test_kernels_match_python(backend):
    ref, alt = PythonBackend(), get_backend(backend)
    for a, b in _op_cases():
        assert alt.mul(a, b) == ref.mul(a, b)
        assert alt.add(a, b) == ref.add(a, b)
        assert alt.sub(a, b) == ref.sub(a, b)
        if b != 0:
            # Python floor semantics, including negative operands.
            assert alt.divmod(a, b) == ref.divmod(a, b)
        assert alt.shift_left(a, 13) == ref.shift_left(a, 13)
        assert type(alt.mul(a, b)) is int  # results come back as int


def test_exact_div_raises_on_remainder():
    for backend in ("python", "mpint"):
        b = get_backend(backend)
        assert b.exact_div(12, 3) == 4
        assert b.exact_div(-12, 3) == -4
        with pytest.raises(ArithmeticError):
            b.exact_div(13, 3)


# -- charge parity ---------------------------------------------------------

def _drive(counter):
    """One fixed op script; returns the results it produced."""
    out = []
    with counter.phase("p1"):
        out.append(counter.mul(12345, -678))
        out.append(counter.add(2**80, 3))
        out.append(counter.sub(5, 2**90))
        out.append(counter.shift_left(77, 21))
    out.append(counter.divmod(2**100 + 7, 97))
    out.append(counter.exact_div(2**64, 2**32))
    return out


@pytest.mark.parametrize("backend", ["mpint"] + (["gmpy2"] if HAVE_GMPY2
                                                 else []))
def test_backend_counter_charges_identically(backend):
    ref = CostCounter()
    alt = counter_for(backend)
    assert _drive(alt) == _drive(ref)
    assert alt.snapshot() == ref.snapshot()
    assert alt.total_bit_cost == ref.total_bit_cost
    assert alt.mul_count == ref.mul_count


def test_backend_null_counter_charges_nothing():
    nc = null_counter_for("mpint")
    results = _drive(nc)
    assert results == _drive(CostCounter())
    assert nc.total_bit_cost == 0 and nc.mul_count == 0


# -- cost-model contracts pinned by this PR --------------------------------

def test_eval_int_charges_exactly_degree_muls():
    # Regression: eval_int used to charge degree+1 muls (one per
    # coefficient) although Horner on degree d does exactly d.
    for coeffs in [(3, -2, 1), (5,), (0, 0, 7, -1, 4), (-2, 0, 1)]:
        p = IntPoly(coeffs)
        counter = CostCounter()
        p.eval_int(17, counter)
        assert counter.mul_count == p.degree


def test_eval_int_cost_within_paper_bound():
    # The Eq. (37) bound is stated for degree-many Horner steps; the
    # off-by-one pushed small-degree evals past it.
    rng = random.Random(7)
    for _ in range(20):
        d = rng.randint(1, 12)
        p = IntPoly([rng.randint(-(2**30), 2**30) for _ in range(d)] + [1])
        x = rng.randint(-(2**20), 2**20)
        counter = CostCounter()
        p.eval_int(x, counter)
        bound = eval_bit_cost_bound(
            p.max_coefficient_bits(), p.degree, max(abs(x).bit_length(), 1)
        )
        assert counter.total_bit_cost <= bound


def test_eval_float_saturates_instead_of_raising():
    # Regression: coefficients beyond float range raised OverflowError.
    huge = 10**400
    p = IntPoly((-huge, 0, 1))
    assert p.eval_float(0.0) == -math.inf
    assert p.eval_float(1e10) == -math.inf
    q = IntPoly((huge, 1))
    assert q.eval_float(0.0) == math.inf
    small = IntPoly((3, -2, 1))
    assert small.eval_float(2.0) == pytest.approx(3 - 4 + 4)


def test_mul_charges_nnz_products():
    # The documented contract: IntPoly.mul charges one counted mul per
    # pair of *nonzero* coefficients, which for dense operands equals
    # (da+1)*(db+1).
    dense_a, dense_b = IntPoly((1, 2, 3)), IntPoly((4, 5))
    counter = CostCounter()
    dense_a.mul(dense_b, counter)
    assert counter.mul_count == 3 * 2

    sparse_a, sparse_b = IntPoly((1, 0, 0, 3)), IntPoly((0, 5, 0, 0, 2))
    nnz = (sum(1 for c in sparse_a.coeffs if c)
           * sum(1 for c in sparse_b.coeffs if c))
    counter = CostCounter()
    sparse_a.mul(sparse_b, counter)
    assert counter.mul_count == nnz == 4


def test_eval_many_matches_eval_loop():
    from repro.poly.eval import ScaledEvaluator

    p = IntPoly((7, -3, 0, 2, 1))
    ev = ScaledEvaluator(p, w=12)
    ys = [-9, -1, 0, 3, 2**12, -(2**13)]
    c_loop, c_batch = CostCounter(), CostCounter()
    loop = [ev.eval(y, c_loop) for y in ys]
    batch = ev.eval_many(ys, c_batch)
    assert batch == loop
    assert c_batch.snapshot() == c_loop.snapshot()
    assert ev.eval_many([]) == []
