"""Tests for the Sturm/bisection baseline."""

import random

from repro.baselines.sturm_bisect import SturmBisectFinder
from repro.core.rootfinder import RealRootFinder
from repro.poly.dense import IntPoly

from tests.conftest import rational_rooted, scaled_ceil


class TestBasics:
    def test_integer_roots(self):
        got = SturmBisectFinder(mu=8).find_roots_scaled(
            IntPoly.from_roots([-2, 0, 5])
        )
        assert got == [(-2) << 8, 0, 5 << 8]

    def test_empty_for_constants(self):
        assert SturmBisectFinder(mu=8).find_roots_scaled(IntPoly.constant(4)) == []

    def test_linear(self):
        got = SturmBisectFinder(mu=4).find_roots_scaled(IntPoly((-1, 2)))
        assert got == [8]  # ceil(16/2) = 8

    def test_negative_lc(self):
        got = SturmBisectFinder(mu=6).find_roots_scaled(
            -IntPoly.from_roots([3, 10])
        )
        assert got == [3 << 6, 10 << 6]

    def test_repeated_roots_reduced(self):
        got = SturmBisectFinder(mu=6).find_roots_scaled(
            IntPoly.from_roots([2, 2, 7])
        )
        assert got == [2 << 6, 7 << 6]


class TestAgainstMainAlgorithm:
    def test_equivalence_randomized(self):
        rng = random.Random(99)
        for _ in range(25):
            p, fracs = rational_rooted(rng)
            mu = rng.choice([4, 9, 17])
            ours = RealRootFinder(mu_bits=mu).find_roots(p).scaled
            base = SturmBisectFinder(mu=mu).find_roots_scaled(p)
            assert ours == base
            assert base == [scaled_ceil(f, mu) for f in fracs]

    def test_close_roots_distinct_cells(self):
        # roots 0 and 1/2048 at mu=5: ceil(0)=0, ceil(32/2048)=1
        p = IntPoly((0, 1)) * IntPoly((-1, 2048))
        got = SturmBisectFinder(mu=5).find_roots_scaled(p)
        assert got == [0, 1]

    def test_two_roots_same_cell(self):
        # roots 1/4096 and 2/4096 both ceil to 1 at mu=5
        p = IntPoly((-1, 4096)) * IntPoly((-2, 4096))
        got = SturmBisectFinder(mu=5).find_roots_scaled(p)
        assert got == [1, 1]
        ours = RealRootFinder(mu_bits=5).find_roots(p).scaled
        assert ours == got
