"""Tests for the Aberth-Ehrlich fixed-precision baseline."""

import pytest

from repro.baselines.aberth import AberthFailure, AberthFinder
from repro.bench.workloads import square_free_characteristic_input, wilkinson
from repro.poly.dense import IntPoly


class TestConvergence:
    def test_small_integer_roots(self):
        res = AberthFinder().find_roots(IntPoly.from_roots([-3, 1, 8]))
        assert res.roots == pytest.approx([-3.0, 1.0, 8.0], abs=1e-9)

    def test_empty_for_constant(self):
        assert AberthFinder().find_roots(IntPoly.constant(2)).roots == []

    def test_wilkinson_10(self):
        res = AberthFinder().find_roots(wilkinson(10))
        assert res.roots == pytest.approx(list(range(1, 11)), abs=1e-6)

    def test_charpoly_moderate_degree(self):
        inp = square_free_characteristic_input(15, 11)
        res = AberthFinder().find_roots(inp.poly)
        assert len(res.roots) == 15
        assert res.iterations > 0


class TestFailureModes:
    def test_wilkinson_20_fails_in_double_precision(self):
        """Coefficient rounding destroys Wilkinson-20 in float64 — the
        fixed-precision package must fail, mirroring the paper's PARI
        wall near degree 30."""
        with pytest.raises(AberthFailure):
            AberthFinder().find_roots(wilkinson(20))

    def test_huge_coefficients_fail(self):
        # coefficient 2**1200 exceeds the double range (~1.8e308)
        p = IntPoly.from_roots([2**600, -(2**600)])
        with pytest.raises(AberthFailure):
            AberthFinder().find_roots(p)

    def test_huge_but_representable_coefficients_converge(self):
        # 2**800 ~ 6.7e240 still fits in a double; Aberth handles it
        p = IntPoly.from_roots([2**400, -(2**400)])
        res = AberthFinder().find_roots(p)
        assert res.roots == pytest.approx([-(2.0**400), 2.0**400], rel=1e-9)

    def test_complex_roots_rejected(self):
        with pytest.raises(AberthFailure):
            AberthFinder().find_roots(IntPoly((1, 0, 1)))  # x^2 + 1
