"""Tests for the floating-point oracles."""

import pytest

from repro.baselines.numpy_eig import companion_roots, eigvalsh_roots, max_abs_error
from repro.poly.dense import IntPoly


class TestOracles:
    def test_eigvalsh_diag(self):
        assert eigvalsh_roots([[3, 0], [0, -1]]) == [-1.0, 3.0]

    def test_companion_roots(self):
        got = companion_roots(IntPoly.from_roots([-2, 5]))
        assert got == pytest.approx([-2.0, 5.0])

    def test_companion_constant(self):
        assert companion_roots(IntPoly.constant(1)) == []

    def test_max_abs_error(self):
        assert max_abs_error([1.0, 2.0], [1.0, 2.5]) == 0.5
        assert max_abs_error([], []) == 0.0

    def test_max_abs_error_length_mismatch(self):
        with pytest.raises(ValueError):
            max_abs_error([1.0], [1.0, 2.0])
