"""Coefficient interning in the dispatch path.

NodePlan fan-out used to re-pickle the node's full coefficient tuple
into every sign/gap task; now the parent interns it once per node as a
``(poly_key, pickle blob)`` pair and workers resolve it through a small
per-process cache.  These tests pin the round-trip, the cache bound,
and backward compatibility with raw coefficient payloads.
"""

import pickle

from repro.resilience.checkpoint import poly_key
from repro.sched import executor
from repro.sched.executor import intern_coeffs, _resolve_coeffs


def test_intern_round_trip():
    coeffs = (-6, 1, 1)
    key, blob = intern_coeffs(coeffs, 30, "hybrid")
    assert key == poly_key(coeffs, 30, "hybrid")
    assert isinstance(blob, bytes)
    assert pickle.loads(blob) == coeffs
    assert _resolve_coeffs((key, blob)) == coeffs


def test_resolve_caches_by_key():
    executor._COEFFS_CACHE.clear()
    ref = intern_coeffs((1, 0, -2, 5), 20, "hybrid")
    first = _resolve_coeffs(ref)
    second = _resolve_coeffs(ref)
    assert second is first  # cache hit, no second unpickle
    assert executor._COEFFS_CACHE[ref[0]] is first


def test_cache_is_bounded():
    executor._COEFFS_CACHE.clear()
    for k in range(executor._COEFFS_CACHE_MAX * 2 + 3):
        _resolve_coeffs(intern_coeffs((k, 1), 16, "hybrid"))
    assert len(executor._COEFFS_CACHE) <= executor._COEFFS_CACHE_MAX


def test_raw_payloads_still_resolve():
    # Legacy task payloads carry the plain coefficient sequence.
    assert _resolve_coeffs([3, -1, 4]) == (3, -1, 4)
    assert _resolve_coeffs((3, -1)) == (3, -1)
    # A 2-tuple of ints is coefficients, not an interned ref.
    assert _resolve_coeffs((7, 2)) == (7, 2)
