"""Tests for the task graph container."""

import pytest

from repro.costmodel.counter import CostCounter
from repro.sched.graph import TaskGraph
from repro.sched.task import TaskKind


def noop():
    pass


class TestConstruction:
    def test_add_returns_sequential_ids(self):
        g = TaskGraph()
        assert g.add(TaskKind.RECURSE, noop) == 0
        assert g.add(TaskKind.RECURSE, noop) == 1
        assert len(g) == 2

    def test_forward_dependency_rejected(self):
        g = TaskGraph()
        with pytest.raises(ValueError):
            g.add(TaskKind.RECURSE, noop, deps=[0])  # self/forward

    def test_dep_deduplication(self):
        g = TaskGraph()
        a = g.add(TaskKind.RECURSE, noop)
        b = g.add(TaskKind.RECURSE, noop, deps=[a, a, a])
        assert g.tasks[b].deps == (a,)


class TestRecordedRun:
    def test_bodies_execute_in_order(self):
        g = TaskGraph()
        log = []
        g.add(TaskKind.RECURSE, lambda: log.append("a"))
        g.add(TaskKind.SORT, lambda: log.append("b"), deps=[0])
        g.run_recorded(CostCounter())
        assert log == ["a", "b"]

    def test_costs_are_bitcost_deltas(self):
        g = TaskGraph()
        c = CostCounter()
        g.add(TaskKind.REM_MUL, lambda: c.mul(255, 255))
        g.add(TaskKind.REM_MUL, lambda: None)
        g.run_recorded(c)
        assert g.tasks[0].cost == 64
        assert g.tasks[1].cost == 0
        assert g.tasks[0].op_count == 1

    def test_double_execution_rejected(self):
        g = TaskGraph()
        g.add(TaskKind.RECURSE, noop)
        g.run_recorded(CostCounter())
        with pytest.raises(RuntimeError):
            g.run_recorded(CostCounter())

    def test_phase_attribution(self):
        g = TaskGraph()
        c = CostCounter()
        g.add(TaskKind.REM_MUL, lambda: c.mul(3, 3), phase="remainder")
        g.run_recorded(c)
        assert c.phase_stats("remainder").mul_count == 1


class TestStats:
    def test_total_work_and_critical_path(self):
        g = TaskGraph()
        c = CostCounter()
        # chain: a -> b, plus independent c
        g.add(TaskKind.REM_MUL, lambda: c.mul(2**10, 2**10))          # cost 121
        g.add(TaskKind.REM_MUL, lambda: c.mul(2**10, 2**10), deps=[0])
        g.add(TaskKind.REM_MUL, lambda: c.mul(2**10, 2**10))
        g.run_recorded(c)
        st = g.stats()
        assert st.total_work == 3 * 121
        assert st.critical_path == 2 * 121
        assert st.n_tasks == 3

    def test_overhead_added_per_task(self):
        g = TaskGraph()
        g.add(TaskKind.RECURSE, noop)
        g.add(TaskKind.RECURSE, noop, deps=[0])
        g.run_recorded(CostCounter())
        st = g.stats(overhead=10)
        assert st.total_work == 20
        assert st.critical_path == 20

    def test_by_kind_breakdown(self):
        g = TaskGraph()
        c = CostCounter()
        g.add(TaskKind.SORT, noop)
        g.add(TaskKind.REM_MUL, lambda: c.mul(3, 3))
        g.run_recorded(c)
        st = g.stats()
        assert st.by_kind[TaskKind.SORT.value][0] == 1
        assert st.by_kind[TaskKind.REM_MUL.value] == (1, 4)

    def test_stats_require_execution(self):
        g = TaskGraph()
        g.add(TaskKind.RECURSE, noop)
        with pytest.raises(RuntimeError):
            g.stats()
