"""Bit-identical parity: sequential vs pooled-parallel vs batched.

The acceptance bar of the persistent executor: every answer it returns
equals :class:`repro.core.rootfinder.RealRootFinder`'s ``scaled`` list
exactly — across solver strategies, degrees, degenerate inputs, pool
reuse, and the timeout degradation path.  ``fallback_count`` guards
that the happy-path assertions really exercised the pool (a silent
sequential fallback would make parity trivially true).
"""

import pytest

from repro.core.rootfinder import RealRootFinder
from repro.core.tree import InterleavingTree
from repro.costmodel.counter import CostCounter
from repro.poly.dense import IntPoly
from repro.sched.executor import ParallelRootFinder

MU = 16

#: distinct integer roots per tested degree (33 matches the paper's
#: speedup-study scale; 8 is a multi-level tree; 1 and 2 are the
#: linear/smallest-tree edges).
ROOTS_BY_DEGREE = {
    1: [5],
    2: [-3, 4],
    8: [-11, -7, -4, -1, 2, 5, 9, 14],
    33: [-40, -38, -35, -33, -30, -28, -25, -22, -19, -17, -14, -12,
         -9, -6, -4, -1, 1, 3, 6, 8, 11, 13, 16, 18, 21, 24, 26, 29,
         31, 34, 36, 38, 39],
}


def sequential_scaled(p: IntPoly, strategy: str = "hybrid",
                      mu: int = MU) -> list[int]:
    return RealRootFinder(mu_bits=mu, strategy=strategy).find_roots(p).scaled


@pytest.fixture(scope="module")
def finder():
    """One pool for the whole module — reuse is part of what we test."""
    with ParallelRootFinder(mu=MU, processes=2) as f:
        yield f


@pytest.mark.slow
@pytest.mark.parametrize("strategy", ["hybrid", "bisection", "newton"])
@pytest.mark.parametrize("degree", sorted(ROOTS_BY_DEGREE))
def test_parity_across_strategies_and_degrees(finder, strategy, degree):
    p = IntPoly.from_roots(ROOTS_BY_DEGREE[degree])
    finder.strategy = strategy
    assert finder.find_roots_scaled(p) == sequential_scaled(p, strategy)
    assert finder.fallback_count == 0, "parity must come from the pool"


@pytest.mark.slow
def test_batched_matches_sequential(finder):
    finder.strategy = "hybrid"
    polys = [
        IntPoly.from_roots([-5, 1, 6]),
        IntPoly.from_roots([-2, 3]),
        IntPoly((7,)),                      # constant: no roots
        IntPoly.from_roots([-10, -4, 0, 8]),
    ]
    expected = [sequential_scaled(q) for q in polys]
    assert finder.find_roots_many(polys) == expected
    assert finder.fallback_count == 0


@pytest.mark.slow
def test_pool_reused_across_calls():
    with ParallelRootFinder(mu=12, processes=2) as f:
        a = f.find_roots_scaled(IntPoly.from_roots([-6, -1, 3, 8]))
        pids1 = f.worker_pids()
        b = f.find_roots_scaled(IntPoly.from_roots([-9, 2, 7]))
        pids2 = f.worker_pids()
    assert a == sequential_scaled(IntPoly.from_roots([-6, -1, 3, 8]), mu=12)
    assert b == sequential_scaled(IntPoly.from_roots([-9, 2, 7]), mu=12)
    assert len(pids1) == 2
    assert pids1 == pids2, "second call must reuse the same workers"
    assert f.fallback_count == 0
    assert f.worker_pids() == [], "close() shuts the pool down"


@pytest.mark.slow
def test_timeout_degrades_per_node_not_whole_poly():
    p = IntPoly.from_roots([-7, -2, 4, 9])
    # No pool worker can possibly finish within 0.1ms of dispatch (the
    # spawned interpreters are still booting), so every attempt times
    # out deterministically.  The degradation ladder finishes each task
    # in-parent — never the whole-polynomial sequential fallback — and
    # the call must still return the exact answer.
    with ParallelRootFinder(mu=MU, processes=2, task_timeout=1e-4) as f:
        assert f.find_roots_scaled(p) == sequential_scaled(p)
        assert f.fallback_count == 0
        assert f.metrics.counter("executor.task_timeouts").value > 0
        assert f.metrics.counter("executor.inline_tasks").value > 0
        assert f.worker_pids() == [], "wedged pool is discarded"


class TestEdgeCases:
    """The guards of satellite #1: same behaviour as the sequential
    finder on degenerate inputs (none of these need a live pool)."""

    def test_zero_polynomial_raises_value_error(self):
        f = ParallelRootFinder(mu=8, processes=2)
        with pytest.raises(ValueError, match="zero polynomial"):
            f.find_roots_scaled(IntPoly(()))

    def test_constant_returns_empty(self):
        f = ParallelRootFinder(mu=8, processes=2)
        assert f.find_roots_scaled(IntPoly((7,))) == []
        assert f.find_roots_scaled(IntPoly((-3,))) == []

    def test_linear_input_no_pool(self):
        f = ParallelRootFinder(mu=8, processes=2)
        assert f.find_roots_scaled(IntPoly((-10, 4))) == \
            sequential_scaled(IntPoly((-10, 4)), mu=8)
        assert f.worker_pids() == []

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            ParallelRootFinder(mu=0)
        with pytest.raises(ValueError):
            ParallelRootFinder(mu=8, processes=0)

    @pytest.mark.slow
    def test_repeated_roots_square_free_fallback(self):
        p = IntPoly.from_roots([2, 2, -5, -5, -5, 1])
        with ParallelRootFinder(mu=MU, processes=2) as f:
            assert f.find_roots_scaled(p) == sequential_scaled(p)
            assert f.fallback_count == 1, \
                "repeated roots must take the square-free fallback"


class TestCheckTreeThreading:
    """Satellite #2: the parallel path must run (and skip) the
    Theorem-1 verification exactly as configured, with the counter
    threaded through."""

    @staticmethod
    def _spy_compute(monkeypatch):
        seen = {}
        orig = InterleavingTree.compute_polynomials

        def spy(self, counter=None, check=False, tracer=None):
            seen["check"] = check
            seen["counter"] = counter
            if tracer is None:
                return orig(self, counter, check=check)
            return orig(self, counter, check=check, tracer=tracer)

        monkeypatch.setattr(InterleavingTree, "compute_polynomials", spy)
        return seen

    @pytest.mark.slow
    def test_check_tree_defaults_on_and_counter_threaded(self, monkeypatch):
        seen = self._spy_compute(monkeypatch)
        counter = CostCounter()
        with ParallelRootFinder(mu=8, processes=2, counter=counter) as f:
            f.find_roots_scaled(IntPoly.from_roots([-3, 2, 6]))
        assert seen["check"] is True
        assert seen["counter"] is counter
        assert counter.total_bit_cost > 0, "parent phases charge the counter"

    @pytest.mark.slow
    def test_check_tree_off_is_honored(self, monkeypatch):
        seen = self._spy_compute(monkeypatch)
        with ParallelRootFinder(mu=8, processes=2, check_tree=False) as f:
            f.find_roots_scaled(IntPoly.from_roots([-3, 2, 6]))
        assert seen["check"] is False
