"""Tests for the real multiprocessing executor."""

import pytest

from repro.core.rootfinder import RealRootFinder
from repro.poly.dense import IntPoly
from repro.sched.executor import ParallelRootFinder, solve_gap_worker


class TestWorker:
    def test_worker_solves_one_gap(self):
        p = IntPoly.from_roots([-5, 3])
        mu, r = 8, 4
        sent = 1 << (r + mu)
        gap, val = solve_gap_worker((p.coeffs, mu, r, 0, -sent, 3 << mu))
        assert gap == 0
        assert val == (-5) << mu


@pytest.mark.slow
class TestParallelFinder:
    def test_matches_sequential(self):
        p = IntPoly.from_roots([-12, -3, 0, 4, 9, 17])
        mu = 16
        ref = RealRootFinder(mu_bits=mu).find_roots(p)
        par = ParallelRootFinder(mu=mu, processes=2)
        assert par.find_roots_scaled(p) == ref.scaled

    def test_linear_shortcut(self):
        par = ParallelRootFinder(mu=8, processes=2)
        assert par.find_roots_scaled(IntPoly((-10, 4))) == [int(2.5 * 256)]
