"""Tests for the real multiprocessing executor."""

import pytest

from repro.core.rootfinder import RealRootFinder
from repro.costmodel.counter import CostCounter
from repro.obs.trace import Tracer
from repro.poly.dense import IntPoly
from repro.poly.roots_bounds import cauchy_root_bound_bits, root_bound_bits
from repro.sched.executor import ParallelRootFinder, solve_gap_worker


class TestWorker:
    def test_worker_solves_one_gap(self):
        p = IntPoly.from_roots([-5, 3])
        mu, r = 8, 4
        sent = 1 << (r + mu)
        gap, val, spans = solve_gap_worker((p.coeffs, mu, r, 0, -sent, 3 << mu))
        assert gap == 0
        assert val == (-5) << mu
        assert spans is None

    def test_worker_captures_spans_when_asked(self):
        p = IntPoly.from_roots([-5, 3])
        mu, r = 8, 4
        sent = 1 << (r + mu)
        gap, val, spans = solve_gap_worker(
            (p.coeffs, mu, r, 0, -sent, 3 << mu, True)
        )
        assert val == (-5) << mu
        assert spans and spans[0]["name"] == "gap"
        assert spans[0]["end_ns"] is not None
        # The worker's cost counter charged the solve to real phases.
        assert any(d["cost"] for d in spans)


class TestRootBoundUnification:
    """The executor must pose the same interval problems as the
    sequential path: one shared root-bound helper (regression for the
    cauchy-vs-combined bound divergence)."""

    def test_executor_uses_shared_bound_helper(self):
        import repro.sched.executor as ex

        assert ex.root_bound_bits is root_bound_bits
        assert not hasattr(ex, "cauchy_root_bound_bits")

    @pytest.mark.slow
    def test_bit_identical_where_bounds_differ(self):
        # Coefficients large relative to the roots: Fujiwara beats
        # Cauchy, so the old executor would have used wider sentinels.
        p = IntPoly.from_roots([2, 3, 4, 5, 6, 7])
        assert cauchy_root_bound_bits(p) != root_bound_bits(p)
        mu = 16
        ref = RealRootFinder(mu_bits=mu).find_roots(p)
        par = ParallelRootFinder(mu=mu, processes=2)
        assert par.find_roots_scaled(p) == ref.scaled


@pytest.mark.slow
class TestParallelFinder:
    def test_matches_sequential(self):
        p = IntPoly.from_roots([-12, -3, 0, 4, 9, 17])
        mu = 16
        ref = RealRootFinder(mu_bits=mu).find_roots(p)
        par = ParallelRootFinder(mu=mu, processes=2)
        assert par.find_roots_scaled(p) == ref.scaled

    def test_linear_shortcut(self):
        par = ParallelRootFinder(mu=8, processes=2)
        assert par.find_roots_scaled(IntPoly((-10, 4))) == [int(2.5 * 256)]

    def test_traced_run_adopts_worker_spans(self):
        p = IntPoly.from_roots([-7, -1, 2, 8])
        mu = 12
        tracer = Tracer(counter=CostCounter())
        par = ParallelRootFinder(mu=mu, processes=2, tracer=tracer)
        ref = RealRootFinder(mu_bits=mu).find_roots(p)
        assert par.find_roots_scaled(p) == ref.scaled
        gap_spans = [s for s in tracer.spans if s.name == "gap"]
        assert gap_spans, "worker spans were not adopted"
        assert all(s.track > 0 for s in gap_spans)
        assert all(s.end_ns is not None for s in tracer.spans)
        # Worker-side costs made it back through the pool.
        assert any(s.bit_cost > 0 for s in gap_spans)
