"""Tests for the real multiprocessing executor."""

import os
import signal
import time

import pytest

from repro.core.rootfinder import RealRootFinder
from repro.costmodel.counter import CostCounter
from repro.obs.trace import Tracer
from repro.poly.dense import IntPoly
from repro.poly.roots_bounds import cauchy_root_bound_bits, root_bound_bits
from repro.sched.executor import ParallelRootFinder, solve_gap_worker


class TestWorker:
    def test_worker_solves_one_gap(self):
        p = IntPoly.from_roots([-5, 3])
        mu, r = 8, 4
        sent = 1 << (r + mu)
        gap, val, spans = solve_gap_worker((p.coeffs, mu, r, 0, -sent, 3 << mu))
        assert gap == 0
        assert val == (-5) << mu
        assert spans is None

    def test_worker_captures_spans_when_asked(self):
        p = IntPoly.from_roots([-5, 3])
        mu, r = 8, 4
        sent = 1 << (r + mu)
        gap, val, spans = solve_gap_worker(
            (p.coeffs, mu, r, 0, -sent, 3 << mu, True)
        )
        assert val == (-5) << mu
        assert spans and spans[0]["name"] == "gap"
        assert spans[0]["end_ns"] is not None
        # The worker's cost counter charged the solve to real phases.
        assert any(d["cost"] for d in spans)


class TestRootBoundUnification:
    """The executor must pose the same interval problems as the
    sequential path: one shared root-bound helper (regression for the
    cauchy-vs-combined bound divergence)."""

    def test_executor_uses_shared_bound_helper(self):
        import repro.sched.executor as ex

        assert ex.root_bound_bits is root_bound_bits
        assert not hasattr(ex, "cauchy_root_bound_bits")

    @pytest.mark.slow
    def test_bit_identical_where_bounds_differ(self):
        # Coefficients large relative to the roots: Fujiwara beats
        # Cauchy, so the old executor would have used wider sentinels.
        p = IntPoly.from_roots([2, 3, 4, 5, 6, 7])
        assert cauchy_root_bound_bits(p) != root_bound_bits(p)
        mu = 16
        ref = RealRootFinder(mu_bits=mu).find_roots(p)
        par = ParallelRootFinder(mu=mu, processes=2)
        assert par.find_roots_scaled(p) == ref.scaled


@pytest.mark.slow
class TestParallelFinder:
    def test_matches_sequential(self):
        p = IntPoly.from_roots([-12, -3, 0, 4, 9, 17])
        mu = 16
        ref = RealRootFinder(mu_bits=mu).find_roots(p)
        par = ParallelRootFinder(mu=mu, processes=2)
        assert par.find_roots_scaled(p) == ref.scaled

    def test_linear_shortcut(self):
        par = ParallelRootFinder(mu=8, processes=2)
        assert par.find_roots_scaled(IntPoly((-10, 4))) == [int(2.5 * 256)]

    def test_unknown_strategy_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            ParallelRootFinder(mu=8, strategy="bogus")

    def test_traced_run_adopts_worker_spans(self):
        p = IntPoly.from_roots([-7, -1, 2, 8])
        mu = 12
        tracer = Tracer(counter=CostCounter())
        with ParallelRootFinder(mu=mu, processes=2, tracer=tracer) as par:
            ref = RealRootFinder(mu_bits=mu).find_roots(p)
            assert par.find_roots_scaled(p) == ref.scaled
        gap_spans = [s for s in tracer.spans if s.name == "gap"]
        assert gap_spans, "worker spans were not adopted"
        assert all(s.track > 0 for s in gap_spans)
        # PREINTERVAL sign tasks are traced too (the shared-sign stage).
        assert [s for s in tracer.spans if s.name == "sign"]
        assert all(s.end_ns is not None for s in tracer.spans)
        # Worker-side costs made it back through the pool.
        assert any(s.bit_cost > 0 for s in gap_spans)

    def test_pool_lifecycle_spans(self):
        tracer = Tracer(counter=CostCounter())
        with ParallelRootFinder(mu=10, processes=2, tracer=tracer) as par:
            par.find_roots_scaled(IntPoly.from_roots([-4, 1, 5]))
            par.find_roots_scaled(IntPoly.from_roots([-8, 3]))
        names = [s.name for s in tracer.spans]
        assert names.count("pool.spawn") == 1, "one pool for both calls"
        assert names.count("pool.close") == 1
        assert names.count("executor.dispatch") == 2

    def test_request_tag_stamps_dispatch_span(self):
        tracer = Tracer(counter=CostCounter())
        with ParallelRootFinder(mu=10, processes=2, tracer=tracer) as par:
            par.request_tag = "req-abc-000001"
            par.find_roots_scaled(IntPoly.from_roots([-4, 1, 5]))
            par.request_tag = None
            par.find_roots_scaled(IntPoly.from_roots([-8, 3]))
        dispatches = [s for s in tracer.spans
                      if s.name == "executor.dispatch"]
        assert dispatches[0].attrs["request_id"] == "req-abc-000001"
        assert "request_id" not in dispatches[1].attrs

    def test_telemetry_metrics_populated(self):
        p = IntPoly.from_roots([-9, -2, 1, 6])
        tracer = Tracer(counter=CostCounter())
        with ParallelRootFinder(mu=12, processes=2, tracer=tracer) as par:
            par.find_roots_scaled(p)
            reg = par.metrics
        names = reg.names()
        assert "executor.queue_depth" in names
        assert "executor.in_flight" in names
        samples = reg.histogram("executor.queue_depth.samples")
        assert samples.count > 0
        # the dispatch loop drains completely, so both gauges end at 0
        assert reg.gauge("executor.queue_depth").value == 0
        assert reg.gauge("executor.in_flight").value == 0
        # in-flight never exceeds the pool size by construction
        assert samples.max is not None
        # traced runs also stream the samples as counter events
        sampled = {name for _t, name, _v in tracer.counters}
        assert {"executor.queue_depth", "executor.in_flight"} <= sampled

    def test_fallback_registers_in_metrics(self):
        p = IntPoly.from_roots([-5, 2, 7])
        finder = ParallelRootFinder(mu=10, processes=2)
        ref = RealRootFinder(mu_bits=10).find_roots(p)
        assert finder._sequential_scaled(p) == ref.scaled
        assert finder.metrics.counter("executor.fallbacks").value == 1
        assert finder.fallback_count == 1

    def test_dead_worker_is_replaced(self):
        p = IntPoly.from_roots([-6, -1, 3, 8])
        ref = RealRootFinder(mu_bits=12).find_roots(p)
        # task_timeout bounds the post-kill call: if the victim died
        # holding the inqueue read-lock (a ~50/50 race — an idle worker
        # blocks in recv *inside* the lock), the respawned worker can
        # never read tasks; every attempt then times out, the breaker
        # trips, and the tasks complete in-parent (per-node degradation)
        # while the wedged pool is discarded for the next call.
        with ParallelRootFinder(mu=12, processes=2,
                                task_timeout=3.0) as par:
            assert par.find_roots_scaled(p) == ref.scaled
            victim = par.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            # The pool's maintenance thread replaces the dead worker.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                pids = par.worker_pids()
                if len(pids) == 2 and victim not in pids:
                    break
                time.sleep(0.05)
            assert victim not in par.worker_pids()
            # The exact answer comes back either way: pipelined on the
            # respawned pool, or in-parent if the lock was orphaned —
            # the whole-polynomial fallback is never needed.
            assert par.find_roots_scaled(p) == ref.scaled
            assert par.fallback_count == 0


class TestProfiledRun:
    def test_profiled_parallel_run_collects_stacks(self):
        p = IntPoly.from_roots([-7, -1, 2, 8])
        mu = 12
        tracer = Tracer(counter=CostCounter())
        with ParallelRootFinder(mu=mu, processes=2, tracer=tracer,
                                profile=True) as par:
            ref = RealRootFinder(mu_bits=mu).find_roots(p)
            assert par.find_roots_scaled(p) == ref.scaled
            folded = par.profile_collapsed()
        # the dispatcher's anchor sample alone guarantees stacks even
        # on a machine too fast to catch a worker mid-task
        assert folded
        assert all(isinstance(s, str) and isinstance(n, int) and n >= 1
                   for s, n in folded.items())
        # profile payloads never leak into the adopted span list
        assert all(hasattr(s, "sid") for s in tracer.spans)

    def test_profile_off_by_default_costs_nothing(self):
        with ParallelRootFinder(mu=10, processes=2) as par:
            par.find_roots_scaled(IntPoly.from_roots([-4, 1, 5]))
            assert par.profile_collapsed() == {}
            assert par.profile_samples == []
