"""Tests for schedule rendering and the reference scheduler cross-check."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel.counter import CostCounter
from repro.sched.graph import TaskGraph
from repro.sched.reference import reference_makespan
from repro.sched.render import render_gantt, render_utilization
from repro.sched.simulator import simulate
from repro.sched.task import TaskKind


def graph_with_costs(costs, deps_map=None):
    g = TaskGraph()
    c = CostCounter()

    def body(cost):
        def run():
            if cost:
                c.mul(1, 1 << (cost - 1))
        return run

    for i, cost in enumerate(costs):
        g.add(TaskKind.REM_MUL, body(cost), deps=(deps_map or {}).get(i, []))
    g.run_recorded(c)
    return g


class TestReferenceScheduler:
    def test_matches_simple_cases(self):
        g = graph_with_costs([10, 10, 10, 10])
        for p in (1, 2, 4):
            assert reference_makespan(g, p) == simulate(g, p).makespan

    def test_matches_with_overhead(self):
        g = graph_with_costs([5, 7, 3], {2: [0]})
        for p in (1, 2):
            assert (
                reference_makespan(g, p, overhead=11)
                == simulate(g, p, overhead=11).makespan
            )

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=40), min_size=1,
                 max_size=30),
        st.integers(min_value=1, max_value=9),
        st.randoms(use_true_random=False),
    )
    def test_matches_random_dags(self, costs, p, rng):
        deps_map = {
            i: rng.sample(range(i), rng.randint(0, min(i, 3)))
            for i in range(1, len(costs))
        }
        g = graph_with_costs(costs, deps_map)
        assert reference_makespan(g, p) == simulate(g, p).makespan

    def test_real_task_graph(self):
        from repro.core.tasks import build_task_graph
        from repro.poly.dense import IntPoly

        c = CostCounter()
        tg = build_task_graph(IntPoly.from_roots([1, 4, 9, 16, 25]), 16, c)
        tg.graph.run_recorded(c)
        for p in (2, 4, 16):
            assert (
                reference_makespan(tg.graph, p)
                == simulate(tg.graph, p).makespan
            )

    def test_requires_recorded_graph(self):
        g = TaskGraph()
        g.add(TaskKind.RECURSE, lambda: None)
        with pytest.raises(RuntimeError):
            reference_makespan(g, 2)


class TestRendering:
    def _traced(self, p=2):
        g = graph_with_costs([8, 4, 4, 8], {3: [0]})
        return g, simulate(g, p, keep_trace=True)

    def test_gantt_shape(self):
        g, r = self._traced()
        out = render_gantt(r, g.tasks, width=40)
        lines = out.splitlines()
        assert len(lines) == r.processors + 1  # rows + legend
        assert all(line.startswith("p") for line in lines[:-1])
        assert "m" in out  # REM_MUL glyph present

    def test_utilization_counts_processors_not_tasks(self):
        g, r = self._traced(p=2)
        out = render_utilization(r, width=40)
        # no bucket can report more busy processors than exist
        digits = [ch for ch in out if ch.isdigit()]
        assert digits and all(int(d) <= r.processors for d in digits)

    def test_requires_trace(self):
        g = graph_with_costs([1])
        r = simulate(g, 1)  # no trace
        with pytest.raises(ValueError):
            render_gantt(r, g.tasks)
        with pytest.raises(ValueError):
            render_utilization(r)

    def test_idle_shown_as_dots(self):
        # chain forces idleness on the second processor
        g = graph_with_costs([10, 10], {1: [0]})
        r = simulate(g, 2, keep_trace=True)
        out = render_gantt(r, g.tasks, width=20)
        assert "." in out.splitlines()[1]
