"""Hang guard for the executor suites.

These tests drive a real multiprocessing pool through injected faults
(stalls, SIGKILLed workers, orphaned queue locks), so the worst failure
mode is not a wrong answer but a *hang*.  ``faulthandler`` arms a
per-test watchdog that dumps every thread's traceback and hard-exits
if a single test exceeds ``REPRO_TEST_TIMEOUT`` seconds (default 180;
0 disables) — no third-party timeout plugin required.
"""

import faulthandler
import os

import pytest


@pytest.fixture(autouse=True)
def _hang_guard():
    timeout = float(os.environ.get("REPRO_TEST_TIMEOUT", "180"))
    if timeout <= 0:
        yield
        return
    faulthandler.dump_traceback_later(timeout, exit=True)
    try:
        yield
    finally:
        faulthandler.cancel_dump_traceback_later()
