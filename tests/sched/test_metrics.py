"""Tests for speedup table construction and formatting."""

from repro.costmodel.counter import CostCounter
from repro.sched.graph import TaskGraph
from repro.sched.metrics import SpeedupRow, format_speedup_table, speedup_table
from repro.sched.task import TaskKind


def simple_graph(n_tasks, cost_bits):
    g = TaskGraph()
    c = CostCounter()
    for _ in range(n_tasks):
        g.add(TaskKind.REM_MUL, lambda: c.mul(1, 1 << (cost_bits - 1)))
    g.run_recorded(c)
    return g


class TestSpeedupRow:
    def test_speedup_and_efficiency(self):
        row = SpeedupRow("n=10", 10, {1: 100, 2: 50, 4: 30})
        assert row.speedup(2) == 2.0
        assert row.efficiency(4) == (100 / 30) / 4


class TestSpeedupTable:
    def test_rows_sorted_by_degree(self):
        graphs = {20: simple_graph(8, 4), 10: simple_graph(4, 4)}
        rows = speedup_table(graphs, [2, 4])
        assert [r.degree for r in rows] == [10, 20]
        for r in rows:
            assert set(r.makespans) == {1, 2, 4}

    def test_embarrassingly_parallel_speedup(self):
        rows = speedup_table({8: simple_graph(8, 10)}, [2, 4, 8])
        row = rows[0]
        assert abs(row.speedup(8) - 8.0) < 1e-9

    def test_formatting(self):
        rows = speedup_table({5: simple_graph(4, 6)}, [2, 4])
        txt = format_speedup_table(rows, [2, 4], title="Table X")
        assert "Table X" in txt
        assert "degree" in txt
        assert "5" in txt
