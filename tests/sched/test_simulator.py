"""Tests for the discrete-event multiprocessor simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel.counter import CostCounter
from repro.sched.graph import TaskGraph
from repro.sched.simulator import simulate, speedup_curve
from repro.sched.task import TaskKind


def graph_with_costs(costs, deps_map=None):
    """Build + record a graph whose task i charges costs[i] bit ops."""
    g = TaskGraph()
    c = CostCounter()

    def body(cost):
        def run():
            # charge exactly `cost` via a 1 x cost bit multiply
            if cost:
                c.mul(1, (1 << (cost - 1)))
        return run

    for i, cost in enumerate(costs):
        deps = (deps_map or {}).get(i, [])
        g.add(TaskKind.REM_MUL, body(cost), deps=deps)
    g.run_recorded(c)
    return g


class TestKnownMakespans:
    def test_independent_tasks_perfectly_parallel(self):
        g = graph_with_costs([10, 10, 10, 10])
        assert simulate(g, 1).makespan == 40
        assert simulate(g, 2).makespan == 20
        assert simulate(g, 4).makespan == 10

    def test_chain_is_serial(self):
        g = graph_with_costs([5, 5, 5], {1: [0], 2: [1]})
        for p in (1, 2, 8):
            assert simulate(g, p).makespan == 15

    def test_diamond(self):
        #    0
        #  1   2
        #    3
        g = graph_with_costs([1, 10, 3, 1], {1: [0], 2: [0], 3: [1, 2]})
        assert simulate(g, 2).makespan == 1 + 10 + 1
        assert simulate(g, 1).makespan == 15

    def test_unbalanced_with_two_processors(self):
        # one long task + three short ones
        g = graph_with_costs([9, 3, 3, 3])
        r = simulate(g, 2)
        assert r.makespan == 9  # 9 || (3+3+3)

    def test_fifo_tie_breaking_deterministic(self):
        g = graph_with_costs([4, 4, 4, 4, 4, 4])
        a = simulate(g, 3, keep_trace=True)
        b = simulate(g, 3, keep_trace=True)
        assert a.trace == b.trace

    def test_overhead_inflates_tasks(self):
        g = graph_with_costs([10, 10])
        assert simulate(g, 1, overhead=5).makespan == 30
        assert simulate(g, 2, overhead=5).makespan == 15


class TestInvariants:
    def test_busy_sums_to_total_work(self):
        g = graph_with_costs([7, 2, 9, 4, 1], {2: [0], 4: [1]})
        for p in (1, 2, 3):
            r = simulate(g, p)
            assert sum(r.busy) == r.total_work

    def test_utilization_bounds(self):
        g = graph_with_costs([5, 5, 5, 5])
        r = simulate(g, 2)
        assert 0 < r.utilization <= 1

    def test_processors_must_be_positive(self):
        g = graph_with_costs([1])
        with pytest.raises(ValueError):
            simulate(g, 0)

    def test_unexecuted_graph_rejected(self):
        g = TaskGraph()
        g.add(TaskKind.RECURSE, lambda: None)
        with pytest.raises(RuntimeError):
            simulate(g, 1)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=50), min_size=1,
                 max_size=24),
        st.integers(min_value=1, max_value=8),
        st.randoms(),
    )
    def test_greedy_bounds_random_dags(self, costs, p, pyrandom):
        deps_map = {}
        for i in range(1, len(costs)):
            k = pyrandom.randint(0, min(i, 3))
            deps_map[i] = pyrandom.sample(range(i), k)
        g = graph_with_costs(costs, deps_map)
        r = simulate(g, p)
        r.check_bounds()  # max(T1/p, Tinf) <= Tp <= T1/p + Tinf

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=30), min_size=2,
                    max_size=16))
    def test_makespan_monotone_in_processors(self, costs):
        g = graph_with_costs(costs)
        spans = [simulate(g, p).makespan for p in (1, 2, 4, 8)]
        assert spans == sorted(spans, reverse=True)


class TestSpeedupCurve:
    def test_always_includes_p1(self):
        g = graph_with_costs([3, 3, 3])
        curve = speedup_curve(g, [4])
        assert 1 in curve and 4 in curve

    def test_speedup_vs(self):
        g = graph_with_costs([6, 6])
        curve = speedup_curve(g, [2])
        assert curve[2].speedup_vs(curve[1].makespan) == 2.0


class TestLimits:
    def test_ample_processors_reach_critical_path(self):
        g = graph_with_costs([7, 3, 9, 2, 5], {2: [0], 3: [1], 4: [2, 3]})
        r = simulate(g, 64)  # more processors than tasks
        assert r.makespan == r.critical_path

    def test_one_processor_equals_total_work(self):
        g = graph_with_costs([4, 4, 4], {1: [0]})
        r = simulate(g, 1)
        assert r.makespan == r.total_work

    def test_queue_overhead_serializes_fully(self):
        # with queue cost >> task cost, makespan ~ n * queue cost
        g = graph_with_costs([1] * 10)
        r = simulate(g, 16, queue_overhead=1000)
        assert r.makespan >= 10 * 1000


class TestStaticScheduling:
    def test_single_processor_matches_dynamic(self):
        from repro.sched.simulator import simulate_static

        g = graph_with_costs([5, 7, 3], {2: [0]})
        assert simulate_static(g, 1).makespan == simulate(g, 1).makespan

    def test_never_beats_dynamic_on_chains(self):
        from repro.sched.simulator import simulate_static

        g = graph_with_costs([9, 3, 3, 3])
        for p in (2, 4):
            assert simulate_static(g, p).makespan >= simulate(g, p).makespan

    def test_imbalance_pathology(self):
        """Round-robin puts both heavy tasks on processor 0."""
        from repro.sched.simulator import simulate_static

        g = graph_with_costs([100, 1, 100, 1])
        static = simulate_static(g, 2)
        dynamic = simulate(g, 2)
        assert static.makespan == 200
        assert dynamic.makespan == 101

    def test_explicit_assignment(self):
        from repro.sched.simulator import simulate_static

        g = graph_with_costs([100, 1, 100, 1])
        balanced = simulate_static(g, 2, assignment=[0, 0, 1, 1])
        assert balanced.makespan == 101

    def test_bad_assignment_rejected(self):
        from repro.sched.simulator import simulate_static

        g = graph_with_costs([1, 1])
        with pytest.raises(ValueError):
            simulate_static(g, 2, assignment=[0])
        with pytest.raises(ValueError):
            simulate_static(g, 2, assignment=[0, 5])

    def test_cross_processor_dependency_waits(self):
        from repro.sched.simulator import simulate_static

        # task 1 on proc 1 needs task 0 on proc 0
        g = graph_with_costs([10, 5], {1: [0]})
        r = simulate_static(g, 2)
        assert r.makespan == 15

    def test_results_equal_recorded_outputs(self):
        """Static scheduling changes time, never results: the recorded
        bodies already ran once; scheduling is replay-only."""
        from repro.poly.dense import IntPoly
        from repro.core.tasks import build_task_graph
        from repro.sched.simulator import simulate_static

        tg = build_task_graph(IntPoly.from_roots([1, 5, 11]), 12, CostCounter())
        tg.graph.run_recorded(CostCounter())
        roots_before = tg.roots_scaled()
        simulate_static(tg.graph, 4)
        assert tg.roots_scaled() == roots_before
