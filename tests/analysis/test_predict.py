"""Tests for the operation-count predictors (Figures 2-5 machinery)."""

import pytest

from repro.analysis.predict import (
    asymptotic_table1,
    iterations_average_case,
    iterations_worst_case,
    predict_all,
    predict_remainder,
    predict_tree,
)
from repro.bench.workloads import square_free_characteristic_input
from repro.core.rootfinder import RealRootFinder
from repro.costmodel.counter import CostCounter
from repro.poly.roots_bounds import cauchy_root_bound_bits


def observed(n, seed, mu_bits):
    inp = square_free_characteristic_input(n, seed)
    c = CostCounter()
    RealRootFinder(mu_bits=mu_bits, counter=c).find_roots(inp.poly)
    return inp, c


class TestRemainderPrediction:
    @pytest.mark.parametrize("n", [6, 11, 17, 24])
    def test_mul_count_close_to_observed(self, n):
        inp, c = observed(n, 11, 20)
        pred = predict_remainder(n, inp.coeff_bits)
        obs = c.phase_stats("remainder").mul_count
        # Exact up to zero-coefficient skipping: within 6%.
        assert abs(pred.mul_count - obs) <= max(4, 0.06 * obs)

    def test_div_count_formula(self):
        pred = predict_remainder(10, 5)
        assert pred.div_count == sum(10 - i for i in range(2, 10))

    def test_bit_cost_is_upper_bound(self):
        inp, c = observed(15, 11, 20)
        pred = predict_remainder(15, inp.coeff_bits)
        assert pred.mul_bit_cost >= c.phase_stats("remainder").mul_bit_cost


class TestTreePrediction:
    @pytest.mark.parametrize("n", [7, 12, 20, 27])
    def test_mul_count_close_to_observed(self, n):
        inp, c = observed(n, 11, 20)
        pred = predict_tree(n, inp.coeff_bits)
        obs = c.phase_stats("tree").mul_count
        # Dense prediction over-counts skipped zero coefficients a bit.
        assert obs <= pred.mul_count * 1.02
        assert pred.mul_count <= obs * 1.25 + 20

    def test_bit_cost_is_weak_upper_bound(self):
        """The paper's point (Fig 7): Collins bounds are loose."""
        inp, c = observed(20, 11, 20)
        pred = predict_tree(20, inp.coeff_bits)
        obs = c.phase_stats("tree").mul_bit_cost
        assert pred.mul_bit_cost >= obs  # valid upper bound
        assert pred.mul_bit_cost > 3 * obs  # and visibly weak


class TestIterationModels:
    def test_worst_dominates_average(self):
        for x, d in [(30, 10), (120, 40), (250, 70)]:
            assert iterations_worst_case(x, d) >= 0
            assert iterations_average_case(x, d) >= 0

    def test_average_grows_logarithmically_in_x(self):
        d = 20
        i1 = iterations_average_case(32, d)
        i2 = iterations_average_case(1024, d)
        assert i2 > i1
        assert i2 - i1 < 2 * (10 - 5) + 1  # ~2*log2 growth only

    def test_interval_prediction_within_band(self):
        inp, c = observed(20, 11, 53)
        r = cauchy_root_bound_bits(inp.poly)
        pred = predict_all(20, inp.coeff_bits, 53, r)["interval"]
        obs = c.phase_stats("interval").mul_count
        assert 0.5 * obs <= pred.mul_count <= 2.0 * obs


class TestTable1:
    def test_structure(self):
        t = asymptotic_table1(40, 60, 106, 7)
        assert set(t) == {
            "remainder", "tree", "interval_worst", "interval_avg"
        }
        for row in t.values():
            assert row["arithmetic"] > 0 and row["bit"] > 0

    def test_interval_worst_exceeds_avg(self):
        t = asymptotic_table1(40, 60, 106, 7)
        assert t["interval_worst"]["bit"] >= t["interval_avg"]["bit"]

    def test_n4_scaling_of_deterministic_phases(self):
        # bit ~ n^4 (m + log n)^2: the n^4 factor dominates the ratio.
        a = asymptotic_table1(20, 60, 53, 7)
        b = asymptotic_table1(40, 60, 53, 7)
        ratio = b["remainder"]["bit"] / a["remainder"]["bit"]
        assert 16.0 <= ratio <= 17.0
