"""Tests asserting the paper's size bounds (Eqs. 21-31) hold."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bounds import (
    beta,
    bound_F,
    bound_P,
    bound_Q,
    bound_T,
    eval_bit_cost_bound,
    horner_partial_bound,
)
from repro.core.remainder import compute_remainder_sequence
from repro.core.tree import InterleavingTree
from repro.poly.dense import IntPoly

distinct_roots = st.lists(
    st.integers(min_value=-20, max_value=20), min_size=2, max_size=8,
    unique=True,
)


class TestBeta:
    def test_formula(self):
        # beta = 2m + 3 log n + 2 with ceil(log2)
        assert beta(8, 10) == 2 * 10 + 3 * 3 + 2

    def test_monotone_in_m(self):
        assert beta(10, 20) > beta(10, 10)


class TestRemainderBounds:
    @settings(max_examples=40)
    @given(distinct_roots)
    def test_F_and_Q_bounds_hold(self, roots):
        p = IntPoly.from_roots(sorted(roots))
        seq = compute_remainder_sequence(p)
        n, m = seq.n, p.max_coefficient_bits()
        for i, f in enumerate(seq.F):
            assert f.max_coefficient_bits() <= bound_F(i, n, max(m, 1))
        for i in range(1, n):
            assert seq.quotient(i).max_coefficient_bits() <= bound_Q(
                i, n, max(m, 1)
            )


class TestTreeBounds:
    @settings(max_examples=25, deadline=None)
    @given(distinct_roots)
    def test_P_and_T_bounds_hold(self, roots):
        p = IntPoly.from_roots(sorted(roots))
        seq = compute_remainder_sequence(p)
        tree = InterleavingTree(seq)
        tree.compute_polynomials()
        n, m = seq.n, max(p.max_coefficient_bits(), 1)
        for node in tree.root:
            if node.is_empty:
                continue
            assert node.poly.max_coefficient_bits() <= bound_P(
                node.i, node.j, n, m
            )
            if node.matrix is not None and node.j < n:
                assert node.matrix.max_coefficient_bits() <= bound_T(
                    node.i, node.j, n, m
                )


class TestEvalBounds:
    def test_horner_partial_bound_monotone(self):
        vals = [horner_partial_bound(10, i, 8) for i in range(10)]
        assert vals == sorted(vals)

    def test_eval_bit_cost_zero_degree(self):
        assert eval_bit_cost_bound(10, 0, 8) == 0

    def test_eval_bit_cost_dominant_terms(self):
        # m X d and X^2 d^2 / 2 terms both present
        v = eval_bit_cost_bound(100, 10, 20)
        assert v >= 100 * 20 * 10
        assert v >= (20 * 20 * 10 * 9) // 2

    def test_eval_bound_dominates_measured(self):
        """Eq. (37) upper-bounds the counter's measured cost."""
        from repro.costmodel.counter import CostCounter
        from repro.poly.eval import scaled_eval

        p = IntPoly([(-3) ** (j % 5) * (j + 1) for j in range(12)])
        y, w = 12345, 10
        c = CostCounter()
        scaled_eval(p, y, w, c)
        measured = c.phase_stats().mul_bit_cost
        bound = eval_bit_cost_bound(
            p.max_coefficient_bits(), p.degree, max(abs(y).bit_length(), w)
        )
        assert measured <= bound
