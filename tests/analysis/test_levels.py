"""Tests for the per-level interval-cost decomposition."""

import pytest

from repro.analysis.levels import measure_interval_levels
from repro.bench.workloads import square_free_characteristic_input
from repro.core.rootfinder import RealRootFinder
from repro.costmodel.counter import CostCounter
from repro.poly.dense import IntPoly


class TestMeasureLevels:
    @pytest.fixture(scope="class")
    def profile(self):
        inp = square_free_characteristic_input(20, 11)
        return measure_interval_levels(inp.poly, 40)

    def test_levels_present(self, profile):
        assert 0 in profile.levels()
        assert len(profile.levels()) >= 4

    def test_root_level_is_single_rightmost_node(self, profile):
        root_cell = profile.cell(0, True)
        assert root_cell.nodes == 1
        assert root_cell.degree_sum == 20

    def test_node_counts_match_tree(self, profile):
        total_nodes = sum(c.nodes for c in profile.cells.values())
        # every non-empty node appears exactly once
        from repro.core.remainder import compute_remainder_sequence
        from repro.core.tree import InterleavingTree

        inp = square_free_characteristic_input(20, 11)
        tree = InterleavingTree(compute_remainder_sequence(inp.poly))
        expected = sum(1 for nd in tree.root if not nd.is_empty)
        assert total_nodes == expected

    def test_total_matches_normal_interval_cost(self, profile):
        inp = square_free_characteristic_input(20, 11)
        c = CostCounter()
        RealRootFinder(mu_bits=40, counter=c).find_roots(inp.poly)
        normal = c.phase_stats("interval").total_bit_cost
        assert abs(profile.total_bit_cost() - normal) <= 0.01 * normal

    def test_degree_sums(self, profile):
        # sum of node degrees across the tree = total roots produced
        total_deg = sum(c.degree_sum for c in profile.cells.values())
        assert total_deg >= 20  # at least the root's

    def test_small_input(self):
        prof = measure_interval_levels(IntPoly.from_roots([1, 5, 9]), 10)
        assert prof.total_bit_cost() > 0
        assert prof.cell(0, True).nodes == 1

    def test_negative_lc_normalized(self):
        prof = measure_interval_levels(-IntPoly.from_roots([2, 7]), 8)
        assert prof.n == 2
