"""Tests for the coefficient-size study (the conclusion's open question)."""

import pytest

from repro.analysis.sizes import SizeProfile, fitted_beta, measure_sizes
from repro.bench.workloads import square_free_characteristic_input
from repro.poly.dense import IntPoly


class TestFittedBeta:
    def test_exact_line(self):
        assert fitted_beta([(0, 1), (1, 3), (2, 5)]) == pytest.approx(2.0)

    def test_degenerate(self):
        assert fitted_beta([(1, 5)]) == 0.0
        assert fitted_beta([]) == 0.0


class TestMeasureSizes:
    @pytest.fixture(scope="class")
    def profile(self) -> SizeProfile:
        inp = square_free_characteristic_input(15, 11)
        return measure_sizes(inp.poly)

    def test_counts(self, profile):
        assert len(profile.f_sizes) == profile.n + 1
        assert len(profile.q_sizes) == profile.n - 1
        assert profile.p_sizes  # at least the root node

    def test_bounds_never_violated(self, profile):
        assert all(s <= b for _i, s, b in profile.f_sizes)
        assert all(s <= b for _i, s, b in profile.q_sizes)
        assert all(s <= b for _l, s, b in profile.p_sizes)

    def test_observed_growth_below_analytic(self, profile):
        assert 0 < profile.beta_observed() < profile.beta_bound

    def test_slack_measures(self, profile):
        assert profile.max_slack() >= profile.mean_slack_f() > 1.0

    def test_negative_lc_normalized(self):
        p = -IntPoly.from_roots([1, 4, 9])
        prof = measure_sizes(p)
        assert prof.n == 3

    def test_root_node_present(self, profile):
        labels = [l for l, _s, _b in profile.p_sizes]
        assert (1, profile.n) in labels
