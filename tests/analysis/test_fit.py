"""Tests for the fitting utilities."""

import pytest

from repro.analysis.fit import linear_fit, loglog_slope, power_law_exponent


class TestLinearFit:
    def test_exact_line(self):
        slope, intercept = linear_fit([0, 1, 2], [3, 5, 7])
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(3.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            linear_fit([1, 2], [1])

    def test_single_point(self):
        with pytest.raises(ValueError):
            linear_fit([1], [1])

    def test_degenerate_x(self):
        with pytest.raises(ValueError):
            linear_fit([2, 2, 2], [1, 2, 3])


class TestLogLog:
    def test_power_law(self):
        xs = [1, 2, 4, 8, 16]
        ys = [x**3 for x in xs]
        assert loglog_slope(xs, ys) == pytest.approx(3.0)

    def test_with_constant_factor(self):
        xs = [10, 20, 40]
        ys = [7 * x**2 for x in xs]
        assert loglog_slope(xs, ys) == pytest.approx(2.0)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            loglog_slope([1, 0], [1, 1])
        with pytest.raises(ValueError):
            loglog_slope([1, 2], [-1, 1])

    def test_power_law_exponent_pairs(self):
        assert power_law_exponent([(2, 4), (4, 16), (8, 64)]) == pytest.approx(2.0)
