"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestRoots:
    def test_roots_demo(self, capsys):
        assert main(["roots", "--roots=-3,0,2", "--digits", "6"]) == 0
        out = capsys.readouterr().out
        assert "3 distinct real roots" in out
        assert "-3.0" in out

    def test_coeffs_json(self, capsys):
        assert main(["roots", "--coeffs=-2,0,1", "--bits", "20",
                     "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["mu_bits"] == 20
        assert len(data["floats"]) == 2
        assert data["floats"][1] == pytest.approx(2**0.5, abs=1e-5)

    def test_certify_flag(self, capsys):
        assert main(["roots", "--roots=1,5", "--digits", "4",
                     "--certify"]) == 0
        assert "certified" in capsys.readouterr().err

    def test_strategy_flag(self, capsys):
        assert main(["roots", "--roots=1,5", "--digits", "4",
                     "--strategy", "bisection"]) == 0

    def test_missing_input_errors(self):
        with pytest.raises(SystemExit):
            main(["roots", "--digits", "4"])

    def test_multiplicity_display(self, capsys):
        assert main(["roots", "--roots=2,2,7", "--digits", "5"]) == 0
        assert "multiplicity 2" in capsys.readouterr().out


class TestEigvals:
    def test_random_matrix(self, capsys):
        assert main(["eigvals", "--n", "6", "--seed", "3",
                     "--digits", "8"]) == 0
        out = capsys.readouterr().out
        assert "degree 6" in out

    def test_matrix_file(self, tmp_path, capsys):
        f = tmp_path / "m.json"
        f.write_text("[[2, 0], [0, 5]]")
        assert main(["eigvals", "--matrix", str(f), "--digits", "6"]) == 0
        out = capsys.readouterr().out
        assert "+2.0" in out and "+5.0" in out


class TestSpeedup:
    def test_speedup_output(self, capsys):
        assert main(["speedup", "--roots=1,3,6,10,15,21",
                     "--digits", "8", "--processors", "1,4"]) == 0
        out = capsys.readouterr().out
        assert "p=1" in out and "p=4" in out and "T1/Tinf" in out

    def test_queue_overhead_flag(self, capsys):
        assert main(["speedup", "--roots=1,3,6,10",
                     "--digits", "6", "--processors", "1,8",
                     "--queue-overhead", "100000"]) == 0

    def test_sequential_remainder_flag(self, capsys):
        assert main(["speedup", "--roots=1,3,6,10", "--digits", "6",
                     "--processors", "1,2", "--sequential-remainder"]) == 0


class TestBatch:
    @pytest.mark.slow
    def test_batch_roots_sets(self, capsys):
        assert main(["batch", "--roots-sets=-3,0,2;1,4", "--digits", "6",
                     "--processes", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 polynomials" in out
        assert "0 sequential fallbacks" in out
        assert "-3.0" in out and "+4.0" in out

    @pytest.mark.slow
    def test_batch_file_json(self, tmp_path, capsys):
        f = tmp_path / "polys.jsonl"
        f.write_text('[-2, 0, 1]\n{"coeffs": [-6, 1, 1]}\n\n')
        assert main(["batch", "--file", str(f), "--bits", "16",
                     "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["count"] == 2
        assert data["processes"] == 2
        assert data["results"][0]["floats"][1] == pytest.approx(
            2 ** 0.5, abs=1e-3
        )
        assert data["results"][1]["floats"] == pytest.approx(
            [-3.0, 2.0], abs=1e-3
        )

    @pytest.mark.slow
    def test_batch_chrome_trace_has_worker_lanes(self, tmp_path, capsys):
        path = str(tmp_path / "batch.json")
        assert main(["batch", "--roots-sets=-5,1,6;2,9", "--digits", "6",
                     "--chrome-trace", path]) == 0
        with open(path) as fh:
            trace = json.load(fh)
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert "pool.spawn" in names and "executor.batch" in names
        assert "gap" in names  # adopted worker spans

    def test_batch_requires_input(self):
        with pytest.raises(SystemExit):
            main(["batch"])

    def test_batch_rejects_bad_file(self, tmp_path):
        f = tmp_path / "bad.jsonl"
        f.write_text("not json\n")
        with pytest.raises(SystemExit):
            main(["batch", "--file", str(f)])


class TestReport:
    def test_report_output(self, capsys):
        assert main(["report", "--roots=2,4,9", "--digits", "8"]) == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out
        assert "interval solver" in out

    def test_report_lists_paper_phases(self, capsys):
        assert main(["report", "--roots=-9,-5,-2,1,4,8", "--digits", "10"]) == 0
        out = capsys.readouterr().out
        for phase in ("remainder", "tree", "interval."):
            assert phase in out

    def test_report_from_coeffs(self, capsys):
        assert main(["report", "--coeffs=-2,0,1", "--bits", "16"]) == 0
        out = capsys.readouterr().out
        assert "1 roots" in out or "2 roots" in out

    def test_report_case_counts_are_consistent(self, capsys):
        assert main(["report", "--roots=1,2,3,4", "--digits", "6"]) == 0
        out = capsys.readouterr().out
        assert "cases" in out and "solves" in out

    @pytest.mark.slow
    def test_report_parallel_prints_rollup(self, capsys):
        assert main(["report", "--roots=-6,-1,3,8", "--digits", "6",
                     "--parallel", "2"]) == 0
        out = capsys.readouterr().out
        assert "workers" in out and "efficiency" in out


class TestBench:
    _FAST = ["bench", "--degrees", "6,8", "--digits", "4",
             "--processes", "0"]

    def test_bench_writes_schema_valid_artifact(self, tmp_path, capsys):
        from repro.obs.perf import read_artifact

        out = str(tmp_path / "BENCH_t.json")
        assert main(self._FAST + ["--name", "t", "--out", out]) == 0
        art = read_artifact(out)
        assert art.name == "t"
        assert art.params["degrees"] == [6, 8]
        assert art.metric("n6.mu4.bit_cost") > 0
        assert art.metrics["wall_seconds"]["kind"] == "wall"
        assert "interval.newton_iters" in art.histograms
        assert "tree" in art.phases
        assert "wrote" in capsys.readouterr().out

    def test_bench_check_passes_against_identical_run(self, tmp_path,
                                                      capsys):
        base = str(tmp_path / "base.json")
        cur = str(tmp_path / "cur.json")
        assert main(self._FAST + ["--out", base]) == 0
        assert main(self._FAST + ["--out", cur, "--check", base]) == 0
        out = capsys.readouterr().out
        assert "0 failed" in out

    def test_bench_check_fails_on_count_drift(self, tmp_path, capsys):
        base = str(tmp_path / "base.json")
        assert main(self._FAST + ["--out", base]) == 0
        doc = json.loads(open(base).read())
        doc["metrics"]["bit_cost"]["value"] += 1
        with open(base, "w") as fh:
            json.dump(doc, fh)
        cur = str(tmp_path / "cur.json")
        assert main(self._FAST + ["--out", cur, "--check", base]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "bit_cost" in out

    def test_bench_default_output_location(self, tmp_path, capsys,
                                           monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert main(self._FAST + ["--name", "loc"]) == 0
        assert (tmp_path / "BENCH_loc.json").exists()

    def test_bench_rejects_tiny_degrees(self):
        with pytest.raises(SystemExit):
            main(["bench", "--degrees", "1,8", "--processes", "0"])

    @pytest.mark.slow
    def test_bench_parallel_trace_has_counter_lanes(self, tmp_path,
                                                    capsys):
        from repro.obs.perf import read_artifact

        out = str(tmp_path / "BENCH_p.json")
        trace = str(tmp_path / "trace.json")
        assert main(["bench", "--degrees", "6,8", "--digits", "4",
                     "--processes", "2", "--out", out,
                     "--chrome-trace", trace]) == 0
        art = read_artifact(out)
        assert art.metric("executor.fallbacks") == 0
        assert "executor.queue_depth.samples" in art.histograms
        events = json.loads(open(trace).read())["traceEvents"]
        lanes = {e["name"] for e in events if e["ph"] == "C"}
        assert "executor.queue_depth" in lanes
        assert "executor.in_flight" in lanes
        assert any(n.startswith("worker-") and n.endswith("busy")
                   for n in lanes)
        assert any(e["ph"] == "X" for e in events)
        stdout = capsys.readouterr().out
        assert "efficiency" in stdout


class TestTraceFlags:
    """--trace / --chrome-trace on roots, eigvals, and speedup."""

    def test_roots_trace_jsonl_schema(self, tmp_path, capsys):
        from repro.obs.events import read_events, validate_events

        path = str(tmp_path / "run.jsonl")
        assert main(["roots", "--roots=-3,0,2", "--digits", "8",
                     "--trace", path]) == 0
        events = read_events(path)
        validate_events(events)  # spans close; costs sum to counter totals
        assert events[0]["ev"] == "run"
        assert events[0]["command"] == "roots"
        assert events[-1]["ev"] == "run_end"
        assert events[-1]["phases"]  # per-phase CostCounter totals present
        assert any(e["ev"] == "interval_case" for e in events)

    def test_roots_chrome_trace_loads(self, tmp_path, capsys):
        import json

        path = str(tmp_path / "run.json")
        assert main(["roots", "--roots=-3,0,2", "--digits", "8",
                     "--chrome-trace", path]) == 0
        with open(path) as fh:
            trace = json.load(fh)
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert "find_roots" in names

    def test_roots_both_flags_together(self, tmp_path, capsys):
        from repro.obs.events import read_events, validate_events

        jl = str(tmp_path / "run.jsonl")
        cj = str(tmp_path / "run.json")
        assert main(["roots", "--roots=1,5", "--digits", "6",
                     "--trace", jl, "--chrome-trace", cj]) == 0
        validate_events(read_events(jl))

    def test_untraced_roots_unaffected(self, capsys):
        assert main(["roots", "--roots=-3,0,2", "--digits", "6"]) == 0
        assert "3 distinct real roots" in capsys.readouterr().out

    def test_eigvals_trace(self, tmp_path, capsys):
        from repro.obs.events import read_events, validate_events

        path = str(tmp_path / "eig.jsonl")
        assert main(["eigvals", "--n", "5", "--seed", "3", "--digits", "6",
                     "--trace", path]) == 0
        events = read_events(path)
        validate_events(events)
        assert events[0]["command"] == "eigvals"

    def test_speedup_chrome_trace_simulated_lanes(self, tmp_path, capsys):
        import json

        path = str(tmp_path / "sim.json")
        assert main(["speedup", "--roots=1,3,6,10", "--digits", "6",
                     "--processors", "1,4", "--chrome-trace", path]) == 0
        with open(path) as fh:
            trace = json.load(fh)
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert {e["pid"] for e in xs} == {1, 4}
        p4_lanes = {e["tid"] for e in xs if e["pid"] == 4}
        assert p4_lanes <= set(range(4)) and len(p4_lanes) > 1

    def test_speedup_trace_jsonl(self, tmp_path, capsys):
        from repro.obs.events import read_events, validate_events

        path = str(tmp_path / "sim.jsonl")
        assert main(["speedup", "--roots=1,3,6,10", "--digits", "6",
                     "--processors", "1,2", "--trace", path]) == 0
        events = read_events(path)
        validate_events(events)
        scheds = [e for e in events if e["ev"] == "schedule"]
        assert [e["processors"] for e in scheds] == [1, 2]
        assert all(e["makespan"] > 0 for e in scheds)


class TestFuzz:
    def test_clean_campaign(self, capsys):
        assert main(["fuzz", "--seed", "11", "--budget", "8",
                     "--engines", "hybrid,sturm"]) == 0
        out = capsys.readouterr().out
        assert "8/8 cases" in out
        assert "0 finding(s)" in out

    def test_family_subset_and_log(self, tmp_path, capsys):
        log = tmp_path / "fuzz.jsonl"
        assert main(["fuzz", "--seed", "3", "--budget", "4",
                     "--engines", "hybrid,newton",
                     "--families", "degenerate,integer",
                     "--log", str(log)]) == 0
        from repro.obs.events import read_events, validate_events

        events = read_events(str(log))
        validate_events(events)
        assert sum(e["ev"] == "fuzz_case" for e in events) == 4

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit, match="unknown engines"):
            main(["fuzz", "--budget", "1", "--engines", "hybrid,bogus"])

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit, match="unknown fuzz families"):
            main(["fuzz", "--budget", "1", "--engines", "hybrid",
                  "--families", "bogus"])

    def test_zero_budget_rejected(self):
        with pytest.raises(SystemExit, match="budget"):
            main(["fuzz", "--budget", "0"])

    def test_findings_exit_nonzero(self, monkeypatch, tmp_path, capsys):
        from repro.baselines.sturm_bisect import SturmBisectFinder

        original = SturmBisectFinder.find_roots_scaled

        def mutated(self, p):
            out = original(self, p)
            if out:
                out[-1] += 1
            return out

        monkeypatch.setattr(SturmBisectFinder, "find_roots_scaled", mutated)
        corpus = tmp_path / "corpus"
        assert main(["fuzz", "--seed", "11", "--budget", "10",
                     "--engines", "hybrid,sturm",
                     "--corpus-dir", str(corpus)]) == 1
        out = capsys.readouterr().out
        assert "[disagreement] sturm" in out
        assert "shrunk repro written" in out
        assert list(corpus.glob("*.json"))


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestRobustness:
    def test_malformed_roots(self):
        with pytest.raises(SystemExit, match="could not parse"):
            main(["roots", "--roots=1,x", "--digits", "4"])

    def test_malformed_coeffs(self):
        with pytest.raises(SystemExit, match="could not parse"):
            main(["roots", "--coeffs=1,,2", "--digits", "4"])

    def test_constant_coeffs_rejected(self):
        with pytest.raises(SystemExit, match="nonconstant"):
            main(["roots", "--coeffs=5", "--digits", "4"])

    def test_bad_processor_list(self):
        with pytest.raises(SystemExit):
            main(["speedup", "--roots=1,2", "--digits", "4",
                  "--processors", "1,0"])

    def test_malformed_processor_list(self):
        with pytest.raises(SystemExit, match="could not parse"):
            main(["speedup", "--roots=1,2", "--digits", "4",
                  "--processors", "two"])


class TestRegressionAttribution:
    """`bench --check` failure names the regressed phase (tracediff)."""

    _FAST = ["bench", "--degrees", "6,8", "--digits", "6",
             "--processes", "0", "--no-ledger"]

    def test_seeded_regression_is_phase_attributed(self, tmp_path, capsys):
        base = str(tmp_path / "base.json")
        assert main(self._FAST + ["--out", base]) == 0
        # Seed a regression: deflate the baseline's headline bit cost
        # and the remainder phase so the current run reads ~+13% on both.
        doc = json.loads(open(base).read())
        doc["metrics"]["bit_cost"]["value"] = int(
            doc["metrics"]["bit_cost"]["value"] * 0.88
        )
        doc["phases"]["remainder"]["bit_cost"] = int(
            doc["phases"]["remainder"]["bit_cost"] * 0.88
        )
        with open(base, "w") as fh:
            json.dump(doc, fh)
        cur = str(tmp_path / "cur.json")
        assert main(self._FAST + ["--out", cur, "--check", base]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "attribution (dominant phase per failed metric):" in out
        # the dominant mover named on the failing metric's line
        attr_line = next(line for line in out.splitlines()
                         if line.strip().startswith("bit_cost:"))
        assert "'remainder'" in attr_line
        # the full phase table follows for context
        assert "bit_cost A" in out


class TestLedgerCLI:
    _FAST = ["bench", "--degrees", "6,8", "--digits", "4",
             "--processes", "0"]

    def _run_ids(self, capsys):
        assert main(["runs", "list", "--json"]) == 0
        return [r["run_id"] for r in json.loads(capsys.readouterr().out)]

    def test_bench_appends_by_default(self, tmp_path, capsys):
        assert main(self._FAST + ["--out", str(tmp_path / "b.json")]) == 0
        capsys.readouterr()
        ids = self._run_ids(capsys)
        assert len(ids) == 1

    def test_no_ledger_suppresses(self, tmp_path, capsys):
        assert main(self._FAST + ["--no-ledger",
                                  "--out", str(tmp_path / "b.json")]) == 0
        capsys.readouterr()
        assert main(["runs", "list"]) == 0
        assert "no ledger records" in capsys.readouterr().out

    def test_roots_ledger_opt_in(self, capsys):
        assert main(["roots", "--roots=1,5", "--digits", "4",
                     "--ledger"]) == 0
        capsys.readouterr()
        assert main(["runs", "list", "--json"]) == 0
        (rec,) = json.loads(capsys.readouterr().out)
        assert rec["command"] == "roots"
        assert rec["metrics"]["bit_cost"]["value"] > 0
        assert rec["params"]["degree"] == 2

    def test_runs_list_and_show(self, tmp_path, capsys):
        assert main(self._FAST + ["--name", "led",
                                  "--out", str(tmp_path / "b.json")]) == 0
        capsys.readouterr()
        (run_id,) = self._run_ids(capsys)
        assert main(["runs", "list"]) == 0
        table = capsys.readouterr().out
        assert run_id in table and "bench" in table
        assert main(["runs", "show", run_id[:12]]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["run_id"] == run_id
        assert shown["name"] == "led"
        assert "remainder" in shown["phases"]

    def test_runs_show_unknown_id_errors(self):
        with pytest.raises(SystemExit):
            main(["runs", "show", "zzz-does-not-exist"])

    def test_diff_artifacts_and_ledger_refs(self, tmp_path, capsys):
        a = str(tmp_path / "a.json")
        b = str(tmp_path / "b.json")
        assert main(self._FAST + ["--no-ledger", "--out", a]) == 0
        assert main(self._FAST + ["--no-ledger", "--out", b]) == 0
        capsys.readouterr()
        assert main(["diff", a, b]) == 0
        out = capsys.readouterr().out
        assert "phase" in out and "remainder" in out
        # ledger-ref operand resolves through the same command
        assert main(self._FAST + ["--out", a]) == 0
        capsys.readouterr()
        (run_id,) = self._run_ids(capsys)
        assert main(["diff", run_id[:12], b]) == 0
        assert "remainder" in capsys.readouterr().out

    def test_diff_json_shape(self, tmp_path, capsys):
        a = str(tmp_path / "a.json")
        assert main(self._FAST + ["--no-ledger", "--out", a]) == 0
        capsys.readouterr()
        assert main(["diff", a, a, "--json"]) == 0
        d = json.loads(capsys.readouterr().out)
        assert set(d) == {"phases", "histograms", "lanes", "parallel"}
        assert all(p["bit_rel"] == 0.0 for p in d["phases"])


class TestProfileCLI:
    def test_roots_profile_writes_collapsed_stacks(self, tmp_path, capsys):
        from repro.obs.profile import read_collapsed

        out = str(tmp_path / "roots.folded")
        assert main(["roots", "--roots=1,5", "--digits", "4",
                     "--profile", out]) == 0
        folded = read_collapsed(out)
        assert folded and all(v >= 1 for v in folded.values())
        assert "profile: wrote" in capsys.readouterr().err

    def test_bench_sequential_profile(self, tmp_path, capsys):
        out = str(tmp_path / "bench.folded")
        assert main(["bench", "--degrees", "6,8", "--digits", "4",
                     "--processes", "0", "--no-ledger",
                     "--out", str(tmp_path / "b.json"),
                     "--profile", out]) == 0
        from repro.obs.profile import read_collapsed

        assert read_collapsed(out)


class TestServeCLI:
    def test_front_end_required(self):
        with pytest.raises(SystemExit):
            main(["serve"])

    def test_front_ends_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            main(["serve", "--stdio", "--http", "0"])

    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve", "--stdio"])
        assert args.stdio is True and args.http is None
        assert args.processes == 2 and args.max_pending == 64
        assert args.cache_dir is None and args.cache_bytes is None
        assert args.max_deadline_seconds is None

    def test_tracing_flag_defaults(self):
        args = build_parser().parse_args(["serve", "--stdio"])
        assert args.access_log is None and args.capture_dir is None
        assert args.slow_threshold_ms == 250.0
        assert args.ring_size == 512
        assert args.slo_config is None

    def test_bad_slo_config_rejected(self, tmp_path):
        bad = tmp_path / "slo.json"
        bad.write_text('{"objectives": [{"name": "x", "kind": "nope", '
                       '"threshold": 1}]}')
        with pytest.raises(SystemExit):
            main(["serve", "--stdio", "--slo-config", str(bad)])

    def test_bad_max_pending_rejected(self):
        with pytest.raises(SystemExit):
            main(["serve", "--stdio", "--max-pending", "0"])


class TestLoadtestCLI:
    def test_bad_arguments_rejected(self):
        for argv in (
            ["loadtest", "--mode", "inprocess", "--requests", "2",
             "--duplicate-fraction", "1.0"],
            ["loadtest", "--mode", "inprocess", "--requests", "2",
             "--degrees", "0,2"],
            ["loadtest", "--mode", "inprocess", "--requests", "0"],
            ["loadtest", "--mode", "http", "--requests", "2",
             "--degrees", "2"],    # http needs --url
        ):
            with pytest.raises(SystemExit):
                main(argv)

    @pytest.mark.slow
    def test_inprocess_run_writes_gateable_artifact(self, tmp_path,
                                                    capsys, monkeypatch):
        from repro.obs.perf import read_artifact

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        base_args = ["loadtest", "--mode", "inprocess", "--requests", "16",
                     "--seed", "11", "--degrees", "2,3",
                     "--duplicate-fraction", "0.4", "--bits", "16",
                     "--processes", "2"]
        out = str(tmp_path / "BENCH_serve.json")
        assert main(base_args + ["--out", out]) == 0
        assert "INCORRECT 0" in capsys.readouterr().out
        art = read_artifact(out)
        m = art.metrics
        assert m["loadtest.incorrect"]["value"] == 0
        assert m["loadtest.errors"]["value"] == 0
        assert m["loadtest.cache_hits"]["value"] == (
            m["loadtest.requests"]["value"] - m["loadtest.unique"]["value"])
        # The same pinned stream gates cleanly against its own artifact.
        out2 = str(tmp_path / "BENCH_serve2.json")
        assert main(base_args + ["--out", out2, "--check", out]) == 0
        out_text = capsys.readouterr().out
        assert "regression gate" in out_text
        # The artifact carries the decomposition + SLO verdict and the
        # CLI prints the verdict line.
        from repro.obs.perf import read_artifact as _read

        m2 = _read(out2).metrics
        assert "loadtest.queue_wait_p99_seconds" in m2
        assert "loadtest.solve_p99_seconds" in m2
        assert m2["loadtest.slo_ok"]["value"] == 1.0
        assert "SLO: ok" in out_text


class TestTailCLI:
    def _write_log(self, tmp_path, n_ok=2, n_err=1):
        from repro.serve.reqtrace import AccessLog, RequestTimeline

        path = str(tmp_path / "access.jsonl")
        log = AccessLog(path)
        seq = 0
        for status, code, count in (("ok", 200, n_ok),
                                    ("error", 500, n_err)):
            for _ in range(count):
                seq += 1
                tl = RequestTimeline(request_id=f"ab-{seq:06d}",
                                     client_id=seq, degree=2,
                                     start_ns=1000, time_unix=50.0)
                tl.add_stage("solve", 1000, 4_000_000)
                tl.close(status, code, end_ns=1000 + 5_000_000)
                log.write(tl.to_dict())
        log.close()
        return path

    def test_table_output_failures_first(self, tmp_path, capsys):
        path = self._write_log(tmp_path)
        assert main(["tail", path]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        assert lines[0].startswith("request_id")
        # The error row outranks the ok rows.
        assert "error" in lines[2]
        assert "3 requests, 1 failures" in out

    def test_json_output(self, tmp_path, capsys):
        path = self._write_log(tmp_path)
        assert main(["tail", path, "--json", "--limit", "2"]) == 0
        recs = [json.loads(line) for line in
                capsys.readouterr().out.splitlines()]
        assert len(recs) == 2
        assert recs[0]["status"] == "error"    # ranked, failures first
        assert all("request_id" in r for r in recs)

    def test_missing_log_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no access log"):
            main(["tail", str(tmp_path / "nope.jsonl")])

    def test_reads_rotated_generation(self, tmp_path, capsys):
        path = self._write_log(tmp_path)
        import os

        os.replace(path, path + ".1")      # only the rotated file left
        assert main(["tail", path]) == 0
        assert "3 requests" in capsys.readouterr().out
