"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestRoots:
    def test_roots_demo(self, capsys):
        assert main(["roots", "--roots=-3,0,2", "--digits", "6"]) == 0
        out = capsys.readouterr().out
        assert "3 distinct real roots" in out
        assert "-3.0" in out

    def test_coeffs_json(self, capsys):
        assert main(["roots", "--coeffs=-2,0,1", "--bits", "20",
                     "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["mu_bits"] == 20
        assert len(data["floats"]) == 2
        assert data["floats"][1] == pytest.approx(2**0.5, abs=1e-5)

    def test_certify_flag(self, capsys):
        assert main(["roots", "--roots=1,5", "--digits", "4",
                     "--certify"]) == 0
        assert "certified" in capsys.readouterr().err

    def test_strategy_flag(self, capsys):
        assert main(["roots", "--roots=1,5", "--digits", "4",
                     "--strategy", "bisection"]) == 0

    def test_missing_input_errors(self):
        with pytest.raises(SystemExit):
            main(["roots", "--digits", "4"])

    def test_multiplicity_display(self, capsys):
        assert main(["roots", "--roots=2,2,7", "--digits", "5"]) == 0
        assert "multiplicity 2" in capsys.readouterr().out


class TestEigvals:
    def test_random_matrix(self, capsys):
        assert main(["eigvals", "--n", "6", "--seed", "3",
                     "--digits", "8"]) == 0
        out = capsys.readouterr().out
        assert "degree 6" in out

    def test_matrix_file(self, tmp_path, capsys):
        f = tmp_path / "m.json"
        f.write_text("[[2, 0], [0, 5]]")
        assert main(["eigvals", "--matrix", str(f), "--digits", "6"]) == 0
        out = capsys.readouterr().out
        assert "+2.0" in out and "+5.0" in out


class TestSpeedup:
    def test_speedup_output(self, capsys):
        assert main(["speedup", "--roots=1,3,6,10,15,21",
                     "--digits", "8", "--processors", "1,4"]) == 0
        out = capsys.readouterr().out
        assert "p=1" in out and "p=4" in out and "T1/Tinf" in out

    def test_queue_overhead_flag(self, capsys):
        assert main(["speedup", "--roots=1,3,6,10",
                     "--digits", "6", "--processors", "1,8",
                     "--queue-overhead", "100000"]) == 0

    def test_sequential_remainder_flag(self, capsys):
        assert main(["speedup", "--roots=1,3,6,10", "--digits", "6",
                     "--processors", "1,2", "--sequential-remainder"]) == 0


class TestReport:
    def test_report_output(self, capsys):
        assert main(["report", "--roots=2,4,9", "--digits", "8"]) == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out
        assert "interval solver" in out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestRobustness:
    def test_malformed_roots(self):
        with pytest.raises(SystemExit, match="could not parse"):
            main(["roots", "--roots=1,x", "--digits", "4"])

    def test_malformed_coeffs(self):
        with pytest.raises(SystemExit, match="could not parse"):
            main(["roots", "--coeffs=1,,2", "--digits", "4"])

    def test_constant_coeffs_rejected(self):
        with pytest.raises(SystemExit, match="nonconstant"):
            main(["roots", "--coeffs=5", "--digits", "4"])

    def test_bad_processor_list(self):
        with pytest.raises(SystemExit):
            main(["speedup", "--roots=1,2", "--digits", "4",
                  "--processors", "1,0"])

    def test_malformed_processor_list(self):
        with pytest.raises(SystemExit, match="could not parse"):
            main(["speedup", "--roots=1,2", "--digits", "4",
                  "--processors", "two"])
