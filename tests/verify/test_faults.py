"""Fault-matrix tests: the executor's resilience layer under
deterministic poisoned tasks, stalls, worker death, injected latency,
and sustained failure (circuit breaker).

Every scenario must (a) still return the exact sequential-parity
answer, (b) pass the exact Sturm certificate, and (c) increment
exactly the right ``executor.*`` reliability counters — single faults
are absorbed by retries (``executor.fallbacks`` stays 0), sustained
failure trips the breaker and degrades per-node, never whole-poly.

Set ``REPRO_FAULT_LOG=/path/events.jsonl`` to capture the structured
event log of every scenario (retry/timeout/breaker events) — CI
uploads it as an artifact.
"""

import os

import pytest

from repro.core.certify import certify_roots
from repro.core.rootfinder import RealRootFinder
from repro.costmodel.counter import CostCounter
from repro.obs.metrics import reliability_rollup
from repro.obs.trace import NULL_TRACER, Tracer
from repro.poly.dense import IntPoly
from repro.resilience import CircuitBreaker, RetryPolicy
from repro.sched.executor import ParallelRootFinder
from repro.verify.faults import FaultPlan, InjectedFault, poison_worker

P = IntPoly.from_roots([-5, -1, 2, 7, 11])
MU = 16


@pytest.fixture(scope="module")
def reference():
    return RealRootFinder(mu_bits=MU).find_roots(P)


@pytest.fixture(scope="module")
def fault_log():
    """Optional JSONL event sink shared by the whole module (enabled by
    ``REPRO_FAULT_LOG``); ``None`` disables capture entirely."""
    path = os.environ.get("REPRO_FAULT_LOG")
    if not path:
        yield None
        return
    from repro.obs.events import EventLog

    log = EventLog(path)
    log.run_header("fault-matrix", suite="tests/verify/test_faults.py")
    yield log
    log.run_end()
    log.close()


def _tracer(fault_log):
    if fault_log is None:
        return NULL_TRACER
    return Tracer(counter=CostCounter(), sink=fault_log)


def _fired(finder):
    """The nonzero reliability counters, short names."""
    return {k.removeprefix("executor."): v
            for k, v in reliability_rollup(finder.metrics).items() if v}


def _run_with(plan, reference, fault_log, **kwargs):
    kwargs.setdefault("task_timeout", 2.0)
    with ParallelRootFinder(mu=MU, processes=2, faults=plan,
                            tracer=_tracer(fault_log), **kwargs) as finder:
        got = finder.find_roots_scaled(P)
        assert got == reference.scaled
        certify_roots(P, got, reference.multiplicities, MU)
        return finder.fallback_count, _fired(finder)


class TestSingleFaultRetries:
    """One faulted task is absorbed by one retry: the call still
    completes *in parallel* — no sequential fallback of any kind."""

    def test_poisoned_task(self, reference, fault_log):
        plan = FaultPlan(poison_at={1})
        fallbacks, fired = _run_with(plan, reference, fault_log)
        assert plan.injected == [(1, "poison")]
        assert fallbacks == 0
        assert fired == {"retries": 1, "worker_failures": 1}

    def test_stalled_task(self, reference, fault_log):
        # stall_seconds straddles task_timeout (attempt abandoned) but
        # ends before close()'s bounded join, so teardown stays clean.
        plan = FaultPlan(stall_at={2}, stall_seconds=4.0)
        fallbacks, fired = _run_with(plan, reference, fault_log)
        assert plan.injected == [(2, "stall")]
        assert fallbacks == 0
        assert fired == {"retries": 1, "task_timeouts": 1}

    def test_killed_worker(self, reference, fault_log):
        plan = FaultPlan(kill_at={0})
        fallbacks, fired = _run_with(plan, reference, fault_log)
        assert plan.injected == [(0, "kill")]
        assert fallbacks == 0
        # The in-flight task died with its worker: its deadline expires,
        # and the changed worker-pid set is detected as a failure.
        assert fired == {"retries": 1, "task_timeouts": 1,
                         "worker_failures": 1}

    def test_slow_task_below_timeout_is_invisible(self, reference, fault_log):
        plan = FaultPlan(slow_at={1}, slow_seconds=0.3)
        fallbacks, fired = _run_with(plan, reference, fault_log,
                                     task_timeout=5.0)
        assert plan.injected == [(1, "slow")]
        assert fallbacks == 0
        assert fired == {}

    def test_slow_task_above_timeout_is_retried(self, reference, fault_log):
        # The slow attempt is abandoned at the deadline and retried; its
        # (correct!) late answer may still arrive before the run ends,
        # in which case it must be discarded as stale — so everything
        # except stale_results is pinned exactly.
        plan = FaultPlan(slow_at={1}, slow_seconds=3.0)
        fallbacks, fired = _run_with(plan, reference, fault_log,
                                     task_timeout=1.0)
        assert plan.injected == [(1, "slow")]
        assert fallbacks == 0
        fired.pop("stale_results", None)
        assert fired == {"retries": 1, "task_timeouts": 1}

    def test_fault_free_plan_is_inert(self, reference, fault_log):
        plan = FaultPlan()
        fallbacks, fired = _run_with(plan, reference, fault_log)
        assert plan.injected == []
        assert fallbacks == 0
        assert fired == {}


class TestDegradationLadder:
    """Retries exhausted -> in-parent (per-node) execution; sustained
    failure -> breaker trips and routes around the pool entirely."""

    def test_no_retries_goes_straight_inline(self, reference, fault_log):
        plan = FaultPlan(poison_at={1})
        fallbacks, fired = _run_with(plan, reference, fault_log,
                                     retry=RetryPolicy(max_retries=0))
        assert fallbacks == 0
        assert fired == {"inline_tasks": 1, "worker_failures": 1}

    def test_sustained_poison_trips_breaker(self, reference, fault_log):
        # Every pool submission is poisoned: after failure_threshold
        # consecutive failures the breaker opens and the remaining task
        # bodies run in the parent.  The answer is still exact and the
        # whole-poly fallback is never taken.
        plan = FaultPlan(poison_at=frozenset(range(10_000)))
        breaker = CircuitBreaker(failure_threshold=3, cooldown_seconds=60.0)
        fallbacks, fired = _run_with(plan, reference, fault_log,
                                     breaker=breaker)
        assert fallbacks == 0
        assert fired["breaker_open"] == 1
        assert fired["inline_tasks"] > 0
        assert fired["worker_failures"] >= 3
        assert "fallbacks" not in fired

    def test_breaker_recovers_through_half_open(self, reference, fault_log):
        # threshold 1 + zero cool-down: the single poisoned task opens
        # the breaker, the very next dispatch half-opens it as the
        # probe, and the probe's success closes it again — the full
        # state cycle, deterministically.
        plan = FaultPlan(poison_at={1})
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=0.0)
        fallbacks, fired = _run_with(plan, reference, fault_log,
                                     breaker=breaker)
        assert fallbacks == 0
        assert fired["breaker_open"] == 1
        assert fired["breaker_half_open"] == 1
        assert fired["breaker_close"] == 1
        assert breaker.state == "closed"

    def test_finder_stays_usable_after_faults(self, reference, fault_log):
        plan = FaultPlan(poison_at={0}, kill_at={3})
        with ParallelRootFinder(mu=MU, processes=2, task_timeout=2.0,
                                faults=plan,
                                tracer=_tracer(fault_log)) as finder:
            assert finder.find_roots_scaled(P) == reference.scaled
            finder.faults = None  # second call: healthy pool, no faults
            before = _fired(finder)
            assert finder.find_roots_scaled(P) == reference.scaled
            assert finder.fallback_count == 0
            assert _fired(finder) == before  # clean second call


class TestFaultPlan:
    def test_overlapping_indices_rejected(self):
        with pytest.raises(ValueError, match="conflicting faults"):
            FaultPlan(poison_at={1}, kill_at={1})
        with pytest.raises(ValueError, match="conflicting faults"):
            FaultPlan(slow_at={2}, stall_at={2})

    def test_intercept_pass_through(self):
        plan = FaultPlan(poison_at={3})
        fn, payload = plan.intercept(0, poison_worker, "payload", None)
        assert (fn, payload) == (poison_worker, "payload")
        assert plan.injected == []

    def test_poison_worker_raises(self):
        with pytest.raises(InjectedFault):
            poison_worker(("anything",))

    def test_stall_worker_raises_after_sleep(self):
        from repro.verify.faults import stall_worker

        with pytest.raises(InjectedFault):
            stall_worker((0.0,))

    def test_slow_worker_returns_real_answer(self):
        from repro.verify.faults import slow_worker

        assert slow_worker((0.0, len, "abc")) == 3
