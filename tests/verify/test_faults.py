"""Fault-injection tests: the executor's degradation path under
deterministic worker death, task timeout, and poisoned tasks.

Every scenario must (a) still return the exact sequential-parity
answer, (b) pass the exact Sturm certificate, and (c) increment
exactly the right ``executor.*`` reliability counters.
"""

import pytest

from repro.core.certify import certify_roots
from repro.core.rootfinder import RealRootFinder
from repro.poly.dense import IntPoly
from repro.sched.executor import ParallelRootFinder
from repro.verify.faults import FaultPlan, InjectedFault, poison_worker

P = IntPoly.from_roots([-5, -1, 2, 7, 11])
MU = 16


@pytest.fixture(scope="module")
def reference():
    return RealRootFinder(mu_bits=MU).find_roots(P)


def _counters(finder):
    return {
        name: finder.metrics.counter(f"executor.{name}").value
        for name in ("fallbacks", "task_timeouts", "worker_failures")
    }


def _run_with(plan, reference):
    with ParallelRootFinder(mu=MU, processes=2, task_timeout=2.0,
                            faults=plan) as finder:
        got = finder.find_roots_scaled(P)
        assert got == reference.scaled
        certify_roots(P, got, reference.multiplicities, MU)
        return finder.fallback_count, _counters(finder)


class TestFaultScenarios:
    def test_poisoned_task(self, reference):
        plan = FaultPlan(poison_at={1})
        fallbacks, counters = _run_with(plan, reference)
        assert plan.injected == [(1, "poison")]
        assert fallbacks == 1
        assert counters == {"fallbacks": 1, "task_timeouts": 0,
                            "worker_failures": 1}

    def test_stalled_task(self, reference):
        plan = FaultPlan(stall_at={2}, stall_seconds=30.0)
        fallbacks, counters = _run_with(plan, reference)
        assert plan.injected == [(2, "stall")]
        assert fallbacks == 1
        assert counters == {"fallbacks": 1, "task_timeouts": 1,
                            "worker_failures": 0}

    def test_killed_worker(self, reference):
        plan = FaultPlan(kill_at={0})
        fallbacks, counters = _run_with(plan, reference)
        assert plan.injected == [(0, "kill")]
        assert fallbacks == 1
        # The in-flight task died with its worker: the run times out,
        # and the changed worker-pid set is detected as a failure.
        assert counters == {"fallbacks": 1, "task_timeouts": 1,
                            "worker_failures": 1}

    def test_fault_free_plan_is_inert(self, reference):
        plan = FaultPlan()
        fallbacks, counters = _run_with(plan, reference)
        assert plan.injected == []
        assert fallbacks == 0
        assert counters == {"fallbacks": 0, "task_timeouts": 0,
                            "worker_failures": 0}

    def test_finder_stays_usable_after_fault(self, reference):
        plan = FaultPlan(poison_at={0})
        with ParallelRootFinder(mu=MU, processes=2, task_timeout=2.0,
                                faults=plan) as finder:
            assert finder.find_roots_scaled(P) == reference.scaled
            finder.faults = None  # second call: healthy pool, no faults
            assert finder.find_roots_scaled(P) == reference.scaled
            assert finder.fallback_count == 1


class TestFaultPlan:
    def test_overlapping_indices_rejected(self):
        with pytest.raises(ValueError, match="conflicting faults"):
            FaultPlan(poison_at={1}, kill_at={1})

    def test_intercept_pass_through(self):
        plan = FaultPlan(poison_at={3})
        fn, payload = plan.intercept(0, poison_worker, "payload", None)
        assert (fn, payload) == (poison_worker, "payload")
        assert plan.injected == []

    def test_poison_worker_raises(self):
        with pytest.raises(InjectedFault):
            poison_worker(("anything",))

    def test_stall_worker_raises_after_sleep(self):
        from repro.verify.faults import stall_worker

        with pytest.raises(InjectedFault):
            stall_worker((0.0,))
