"""Tests for the seeded adversarial case generators."""

import pytest

from repro.verify.generators import (
    CASE_FAMILIES,
    FuzzCase,
    generate_cases,
    make_case,
)
from repro.poly.dense import IntPoly


class TestGenerateCases:
    def test_deterministic_from_seed(self):
        a = list(generate_cases(11, 30))
        b = list(generate_cases(11, 30))
        assert a == b

    def test_different_seeds_differ(self):
        a = list(generate_cases(11, 20))
        b = list(generate_cases(12, 20))
        assert a != b

    def test_budget_respected(self):
        assert len(list(generate_cases(0, 25))) == 25

    def test_round_robin_covers_every_family(self):
        cases = list(generate_cases(3, len(CASE_FAMILIES)))
        assert {c.family for c in cases} == set(CASE_FAMILIES)

    def test_family_subset(self):
        cases = list(generate_cases(5, 10, families=["cluster", "grid"]))
        assert {c.family for c in cases} == {"cluster", "grid"}

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown fuzz families"):
            list(generate_cases(0, 1, families=["bogus"]))

    def test_cases_are_wellformed(self):
        for c in generate_cases(7, 40):
            p = c.poly
            assert not p.is_zero()
            assert c.mu >= 1
            assert c.label

    def test_index_independent_generation(self):
        """Case k is a function of (seed, k) alone — shrinking one case
        or re-running a subset never perturbs the others."""
        full = list(generate_cases(9, 20))
        prefix = list(generate_cases(9, 10))
        assert full[:10] == prefix


class TestFuzzCase:
    def test_json_round_trip(self):
        case = next(iter(generate_cases(11, 1)))
        assert FuzzCase.from_json(case.to_json()) == case

    def test_from_json_tolerates_missing_provenance(self):
        case = FuzzCase.from_json({"coeffs": [-2, 0, 1], "mu": 8})
        assert case.poly == IntPoly((-2, 0, 1))
        assert case.family == "corpus"

    def test_replace(self):
        case = make_case(IntPoly((-2, 0, 1)), 8)
        assert case.replace(mu=4).mu == 4
        assert case.replace(mu=4).coeffs == case.coeffs

    def test_make_case(self):
        p = IntPoly.from_roots([1, 5])
        case = make_case(p, 16, note="demo")
        assert case.poly == p
        assert "demo" in case.label
