"""Tests for the differential fuzzer (sequential engines — fast path).

The process-pool engine is exercised by tests/verify/test_faults.py
and the corpus replay; here the focus is the comparison/attribution
logic itself.
"""

import pytest

from repro.obs.events import read_events, validate_events
from repro.poly.dense import IntPoly
from repro.verify.fuzz import ENGINE_NAMES, EngineSet, check_case, run_fuzz
from repro.verify.generators import make_case

SEQ_ENGINES = ("hybrid", "bisection", "newton", "sturm")


@pytest.fixture(scope="module")
def engines():
    with EngineSet(SEQ_ENGINES) as e:
        yield e


class TestEngineSet:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engines"):
            EngineSet(("hybrid", "bogus"))

    def test_all_sequential_engines_agree(self, engines):
        p = IntPoly.from_roots([-7, -1, 2, 9]) * IntPoly((-2, 0, 1))
        runs = {name: engines.run(name, p, 16) for name in SEQ_ENGINES}
        assert len({tuple(v) for v in runs.values()}) == 1, runs


class TestCheckCase:
    def test_agreement_on_adversarial_samples(self, engines):
        from repro.verify.generators import generate_cases

        for case in generate_cases(2, 12):
            assert check_case(case, engines) == []

    def test_refine_round_trip_runs(self, engines):
        case = make_case(IntPoly.from_roots([-3, 1, 8]), 8)
        assert check_case(case, engines, refine=True) == []

    def test_degree_zero_and_one(self, engines):
        for p in (IntPoly.constant(5), IntPoly((-3, 2))):
            assert check_case(make_case(p, 8), engines) == []


class TestRunFuzz:
    def test_clean_campaign(self, tmp_path):
        log = tmp_path / "fuzz.jsonl"
        report = run_fuzz(11, 10, engine_names=SEQ_ENGINES,
                          log_path=str(log))
        assert report.ok
        assert report.cases_run == 10
        assert sum(report.per_family.values()) == 10
        assert "0 finding(s)" in report.summary()
        events = read_events(str(log))
        validate_events(events)
        assert [e["ev"] for e in events][0] == "run"
        assert sum(e["ev"] == "fuzz_case" for e in events) == 10
        assert events[-1]["ev"] == "run_end"

    def test_family_subset_campaign(self):
        report = run_fuzz(4, 6, engine_names=("hybrid", "sturm"),
                          families=["degenerate", "mu_boundary"])
        assert report.ok
        assert set(report.per_family) == {"degenerate", "mu_boundary"}

    def test_engines_recorded(self):
        report = run_fuzz(1, 2, engine_names=("hybrid", "newton"))
        assert report.engines == ("hybrid", "newton")
        assert report.elapsed_seconds > 0.0

    def test_default_engine_names(self):
        assert set(SEQ_ENGINES) < set(ENGINE_NAMES)
        assert "parallel" in ENGINE_NAMES
