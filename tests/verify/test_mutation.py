"""Mutation test: a deliberately broken engine must be caught, blamed,
shrunk, and reproduced from its corpus file.

This is the end-to-end proof that the harness can actually do its job:
we break the ``sturm`` baseline (off-by-one on its last reported
root), run a seeded campaign, and walk the finding through every stage
of the pipeline.
"""

import pytest

from repro.baselines.sturm_bisect import SturmBisectFinder
from repro.verify.fuzz import EngineSet, check_case, run_fuzz
from repro.verify.generators import make_case
from repro.verify.shrink import load_corpus_dir, replay_corpus_entry
from repro.poly.dense import IntPoly

ENGINES = ("hybrid", "sturm")


@pytest.fixture
def broken_sturm(monkeypatch):
    """Off-by-one mutation: the last reported root is bumped one cell up."""
    original = SturmBisectFinder.find_roots_scaled

    def mutated(self, p):
        out = original(self, p)
        if out:
            out[-1] += 1
        return out

    monkeypatch.setattr(SturmBisectFinder, "find_roots_scaled", mutated)
    return original


class TestMutationCaught:
    def test_campaign_catches_blames_shrinks_and_replays(
        self, broken_sturm, monkeypatch, tmp_path
    ):
        corpus = tmp_path / "corpus"
        report = run_fuzz(11, 30, engine_names=ENGINES,
                          corpus_dir=str(corpus), stop_after=1)

        # Caught and blamed: the exact certificate refutes the mutant.
        assert not report.ok
        finding = report.findings[0]
        assert finding.kind == "disagreement"
        assert finding.engine == "sturm"
        assert "refuted exactly" in finding.detail
        assert finding.expected != finding.actual

        # Shrunk: the committed repro is no bigger than the original
        # seeded case (generators never emit degree-1 inputs for the
        # families a finding can come from, so real shrinkage happens).
        case = finding.case
        assert "[shrunk]" in case.note
        assert case.mu == 1

        # Reproduced from the corpus file while the bug is live...
        entries = load_corpus_dir(str(corpus))
        assert len(entries) == 1
        _path, entry = entries[0]
        with EngineSet(ENGINES) as engines:
            assert replay_corpus_entry(entry, engines) != []

        # ...and green again once the mutation is reverted.
        monkeypatch.setattr(
            SturmBisectFinder, "find_roots_scaled", broken_sturm
        )
        with EngineSet(ENGINES) as engines:
            assert replay_corpus_entry(entry, engines) == []

    def test_attribution_names_the_guilty_engine(self, broken_sturm):
        case = make_case(IntPoly.from_roots([-3, 1, 8]), 8)
        with EngineSet(ENGINES) as engines:
            findings = check_case(case, engines, refine=False)
        assert [f.engine for f in findings] == ["sturm"]
        assert findings[0].kind == "disagreement"

    def test_broken_reference_is_self_reported(self, monkeypatch):
        """If the *reference* itself lies, certification catches it
        before any comparison — the harness never trusts hybrid blindly."""
        from repro.core.rootfinder import RealRootFinder

        original = RealRootFinder.find_roots

        def mutated(self, p):
            result = original(self, p)
            if result.scaled:
                result.scaled[-1] += 1
            return result

        monkeypatch.setattr(RealRootFinder, "find_roots", mutated)
        case = make_case(IntPoly.from_roots([-3, 1, 8]), 8)
        with EngineSet(("hybrid",)) as engines:
            findings = check_case(case, engines, refine=False)
        assert [f.kind for f in findings] == ["certification"]
        assert findings[0].engine == "hybrid"
