"""Tier-1 replay of the committed fuzz corpus.

Every file under ``tests/corpus/`` is a minimized historical failure
(or a regression contract for a typed error).  Replaying them on every
run is the cheap end of the fuzzing pipeline: once a bug's shrunk
repro is committed, it can never silently return.
"""

import pathlib

import pytest

from repro.verify.fuzz import EngineSet
from repro.verify.shrink import load_corpus_dir, replay_corpus_entry

CORPUS_DIR = pathlib.Path(__file__).resolve().parents[1] / "corpus"
ENTRIES = load_corpus_dir(str(CORPUS_DIR))


@pytest.fixture(scope="module")
def engines():
    # Sequential engines only: the pool path has its own parity suite
    # (tests/sched/) and fault suite (tests/verify/test_faults.py);
    # keeping tier-1 corpus replay pool-free keeps it fast and hermetic.
    with EngineSet(("hybrid", "bisection", "newton", "sturm")) as e:
        yield e


def test_corpus_is_committed():
    assert ENTRIES, f"no corpus files found under {CORPUS_DIR}"


@pytest.mark.parametrize(
    "path,entry", ENTRIES, ids=[pathlib.Path(p).stem for p, _ in ENTRIES]
)
def test_corpus_entry_replays_clean(path, entry, engines):
    violations = replay_corpus_entry(entry, engines)
    assert violations == [], f"{path}: {violations}"
