"""Backend-parity suite: every fuzz family, every engine, byte-identical
results across arithmetic backends.

The backend seam (docs/BACKENDS.md) promises that swapping integer
kernels moves *nothing* observable: scaled roots, multiplicities,
charged counters, and content-addressed ``poly_key`` hashes must all be
bit-exact.  ``mpint`` is always available so this suite runs everywhere;
the ``gmpy2`` leg activates automatically where the package is
installed and skips cleanly where it is not.
"""

import pytest

from repro.core.rootfinder import RealRootFinder
from repro.costmodel.backend import Gmpy2Backend, counter_for
from repro.resilience.checkpoint import poly_key
from repro.verify.fuzz import ENGINE_NAMES, EngineSet
from repro.verify.generators import CASE_FAMILIES, generate_cases

ALT_BACKENDS = ["mpint"] + (["gmpy2"] if Gmpy2Backend.available() else [])

FAMILIES = sorted(CASE_FAMILIES)


def _case_for(family):
    return next(iter(generate_cases(11, 1, [family])))


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("backend", ALT_BACKENDS)
def test_counters_and_roots_bit_exact(family, backend):
    case = _case_for(family)
    ref_counter = counter_for("python")
    ref = RealRootFinder(mu_bits=case.mu, counter=ref_counter,
                         backend="python").find_roots(case.poly)
    alt_counter = counter_for(backend)
    alt = RealRootFinder(mu_bits=case.mu, counter=alt_counter,
                         backend=backend).find_roots(case.poly)
    assert alt.scaled == ref.scaled
    assert alt.multiplicities == ref.multiplicities
    assert alt_counter.snapshot() == ref_counter.snapshot()
    assert alt_counter.total_bit_cost == ref_counter.total_bit_cost
    assert alt_counter.mul_count == ref_counter.mul_count


@pytest.mark.parametrize("backend", ALT_BACKENDS)
def test_every_engine_agrees_across_backends(backend):
    # One case per family through the full engine matrix on both
    # backends, sharing one warm pool per backend (the fuzzer's shape).
    cases = [_case_for(f) for f in FAMILIES]
    with EngineSet(ENGINE_NAMES, processes=2) as ref_engines, \
            EngineSet(ENGINE_NAMES, processes=2,
                      backend=backend) as alt_engines:
        for case in cases:
            for name in ENGINE_NAMES:
                ref = ref_engines.run(name, case.poly, case.mu)
                alt = alt_engines.run(name, case.poly, case.mu)
                assert alt == ref, (
                    f"engine {name} family {case.family}: backend "
                    f"{backend} disagrees with python"
                )
            # Content addressing is computed from plain ints only, so
            # cache keys and checkpoints are backend-portable.
            assert (poly_key(case.coeffs, case.mu, "hybrid")
                    == poly_key(tuple(case.coeffs), case.mu, "hybrid"))


@pytest.mark.parametrize("backend", ALT_BACKENDS)
def test_run_fuzz_clean_on_alt_backend(backend):
    # A small end-to-end campaign on the alternate backend must find
    # nothing: the engines still agree with the certified reference.
    from repro.verify.fuzz import run_fuzz

    report = run_fuzz(11, 6, engine_names=("hybrid", "sturm"),
                      processes=0, shrink=False, backend=backend)
    assert report.ok, report.summary()
