"""Tests for deterministic case minimization and the replay corpus."""

import json

import pytest

from repro.poly.dense import IntPoly
from repro.verify.fuzz import EngineSet, FuzzFinding
from repro.verify.generators import make_case
from repro.verify.shrink import (
    CORPUS_SCHEMA,
    corpus_entry,
    load_corpus_dir,
    replay_corpus_entry,
    shrink_case,
    write_corpus_case,
)


def _eval_at(p: IntPoly, x: int) -> int:
    return sum(c * x ** j for j, c in enumerate(p.coeffs))


class TestShrinkCase:
    def test_shrinks_degree_and_mu(self):
        p = IntPoly.from_roots([6, 6, 6, 1])
        case = make_case(p, 32)
        small = shrink_case(case, lambda c: _eval_at(c.poly, 6) == 0)
        assert _eval_at(small.poly, 6) == 0
        assert small.poly.degree < p.degree
        assert small.mu < case.mu

    def test_fixed_point_when_nothing_shrinks(self):
        case = make_case(IntPoly((-6, 1)), 1)  # degree 1, mu 1: minimal
        assert shrink_case(case, lambda c: True) == case

    def test_deterministic(self):
        p = IntPoly.from_roots([6, 6, 2]) * IntPoly.constant(12)
        case = make_case(p, 16)
        fails = lambda c: _eval_at(c.poly, 6) == 0  # noqa: E731
        assert shrink_case(case, fails) == shrink_case(case, fails)

    def test_crashing_candidates_rejected(self):
        p = IntPoly.from_roots([6, 3])
        case = make_case(p, 8)

        def fails(c):
            if c.mu < 8:
                raise RuntimeError("candidate crashed differently")
            return _eval_at(c.poly, 6) == 0

        small = shrink_case(case, fails)
        assert small.mu == 8  # mu reductions all crashed -> kept
        assert _eval_at(small.poly, 6) == 0

    def test_marks_note(self):
        p = IntPoly.from_roots([6, 6])
        small = shrink_case(make_case(p, 16), lambda c: True)
        assert "[shrunk]" in small.note


class TestCorpus:
    def _finding(self):
        case = make_case(IntPoly.from_roots([-3, 1, 8]), 8,
                         family="integer", seed=11, index=4)
        return FuzzFinding(case, "disagreement", "sturm", "demo detail")

    def test_write_load_round_trip(self, tmp_path):
        path = write_corpus_case(str(tmp_path), self._finding())
        entries = load_corpus_dir(str(tmp_path))
        assert len(entries) == 1
        loaded_path, entry = entries[0]
        assert loaded_path == path
        assert entry["schema"] == CORPUS_SCHEMA
        assert entry["expect"] == "agreement"
        assert entry["finding"]["engine"] == "sturm"

    def test_filename_is_stable(self, tmp_path):
        a = write_corpus_case(str(tmp_path), self._finding())
        b = write_corpus_case(str(tmp_path), self._finding())
        assert a == b
        assert len(load_corpus_dir(str(tmp_path))) == 1

    def test_unknown_schema_rejected(self, tmp_path):
        (tmp_path / "bad.json").write_text(
            json.dumps({"schema": "other/9", "case": {}, "expect": "agreement"})
        )
        with pytest.raises(ValueError, match="unknown corpus schema"):
            load_corpus_dir(str(tmp_path))

    def test_missing_dir_is_empty(self, tmp_path):
        assert load_corpus_dir(str(tmp_path / "nope")) == []

    def test_replay_agreement(self):
        entry = corpus_entry(make_case(IntPoly.from_roots([2, 9]), 8))
        with EngineSet(("hybrid", "sturm")) as engines:
            assert replay_corpus_entry(entry, engines) == []

    def test_replay_typed_error(self):
        # The S3 regression shape: even-multiplicity cell refinement.
        p = IntPoly.from_roots([2, 2, 7])
        entry = corpus_entry(
            make_case(p, 4),
            expect={"op": "refine_root", "scaled": 2 << 4, "mu_to": 20,
                    "raises": "EvenMultiplicityError"},
        )
        with EngineSet(("hybrid",)) as engines:
            assert replay_corpus_entry(entry, engines) == []

    def test_replay_typed_error_mismatch_reported(self):
        p = IntPoly.from_roots([2, 9])  # refine succeeds: no error raised
        entry = corpus_entry(
            make_case(p, 4),
            expect={"op": "refine_root", "scaled": 2 << 4, "mu_to": 20,
                    "raises": "EvenMultiplicityError"},
        )
        with EngineSet(("hybrid",)) as engines:
            violations = replay_corpus_entry(entry, engines)
        assert violations and "succeeded" in violations[0]

    def test_replay_unknown_expectation_reported(self):
        entry = corpus_entry(make_case(IntPoly.from_roots([1]), 4),
                             expect={"op": "wat"})
        with EngineSet(("hybrid",)) as engines:
            assert replay_corpus_entry(entry, engines)
