"""Tests for the workload families."""

import numpy as np
import pytest

from repro.bench.workloads import (
    bench_degrees,
    bench_mu_digits,
    chebyshev_t,
    close_roots,
    hermite_prob,
    laguerre_scaled,
    legendre_scaled,
    paper_suite,
    square_free_characteristic_input,
    wilkinson,
)
from repro.core.rootfinder import RealRootFinder
from repro.poly.gcd import is_square_free
from repro.poly.sturm import count_real_roots


class TestPaperSuite:
    def test_square_free_inputs(self):
        for inp in paper_suite([10, 15], (11,)):
            assert is_square_free(inp.poly)
            assert inp.poly.degree == inp.degree

    def test_grids_nonempty(self):
        assert bench_degrees()
        assert bench_mu_digits()
        assert all(d >= 10 for d in bench_degrees())

    def test_square_free_retry(self):
        # seed 7 at n=5 is known non-square-free; the helper must skip it
        inp = square_free_characteristic_input(5, 7)
        assert is_square_free(inp.poly)


class TestClassicalFamilies:
    def test_wilkinson_roots(self):
        p = wilkinson(6)
        assert all(p(k) == 0 for k in range(1, 7))

    def test_chebyshev_known_values(self):
        # T_3 = 4x^3 - 3x
        assert chebyshev_t(3).coeffs == (0, -3, 0, 4)
        assert chebyshev_t(0).coeffs == (1,)

    def test_chebyshev_roots_in_unit_interval(self):
        p = chebyshev_t(9)
        roots = np.sort(np.roots(list(reversed(p.coeffs))).real)
        expected = np.sort(np.cos((2 * np.arange(1, 10) - 1) * np.pi / 18))
        assert np.allclose(roots, expected, atol=1e-9)

    def test_legendre_all_real_roots(self):
        p = legendre_scaled(8)
        assert count_real_roots(p) == 8

    def test_hermite_recurrence(self):
        # He_3 = x^3 - 3x
        assert hermite_prob(3).coeffs == (0, -3, 0, 1)
        assert count_real_roots(hermite_prob(9)) == 9

    def test_laguerre_positive_roots(self):
        p = laguerre_scaled(6)
        res = RealRootFinder(mu_bits=20).find_roots(p)
        assert len(res) == 6
        assert all(x > 0 for x in res.as_floats())

    def test_close_roots_structure(self):
        p = close_roots(6, 12)
        assert p.degree == 6
        res = RealRootFinder(mu_bits=20).find_roots(p)
        floats = res.as_floats()
        # pairs around 1, 2, 3 at distance 2^-12
        assert floats[0] == pytest.approx(1.0, abs=1e-3)
        assert floats[1] == pytest.approx(1.0, abs=1e-3)
        assert floats[1] - floats[0] <= 2**-12 + 2**-19

    def test_close_roots_odd(self):
        p = close_roots(5, 8)
        assert p.degree == 5

    def test_all_families_solvable_end_to_end(self):
        for p in (wilkinson(8), chebyshev_t(7), legendre_scaled(6),
                  hermite_prob(7), laguerre_scaled(5)):
            res = RealRootFinder(mu_bits=16).find_roots(p)
            assert len(res) == p.degree
