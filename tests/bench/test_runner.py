"""Tests for the experiment drivers."""

from repro.bench.runner import run_parallel, run_sequential
from repro.bench.workloads import square_free_characteristic_input


class TestSequentialRecord:
    def test_fields(self):
        inp = square_free_characteristic_input(10, 11)
        rec = run_sequential(inp, mu_digits=4)
        assert rec.degree == 10
        assert rec.mu_bits == 14
        assert rec.n_roots == 10
        assert rec.wall_seconds > 0
        assert rec.total_bit_cost > 0
        assert rec.total_mul_count > 0
        assert rec.m_digits >= 1

    def test_phase_access(self):
        inp = square_free_characteristic_input(10, 11)
        rec = run_sequential(inp, mu_digits=8)
        assert rec.phase("remainder").mul_count > 0
        assert rec.phase("interval").mul_count > 0

    def test_predictions_available(self):
        inp = square_free_characteristic_input(10, 11)
        rec = run_sequential(inp, mu_digits=8)
        pred = rec.predictions()
        assert pred["remainder"].mul_count > 0

    def test_cost_increases_with_mu(self):
        inp = square_free_characteristic_input(12, 11)
        lo = run_sequential(inp, mu_digits=4)
        hi = run_sequential(inp, mu_digits=32)
        assert hi.total_bit_cost > lo.total_bit_cost


class TestParallelRecord:
    def test_fields_and_speedups(self):
        inp = square_free_characteristic_input(10, 11)
        rec = run_parallel(inp, mu_digits=8, processors=[1, 2, 4])
        assert rec.makespans[1] >= rec.makespans[2] >= rec.makespans[4]
        assert rec.speedup(1) == 1.0
        assert rec.speedup(4) >= 1.0
        assert rec.n_tasks > 0

    def test_overhead_recorded(self):
        inp = square_free_characteristic_input(10, 11)
        rec = run_parallel(inp, mu_digits=4, processors=[1, 2], overhead=100)
        assert rec.overhead == 100
