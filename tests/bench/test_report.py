"""Tests for the table/series formatters."""

import pytest

from repro.bench.report import (
    format_runtime_grid,
    format_series,
    format_speedup_grid,
    format_table2,
)
from repro.bench.runner import ParallelRecord, run_sequential
from repro.bench.workloads import square_free_characteristic_input


def make_parallel(degree, spans):
    return ParallelRecord(
        degree=degree, seed=1, mu_digits=8, n_tasks=10,
        total_work=100, critical_path=30, makespans=spans, overhead=0,
    )


class TestTable2Format:
    def test_layout(self):
        inp = square_free_characteristic_input(10, 11)
        recs = [run_sequential(inp, mu_digits=mu) for mu in (4, 8)]
        txt = format_table2(recs)
        assert "m(n)" in txt
        assert "10" in txt

    def test_value_selectors(self):
        inp = square_free_characteristic_input(10, 11)
        recs = [run_sequential(inp, mu_digits=4)]
        for sel in ("sim_seconds", "wall_seconds", "mul_count", "bit_cost"):
            assert format_table2(recs, value=sel)

    def test_unknown_selector_raises(self):
        inp = square_free_characteristic_input(10, 11)
        recs = [run_sequential(inp, mu_digits=4)]
        with pytest.raises(ValueError):
            format_table2(recs, value="nope")


class TestGrids:
    def test_runtime_grid(self):
        txt = format_runtime_grid(
            [make_parallel(10, {1: 100, 2: 60}), make_parallel(20, {1: 400, 2: 220})]
        )
        assert "10" in txt and "20" in txt

    def test_speedup_grid(self):
        txt = format_speedup_grid([make_parallel(10, {1: 100, 2: 50})])
        assert "2.00" in txt


class TestSeries:
    def test_series_format(self):
        txt = format_series(
            "Figure 2", "n", ["predicted", "observed"],
            [[10, 100.0, 98.0], [20, 400.0, 395.0]],
        )
        assert "Figure 2" in txt
        assert "predicted" in txt
        assert "20" in txt
