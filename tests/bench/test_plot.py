"""Tests for the ASCII chart renderer."""

import pytest

from repro.bench.plot import ascii_chart


class TestAsciiChart:
    def test_basic_shape(self):
        out = ascii_chart("t", [1, 2, 3], {"a": [1, 4, 9]}, width=20, height=6)
        lines = out.splitlines()
        assert lines[0] == "t"
        # title + top border + 6 grid rows + bottom border + x-axis + legend
        assert len(lines) == 1 + 1 + 6 + 1 + 1 + 1
        assert "o = a" in out

    def test_log_scale(self):
        out = ascii_chart("t", [1, 2], {"a": [10, 1000]}, logy=True)
        assert "1e3.0" in out and "1e1.0" in out

    def test_two_series_glyphs(self):
        out = ascii_chart("t", [1, 2], {"a": [1, 2], "b": [2, 1]})
        assert "o = a" in out and "x = b" in out

    def test_constant_series(self):
        out = ascii_chart("t", [1, 2], {"a": [5, 5]})
        assert "o" in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_chart("t", [1, 2], {"a": [1]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart("t", [], {})

    def test_nonpositive_dropped_on_log(self):
        out = ascii_chart("t", [1, 2, 3], {"a": [0, 10, 100]}, logy=True)
        assert "1e2.0" in out

    def test_all_nonpositive_log_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart("t", [1], {"a": [0]}, logy=True)
