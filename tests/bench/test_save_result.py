"""Tests for bench result persistence."""

import os

from repro.bench.report import save_result


class TestSaveResult:
    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = save_result("unit_test_artifact", "hello")
        assert path.startswith(str(tmp_path))
        with open(path) as fh:
            assert fh.read() == "hello\n"

    def test_default_location_under_benchmarks(self, monkeypatch):
        monkeypatch.delenv("REPRO_RESULTS_DIR", raising=False)
        path = save_result("unit_test_artifact2", "x")
        assert os.sep + "results" + os.sep in path
        os.remove(path)


class TestSaveResultJson:
    def test_json_roundtrip(self, tmp_path, monkeypatch):
        import json

        from repro.bench.report import save_result_json

        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = save_result_json("unit_json", {"a": [1, 2], "b": "x"})
        assert path.endswith(".json")
        with open(path) as fh:
            assert json.load(fh) == {"a": [1, 2], "b": "x"}
