"""Tests for the bench grid environment switches."""

import importlib

import repro.bench.workloads as wl


class TestGrids:
    def test_default_is_full_paper_grid(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_FAST", raising=False)
        monkeypatch.delenv("REPRO_BENCH_FULL", raising=False)
        assert wl.bench_degrees() == list(range(10, 71, 5))
        assert wl.bench_mu_digits() == [4, 8, 16, 24, 32]
        assert not wl.full_grid_enabled()

    def test_fast_grid(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_FAST", "1")
        assert wl.bench_degrees() == [10, 15, 20, 25, 30]
        assert wl.bench_mu_digits() == [4, 16, 32]

    def test_full_adds_seeds(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_FAST", raising=False)
        monkeypatch.setenv("REPRO_BENCH_FULL", "1")
        assert wl.full_grid_enabled()
        suite = wl.paper_suite([10])
        assert len(suite) == 3  # three paper seeds

    def test_default_single_seed(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_FULL", raising=False)
        suite = wl.paper_suite([10])
        assert len(suite) == 1
