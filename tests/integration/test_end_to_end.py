"""Cross-module integration tests: the full pipeline against every
available oracle on realistic and adversarial workloads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.numpy_eig import eigvalsh_roots, max_abs_error
from repro.baselines.sturm_bisect import SturmBisectFinder
from repro.bench.workloads import (
    chebyshev_t,
    close_roots,
    hermite_prob,
    legendre_scaled,
    square_free_characteristic_input,
    wilkinson,
)
from repro.charpoly.generator import random_symmetric_01_matrix
from repro.core.certify import certify_roots
from repro.core.rootfinder import RealRootFinder
from repro.core.tasks import build_task_graph
from repro.costmodel.counter import CostCounter
from repro.poly.dense import IntPoly


class TestFullPipelineCharpoly:
    @pytest.mark.parametrize("n,seed", [(10, 11), (15, 23), (20, 47), (25, 11)])
    def test_charpoly_triple_checked(self, n, seed):
        """Main algorithm vs task graph vs Sturm baseline vs eigvalsh
        vs exact certification, all on one instance."""
        inp = square_free_characteristic_input(n, seed)
        mu = 30
        res = RealRootFinder(mu_bits=mu).find_roots(inp.poly)

        # 1. exact Sturm baseline agrees bit-for-bit
        base = SturmBisectFinder(mu=mu).find_roots_scaled(inp.poly)
        assert res.scaled == base

        # 2. the task-granular parallel decomposition agrees bit-for-bit
        tg = build_task_graph(inp.poly, mu, CostCounter())
        tg.graph.run_recorded(CostCounter())
        assert tg.roots_scaled() == res.scaled

        # 3. floating oracle within grid resolution
        seed_used = inp.seed
        eig = eigvalsh_roots(random_symmetric_01_matrix(n, seed_used))
        assert max_abs_error(res.as_floats(), eig) < 2**-25

        # 4. exact certification
        certify_roots(inp.poly, res.scaled, res.multiplicities, mu)


class TestAdversarialFamilies:
    @pytest.mark.parametrize("family,degree", [
        (wilkinson, 12), (chebyshev_t, 10), (legendre_scaled, 9),
        (hermite_prob, 10),
    ])
    def test_certified(self, family, degree):
        p = family(degree)
        res = RealRootFinder(mu_bits=26).find_roots(p)
        assert len(res) == degree
        certify_roots(p, res.scaled, res.multiplicities, 26)

    def test_close_roots_certified(self):
        p = close_roots(8, 16)
        res = RealRootFinder(mu_bits=30).find_roots(p)
        certify_roots(p, res.scaled, res.multiplicities, 30)

    def test_wilkinson_20_exact_where_floats_fail(self):
        """Degree-20 Wilkinson: double precision eigen/companion methods
        lose the roots; the exact algorithm does not."""
        p = wilkinson(20)
        res = RealRootFinder(mu_bits=30).find_roots(p)
        assert res.as_floats() == [float(k) for k in range(1, 21)]


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(min_value=-40, max_value=40), min_size=1,
                 max_size=7, unique=True),
        st.integers(min_value=2, max_value=24),
    )
    def test_random_integer_roots_exact(self, roots, mu):
        p = IntPoly.from_roots(roots)
        res = RealRootFinder(mu_bits=mu).find_roots(p)
        assert res.scaled == [r << mu for r in sorted(roots)]

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(st.integers(min_value=-15, max_value=15), min_size=2,
                 max_size=6),
        st.integers(min_value=4, max_value=16),
    )
    def test_random_multiplicities(self, roots, mu):
        from collections import Counter

        p = IntPoly.from_roots(roots)
        res = RealRootFinder(mu_bits=mu).find_roots(p)
        counts = Counter(roots)
        expected = sorted(counts.items())
        got = list(zip([s >> mu for s in res.scaled], res.multiplicities))
        assert got == expected

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=2, max_value=9),
           st.integers(min_value=0, max_value=2**31))
    def test_scaled_random_rationals(self, k, seed):
        """Random rational-rooted polys: answers are exact ceilings."""
        import random
        from fractions import Fraction

        from tests.conftest import scaled_ceil

        pyrandom = random.Random(seed)
        fracs = set()
        while len(fracs) < k:
            fracs.add(Fraction(pyrandom.randint(-99, 99),
                               pyrandom.randint(1, 16)))
        fracs = sorted(fracs)
        p = IntPoly.one()
        for f in fracs:
            p = p * IntPoly((-f.numerator, f.denominator))
        mu = pyrandom.choice([5, 13, 27])
        res = RealRootFinder(mu_bits=mu).find_roots(p)
        assert res.scaled == [scaled_ceil(f, mu) for f in fracs]
