"""Certify the entire default paper grid (slow).

Every (degree, mu) cell of the reproduction grid is solved and then
*proved* correct by the independent Sturm-chain oracle — the strongest
end-to-end statement the repository makes.
"""

import pytest

from repro.bench.workloads import bench_degrees, bench_mu_digits, \
    square_free_characteristic_input
from repro.core.certify import certify_roots
from repro.core.rootfinder import RealRootFinder
from repro.core.scaling import digits_to_bits


@pytest.mark.slow
@pytest.mark.parametrize("n", bench_degrees())
def test_grid_degree_certified(n):
    inp = square_free_characteristic_input(n, 11)
    for mu_digits in bench_mu_digits():
        mu = digits_to_bits(mu_digits)
        res = RealRootFinder(mu_bits=mu).find_roots(inp.poly)
        assert len(res) == n
        certify_roots(inp.poly, res.scaled, res.multiplicities, mu)
