"""Extended property-based coverage of the end-to-end invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.sturm_bisect import SturmBisectFinder
from repro.bench.workloads import random_real_rooted
from repro.core.certify import certify_roots
from repro.core.refine import refine_result
from repro.core.rootfinder import RealRootFinder
from repro.core.tasks import build_task_graph
from repro.costmodel.counter import CostCounter
from repro.poly.gcd import is_square_free
from repro.poly.sturm import count_real_roots


def sf_random_real_rooted(n, seed):
    for s in range(seed, seed + 50):
        p = random_real_rooted(n, s)
        if is_square_free(p):
            return p
    raise RuntimeError("no square-free instance")


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=2, max_value=12),
       st.integers(min_value=0, max_value=10**6))
def test_irrational_roots_certified(n, seed):
    """Random real-rooted (mostly irrational) inputs: found, certified."""
    p = sf_random_real_rooted(n, seed)
    res = RealRootFinder(mu_bits=22).find_roots(p)
    assert len(res) == count_real_roots(p)
    certify_roots(p, res.scaled, res.multiplicities, 22)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=2, max_value=10),
       st.integers(min_value=0, max_value=10**6))
def test_task_graph_equivalence_random(n, seed):
    p = sf_random_real_rooted(n, seed)
    ref = RealRootFinder(mu_bits=18).find_roots(p)
    tg = build_task_graph(p, 18, CostCounter())
    tg.graph.run_recorded(CostCounter())
    assert tg.roots_scaled() == ref.scaled


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=2, max_value=9),
       st.integers(min_value=0, max_value=10**6))
def test_baseline_equivalence_random(n, seed):
    p = sf_random_real_rooted(n, seed)
    ours = RealRootFinder(mu_bits=15).find_roots(p)
    base = SturmBisectFinder(mu=15).find_roots_scaled(p)
    assert ours.scaled == base


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=2, max_value=9),
       st.integers(min_value=0, max_value=10**6),
       st.integers(min_value=30, max_value=90))
def test_refinement_equals_direct_random(n, seed, mu_hi):
    p = sf_random_real_rooted(n, seed)
    coarse = RealRootFinder(mu_bits=12).find_roots(p)
    fine = refine_result(coarse, p, mu_hi)
    direct = RealRootFinder(mu_bits=mu_hi).find_roots(p)
    assert fine.scaled == direct.scaled


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=3, max_value=10),
       st.integers(min_value=0, max_value=10**6))
def test_strategies_agree_random(n, seed):
    p = sf_random_real_rooted(n, seed)
    answers = {
        strat: RealRootFinder(mu_bits=20, strategy=strat).find_roots(p).scaled
        for strat in ("hybrid", "bisection", "newton")
    }
    assert answers["hybrid"] == answers["bisection"] == answers["newton"]


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=2, max_value=8),
       st.integers(min_value=0, max_value=10**6),
       st.integers(min_value=0, max_value=10**5))
def test_queue_overhead_monotone(n, seed, q):
    from repro.sched.simulator import simulate

    p = sf_random_real_rooted(n, seed)
    tg = build_task_graph(p, 12, CostCounter())
    tg.graph.run_recorded(CostCounter())
    base = simulate(tg.graph, 4).makespan
    contended = simulate(tg.graph, 4, queue_overhead=q).makespan
    assert contended >= base
