"""Paper-scale stress tests (marked slow; run with ``pytest -m slow``
or plain ``pytest`` — they take a few seconds each)."""

import pytest

from repro.baselines.sturm_bisect import SturmBisectFinder
from repro.bench.workloads import (
    chebyshev_t,
    close_roots,
    hermite_prob,
    laguerre_scaled,
    legendre_scaled,
    square_free_characteristic_input,
    wilkinson,
)
from repro.core.certify import certify_roots
from repro.core.refine import refine_result
from repro.core.rootfinder import RealRootFinder
from repro.core.scaling import digits_to_bits
from repro.core.tasks import build_task_graph
from repro.costmodel.counter import CostCounter


@pytest.mark.slow
class TestPaperScale:
    def test_degree_70_full_precision_certified(self):
        """The paper's largest configuration, exactly certified."""
        inp = square_free_characteristic_input(70, 11)
        mu = digits_to_bits(32)
        res = RealRootFinder(mu_bits=mu).find_roots(inp.poly)
        assert len(res) == 70
        certify_roots(inp.poly, res.scaled, res.multiplicities, mu)

    def test_degree_70_task_graph_equivalence(self):
        inp = square_free_characteristic_input(70, 11)
        mu = digits_to_bits(8)
        ref = RealRootFinder(mu_bits=mu).find_roots(inp.poly)
        c = CostCounter()
        tg = build_task_graph(inp.poly, mu, c)
        tg.graph.run_recorded(c)
        assert tg.roots_scaled() == ref.scaled

    def test_degree_55_baseline_equivalence(self):
        inp = square_free_characteristic_input(55, 11)
        mu = digits_to_bits(6)
        ours = RealRootFinder(mu_bits=mu).find_roots(inp.poly)
        base = SturmBisectFinder(mu=mu).find_roots_scaled(inp.poly)
        assert ours.scaled == base


@pytest.mark.slow
class TestAdversarialScale:
    def test_wilkinson_40(self):
        p = wilkinson(40)
        res = RealRootFinder(mu_bits=40).find_roots(p)
        assert res.as_floats() == [float(k) for k in range(1, 41)]

    def test_high_degree_orthogonal_families(self):
        for fam, deg in ((chebyshev_t, 24), (hermite_prob, 22),
                         (legendre_scaled, 20), (laguerre_scaled, 18)):
            p = fam(deg)
            res = RealRootFinder(mu_bits=48).find_roots(p)
            assert len(res) == deg
            certify_roots(p, res.scaled, res.multiplicities, 48)

    def test_extreme_close_roots(self):
        """Pairs separated by 2^-256: isolated and certified."""
        p = close_roots(6, 256)
        res = RealRootFinder(mu_bits=280).find_roots(p)
        assert len(res) == 6
        certify_roots(p, res.scaled, res.multiplicities, 280)

    def test_deep_refinement(self):
        """Isolate at 16 bits, refine to 2048 bits, spot-check sqrt(3)."""
        from decimal import Decimal, getcontext
        from fractions import Fraction

        from repro.poly.dense import IntPoly

        p = IntPoly((-3, 0, 1)) * IntPoly.from_roots([-100, 7])
        res = RealRootFinder(mu_bits=16).find_roots(p)
        fine = refine_result(res, p, 2048)
        getcontext().prec = 700
        sqrt3 = Decimal(3).sqrt()
        got = Fraction(fine.scaled[2], 1 << 2048)
        ref = Fraction(int(sqrt3 * 10**650), 10**650)
        assert abs(got - ref) < Fraction(1, 1 << 2040)

    def test_mixed_multiplicity_stress(self):
        from repro.poly.dense import IntPoly

        roots = [-5] * 4 + [0] * 3 + [2] * 2 + [9]
        p = IntPoly.from_roots(roots)
        res = RealRootFinder(mu_bits=24).find_roots(p)
        assert res.as_floats() == [-5.0, 0.0, 2.0, 9.0]
        assert res.multiplicities == [4, 3, 2, 1]
        certify_roots(p, res.scaled, res.multiplicities, 24)
