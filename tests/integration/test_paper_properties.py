"""Integration checks of the paper's qualitative claims."""

import pytest

from repro.bench.runner import run_parallel, run_sequential
from repro.bench.workloads import square_free_characteristic_input


@pytest.fixture(scope="module")
def records():
    out = {}
    for n in (10, 20, 30):
        inp = square_free_characteristic_input(n, 11)
        for mu in (4, 32):
            out[(n, mu)] = run_sequential(inp, mu_digits=mu)
    return out


class TestSequentialTrends:
    def test_cost_grows_superlinearly_in_n(self, records):
        """Table 2: cost roughly n^4-ish between n=10 and n=30."""
        r10 = records[(10, 32)].total_bit_cost
        r30 = records[(30, 32)].total_bit_cost
        assert r30 > 20 * r10

    def test_cost_grows_with_mu(self, records):
        for n in (10, 20, 30):
            assert records[(n, 32)].total_bit_cost > records[(n, 4)].total_bit_cost

    def test_mu_sensitivity_shrinks_relatively_with_n(self, records):
        """Paper Table 2: the mu=32/mu=4 ratio falls as n grows (the
        mu-independent phases dominate at large n)."""
        ratio10 = records[(10, 32)].total_bit_cost / records[(10, 4)].total_bit_cost
        ratio30 = records[(30, 32)].total_bit_cost / records[(30, 4)].total_bit_cost
        assert ratio30 < ratio10

    def test_multiplications_dominate_operations(self, records):
        """Paper Section 4: "the number of multiplications is far
        greater than the number of divisions" (the justification for
        the mult-only analysis), and multiplication is the largest
        single bit-cost category."""
        for rec in records.values():
            st = rec.counter.phase_stats()
            assert st.mul_count > 10 * st.div_count
            assert st.mul_bit_cost > st.div_bit_cost
            assert st.mul_bit_cost > st.add_bit_cost


class TestParallelTrends:
    @pytest.fixture(scope="class")
    def curves(self):
        out = {}
        for n in (20, 30):
            inp = square_free_characteristic_input(n, 11)
            out[n] = run_parallel(inp, mu_digits=16, processors=[1, 2, 4, 8, 16])
        return out

    def test_speedup_monotone_in_processors(self, curves):
        for rec in curves.values():
            sp = [rec.speedup(p) for p in (1, 2, 4, 8, 16)]
            assert all(b >= a - 1e-12 for a, b in zip(sp, sp[1:]))

    def test_speedup_at_two_processors_near_two(self, curves):
        """Tables 3-7: p=2 speedups are 1.96-2.08 (we can't exceed 2
        without the paper's cache effects, but we should be close)."""
        for rec in curves.values():
            assert 1.6 <= rec.speedup(2) <= 2.0 + 1e-9

    def test_larger_degree_scales_better_at_16(self, curves):
        assert curves[30].speedup(16) >= curves[20].speedup(16) * 0.9

    def test_serialized_queue_overhead_caps_speedup(self):
        """Section 3 grain discussion: a lock-protected task queue
        serializes task acquisition, so with too-fine grain the 16-way
        speedup collapses even though the DAG has ample parallelism."""
        inp = square_free_characteristic_input(20, 11)
        lean = run_parallel(inp, mu_digits=8, processors=[16])
        contended = run_parallel(
            inp, mu_digits=8, processors=[16], queue_overhead=10**5
        )
        assert contended.speedup(16) < lean.speedup(16)
        assert contended.makespans[16] > lean.makespans[16]

    def test_per_task_overhead_inflates_makespan(self):
        inp = square_free_characteristic_input(15, 11)
        lean = run_parallel(inp, mu_digits=8, processors=[8])
        fat = run_parallel(inp, mu_digits=8, processors=[8], overhead=10**5)
        assert fat.makespans[8] > lean.makespans[8]
