"""Unit tests for the schoolbook bignum (MPInt)."""

import pytest

from repro.mpint.mpint import LIMB_BASE, MPInt


class TestConversion:
    def test_roundtrip_zero(self):
        assert int(MPInt(0)) == 0
        assert MPInt(0).sign == 0
        assert MPInt(0).limbs == []

    def test_roundtrip_positive(self):
        assert int(MPInt(12345678901234567890)) == 12345678901234567890

    def test_roundtrip_negative(self):
        assert int(MPInt(-987654321)) == -987654321

    def test_copy_constructor(self):
        a = MPInt(42)
        b = MPInt(a)
        assert int(b) == 42
        assert b.limbs is not a.limbs

    def test_bit_length(self):
        for v in (0, 1, 2, 255, 256, LIMB_BASE - 1, LIMB_BASE, 10**30):
            assert MPInt(v).bit_length() == v.bit_length()
            assert MPInt(-v).bit_length() == v.bit_length()

    def test_repr(self):
        assert repr(MPInt(-5)) == "MPInt(-5)"


class TestComparison:
    def test_ordering(self):
        assert MPInt(3) < MPInt(5)
        assert MPInt(-5) < MPInt(-3)
        assert MPInt(-1) < MPInt(0) < MPInt(1)

    def test_equality_with_int(self):
        assert MPInt(77) == 77
        assert MPInt(-77) == -77
        assert MPInt(77) != 76

    def test_magnitude_comparison_same_length(self):
        assert MPInt(LIMB_BASE + 5) > MPInt(LIMB_BASE + 3)

    def test_magnitude_comparison_diff_length(self):
        assert MPInt(LIMB_BASE**3) > MPInt(LIMB_BASE**2 * 1000)

    def test_bool(self):
        assert not MPInt(0)
        assert MPInt(1)
        assert MPInt(-1)

    def test_hash(self):
        assert hash(MPInt(123)) == hash(123)


class TestAddSub:
    def test_carry_propagation(self):
        a = MPInt(LIMB_BASE - 1)
        assert int(a + MPInt(1)) == LIMB_BASE

    def test_long_carry_chain(self):
        v = LIMB_BASE**5 - 1
        assert int(MPInt(v) + 1) == v + 1

    def test_borrow_propagation(self):
        v = LIMB_BASE**4
        assert int(MPInt(v) - 1) == v - 1

    def test_mixed_signs(self):
        assert int(MPInt(100) + MPInt(-30)) == 70
        assert int(MPInt(-100) + MPInt(30)) == -70
        assert int(MPInt(30) - MPInt(100)) == -70

    def test_cancellation_to_zero(self):
        assert int(MPInt(12345) + MPInt(-12345)) == 0

    def test_add_int_operand(self):
        assert int(MPInt(5) + 7) == 12
        assert int(7 + MPInt(5)) == 12
        assert int(7 - MPInt(5)) == 2


class TestMul:
    def test_zero(self):
        assert int(MPInt(12345) * MPInt(0)) == 0

    def test_sign_rules(self):
        assert int(MPInt(-3) * MPInt(4)) == -12
        assert int(MPInt(-3) * MPInt(-4)) == 12

    def test_multi_limb(self):
        a, b = 2**200 - 1, 2**100 + 12345
        assert int(MPInt(a) * MPInt(b)) == a * b

    def test_pow(self):
        assert int(MPInt(3) ** 40) == 3**40
        assert int(MPInt(2) ** 0) == 1

    def test_pow_negative_exponent_raises(self):
        with pytest.raises(ValueError):
            MPInt(2) ** -1


class TestDivMod:
    def test_short_division(self):
        q, r = divmod(MPInt(10**20 + 7), MPInt(3))
        assert (int(q), int(r)) == divmod(10**20 + 7, 3)

    def test_long_division_knuth_case(self):
        # Exercise the qhat-correction path with adversarial operands.
        a = (LIMB_BASE**6 - 1) * (LIMB_BASE**3 - 1)
        b = LIMB_BASE**3 - 1
        q, r = divmod(MPInt(a), MPInt(b))
        assert (int(q), int(r)) == divmod(a, b)

    def test_floor_semantics_negative(self):
        for a, b in [(-7, 2), (7, -2), (-7, -2), (-6, 2), (6, -2)]:
            q, r = divmod(MPInt(a), MPInt(b))
            assert (int(q), int(r)) == divmod(a, b), (a, b)

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            divmod(MPInt(1), MPInt(0))

    def test_floordiv_mod_operators(self):
        assert int(MPInt(17) // MPInt(5)) == 3
        assert int(MPInt(17) % MPInt(5)) == 2
        assert int(17 // MPInt(5)) == 3
        assert int(17 % MPInt(5)) == 2

    def test_dividend_smaller(self):
        q, r = divmod(MPInt(3), MPInt(10**30))
        assert int(q) == 0 and int(r) == 3


class TestShifts:
    def test_left_shift(self):
        assert int(MPInt(5) << 100) == 5 << 100

    def test_right_shift_floor_negative(self):
        assert int(MPInt(-5) >> 1) == -3  # floor semantics

    def test_right_shift_exact_negative(self):
        assert int(MPInt(-4) >> 1) == -2

    def test_shift_by_zero(self):
        assert int(MPInt(9) << 0) == 9
        assert int(MPInt(9) >> 0) == 9

    def test_right_shift_to_zero(self):
        assert int(MPInt(5) >> 100) == 0

    def test_negative_shift_raises(self):
        with pytest.raises(ValueError):
            MPInt(1) << -1
        with pytest.raises(ValueError):
            MPInt(1) >> -1
