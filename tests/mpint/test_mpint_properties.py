"""Hypothesis cross-validation of MPInt against Python int."""

from hypothesis import given
from hypothesis import strategies as st

from repro.mpint.mpint import MPInt

ints = st.integers(min_value=-(10**45), max_value=10**45)
small = st.integers(min_value=-(10**18), max_value=10**18)
shifts = st.integers(min_value=0, max_value=200)


@given(ints, ints)
def test_add(a, b):
    assert int(MPInt(a) + MPInt(b)) == a + b


@given(ints, ints)
def test_sub(a, b):
    assert int(MPInt(a) - MPInt(b)) == a - b


@given(ints, ints)
def test_mul(a, b):
    assert int(MPInt(a) * MPInt(b)) == a * b


@given(ints, small.filter(lambda x: x != 0))
def test_divmod(a, b):
    q, r = divmod(MPInt(a), MPInt(b))
    assert (int(q), int(r)) == divmod(a, b)


@given(ints, ints.filter(lambda x: x != 0))
def test_divmod_big_divisor(a, b):
    q, r = divmod(MPInt(a), MPInt(b))
    assert (int(q), int(r)) == divmod(a, b)


@given(ints, shifts)
def test_shifts(a, k):
    assert int(MPInt(a) << k) == a << k
    assert int(MPInt(a) >> k) == a >> k


@given(ints, ints)
def test_comparisons(a, b):
    assert (MPInt(a) < MPInt(b)) == (a < b)
    assert (MPInt(a) <= MPInt(b)) == (a <= b)
    assert (MPInt(a) == MPInt(b)) == (a == b)
    assert (MPInt(a) > MPInt(b)) == (a > b)


@given(ints)
def test_neg_abs(a):
    assert int(-MPInt(a)) == -a
    assert int(abs(MPInt(a))) == abs(a)


@given(st.integers(min_value=-50, max_value=50),
       st.integers(min_value=0, max_value=12))
def test_pow(base, e):
    assert int(MPInt(base) ** e) == base**e


@given(ints)
def test_roundtrip(a):
    assert int(MPInt(a)) == a
    assert MPInt(a).bit_length() == a.bit_length() if a >= 0 else (-a).bit_length()
