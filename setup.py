"""Legacy setup shim: the build host has no `wheel` package, so the
PEP-517 editable path (which requires bdist_wheel) is unavailable.
Keeping a setup.py lets `pip install -e .` use the classic develop-mode
install. Metadata lives in pyproject.toml."""

from setuptools import setup

setup()
