"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``roots`` — approximate all real roots of a polynomial given by its
  coefficients (low to high) or by ``--roots`` for a quick demo.
  ``--deadline-seconds`` / ``--bit-budget`` bound the run; on overrun
  the roots completed so far are reported (exit code 3, certifiable
  with ``--certify``) instead of nothing.
* ``eigvals`` — exact eigenvalues of a random symmetric 0-1 matrix (the
  paper's workload) or of a matrix read from a file.
* ``speedup`` — record the task DAG for one input and print the
  simulated speedup curve (paper Tables 3-7 style).
* ``report`` — per-phase cost report for one run (paper Section 5.1
  style tracing).
* ``batch`` — many polynomials through one persistent worker pool
  (:class:`repro.sched.executor.ParallelRootFinder.find_roots_many`),
  the service-style throughput path.  ``--checkpoint FILE`` streams
  completed results to a JSONL checkpoint as they finish; a rerun with
  the same file resumes the batch without re-solving
  (docs/RESILIENCE.md).
* ``fuzz`` — seeded differential fuzzing: adversarial inputs through
  every engine pair, bit-exact agreement asserted and every claim
  closed by the exact Sturm certificate (:mod:`repro.verify`).
* ``serve`` — the long-running multi-tenant daemon: one shared
  persistent worker pool behind a stdin-JSONL or HTTP JSON front-end,
  with a content-addressed result cache, per-request budgets, request
  priorities, and backpressure (:mod:`repro.serve`, docs/SERVING.md).
* ``loadtest`` — replay thousands of seeded mixed-degree requests
  against a live daemon, verify every answer bit-for-bit, and write a
  gateable ``BENCH_<name>.json`` with latency percentiles and
  throughput (:mod:`repro.serve.loadtest`).
* ``runs`` — list/show records of the append-only cross-run
  performance ledger (:mod:`repro.obs.ledger`); ``bench`` appends a
  record per run by default, ``roots``/``batch`` with ``--ledger``.
* ``diff`` — phase/histogram/worker-lane diff of two runs, each named
  by a ledger run-id prefix or a ``BENCH_*.json`` artifact path
  (:mod:`repro.obs.tracediff`).

``roots``, ``eigvals``, and ``speedup`` accept ``--trace out.jsonl``
(structured JSONL event log, see :mod:`repro.obs.events`) and
``--chrome-trace out.json`` (Chrome trace-event timeline, loadable in
Perfetto; real spans for ``roots``/``eigvals``, simulated
per-processor lanes for ``speedup``).  ``roots``/``bench``/``batch``
also accept ``--profile out.folded`` — an opt-in sampling profile in
collapsed-stack form (:mod:`repro.obs.profile`).  See
docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Sequence

from repro.core.rootfinder import RealRootFinder
from repro.core.scaling import digits_to_bits
from repro.costmodel.backend import (
    BACKEND_NAMES,
    BackendUnavailable,
    available_backends,
    counter_for,
    get_backend,
    resolve_backend,
)
from repro.costmodel.counter import CostCounter
from repro.poly.dense import IntPoly

__all__ = ["main", "build_parser"]


def _parse_int_list(text: str, what: str) -> list[int]:
    try:
        return [int(x) for x in text.split(",")]
    except ValueError:
        raise SystemExit(
            f"could not parse {what}: expected comma-separated integers, "
            f"got {text!r}"
        ) from None


def _poly_from_args(args: argparse.Namespace) -> IntPoly:
    if args.roots is not None:
        return IntPoly.from_roots(_parse_int_list(args.roots, "--roots"))
    if args.coeffs is not None:
        p = IntPoly(_parse_int_list(args.coeffs, "--coeffs"))
        if p.degree < 1:
            raise SystemExit("--coeffs must describe a nonconstant polynomial")
        return p
    raise SystemExit("provide --coeffs c0,c1,... or --roots r1,r2,...")


def _mu_bits(args: argparse.Namespace) -> int:
    if args.bits is not None:
        return args.bits
    return digits_to_bits(args.digits)


def _add_poly_args(sp: argparse.ArgumentParser) -> None:
    sp.add_argument("--coeffs", help="coefficients, low to high, comma-separated")
    sp.add_argument("--roots", help="integer roots to build a demo polynomial")
    sp.add_argument("--digits", type=int, default=15,
                    help="output precision in decimal digits (default 15)")
    sp.add_argument("--bits", type=int, default=None,
                    help="output precision in bits (overrides --digits)")


def _add_backend_arg(sp: argparse.ArgumentParser) -> None:
    sp.add_argument("--backend", choices=BACKEND_NAMES, default=None,
                    help="arithmetic backend (default: $REPRO_BACKEND or "
                         "python; 'auto' picks gmpy2 when installed — "
                         "see docs/BACKENDS.md)")


def _backend_from_args(args: argparse.Namespace):
    """The resolved :class:`ArithmeticBackend` for ``--backend`` /
    ``REPRO_BACKEND``, as a friendly exit on bad or unavailable names."""
    try:
        return resolve_backend(getattr(args, "backend", None))
    except BackendUnavailable as e:
        raise SystemExit(str(e)) from e


def _add_trace_args(sp: argparse.ArgumentParser) -> None:
    sp.add_argument("--trace", metavar="PATH",
                    help="write a structured JSONL event log of the run")
    sp.add_argument("--chrome-trace", metavar="PATH",
                    help="write a Chrome trace-event JSON (open in Perfetto)")


def _add_profile_arg(sp: argparse.ArgumentParser) -> None:
    sp.add_argument("--profile", metavar="PATH",
                    help="sample the run and write a collapsed-stack "
                         "profile (flamegraph.pl / speedscope input)")


def _write_profile(path: str, folded: dict) -> None:
    """Write one collapsed-stack profile, reporting on stderr."""
    from repro.obs.profile import write_collapsed

    try:
        write_collapsed(path, folded)
    except OSError as e:
        raise SystemExit(f"cannot write --profile file: {e}") from e
    print(f"profile: wrote {path} ({len(folded)} stacks, "
          f"{sum(folded.values())} samples)", file=sys.stderr)


def _ledger_append(record, tier: str = "local") -> None:
    """Append one run record to the ledger, reporting on stderr.

    Ledger trouble (read-only results dir, ...) must not fail the run
    that produced the answer, so failures are warnings.
    """
    from repro.obs.ledger import Ledger

    try:
        path = Ledger().append(record, tier=tier)
    except OSError as e:
        print(f"warning: could not append to run ledger: {e}",
              file=sys.stderr)
        return
    print(f"ledger: appended run {record.run_id} to {path}",
          file=sys.stderr)


def _run_record(command: str, params: dict, name: str = "",
                counter: CostCounter | None = None, tracer=None,
                registry=None):
    """A :class:`repro.obs.ledger.RunRecord` for a non-bench command.

    Folds whatever observability the run had: per-phase bit costs from
    ``counter``, per-phase walls and the parallel rollup from
    ``tracer``'s spans, reliability counters from ``registry``.
    """
    from repro.obs.ledger import RunRecord

    rec = RunRecord(command=command, name=name, params=params)
    if counter is not None:
        rec.add_metric("bit_cost", counter.total_bit_cost)
        rec.add_metric("mul_count", counter.mul_count)
        for ph, st in counter.stats.items():
            if st.op_count or st.total_bit_cost:
                rec.phases[ph] = {"bit_cost": st.total_bit_cost,
                                  "wall_ns": 0}
    if tracer is not None:
        from repro.obs.rollup import parallel_rollup, phase_wall_ns

        for ph, ns in phase_wall_ns(tracer.spans).items():
            rec.phases.setdefault(ph, {"bit_cost": 0, "wall_ns": 0})
            rec.phases[ph]["wall_ns"] = ns
        rec.parallel = parallel_rollup(tracer.spans) or {}
    if registry is not None:
        from repro.obs.metrics import reliability_rollup

        rec.reliability = reliability_rollup(registry)
    return rec


class _TraceSession:
    """Owns the optional ``--trace`` / ``--chrome-trace`` outputs of a
    command: builds the counter+tracer when either flag is set, writes
    the files on :meth:`finish`."""

    def __init__(self, args: argparse.Namespace, command: str, **header):
        from repro.obs.events import EventLog
        from repro.obs.trace import Tracer

        self.trace_path = getattr(args, "trace", None)
        self.chrome_path = getattr(args, "chrome_trace", None)
        self.counter: CostCounter | None = None
        self.tracer = None
        self.log = None
        if self.trace_path or self.chrome_path:
            self.counter = counter_for(_backend_from_args(args))
            if self.trace_path:
                try:
                    self.log = EventLog(self.trace_path)
                except OSError as e:
                    raise SystemExit(
                        f"cannot write --trace file: {e}") from e
                self.log.run_header(command, **header)
            self.tracer = Tracer(counter=self.counter, sink=self.log)

    def finish(self, stats=None) -> None:
        """Write the run footer and the Chrome trace, close files."""
        if self.log is not None:
            self.log.run_end(counter=self.counter, stats=stats)
            self.log.close()
        if self.chrome_path and self.tracer is not None:
            from repro.obs.chrometrace import spans_to_chrome, write_chrome_trace

            try:
                write_chrome_trace(
                    self.chrome_path,
                    spans_to_chrome(
                        self.tracer.spans, counters=self.tracer.counters
                    ),
                )
            except OSError as e:
                raise SystemExit(
                    f"cannot write --chrome-trace file: {e}") from e


def _budget_from_args(args: argparse.Namespace):
    """A :class:`repro.resilience.budget.Budget` from the ``--deadline-
    seconds`` / ``--bit-budget`` flags, or ``None`` when neither is set."""
    deadline = getattr(args, "deadline_seconds", None)
    bit_budget = getattr(args, "bit_budget", None)
    if deadline is None and bit_budget is None:
        return None
    from repro.resilience import Budget

    try:
        return Budget(deadline_seconds=deadline, max_bit_ops=bit_budget)
    except ValueError as e:
        raise SystemExit(str(e)) from e


def _sweep_backend_names(spec: str, main: str) -> list[str]:
    """Resolve the ``repro bench --sweep-backends`` spec to backend names.

    ``auto`` is every available backend except the main one and the slow
    ``mpint`` validation tier; ``all`` keeps mpint; ``none`` disables the
    sweep; anything else is a comma-separated explicit list.
    """
    if spec == "none":
        return []
    if spec in ("auto", "all"):
        names = [b for b in available_backends() if b != main]
        if spec == "auto":
            names = [b for b in names if b != "mpint"]
        return names
    names = [x.strip() for x in spec.split(",") if x.strip()]
    for n in names:
        try:
            get_backend(n)
        except BackendUnavailable as e:
            raise SystemExit(f"--sweep-backends: {e}") from e
    return [n for n in names if n != main]


def cmd_roots(args: argparse.Namespace) -> int:
    from repro.resilience import BudgetExceeded

    p = _poly_from_args(args)
    mu = _mu_bits(args)
    backend = _backend_from_args(args)
    session = _TraceSession(args, "roots", degree=p.degree, mu_bits=mu,
                            strategy=args.strategy)
    counter = session.counter
    if args.ledger and counter is None:
        counter = counter_for(backend)  # the ledger entry needs real costs
    profiler = None
    if args.profile:
        from repro.obs.profile import SamplingProfiler

        profiler = SamplingProfiler().start()
    finder = RealRootFinder(mu_bits=mu, strategy=args.strategy,
                            counter=counter, tracer=session.tracer,
                            budget=_budget_from_args(args),
                            backend=backend)
    try:
        result = finder.find_roots(p)
    except BudgetExceeded as e:
        if profiler is not None:
            from repro.obs.profile import collapse

            profiler.stop()
            _write_profile(args.profile, collapse(profiler.drain()))
        session.finish()
        part = e.partial
        if args.json:
            print(json.dumps({
                "mu_bits": mu,
                "partial": True,
                "reason": e.reason,
                "phase": part.phase,
                "elapsed_seconds": part.elapsed_seconds,
                "bit_cost": part.bit_cost,
                "scaled": [str(s) for s in part.scaled],
                "floats": part.as_floats(),
            }))
        else:
            print(f"budget exceeded ({e.reason}) in phase {part.phase!r}: "
                  f"{len(part)} certified roots completed")
            for f in part.as_floats():
                print(f"  {f:+.{min(17, max(6, mu // 4))}f}")
        if args.certify and part.scaled:
            from repro.core.certify import certify_roots

            certify_roots(p, part.scaled, None, mu, partial=True)
            print("partial result certified exact.", file=sys.stderr)
        return 3
    if profiler is not None:
        from repro.obs.profile import collapse

        profiler.stop()
        _write_profile(args.profile, collapse(profiler.drain()))
    session.finish(stats=result.stats)
    if args.ledger:
        rec = _run_record(
            "roots", {"degree": p.degree, "mu_bits": mu,
                      "strategy": args.strategy, "backend": backend.name},
            counter=counter, tracer=session.tracer,
        )
        rec.add_metric("wall_seconds", result.elapsed_seconds, kind="wall")
        rec.add_metric("n_roots", len(result))
        _ledger_append(rec)
    if args.json:
        print(json.dumps({
            "mu_bits": mu,
            "scaled": [str(s) for s in result.scaled],
            "floats": result.as_floats(),
            "multiplicities": result.multiplicities,
        }))
    else:
        print(f"{len(result)} distinct real roots (precision 2^-{mu}):")
        for f, m in zip(result.as_floats(), result.multiplicities):
            suffix = f"   (multiplicity {m})" if m > 1 else ""
            print(f"  {f:+.{min(17, max(6, mu // 4))}f}{suffix}")
    if args.certify:
        from repro.core.certify import certify_roots

        certify_roots(p, result.scaled, result.multiplicities, mu)
        print("certified exact.", file=sys.stderr)
    return 0


def cmd_eigvals(args: argparse.Namespace) -> int:
    from repro.charpoly.berkowitz import berkowitz_charpoly
    from repro.charpoly.generator import random_symmetric_01_matrix

    if args.matrix is not None:
        with open(args.matrix) as fh:
            mat = json.load(fh)
    else:
        mat = random_symmetric_01_matrix(args.n, args.seed)
    p = berkowitz_charpoly(mat)
    mu = _mu_bits(args)
    session = _TraceSession(args, "eigvals", degree=p.degree, mu_bits=mu)
    result = RealRootFinder(
        mu_bits=mu, counter=session.counter, tracer=session.tracer
    ).find_roots(p)
    session.finish(stats=result.stats)
    print(f"characteristic polynomial degree {p.degree}, "
          f"coefficients up to {p.max_coefficient_bits()} bits")
    for f, m in zip(result.as_floats(), result.multiplicities):
        suffix = f"   (multiplicity {m})" if m > 1 else ""
        print(f"  {f:+.15f}{suffix}")
    return 0


def cmd_speedup(args: argparse.Namespace) -> int:
    from repro.core.tasks import build_task_graph
    from repro.sched.simulator import simulate, speedup_curve

    p = _poly_from_args(args)
    mu = _mu_bits(args)
    counter = CostCounter()
    tg = build_task_graph(
        p, mu, counter, sequential_remainder=args.sequential_remainder
    )
    tg.graph.run_recorded(counter)
    procs = _parse_int_list(args.processors, "--processors")
    if any(p < 1 for p in procs):
        raise SystemExit("--processors must be positive integers")
    curve = speedup_curve(tg.graph, procs, queue_overhead=args.queue_overhead)
    stats = tg.graph.stats()
    print(f"{stats.n_tasks} tasks, T1/Tinf = "
          f"{stats.total_work / max(stats.critical_path, 1):.1f}")
    t1 = curve[1].makespan
    for pcount in sorted(curve):
        r = curve[pcount]
        print(f"  p={pcount:<3d} makespan={r.makespan:<14d} "
              f"speedup={t1 / r.makespan:6.2f}  util={r.utilization:5.1%}")

    if args.trace:
        from repro.obs.events import EventLog

        try:
            log_cm = EventLog(args.trace)
        except OSError as e:
            raise SystemExit(f"cannot write --trace file: {e}") from e
        with log_cm as log:
            log.run_header("speedup", degree=p.degree, mu_bits=mu,
                           n_tasks=stats.n_tasks,
                           total_work=stats.total_work,
                           critical_path=stats.critical_path,
                           queue_overhead=args.queue_overhead)
            for pcount in sorted(curve):
                r = curve[pcount]
                log.write({"ev": "schedule", "processors": pcount,
                           "makespan": r.makespan,
                           "speedup": t1 / r.makespan,
                           "utilization": r.utilization,
                           "busy": r.busy})
            log.write({"ev": "run_end"})
    if args.chrome_trace:
        from repro.obs.chrometrace import schedules_to_chrome, write_chrome_trace

        traced = {
            pcount: simulate(tg.graph, pcount,
                             queue_overhead=args.queue_overhead,
                             keep_trace=True)
            for pcount in sorted(curve)
        }
        try:
            write_chrome_trace(
                args.chrome_trace, schedules_to_chrome(traced, tg.graph.tasks)
            )
        except OSError as e:
            raise SystemExit(f"cannot write --chrome-trace file: {e}") from e
    return 0


def _print_parallel_rollup(rollup: dict) -> None:
    """Render a :func:`repro.obs.rollup.parallel_rollup` summary."""
    if not rollup:
        print("\nno worker spans captured (run degraded to sequential?)")
        return
    print(
        f"\nexecutor: {rollup['workers']} workers, makespan "
        f"{rollup['makespan_ns'] / 1e6:.2f}ms, work "
        f"{rollup['work_ns'] / 1e6:.2f}ms, speedup "
        f"{rollup['speedup']:.2f}, efficiency {rollup['efficiency']:.1%}, "
        f"idle tail {rollup['idle_tail_fraction']:.1%}"
    )
    for tr, w in sorted(rollup["per_worker"].items()):
        print(
            f"  worker-{tr}: {w['tasks']} tasks, busy "
            f"{w['busy_ns'] / 1e6:.2f}ms ({w['utilization']:5.1%}), "
            f"idle tail {w['idle_tail_ns'] / 1e6:.2f}ms"
        )


def cmd_report(args: argparse.Namespace) -> int:
    p = _poly_from_args(args)
    mu = _mu_bits(args)
    counter = CostCounter()
    if args.parallel:
        from repro.obs.metrics import reliability_rollup
        from repro.obs.rollup import parallel_rollup
        from repro.obs.trace import Tracer
        from repro.sched.executor import ParallelRootFinder

        tracer = Tracer(counter=counter)
        t0 = time.perf_counter()
        with ParallelRootFinder(mu=mu, processes=args.parallel,
                                counter=counter, tracer=tracer) as finder:
            scaled = finder.find_roots_scaled(p)
            elapsed = time.perf_counter() - t0
            fallbacks = finder.fallback_count
            reliability = reliability_rollup(finder.metrics)
        print(f"{len(scaled)} roots, wall {elapsed:.3f}s "
              f"(parent-side costs only; {fallbacks} fallbacks)")
        print(counter.report())
        _print_parallel_rollup(parallel_rollup(tracer.spans))
        fired = {k: v for k, v in reliability.items() if v}
        print("\nreliability: clean run (all executor counters zero)"
              if not fired else
              "\nreliability: " + ", ".join(
                  f"{k.removeprefix('executor.')}={v}"
                  for k, v in sorted(fired.items())))
        return 0
    result = RealRootFinder(mu_bits=mu, counter=counter).find_roots(p)
    print(f"{len(result)} roots, wall {result.elapsed_seconds:.3f}s")
    print(counter.report())
    st = result.stats
    print(
        f"\ninterval solver: {st.solves} solves, cases "
        f"1/2a/2b/2c = {st.case1}/{st.case2a}/{st.case2b}/{st.case2c}, "
        f"sieve/bisect/newton evals = "
        f"{st.sieve_evals}/{st.bisection_evals}/{st.newton_evals}"
    )
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.artifact import (
        add_parallel_rollup,
        add_sequential_metrics,
        artifact_path,
        bench_artifact,
    )
    from repro.bench.runner import run_sequential
    from repro.bench.workloads import square_free_characteristic_input
    from repro.obs.perf import (
        compare_artifacts,
        read_artifact,
        render_gate_report,
        write_artifact,
    )
    from repro.obs.rollup import parallel_rollup
    from repro.obs.trace import Tracer
    from repro.sched.executor import ParallelRootFinder

    degrees = _parse_int_list(args.degrees, "--degrees")
    if any(n < 2 for n in degrees):
        raise SystemExit("--degrees must be >= 2")
    backend = _backend_from_args(args)
    params = {"degrees": degrees, "mu_digits": args.digits,
              "seed": args.seed, "processes": args.processes,
              "backend": backend.name}
    session = _TraceSession(args, "bench", **params)
    artifact = bench_artifact(args.name, params)

    seq_profiler = None
    if args.profile and args.processes == 0:
        # No parallel stage to profile: sample the sequential loop.
        from repro.obs.profile import SamplingProfiler

        seq_profiler = SamplingProfiler().start()
    records = []
    for n in degrees:
        inp = square_free_characteristic_input(n, args.seed)
        rec = run_sequential(inp, args.digits, trace_walls=True,
                             backend=backend.name)
        records.append(rec)
        print(f"  n={n:<3d} mu={args.digits}d: {rec.n_roots} roots, "
              f"bit cost {rec.total_bit_cost}, wall {rec.wall_seconds:.3f}s")
    add_sequential_metrics(artifact, records)
    if seq_profiler is not None:
        from repro.obs.profile import collapse

        seq_profiler.stop()
        _write_profile(args.profile, collapse(seq_profiler.drain()))

    # Backend sweep: the same pinned grid on every sweep backend.  The
    # charged counts and the roots must agree bit for bit with the main
    # backend — an exact gate, failed sweeps exit 1 — while the walls
    # land in the artifact as informational speedup evidence.
    main_wall = sum(r.wall_seconds for r in records)
    artifact.add_metric(f"backend.{backend.name}.bit_cost",
                        sum(r.total_bit_cost for r in records))
    artifact.add_metric(f"backend.{backend.name}.mul_count",
                        sum(r.total_mul_count for r in records))
    artifact.add_metric(f"backend.{backend.name}.wall_seconds", main_wall,
                        kind="wall")
    sweep = _sweep_backend_names(args.sweep_backends, backend.name)
    if not sweep and args.sweep_backends == "auto":
        print("backend sweep: no other fast backend available "
              "(install gmpy2, or pass --sweep-backends mpint)",
              file=sys.stderr)
    for alt in sweep:
        t0 = time.perf_counter()
        alt_records = [
            run_sequential(square_free_characteristic_input(n, args.seed),
                           args.digits, backend=alt)
            for n in degrees
        ]
        alt_wall = time.perf_counter() - t0
        for base, cand in zip(records, alt_records):
            if (cand.result.scaled != base.result.scaled
                    or cand.result.multiplicities
                    != base.result.multiplicities
                    or cand.total_bit_cost != base.total_bit_cost
                    or cand.total_mul_count != base.total_mul_count):
                print(f"backend sweep FAILED: backend {alt!r} disagrees "
                      f"with {backend.name!r} at n={base.degree}: "
                      f"bit cost {cand.total_bit_cost} vs "
                      f"{base.total_bit_cost}, mul count "
                      f"{cand.total_mul_count} vs {base.total_mul_count}",
                      file=sys.stderr)
                return 1
        artifact.add_metric(f"backend.{alt}.bit_cost",
                            sum(r.total_bit_cost for r in alt_records))
        artifact.add_metric(f"backend.{alt}.mul_count",
                            sum(r.total_mul_count for r in alt_records))
        artifact.add_metric(f"backend.{alt}.wall_seconds", alt_wall,
                            kind="wall")
        speedup = main_wall / alt_wall if alt_wall > 0 else 0.0
        artifact.add_metric(f"backend.{alt}.speedup", speedup, kind="wall")
        print(f"  backend {alt}: bit-exact vs {backend.name}, "
              f"wall {alt_wall:.3f}s (speedup {speedup:.2f}x)")

    registry = None
    if args.processes > 0:
        # Parallel telemetry stage: the largest pinned input through the
        # real executor, always traced so the utilization rollup and
        # the queue-depth/worker-busy counter lanes exist.
        counter = (session.counter if session.counter is not None
                   else counter_for(backend))
        tracer = session.tracer if session.tracer is not None else Tracer(
            counter=counter)
        inp = square_free_characteristic_input(max(degrees), args.seed)
        t0 = time.perf_counter()
        with ParallelRootFinder(mu=digits_to_bits(args.digits),
                                processes=args.processes, counter=counter,
                                tracer=tracer,
                                backend=backend.name) as finder:
            finder.find_roots_scaled(inp.poly)
            parallel_wall = time.perf_counter() - t0
            reg = registry = finder.metrics
            from repro.obs.metrics import reliability_rollup

            # The whole reliability vocabulary, zero-filled: the gate
            # compares the shared names against the baseline and reports
            # newly-added ones informationally.
            for name, value in reliability_rollup(reg).items():
                artifact.add_metric(name, value)
            artifact.histograms["executor.queue_depth.samples"] = (
                reg.histogram("executor.queue_depth.samples").as_dict()
            )
        artifact.add_metric("parallel.wall_seconds", parallel_wall,
                            kind="wall")
        rollup = parallel_rollup(tracer.spans)
        add_parallel_rollup(artifact, rollup)
        _print_parallel_rollup(rollup)

        if args.profile:
            # Profiled re-run of the same pinned stage on a fresh pool:
            # the wall delta against the unprofiled run above is the
            # profiler's measured overhead (informational, not gated).
            prof_counter = counter_for(backend)
            prof_tracer = Tracer(counter=prof_counter)
            t0 = time.perf_counter()
            with ParallelRootFinder(mu=digits_to_bits(args.digits),
                                    processes=args.processes,
                                    counter=prof_counter,
                                    tracer=prof_tracer,
                                    profile=True,
                                    backend=backend.name) as pfinder:
                pfinder.find_roots_scaled(inp.poly)
                profiled_wall = time.perf_counter() - t0
                folded = pfinder.profile_collapsed()
            overhead = ((profiled_wall - parallel_wall) / parallel_wall
                        if parallel_wall > 0 else 0.0)
            artifact.add_metric("profile.overhead_fraction", overhead,
                                kind="wall")
            print(f"profile: overhead {overhead:+.1%} "
                  f"({parallel_wall:.3f}s -> {profiled_wall:.3f}s)")
            _write_profile(args.profile, folded)

    out = args.out if args.out else artifact_path(args.name)
    try:
        write_artifact(out, artifact)
    except OSError as e:
        raise SystemExit(f"cannot write artifact: {e}") from e
    session.finish()
    print(f"\nwrote {out} ({len(artifact.metrics)} metrics, "
          f"{len(artifact.histograms)} histograms)")

    if args.ledger:
        from repro.obs.ledger import record_from_artifact

        _ledger_append(
            record_from_artifact(artifact, command="bench",
                                 registry=registry),
            tier=args.ledger_tier,
        )

    if args.check:
        try:
            baseline = read_artifact(args.check)
        except (OSError, ValueError, KeyError) as e:
            raise SystemExit(f"cannot read baseline {args.check}: {e}") from e
        diffs = compare_artifacts(baseline, artifact)
        print(f"\nregression gate vs {args.check}:")
        print(render_gate_report(baseline, artifact, diffs))
        if any(d.failed for d in diffs):
            return 1
    return 0


def _batch_polys(args: argparse.Namespace) -> list[IntPoly]:
    """Collect the batch inputs from ``--file`` / ``--coeff-sets`` /
    ``--roots-sets`` (any combination, in that order)."""
    polys: list[IntPoly] = []
    if args.file:
        try:
            fh = open(args.file)
        except OSError as e:
            raise SystemExit(f"cannot read --file: {e}") from e
        with fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError as e:
                    raise SystemExit(
                        f"{args.file}:{lineno}: not valid JSON: {e}"
                    ) from e
                coeffs = data.get("coeffs") if isinstance(data, dict) else data
                if not isinstance(coeffs, list):
                    raise SystemExit(
                        f"{args.file}:{lineno}: expected a coefficient array "
                        'or {"coeffs": [...]}'
                    )
                polys.append(IntPoly(int(c) for c in coeffs))
    if args.coeff_sets:
        for part in args.coeff_sets.split(";"):
            polys.append(IntPoly(_parse_int_list(part, "--coeff-sets")))
    if args.roots_sets:
        for part in args.roots_sets.split(";"):
            polys.append(
                IntPoly.from_roots(_parse_int_list(part, "--roots-sets"))
            )
    if not polys:
        raise SystemExit(
            "provide --file polys.jsonl, --coeff-sets, or --roots-sets"
        )
    return polys


def cmd_batch(args: argparse.Namespace) -> int:
    from repro.core.scaling import scaled_to_float
    from repro.sched.executor import ParallelRootFinder

    polys = _batch_polys(args)
    mu = _mu_bits(args)
    checkpoint = None
    if args.checkpoint:
        from repro.resilience import BatchCheckpoint, CheckpointMismatch

        try:
            checkpoint = BatchCheckpoint(args.checkpoint, mu, args.strategy)
        except (OSError, CheckpointMismatch) as e:
            raise SystemExit(f"cannot use --checkpoint: {e}") from e
        if args.fault_exit_after:
            # Hidden fault-injection hook (see BatchCheckpoint.kill_after):
            # the resume tests use it to die deterministically mid-batch.
            checkpoint.kill_after = args.fault_exit_after
    backend = _backend_from_args(args)
    session = _TraceSession(args, "batch", count=len(polys), mu_bits=mu,
                            processes=args.processes)
    kwargs = {}
    if session.tracer is not None:
        kwargs = {"counter": session.counter, "tracer": session.tracer}
    elif args.ledger:
        kwargs = {"counter": counter_for(backend)}
    t0 = time.perf_counter()
    with ParallelRootFinder(mu=mu, processes=args.processes,
                            strategy=args.strategy,
                            task_timeout=args.timeout,
                            profile=bool(args.profile),
                            backend=backend.name, **kwargs) as finder:
        try:
            results = finder.find_roots_many(polys, checkpoint=checkpoint)
        finally:
            if checkpoint is not None:
                checkpoint.close()
        elapsed = time.perf_counter() - t0
        fallbacks = finder.fallback_count
        if args.profile:
            _write_profile(args.profile, finder.profile_collapsed())
        if args.ledger:
            rec = _run_record(
                "batch", {"count": len(polys), "mu_bits": mu,
                          "processes": args.processes,
                          "strategy": args.strategy,
                          "backend": backend.name},
                counter=kwargs.get("counter"), tracer=session.tracer,
                registry=finder.metrics,
            )
            rec.add_metric("wall_seconds", elapsed, kind="wall")
            rec.add_metric("fallbacks", fallbacks)
            _ledger_append(rec)
    resumed = checkpoint.hits if checkpoint is not None else 0
    session.finish()
    if args.json:
        print(json.dumps({
            "mu_bits": mu,
            "count": len(polys),
            "processes": args.processes,
            "elapsed_seconds": elapsed,
            "fallbacks": fallbacks,
            "resumed": resumed,
            "results": [
                {"scaled": [str(s) for s in scaled],
                 "floats": [scaled_to_float(s, mu) for s in scaled]}
                for scaled in results
            ],
        }))
    else:
        resumed_note = (f", {resumed} resumed from checkpoint"
                        if checkpoint is not None else "")
        print(f"{len(polys)} polynomials on a pool of {args.processes} "
              f"processes: {elapsed:.3f}s total "
              f"({elapsed / len(polys):.3f}s/poly, "
              f"{fallbacks} sequential fallbacks{resumed_note})")
        for k, (p, scaled) in enumerate(zip(polys, results)):
            if scaled:
                vals = ", ".join(
                    f"{scaled_to_float(s, mu):+.6f}" for s in scaled
                )
            else:
                vals = "(no real roots reported)"
            print(f"  [{k}] degree {p.degree}: {vals}")
    return 0


def _load_slo_config(path: str | None):
    if not path:
        return None
    from repro.obs.slo import SLOConfig

    try:
        return SLOConfig.from_file(path)
    except (OSError, ValueError, KeyError, TypeError) as e:
        raise SystemExit(f"cannot read SLO config {path}: {e}") from e


def _make_root_server(args: argparse.Namespace):
    from repro.serve.server import RootServer

    try:
        server = RootServer(
            mu=_mu_bits(args),
            processes=args.processes,
            strategy=args.strategy,
            backend=_backend_from_args(args).name,
            max_pending=args.max_pending,
            max_deadline_seconds=args.max_deadline_seconds,
            cache_bytes=args.cache_bytes,
            cache_dir=args.cache_dir,
            access_log=args.access_log,
            capture_dir=args.capture_dir,
            slow_threshold_ms=args.slow_threshold_ms,
            ring_size=args.ring_size,
            slo=_load_slo_config(args.slo_config),
            journal_path=args.journal,
            fsync_interval=args.fsync_interval,
        )
    except (ValueError, OSError) as e:
        raise SystemExit(str(e)) from e
    # Hidden fault-injection hooks (the chaos harness and the restart
    # tests; see docs/CHAOS.md).  All deterministic, all off by default.
    if getattr(args, "fault_kill_after", 0) and server.journal is not None:
        server.journal.kill_after_accepts = args.fault_kill_after
    if (getattr(args, "fault_journal_errors_after", 0)
            and server.journal is not None):
        server.journal.fail_writes_after = args.fault_journal_errors_after
    if getattr(args, "fault_worker_kill_at", None):
        from repro.verify.faults import FaultPlan

        server.finder.faults = FaultPlan(kill_at=frozenset(
            _parse_int_list(args.fault_worker_kill_at,
                            "--fault-worker-kill-at")))
    if getattr(args, "fault_task_timeout", None):
        server.finder.task_timeout = args.fault_task_timeout
    return server


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    if (args.http is None) == (not args.stdio):
        raise SystemExit("choose one front-end: --stdio or --http PORT")
    server = _make_root_server(args)
    try:
        if args.stdio:
            from repro.serve.stdio import serve_stdio

            return asyncio.run(serve_stdio(server, sys.stdin, sys.stdout))
        from repro.serve.http import serve_http

        return asyncio.run(serve_http(server, args.host, args.http))
    except KeyboardInterrupt:
        return 0


def cmd_loadtest(args: argparse.Namespace) -> int:
    import asyncio

    from repro.bench.artifact import artifact_path
    from repro.obs.perf import (
        compare_artifacts,
        read_artifact,
        render_gate_report,
        write_artifact,
    )
    from repro.serve.loadtest import (
        HttpClient,
        InprocessClient,
        StdioClient,
        build_artifact,
        expected_answers,
        generate_requests,
        run_loadtest,
    )

    # --bits has a real default here (16), so --digits wins when given.
    mu = args.bits if args.digits is None else digits_to_bits(args.digits)
    degrees = _parse_int_list(args.degrees, "--degrees")
    if any(d < 1 for d in degrees):
        raise SystemExit("--degrees must be >= 1")
    if not 0.0 <= args.duplicate_fraction < 1.0:
        raise SystemExit("--duplicate-fraction must be in [0, 1)")
    if args.requests < 1 or args.concurrency < 1:
        raise SystemExit("--requests and --concurrency must be >= 1")
    params = {
        "mode": args.mode, "requests": args.requests, "seed": args.seed,
        "degrees": degrees, "duplicate_fraction": args.duplicate_fraction,
        "mu_bits": mu, "processes": args.processes,
        "concurrency": args.concurrency,
    }
    requests = generate_requests(args.requests, args.seed, degrees,
                                 args.duplicate_fraction, mu)
    print(f"loadtest: {len(requests)} requests "
          f"({len({tuple(r['coeffs']) for r in requests})} unique), "
          f"computing ground truth...", file=sys.stderr)
    expected = expected_answers(requests)

    async def _run():
        if args.mode == "stdio":
            extra: list[str] = []
            if args.access_log:
                extra += ["--access-log", args.access_log]
            if args.capture_dir:
                extra += ["--capture-dir", args.capture_dir]
            if args.slow_threshold_ms is not None:
                extra += ["--slow-threshold-ms",
                          str(args.slow_threshold_ms)]
            if args.slo_config:
                extra += ["--slo-config", args.slo_config]
            client = StdioClient(mu, args.processes,
                                 max_pending=max(args.requests, 64),
                                 extra_args=extra)
        elif args.mode == "inprocess":
            client = InprocessClient(
                mu=mu, processes=args.processes,
                max_pending=max(args.requests, 64),
                access_log=args.access_log,
                capture_dir=args.capture_dir,
                slow_threshold_ms=(args.slow_threshold_ms
                                   if args.slow_threshold_ms is not None
                                   else 250.0),
                slo=_load_slo_config(args.slo_config),
            )
        elif args.mode == "http":
            if not args.url:
                raise SystemExit("--mode http needs --url host:port")
            host, _, port = args.url.rpartition(":")
            host = host.removeprefix("http://").strip("/") or "127.0.0.1"
            client = HttpClient(host, int(port))
        else:  # pragma: no cover - argparse choices guard this
            raise SystemExit(f"unknown mode {args.mode!r}")
        async with client:
            return await run_loadtest(client, requests, expected,
                                      concurrency=args.concurrency)

    report = asyncio.run(_run())
    print(report.summary())

    from repro.obs.slo import DEFAULT_SLO, evaluate_slo

    slo_config = _load_slo_config(args.slo_config) or DEFAULT_SLO
    artifact = build_artifact(args.name, params, report,
                              slo_config=slo_config)
    if report.samples:
        verdict = evaluate_slo(report.samples, slo_config)
        burns = "  ".join(
            f"{o['name']} burn {o['burn']:.2f}"
            for o in verdict["objectives"] if o["observed"] is not None
        )
        print(f"  SLO: {'ok' if verdict['ok'] else 'VIOLATED'}  {burns}")
    out = args.out if args.out else artifact_path(args.name)
    try:
        write_artifact(out, artifact)
    except OSError as e:
        raise SystemExit(f"cannot write artifact: {e}") from e
    print(f"wrote {out} ({len(artifact.metrics)} metrics)")

    failed = report.incorrect > 0 or report.errors > 0
    if failed:
        print("loadtest FAILED: "
              f"{report.incorrect} incorrect, {report.errors} errors",
              file=sys.stderr)
    if args.check:
        try:
            baseline = read_artifact(args.check)
        except (OSError, ValueError, KeyError) as e:
            raise SystemExit(f"cannot read baseline {args.check}: {e}") from e
        diffs = compare_artifacts(baseline, artifact)
        print(f"\nregression gate vs {args.check}:")
        print(render_gate_report(baseline, artifact, diffs))
        failed = failed or any(d.failed for d in diffs)
    return 1 if failed else 0


def cmd_chaos(args: argparse.Namespace) -> int:
    import json as _json
    import shutil
    import tempfile

    from repro.chaos import ChaosPlan, full_plan, run_campaign, smoke_plan

    if args.plan:
        try:
            with open(args.plan, encoding="utf-8") as fh:
                plan = ChaosPlan.from_dict(_json.load(fh))
        except (OSError, ValueError, KeyError, TypeError) as e:
            raise SystemExit(f"cannot read chaos plan {args.plan}: {e}") \
                from e
    elif args.smoke:
        plan = smoke_plan(args.seed)
    else:
        plan = full_plan(args.seed)

    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-chaos-")
    print(f"chaos: seed {plan.seed}, {len(plan.phases)} phases, "
          f"workdir {workdir}", file=sys.stderr)
    report = run_campaign(plan, workdir,
                          echo=lambda m: print(m, file=sys.stderr))
    print(report.summary())

    out = args.out or os.path.join(workdir, "chaos_report.json")
    try:
        with open(out, "w", encoding="utf-8") as fh:
            _json.dump(report.to_dict(), fh, indent=2)
            fh.write("\n")
    except OSError as e:
        raise SystemExit(f"cannot write chaos report: {e}") from e
    print(f"wrote {out}")

    # Keep the evidence (journal, cache, daemon stderr) on failure or
    # on request; tidy up an anonymous workdir after a clean pass.
    if report.ok and not args.keep and not args.workdir:
        shutil.rmtree(workdir, ignore_errors=True)
    elif not report.ok:
        print(f"chaos FAILED: evidence kept in {workdir}",
              file=sys.stderr)
    return 0 if report.ok else 1


def cmd_tail(args: argparse.Namespace) -> int:
    from repro.serve.reqtrace import (
        RequestTimeline,
        format_tail_table,
        rank_timelines,
        read_access_log,
    )

    if not os.path.exists(args.path) and not os.path.exists(
            args.path + ".1"):
        raise SystemExit(f"no access log at {args.path}")
    records = read_access_log(args.path)
    timelines = [RequestTimeline.from_dict(r) for r in records
                 if isinstance(r.get("request_id"), (str, int))]
    if args.json:
        for tl in rank_timelines(timelines)[:args.limit]:
            print(json.dumps(tl.to_dict(), separators=(",", ":")))
        return 0
    print(format_tail_table(timelines, limit=args.limit))
    failures = sum(1 for tl in timelines
                   if tl.status in ("error", "overloaded", "partial"))
    print(f"\n{len(timelines)} requests, {failures} failures "
          f"({args.path})")
    return 0


def _rec_summary_value(rec, names: tuple[str, ...]):
    for name in names:
        if name in rec.metrics:
            return rec.metrics[name]["value"]
    return None


def cmd_runs(args: argparse.Namespace) -> int:
    from repro.obs.ledger import Ledger

    led = Ledger()
    if args.action == "show":
        try:
            rec = led.get(args.run_id, tier=args.tier)
        except (KeyError, ValueError) as e:
            raise SystemExit(str(e)) from e
        print(json.dumps(rec.to_dict(), indent=2, sort_keys=True))
        return 0
    recs = led.query(command=args.filter_command, name=args.filter_name,
                     tier=args.tier, limit=args.limit)
    if args.json:
        print(json.dumps([r.to_dict() for r in recs]))
        return 0
    if not recs:
        print("no ledger records (run `repro bench` or use --ledger)")
        return 0
    print(f"{'run id':<26} {'command':<8} {'name':<10} "
          f"{'when (UTC)':<20} {'bit cost':>14} {'wall s':>8}")
    print("-" * 92)
    for r in recs:
        when = time.strftime("%Y-%m-%d %H:%M:%S",
                             time.gmtime(r.time_unix))
        cost = _rec_summary_value(r, ("bit_cost",))
        wall = _rec_summary_value(r, ("wall_seconds",))
        print(f"{r.run_id:<26} {r.command:<8} {r.name or '-':<10} "
              f"{when:<20} "
              f"{cost if cost is not None else '-':>14} "
              f"{f'{wall:.3f}' if wall is not None else '-':>8}")
    return 0


def _load_run_ref(ref: str):
    """Resolve a ``repro diff`` operand: an artifact path or a ledger
    run-id prefix."""
    import os

    if os.path.exists(ref):
        from repro.obs.perf import read_artifact

        try:
            return read_artifact(ref)
        except (OSError, ValueError, KeyError) as e:
            raise SystemExit(f"cannot read artifact {ref}: {e}") from e
    from repro.obs.ledger import Ledger

    try:
        return Ledger().get(ref)
    except (KeyError, ValueError) as e:
        raise SystemExit(str(e)) from e


def cmd_diff(args: argparse.Namespace) -> int:
    from repro.obs.tracediff import diff_runs

    a = _load_run_ref(args.run_a)
    b = _load_run_ref(args.run_b)
    td = diff_runs(a, b)
    if args.json:
        print(json.dumps(td.to_dict(), sort_keys=True))
    else:
        print(td.format_table())
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.verify.fuzz import run_fuzz

    engines = None
    if args.engines:
        engines = tuple(x.strip() for x in args.engines.split(",") if x.strip())
    families = None
    if args.families:
        families = [x.strip() for x in args.families.split(",") if x.strip()]
    if args.budget < 1:
        raise SystemExit("--budget must be >= 1")
    backend = _backend_from_args(args)
    try:
        report = run_fuzz(
            args.seed, args.budget,
            engine_names=engines,
            families=families,
            processes=args.processes,
            backend=backend.name,
            refine=not args.no_refine,
            shrink=not args.no_shrink,
            corpus_dir=args.corpus_dir,
            log_path=args.log,
            stop_after=args.stop_after if args.stop_after > 0 else None,
        )
    except ValueError as e:  # unknown engine/family names
        raise SystemExit(str(e)) from e
    print(report.summary())
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    ap = argparse.ArgumentParser(
        prog="repro",
        description="Parallel real-root finding (Narendran & Tiwari 1992)",
    )
    sub = ap.add_subparsers(dest="command", required=True)

    sp = sub.add_parser("roots", help="approximate all real roots")
    _add_poly_args(sp)
    sp.add_argument("--strategy", choices=("hybrid", "bisection", "newton"),
                    default="hybrid")
    sp.add_argument("--certify", action="store_true",
                    help="prove the answer with exact Sturm counts")
    sp.add_argument("--deadline-seconds", type=float, default=None,
                    metavar="S",
                    help="wall-clock budget: report the roots completed "
                         "so far (exit 3) instead of running past S seconds")
    sp.add_argument("--bit-budget", type=int, default=None, metavar="OPS",
                    help="bit-operation budget (counted model cost); "
                         "partial results as with --deadline-seconds")
    sp.add_argument("--json", action="store_true")
    sp.add_argument("--ledger", action="store_true",
                    help="append this run to the local run ledger "
                         "(see `repro runs`)")
    _add_backend_arg(sp)
    _add_trace_args(sp)
    _add_profile_arg(sp)
    sp.set_defaults(func=cmd_roots)

    sp = sub.add_parser("eigvals", help="exact symmetric-matrix eigenvalues")
    sp.add_argument("--n", type=int, default=12)
    sp.add_argument("--seed", type=int, default=11)
    sp.add_argument("--matrix", help="JSON file with an integer matrix")
    sp.add_argument("--digits", type=int, default=15)
    sp.add_argument("--bits", type=int, default=None)
    _add_trace_args(sp)
    sp.set_defaults(func=cmd_eigvals)

    sp = sub.add_parser("speedup", help="simulated multiprocessor speedups")
    _add_poly_args(sp)
    sp.add_argument("--processors", default="1,2,4,8,16")
    sp.add_argument("--queue-overhead", type=int, default=0,
                    help="serialized task-queue acquisition cost (bit ops)")
    sp.add_argument("--sequential-remainder", action="store_true")
    _add_trace_args(sp)
    sp.set_defaults(func=cmd_speedup)

    sp = sub.add_parser("report", help="per-phase cost report")
    _add_poly_args(sp)
    sp.add_argument("--parallel", type=int, default=0, metavar="N",
                    help="run on a real N-process pool and report the "
                         "utilization/parallel-efficiency rollup")
    sp.set_defaults(func=cmd_report)

    sp = sub.add_parser(
        "bench",
        help="pinned benchmark run -> BENCH_<name>.json artifact "
             "(with an optional regression gate)",
    )
    sp.add_argument("--name", default="smoke",
                    help="artifact name (default smoke)")
    sp.add_argument("--degrees", default="10,15,20,25",
                    help="comma-separated degree grid (default 10,15,20,25)")
    sp.add_argument("--digits", type=int, default=8,
                    help="output precision in decimal digits (default 8)")
    sp.add_argument("--seed", type=int, default=11,
                    help="workload seed (default 11, the paper's)")
    sp.add_argument("--processes", type=int, default=2,
                    help="pool size for the parallel telemetry stage "
                         "(0 disables it; default 2)")
    sp.add_argument("--out", metavar="PATH",
                    help="artifact path (default "
                         "benchmarks/results/BENCH_<name>.json)")
    sp.add_argument("--check", metavar="BASELINE",
                    help="compare against a baseline artifact; exit 1 when "
                         "a gated metric leaves its tolerance band "
                         "(failures are phase-attributed via the trace diff)")
    sp.add_argument("--ledger", action=argparse.BooleanOptionalAction,
                    default=True,
                    help="append the run to the run ledger (default on; "
                         "--no-ledger disables)")
    sp.add_argument("--ledger-tier", choices=("local", "committed"),
                    default="local",
                    help="ledger tier to append to (default local; "
                         "'committed' curates a trajectory point into git)")
    sp.add_argument("--sweep-backends", default="auto", metavar="LIST",
                    help="re-run the sequential grid on these backends and "
                         "gate the charged counts bit-exactly against the "
                         "main backend: a comma list, 'all', 'none', or "
                         "'auto' (every available backend except the slow "
                         "mpint validation tier; default)")
    _add_backend_arg(sp)
    _add_trace_args(sp)
    _add_profile_arg(sp)
    sp.set_defaults(func=cmd_bench)

    sp = sub.add_parser(
        "batch", help="many polynomials through one persistent worker pool"
    )
    sp.add_argument("--file", metavar="PATH",
                    help="JSONL input: each line a coefficient array "
                         '(low to high) or {"coeffs": [...]}')
    sp.add_argument("--coeff-sets",
                    help="semicolon-separated coefficient lists, "
                         "e.g. '-2,0,1;-6,1,1'")
    sp.add_argument("--roots-sets",
                    help="semicolon-separated integer root lists "
                         "for demo polynomials, e.g. '-3,0,2;1,4'")
    sp.add_argument("--digits", type=int, default=15,
                    help="output precision in decimal digits (default 15)")
    sp.add_argument("--bits", type=int, default=None,
                    help="output precision in bits (overrides --digits)")
    sp.add_argument("--processes", type=int, default=2,
                    help="worker-pool size (default 2)")
    sp.add_argument("--strategy", choices=("hybrid", "bisection", "newton"),
                    default="hybrid")
    sp.add_argument("--timeout", type=float, default=None,
                    help="seconds to wait per task before retrying it "
                         "elsewhere")
    sp.add_argument("--checkpoint", metavar="PATH",
                    help="streaming JSONL checkpoint: completed results "
                         "are appended as they finish, and a rerun with "
                         "the same file resumes without re-solving")
    sp.add_argument("--fault-exit-after", type=int, default=0,
                    help=argparse.SUPPRESS)  # test hook: SIGKILL mid-batch
    sp.add_argument("--json", action="store_true")
    sp.add_argument("--ledger", action="store_true",
                    help="append this run to the local run ledger "
                         "(see `repro runs`)")
    _add_backend_arg(sp)
    _add_trace_args(sp)
    _add_profile_arg(sp)
    sp.set_defaults(func=cmd_batch)

    sp = sub.add_parser(
        "runs", help="query the append-only cross-run performance ledger"
    )
    runs_sub = sp.add_subparsers(dest="action", required=True)
    lp = runs_sub.add_parser("list", help="list ledger records, newest first")
    lp.add_argument("--command", dest="filter_command", metavar="CMD",
                    help="only records of this command (roots/bench/batch)")
    lp.add_argument("--name", dest="filter_name", metavar="NAME",
                    help="only records with this bench name")
    lp.add_argument("--limit", type=int, default=20,
                    help="most recent N records (default 20)")
    lp.add_argument("--tier", choices=("all", "local", "committed"),
                    default="all")
    lp.add_argument("--json", action="store_true",
                    help="full records as a JSON array")
    lp.set_defaults(func=cmd_runs)
    gp = runs_sub.add_parser("show", help="dump one record as JSON")
    gp.add_argument("run_id", help="run id (unique prefixes allowed)")
    gp.add_argument("--tier", choices=("all", "local", "committed"),
                    default="all")
    gp.set_defaults(func=cmd_runs)

    sp = sub.add_parser(
        "diff",
        help="phase/histogram/worker-lane diff of two runs (ledger run "
             "ids or BENCH_*.json artifact paths)",
    )
    sp.add_argument("run_a", help="baseline: run-id prefix or artifact path")
    sp.add_argument("run_b", help="candidate: run-id prefix or artifact path")
    sp.add_argument("--json", action="store_true")
    sp.set_defaults(func=cmd_diff)

    sp = sub.add_parser(
        "fuzz",
        help="differential fuzzing: every engine must agree bit for bit, "
             "every claim certified by exact Sturm counts",
    )
    sp.add_argument("--seed", type=int, default=11,
                    help="campaign seed (default 11)")
    sp.add_argument("--budget", type=int, default=100,
                    help="number of generated cases (default 100)")
    sp.add_argument("--engines",
                    help="comma-separated engine subset, e.g. "
                         "'hybrid,newton,sturm' (default: all, including "
                         "the process-pool engine)")
    sp.add_argument("--families",
                    help="comma-separated generator-family subset, e.g. "
                         "'cluster,repeated' (default: all)")
    sp.add_argument("--processes", type=int, default=2,
                    help="pool size for the parallel engine (default 2)")
    sp.add_argument("--stop-after", type=int, default=1, metavar="N",
                    help="stop after N failing cases (0 = run the whole "
                         "budget regardless; default 1)")
    sp.add_argument("--no-refine", action="store_true",
                    help="skip the refine_result round-trip checks")
    sp.add_argument("--no-shrink", action="store_true",
                    help="report findings unminimized")
    sp.add_argument("--corpus-dir", metavar="DIR",
                    help="write shrunk failing cases as corpus JSON here "
                         "(e.g. tests/corpus)")
    sp.add_argument("--log", metavar="PATH",
                    help="write a structured JSONL findings log")
    _add_backend_arg(sp)
    sp.set_defaults(func=cmd_fuzz)

    sp = sub.add_parser(
        "serve",
        help="multi-tenant root-finding daemon over one persistent pool "
             "(stdin-JSONL or HTTP JSON; see docs/SERVING.md)",
    )
    front = sp.add_mutually_exclusive_group(required=True)
    front.add_argument("--stdio", action="store_true",
                       help="serve JSON Lines on stdin/stdout")
    front.add_argument("--http", type=int, default=None, metavar="PORT",
                       help="serve HTTP on PORT (0 picks a free port)")
    sp.add_argument("--host", default="127.0.0.1",
                    help="bind address for --http (default 127.0.0.1)")
    sp.add_argument("--digits", type=int, default=15,
                    help="default output precision in decimal digits "
                         "(requests may override with \"bits\")")
    sp.add_argument("--bits", type=int, default=None,
                    help="default output precision in bits")
    sp.add_argument("--processes", type=int, default=2,
                    help="worker-pool size (default 2)")
    sp.add_argument("--strategy", choices=("hybrid", "bisection", "newton"),
                    default="hybrid",
                    help="default interval-solver strategy")
    sp.add_argument("--max-pending", type=int, default=64,
                    help="admission threshold: shed new requests with a "
                         "429-style reply when queue depth reaches this "
                         "(default 64)")
    sp.add_argument("--max-deadline-seconds", type=float, default=None,
                    metavar="S",
                    help="fairness cap on every request's deadline (also "
                         "assigned to requests without one)")
    sp.add_argument("--cache-bytes", type=int, default=None,
                    help="in-memory result-cache budget in bytes "
                         "(default 64 MiB)")
    sp.add_argument("--cache-dir", metavar="DIR", default=None,
                    help="persistent result-cache directory (default: "
                         "$REPRO_CACHE_DIR if set, else memory-only)")
    sp.add_argument("--access-log", metavar="PATH", default=None,
                    help="JSONL per-request timeline log (size-rotated, "
                         "fsynced on shutdown; read with `repro tail`)")
    sp.add_argument("--capture-dir", metavar="DIR", default=None,
                    help="tail-capture directory: slow/shed/error/partial "
                         "requests get a Chrome trace written here")
    sp.add_argument("--slow-threshold-ms", type=float, default=250.0,
                    metavar="MS",
                    help="latency beyond which a request counts as slow "
                         "for tail capture (default 250)")
    sp.add_argument("--ring-size", type=int, default=512,
                    help="in-memory timeline ring size — the SLO window's "
                         "sample bound (default 512)")
    sp.add_argument("--slo-config", metavar="PATH", default=None,
                    help="JSON SLO objectives file (default: built-in "
                         "p99<5s / error-rate<5%% over 5 min)")
    sp.add_argument("--journal", metavar="PATH", default=None,
                    help="durable request journal (WAL): accepted "
                         "requests are recorded before they are "
                         "enqueued, and a restart replays the "
                         "incomplete ones through the result cache "
                         "(see docs/CHAOS.md)")
    sp.add_argument("--fsync-interval", type=int, default=32, metavar="N",
                    help="fsync the journal and access log every N "
                         "lines — a SIGKILL loses at most N records "
                         "per file (default 32; 1 = every line)")
    # test/chaos hooks: die after the Nth journal accept, fail journal
    # writes after N records, SIGKILL pool workers at dispatch indices,
    # and bound each pool task (so injected kills resolve promptly).
    sp.add_argument("--fault-kill-after", type=int, default=0,
                    help=argparse.SUPPRESS)
    sp.add_argument("--fault-journal-errors-after", type=int, default=0,
                    help=argparse.SUPPRESS)
    sp.add_argument("--fault-worker-kill-at", default=None,
                    help=argparse.SUPPRESS)
    sp.add_argument("--fault-task-timeout", type=float, default=None,
                    help=argparse.SUPPRESS)
    _add_backend_arg(sp)
    sp.set_defaults(func=cmd_serve)

    sp = sub.add_parser(
        "loadtest",
        help="replay seeded mixed-degree traffic against a live daemon, "
             "verify bit-for-bit, write a gateable BENCH artifact",
    )
    sp.add_argument("--mode", choices=("stdio", "inprocess", "http"),
                    default="stdio",
                    help="transport: spawn a live `repro serve --stdio` "
                         "subprocess (default), drive the server "
                         "in-process, or POST to --url")
    sp.add_argument("--url", metavar="HOST:PORT",
                    help="target for --mode http")
    sp.add_argument("--requests", type=int, default=1000,
                    help="number of requests to replay (default 1000)")
    sp.add_argument("--seed", type=int, default=11,
                    help="request-stream seed (default 11)")
    sp.add_argument("--degrees", default="2,3,4,5,6,8",
                    help="degree mix, comma-separated (default 2,3,4,5,6,8)")
    sp.add_argument("--duplicate-fraction", type=float, default=0.3,
                    help="fraction of requests repeating an earlier "
                         "polynomial (default 0.3)")
    sp.add_argument("--digits", type=int, default=None,
                    help="output precision in decimal digits")
    sp.add_argument("--bits", type=int, default=16,
                    help="output precision in bits (default 16)")
    sp.add_argument("--processes", type=int, default=2,
                    help="daemon worker-pool size (default 2)")
    sp.add_argument("--concurrency", type=int, default=32,
                    help="max in-flight client requests (default 32)")
    sp.add_argument("--name", default="serve",
                    help="artifact name (default serve)")
    sp.add_argument("--out", metavar="PATH",
                    help="artifact path (default "
                         "benchmarks/results/BENCH_<name>.json)")
    sp.add_argument("--check", metavar="BASELINE",
                    help="compare against a baseline artifact; exit 1 when "
                         "a gated metric leaves its tolerance band")
    sp.add_argument("--access-log", metavar="PATH", default=None,
                    help="forward to the daemon: write per-request "
                         "timelines here (stdio/inprocess modes)")
    sp.add_argument("--capture-dir", metavar="DIR", default=None,
                    help="forward to the daemon: tail-capture Chrome "
                         "traces here (stdio/inprocess modes)")
    sp.add_argument("--slow-threshold-ms", type=float, default=None,
                    metavar="MS",
                    help="forward to the daemon: tail-capture slow "
                         "threshold")
    sp.add_argument("--slo-config", metavar="PATH", default=None,
                    help="JSON SLO objectives for the verdict folded "
                         "into the artifact (default: built-in)")
    sp.set_defaults(func=cmd_loadtest)

    sp = sub.add_parser(
        "chaos",
        help="seeded fault-injection campaign against a live daemon: "
             "kills, corruption, full disks, hostile clients — exit 1 "
             "on any recovery-invariant violation (docs/CHAOS.md)",
    )
    sp.add_argument("--smoke", action="store_true",
                    help="run the small pinned CI schedule instead of "
                         "the full campaign")
    sp.add_argument("--seed", type=int, default=11,
                    help="campaign seed (default 11)")
    sp.add_argument("--plan", metavar="PATH",
                    help="JSON chaos plan file (overrides --smoke/--seed "
                         "schedule selection)")
    sp.add_argument("--workdir", metavar="DIR", default=None,
                    help="campaign state directory — journal, cache, "
                         "access log, daemon stderr (default: a fresh "
                         "temp dir, removed after a clean pass)")
    sp.add_argument("--out", metavar="PATH", default=None,
                    help="campaign report path (default "
                         "<workdir>/chaos_report.json)")
    sp.add_argument("--keep", action="store_true",
                    help="keep the workdir even when the campaign passes")
    sp.set_defaults(func=cmd_chaos)

    sp = sub.add_parser(
        "tail",
        help="failures-first table of the slowest/shed/partial requests "
             "from a daemon access log (see docs/SERVING.md)",
    )
    sp.add_argument("path", metavar="ACCESS_LOG",
                    help="JSONL access log (or ring dump) written by "
                         "`repro serve --access-log`")
    sp.add_argument("--limit", type=int, default=20,
                    help="rows to show (default 20)")
    sp.add_argument("--json", action="store_true",
                    help="emit ranked timelines as JSONL instead of a "
                         "table")
    sp.set_defaults(func=cmd_tail)

    return ap


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
