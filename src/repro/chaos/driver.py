"""Execute a :class:`~repro.chaos.plan.ChaosPlan` against a real daemon.

The driver is an end-to-end availability harness: it spawns an actual
``repro serve --http`` subprocess (own process group, own journal and
cache directory inside a campaign workdir), plays seeded traffic at it
through :class:`~repro.serve.loadtest.HttpClient`, injects the plan's
faults — worker SIGKILL via the executor's own
:class:`~repro.verify.faults.FaultPlan`, daemon SIGKILL via the
journal's ``kill_after_accepts`` hook, on-disk cache corruption,
injected ENOSPC, hostile clients — and asserts the recovery
invariants:

* **exactly once** — every request the daemon *accepted* (journaled)
  yields exactly one well-formed response: live before the fault, or a
  journal-replayed cache hit after the restart, never two different
  answers (the :func:`~repro.resilience.checkpoint.poly_key` content
  address dedups);
* **never wrong** — every ``ok`` answer is bit-exact against the
  sequential :class:`~repro.core.rootfinder.RealRootFinder`, and a
  seeded sample is independently certified with Sturm counts
  (:func:`~repro.core.certify.certify_roots`); a corrupted cache entry
  is quarantined, never served;
* **counters reconcile** — injected faults show up in the executor's
  retry/fallback/timeout counters and the journal/cache tallies agree
  with what the driver did;
* **readiness tells the truth** — ``/readyz`` is ready exactly when
  the daemon can serve (and unready exactly when the breaker is open
  or the pool is dead).

Every check lands in a :class:`ChaosReport` (JSON-serializable; the
``repro chaos`` CLI writes it as the CI artifact) with enough detail
to replay the failure: the plan, the seed, and per-phase check
verdicts.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import signal
import socket
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.chaos.plan import ChaosPhase, ChaosPlan
from repro.core.certify import CertificationError, certify_roots
from repro.poly.dense import IntPoly
from repro.resilience.checkpoint import poly_key
from repro.serve.journal import incomplete_entries, read_journal
from repro.serve.loadtest import HttpClient, expected_answers, generate_requests

__all__ = ["ChaosReport", "PhaseResult", "Daemon", "run_campaign"]

READY_TIMEOUT = 60.0
REQUEST_TIMEOUT = 120.0


# -- report ------------------------------------------------------------------

@dataclass
class PhaseResult:
    """Verdicts of one executed phase: ``checks`` is a list of
    ``{"name", "ok", "detail"}`` rows, and the phase passes only when
    every row does."""

    index: int
    kind: str
    checks: list[dict[str, Any]] = field(default_factory=list)
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(c["ok"] for c in self.checks)

    def check(self, name: str, ok: bool, detail: str = "") -> bool:
        """Record one invariant verdict (returns ``ok`` for chaining)."""
        self.checks.append({"name": name, "ok": bool(ok),
                            "detail": detail})
        return ok

    def to_dict(self) -> dict[str, Any]:
        return {"index": self.index, "kind": self.kind, "ok": self.ok,
                "checks": list(self.checks), "details": dict(self.details)}


@dataclass
class ChaosReport:
    """The whole campaign's outcome (the ``repro chaos`` artifact)."""

    plan: ChaosPlan
    workdir: str
    phases: list[PhaseResult] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return all(ph.ok for ph in self.phases)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": "repro.chaos-report/1",
            "ok": self.ok,
            "seed": self.plan.seed,
            "workdir": self.workdir,
            "wall_seconds": self.wall_seconds,
            "plan": self.plan.to_dict(),
            "phases": [ph.to_dict() for ph in self.phases],
        }

    def summary(self) -> str:
        """One line per phase plus the verdict — the CLI's output."""
        lines = []
        for ph in self.phases:
            bad = [c for c in ph.checks if not c["ok"]]
            status = "ok" if ph.ok else "FAILED"
            line = (f"  phase {ph.index} {ph.kind:<16} {status:<6} "
                    f"({len(ph.checks) - len(bad)}/{len(ph.checks)} checks)")
            lines.append(line)
            for c in bad:
                lines.append(f"    FAILED {c['name']}: {c['detail']}")
        verdict = "PASSED" if self.ok else "FAILED"
        lines.append(f"chaos campaign {verdict} "
                     f"(seed {self.plan.seed}, {self.wall_seconds:.1f}s)")
        return "\n".join(lines)


# -- daemon management -------------------------------------------------------

def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


class Daemon:
    """One ``repro serve --http`` subprocess in its own process group.

    The process group matters twice: a SIGKILL'd daemon orphans its
    pool workers (they are reparented, not reaped), and
    :meth:`cleanup` kills the whole group so a chaos campaign never
    leaks worker processes into CI.
    """

    def __init__(self, proc: Any, port: int, stderr_path: str):
        self.proc = proc
        self.port = port
        self.stderr_path = stderr_path

    @classmethod
    async def start(cls, plan: ChaosPlan, workdir: str, *,
                    extra: Sequence[str] = (),
                    name: str = "daemon") -> "Daemon":
        """Spawn the daemon on a fresh port with the campaign's journal
        + cache dir, and wait until ``/readyz`` says ready (which, on a
        restart, means fsck and journal replay have finished)."""
        port = _free_port()
        stderr_path = os.path.join(workdir, f"{name}.stderr")
        argv = [
            sys.executable, "-m", "repro", "serve",
            "--http", str(port), "--host", "127.0.0.1",
            "--bits", str(plan.mu),
            "--processes", str(plan.processes),
            "--max-pending", "1024",
            "--cache-dir", os.path.join(workdir, "cache"),
            "--journal", os.path.join(workdir, "journal.jsonl"),
            "--access-log", os.path.join(workdir, "access.jsonl"),
            "--fsync-interval", "1",
            *extra,
        ]
        stderr_fh = open(stderr_path, "ab")
        try:
            proc = await asyncio.create_subprocess_exec(
                *argv, stdout=asyncio.subprocess.DEVNULL,
                stderr=stderr_fh, start_new_session=True,
            )
        finally:
            stderr_fh.close()
        daemon = cls(proc, port, stderr_path)
        await daemon.wait_ready()
        return daemon

    def client(self) -> HttpClient:
        return HttpClient("127.0.0.1", self.port)

    async def wait_ready(self, timeout: float = READY_TIMEOUT) -> None:
        client = self.client()
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.proc.returncode is not None:
                raise RuntimeError(
                    f"daemon exited rc={self.proc.returncode} before ready "
                    f"(stderr: {self.stderr_path})")
            try:
                body = await client.get_json("/readyz")
                if body.get("status") == "ready":
                    return
            except (ConnectionError, OSError, ValueError):
                pass
            await asyncio.sleep(0.05)
        raise RuntimeError(
            f"daemon not ready after {timeout}s (stderr: {self.stderr_path})")

    async def wait_exit(self, timeout: float = 30.0) -> int:
        """Wait for the process to die (e.g. a scheduled self-kill);
        returns the exit code."""
        await asyncio.wait_for(self.proc.wait(), timeout)
        return self.proc.returncode

    def cleanup(self) -> None:
        """SIGKILL the whole process group (reaps orphaned workers)."""
        try:
            os.killpg(self.proc.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError, OSError):
            pass

    async def stop(self) -> None:
        """Graceful shutdown (SIGINT; escalates to group SIGKILL)."""
        if self.proc.returncode is None:
            try:
                self.proc.send_signal(signal.SIGINT)
            except ProcessLookupError:
                pass
            try:
                await asyncio.wait_for(self.proc.wait(), 15.0)
            except asyncio.TimeoutError:
                pass
        self.cleanup()
        # Reap (wait() is idempotent once the process is dead).
        try:
            await asyncio.wait_for(self.proc.wait(), 5.0)
        except asyncio.TimeoutError:  # pragma: no cover - kill -9'd group
            pass


# -- traffic helpers ---------------------------------------------------------

async def _send_all(client: HttpClient, reqs: Sequence[dict[str, Any]],
                    concurrency: int = 8) -> list[dict[str, Any]]:
    """Play ``reqs`` concurrently; transport failures become
    ``status="error", code=0`` rows instead of raising."""
    sem = asyncio.Semaphore(concurrency)
    out: list[dict[str, Any]] = [{} for _ in reqs]

    async def one(i: int, obj: dict[str, Any]) -> None:
        async with sem:
            try:
                out[i] = await asyncio.wait_for(client.request(obj),
                                                REQUEST_TIMEOUT)
            except (ConnectionError, OSError, ValueError,
                    asyncio.TimeoutError) as e:
                out[i] = {"status": "error", "code": 0,
                          "error": f"{type(e).__name__}: {e}"}

    await asyncio.gather(*(one(i, r) for i, r in enumerate(reqs)))
    return out


async def _send_seq(client: HttpClient,
                    reqs: Sequence[dict[str, Any]]) -> list[dict[str, Any]]:
    """Play ``reqs`` one at a time (deterministic accept order — what
    the daemon-kill phase needs to pin *which* request dies)."""
    out = []
    for r in reqs:
        try:
            out.append(await asyncio.wait_for(client.request(r),
                                              REQUEST_TIMEOUT))
        except (ConnectionError, OSError, ValueError,
                asyncio.TimeoutError) as e:
            out.append({"status": "error", "code": 0,
                        "error": f"{type(e).__name__}: {e}"})
    return out


def _req_key(r: dict[str, Any]) -> str:
    return poly_key(r["coeffs"], r["bits"], r.get("strategy", "hybrid"))


def _bit_exact(reqs: Sequence[dict[str, Any]],
               resps: Sequence[dict[str, Any]],
               expected: dict[str, list[str]]) -> list[str]:
    """Mismatch descriptions for every non-ok or wrong-roots response
    (empty = every request answered correctly)."""
    bad = []
    for r, resp in zip(reqs, resps):
        if resp.get("status") != "ok":
            bad.append(f"id {r['id']}: status={resp.get('status')} "
                       f"error={resp.get('error', '')!r}")
        elif resp.get("scaled") != expected[_req_key(r)]:
            bad.append(f"id {r['id']}: WRONG ROOTS {resp.get('scaled')} "
                       f"!= {expected[_req_key(r)]}")
    return bad


def _certify_sample(reqs: Sequence[dict[str, Any]],
                    resps: Sequence[dict[str, Any]],
                    rng: random.Random, k: int = 3) -> list[str]:
    """Independently certify up to ``k`` ok answers with exact Sturm
    counts — the no-wrong-roots spot-check that does not trust the
    driver's own ground truth."""
    oks = [(r, resp) for r, resp in zip(reqs, resps)
           if resp.get("status") == "ok"]
    errors = []
    for r, resp in rng.sample(oks, min(k, len(oks))):
        try:
            certify_roots(IntPoly(r["coeffs"]),
                          [int(s) for s in resp["scaled"]],
                          None, r["bits"], partial=True)
        except (CertificationError, ValueError) as e:
            errors.append(f"id {r['id']}: {e}")
    return errors


def _metric(snapshot: dict[str, Any], name: str) -> float:
    m = snapshot.get("metrics", {}).get(name)
    if isinstance(m, dict):
        try:
            return float(m.get("value", 0))
        except (TypeError, ValueError):
            return 0.0
    return 0.0


# -- phases ------------------------------------------------------------------

class _Campaign:
    """Mutable campaign state threaded through the phases."""

    def __init__(self, plan: ChaosPlan, workdir: str):
        self.plan = plan
        self.workdir = workdir
        self.cache_dir = os.path.join(workdir, "cache")
        self.journal_path = os.path.join(workdir, "journal.jsonl")
        #: every request played so far, by poly_key — how the
        #: cache-corruption phase maps a victim file back to traffic.
        self.played: dict[str, dict[str, Any]] = {}
        #: merged ground truth across phases.
        self.expected: dict[str, list[str]] = {}

    def stream(self, phase_index: int, phase: ChaosPhase, *,
               duplicate_fraction: float | None = None
               ) -> list[dict[str, Any]]:
        """The phase's pinned request slice, folded into the campaign
        ground truth."""
        frac = (self.plan.duplicate_fraction
                if duplicate_fraction is None else duplicate_fraction)
        reqs = generate_requests(
            phase.requests, self.plan.phase_seed(phase_index),
            self.plan.degrees, frac, self.plan.mu,
        )
        self.expected.update(expected_answers(reqs))
        for r in reqs:
            self.played[_req_key(r)] = r
        return reqs


async def _phase_baseline(c: _Campaign, i: int, phase: ChaosPhase,
                          result: PhaseResult) -> None:
    reqs = c.stream(i, phase)
    daemon = await Daemon.start(c.plan, c.workdir, name=f"p{i}-baseline")
    try:
        client = daemon.client()
        resps = await _send_all(client, reqs)
        bad = _bit_exact(reqs, resps, c.expected)
        result.check("all answered bit-exact", not bad, "; ".join(bad[:4]))
        rng = random.Random(c.plan.phase_seed(i) ^ 0x5EED)
        cert = _certify_sample(reqs, resps, rng)
        result.check("sturm certification", not cert, "; ".join(cert))
        body = await client.get_json("/readyz")
        result.check("readyz ready", body.get("status") == "ready",
                     json.dumps(body.get("workers", {})))
    finally:
        await daemon.stop()


async def _phase_worker_kill(c: _Campaign, i: int, phase: ChaosPhase,
                             result: PhaseResult) -> None:
    # Unique polynomials only: a cache hit never dispatches to the
    # pool, and this phase is about pool dispatch.
    reqs = c.stream(i, phase, duplicate_fraction=0.0)
    kill_at = ",".join(str(x) for x in phase.params.get("kill_at", [0]))
    timeout = float(phase.params.get("task_timeout", 1.0))
    daemon = await Daemon.start(
        c.plan, c.workdir, name=f"p{i}-worker-kill",
        extra=["--fault-worker-kill-at", kill_at,
               "--fault-task-timeout", str(timeout)])
    try:
        client = daemon.client()
        resps = await _send_all(client, reqs, concurrency=2)
        bad = _bit_exact(reqs, resps, c.expected)
        result.check("correct despite worker kills", not bad,
                     "; ".join(bad[:4]))
        snap = await client.metrics()
        failures = (_metric(snap, "executor.worker_failures")
                    + _metric(snap, "executor.task_timeouts"))
        result.check("fault was observed", failures >= 1,
                     f"failures+timeouts={failures}")
        recovered = (_metric(snap, "executor.retries")
                     + _metric(snap, "executor.fallbacks")
                     + _metric(snap, "executor.breaker_open"))
        result.check("retry/fallback reconciles", recovered >= 1,
                     f"retries+fallbacks+breaker_open={recovered}")
        # Readiness must tell the truth: unready exactly when the
        # breaker is (still) open.
        body = await client.get_json("/readyz")
        breaker_open = body.get("breaker") == "open"
        consistent = (body.get("status") == "unready") == breaker_open
        result.check("readyz consistent with breaker", consistent,
                     f"status={body.get('status')} "
                     f"breaker={body.get('breaker')}")
    finally:
        await daemon.stop()


async def _phase_daemon_kill(c: _Campaign, i: int, phase: ChaosPhase,
                             result: PhaseResult) -> None:
    reqs = c.stream(i, phase)
    kill_after = int(phase.params.get("kill_after",
                                      max(1, phase.requests // 2)))
    daemon = await Daemon.start(
        c.plan, c.workdir, name=f"p{i}-daemon-kill",
        extra=["--fault-kill-after", str(kill_after)])
    try:
        client = daemon.client()
        # Sequential: accept order is the request order, so exactly
        # the requests from the kill_after-th accept onward are lost.
        resps = await _send_seq(client, reqs)
        rc = await daemon.wait_exit()
        result.check("daemon died on schedule", rc != 0, f"rc={rc}")
    finally:
        daemon.cleanup()

    # What does the WAL say was accepted-but-unanswered?  (Read before
    # the restarted daemon compacts the file.)
    records = read_journal(c.journal_path)
    accepted = {str(r.get("key")) for r in records if r.get("ev") == "accept"}
    lost = incomplete_entries(records)
    result.check("journal recorded the loss",
                 len(lost) >= 1 and bool(accepted),
                 f"accepts={len(accepted)} incomplete={len(lost)}")
    result.details["lost_keys"] = [e.key for e in lost]

    daemon = await Daemon.start(c.plan, c.workdir, name=f"p{i}-restarted")
    try:
        client = daemon.client()
        body = await client.get_json("/readyz")
        journal_h = body.get("journal", {})
        result.check("restart replayed the journal",
                     journal_h.get("recovered") == len(lost)
                     and (journal_h.get("replayed", 0)
                          + journal_h.get("replay_cached", 0)) == len(lost),
                     json.dumps(journal_h))
        # Exactly once: replay every request; anything the daemon ever
        # accepted must come back as a cache hit (the original result),
        # and everything must be bit-exact.
        resps2 = await _send_seq(client, reqs)
        bad = _bit_exact(reqs, resps2, c.expected)
        result.check("all answered bit-exact after restart", not bad,
                     "; ".join(bad[:4]))
        not_cached = [r["id"] for r, resp in zip(reqs, resps2)
                      if _req_key(r) in accepted
                      and not resp.get("cached")]
        result.check("accepted requests served exactly once (cache hit)",
                     not not_cached, f"re-solved ids: {not_cached}")
        # And a replayed answer equals the live answer where this very
        # request was answered before the kill.
        diverged = [r["id"] for r, a, b in zip(reqs, resps, resps2)
                    if a.get("status") == "ok"
                    and a.get("scaled") != b.get("scaled")]
        result.check("replayed == live answers", not diverged,
                     f"diverged ids: {diverged}")
    finally:
        await daemon.stop()


def _corrupt_cache_files(cache_dir: str, spec: dict[str, int],
                         rng: random.Random,
                         played: dict[str, dict[str, Any]]
                         ) -> dict[str, list[str]]:
    """Damage disk-cache entries three seeded ways; returns
    ``{mode: [key, ...]}`` for the victims actually damaged."""
    candidates = []
    for dirpath, _dirs, files in os.walk(cache_dir):
        for name in sorted(files):
            if name.endswith(".json") and name[:-5] in played:
                candidates.append((name[:-5], os.path.join(dirpath, name)))
    candidates.sort()
    rng.shuffle(candidates)
    victims: dict[str, list[str]] = {"truncate": [], "garbage": [],
                                     "tamper": []}
    it = iter(candidates)
    for mode in ("truncate", "garbage", "tamper"):
        for _ in range(int(spec.get(mode, 0))):
            try:
                key, path = next(it)
            except StopIteration:
                return victims
            if mode == "truncate":
                size = os.path.getsize(path)
                with open(path, "r+b") as fh:
                    fh.truncate(max(1, size // 2))
            elif mode == "garbage":
                with open(path, "wb") as fh:
                    fh.write(b'{"schema": "repro.serve-cache/2", \x00\xff')
            else:  # tamper: valid JSON, wrong digit — checksum's job
                with open(path, encoding="utf-8") as fh:
                    data = json.load(fh)
                s = data["scaled"][0]
                flipped = ("-" + s) if not s.startswith("-") else s[1:]
                data["scaled"][0] = flipped if s not in ("0",) else "1"
                with open(path, "w", encoding="utf-8") as fh:
                    json.dump(data, fh)
            victims[mode].append(key)
    return victims


async def _phase_cache_corrupt(c: _Campaign, i: int, phase: ChaosPhase,
                               result: PhaseResult) -> None:
    spec = dict(phase.params.get("corrupt",
                                 {"truncate": 1, "garbage": 1, "tamper": 1}))
    rng = random.Random(c.plan.phase_seed(i) ^ 0xD15C)
    victims = _corrupt_cache_files(c.cache_dir, spec, rng, c.played)
    n_damaged = sum(len(v) for v in victims.values())
    result.details["victims"] = victims
    result.check("had entries to corrupt", n_damaged >= 1,
                 f"damaged {n_damaged} (wanted {sum(spec.values())}; "
                 f"earlier phases must populate the disk cache)")

    reqs = c.stream(i, phase)
    daemon = await Daemon.start(c.plan, c.workdir, name=f"p{i}-fsck")
    try:
        client = daemon.client()
        body = await client.get_json("/readyz")
        fsck = body.get("cache", {}).get("fsck", {})
        result.check("fsck quarantined every damaged entry",
                     fsck.get("quarantined") == n_damaged,
                     json.dumps(fsck))
        # The damaged keys re-requested: must be *solved* (cached=false
        # proves the corrupt bytes were not served) and bit-exact.
        victim_reqs = [c.played[k] for ks in victims.values() for k in ks]
        vresps = await _send_all(client, victim_reqs)
        bad = _bit_exact(victim_reqs, vresps, c.expected)
        result.check("corrupted keys re-solved bit-exact", not bad,
                     "; ".join(bad[:4]))
        served_from_cache = [r["id"] for r, resp in
                             zip(victim_reqs, vresps) if resp.get("cached")]
        result.check("no corrupt entry ever served", not served_from_cache,
                     f"cache-hit ids: {served_from_cache}")
        # Fresh traffic still healthy.
        resps = await _send_all(client, reqs)
        bad = _bit_exact(reqs, resps, c.expected)
        result.check("fresh traffic bit-exact", not bad, "; ".join(bad[:4]))
    finally:
        await daemon.stop()


async def _phase_journal_enospc(c: _Campaign, i: int, phase: ChaosPhase,
                                result: PhaseResult) -> None:
    reqs = c.stream(i, phase)
    fail_after = int(phase.params.get("fail_after", 3))
    daemon = await Daemon.start(
        c.plan, c.workdir, name=f"p{i}-enospc",
        extra=["--fault-journal-errors-after", str(fail_after)])
    try:
        client = daemon.client()
        resps = await _send_all(client, reqs)
        bad = _bit_exact(reqs, resps, c.expected)
        result.check("serving survives full disk", not bad,
                     "; ".join(bad[:4]))
        body = await client.get_json("/readyz")
        journal_h = body.get("journal", {})
        result.check("journal suspended, not fatal",
                     journal_h.get("broken") is True
                     and journal_h.get("write_errors", 0) == 1
                     and body.get("status") == "ready",
                     json.dumps(journal_h))
    finally:
        await daemon.stop()


async def _raw(host: str, port: int, payload: bytes, *,
               chunk: int = 0, delay: float = 0.0,
               read_reply: bool = True) -> bytes:
    """One raw TCP exchange — optionally dribbled ``chunk`` bytes at a
    time (slow loris) or cut short (torn upload)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        if chunk > 0:
            for off in range(0, len(payload), chunk):
                writer.write(payload[off:off + chunk])
                await writer.drain()
                await asyncio.sleep(delay)
        else:
            writer.write(payload)
            await writer.drain()
        if not read_reply:
            return b""
        return await asyncio.wait_for(reader.read(), 30.0)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _phase_hostile_clients(c: _Campaign, i: int, phase: ChaosPhase,
                                 result: PhaseResult) -> None:
    reqs = c.stream(i, phase)
    daemon = await Daemon.start(c.plan, c.workdir, name=f"p{i}-hostile")
    host, port = "127.0.0.1", daemon.port
    try:
        # Malformed JSON must get a structured 400-class reply.
        body = b'{"coeffs": [1, 2,'
        raw = await _raw(host, port,
                         b"POST /solve HTTP/1.1\r\nHost: x\r\n"
                         b"Content-Type: application/json\r\n"
                         b"Content-Length: " + str(len(body)).encode()
                         + b"\r\nConnection: close\r\n\r\n" + body)
        try:
            resp = json.loads(raw.partition(b"\r\n\r\n")[2])
            shaped = resp.get("status") == "error" and "request_id" in resp
        except ValueError:
            shaped = False
        result.check("malformed JSON gets structured error", shaped,
                     raw[:120].decode("latin-1"))
        # Torn upload: promised 400 bytes, sent a few, hung up.
        await _raw(host, port,
                   b"POST /solve HTTP/1.1\r\nHost: x\r\n"
                   b"Content-Length: 400\r\n\r\n{\"coe",
                   read_reply=False)
        # Slow loris: a whole valid request, two bytes at a time.
        good = json.dumps(reqs[0]).encode()
        raw = await _raw(host, port,
                         b"POST /solve HTTP/1.1\r\nHost: x\r\n"
                         b"Content-Type: application/json\r\n"
                         b"Content-Length: " + str(len(good)).encode()
                         + b"\r\nConnection: close\r\n\r\n" + good,
                         chunk=64, delay=0.01)
        try:
            resp = json.loads(raw.partition(b"\r\n\r\n")[2])
            slow_ok = (resp.get("status") == "ok" and resp.get("scaled")
                       == c.expected[_req_key(reqs[0])])
        except ValueError:
            slow_ok = False
        result.check("slow client still answered exactly", slow_ok,
                     raw[:120].decode("latin-1"))
        # Ordinary traffic is unharmed by any of the above.
        client = daemon.client()
        resps = await _send_all(client, reqs)
        bad = _bit_exact(reqs, resps, c.expected)
        result.check("healthy traffic unaffected", not bad,
                     "; ".join(bad[:4]))
        rz = await client.get_json("/readyz")
        result.check("readyz ready", rz.get("status") == "ready",
                     str(rz.get("status")))
    finally:
        await daemon.stop()


_PHASES = {
    "baseline": _phase_baseline,
    "worker_kill": _phase_worker_kill,
    "daemon_kill": _phase_daemon_kill,
    "cache_corrupt": _phase_cache_corrupt,
    "journal_enospc": _phase_journal_enospc,
    "hostile_clients": _phase_hostile_clients,
}


# -- the campaign ------------------------------------------------------------

async def _run_campaign(plan: ChaosPlan, workdir: str,
                        echo: Any = None) -> ChaosReport:
    c = _Campaign(plan, workdir)
    report = ChaosReport(plan=plan, workdir=workdir)
    t0 = time.monotonic()
    for i, phase in enumerate(plan.phases):
        if echo:
            echo(f"chaos: phase {i} {phase.kind} "
                 f"({phase.requests} requests)...")
        result = PhaseResult(index=i, kind=phase.kind)
        try:
            await _PHASES[phase.kind](c, i, phase, result)
        except Exception as e:  # a crashed phase is a failed phase
            result.check("phase completed", False,
                         f"{type(e).__name__}: {e}")
        report.phases.append(result)
        if echo:
            echo(f"chaos: phase {i} {phase.kind} "
                 f"{'ok' if result.ok else 'FAILED'}")
    report.wall_seconds = time.monotonic() - t0
    return report


def run_campaign(plan: ChaosPlan, workdir: str,
                 echo: Any = None) -> ChaosReport:
    """Execute ``plan`` with campaign state (journal, cache, logs,
    daemon stderr) under ``workdir``; returns the full report.

    ``echo`` is an optional ``print``-like progress callback."""
    os.makedirs(workdir, exist_ok=True)
    return asyncio.run(_run_campaign(plan, workdir, echo))
