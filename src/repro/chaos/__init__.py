"""End-to-end chaos harness for the serve daemon (``repro chaos``).

Declarative, seeded fault schedules (:mod:`repro.chaos.plan`) executed
against a real ``repro serve --http`` subprocess by
:mod:`repro.chaos.driver`, asserting the recovery invariants the
crash-safety stack promises: exactly-once results across daemon kills
(journal replay through the content-addressed cache), quarantine of
corrupt cache entries, survival of full-disk journaling, and truthful
``/readyz`` transitions.  See docs/CHAOS.md.
"""

from repro.chaos.driver import ChaosReport, Daemon, PhaseResult, run_campaign
from repro.chaos.plan import (
    PHASE_KINDS,
    ChaosPhase,
    ChaosPlan,
    full_plan,
    smoke_plan,
)

__all__ = [
    "ChaosPhase",
    "ChaosPlan",
    "ChaosReport",
    "Daemon",
    "PhaseResult",
    "PHASE_KINDS",
    "full_plan",
    "run_campaign",
    "smoke_plan",
]
