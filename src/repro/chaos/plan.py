"""Declarative, seeded fault schedules for the chaos campaign.

A :class:`ChaosPlan` is the whole campaign as data: the request-stream
parameters (seed, degree mix, precision — the same knobs as
``repro loadtest``) plus an ordered list of :class:`ChaosPhase` steps,
each naming one fault kind and its parameters.  The driver
(:mod:`repro.chaos.driver`) executes the phases in order against a
real ``repro serve --http`` subprocess; everything the schedule does —
which polynomial stream is played, which accept index SIGKILLs the
daemon, which cache files are corrupted how — derives from the plan's
seed, so a failing campaign replays exactly from its report.

The fault vocabulary extends the executor-level
:class:`repro.verify.faults.FaultPlan` (worker-kill-at-dispatch-index
is reused verbatim, wired through a hidden serve flag) with the
process- and disk-level faults only an end-to-end harness can inject:

========================  ===================================================
kind                      what the driver does
========================  ===================================================
``baseline``              plain traffic; every answer must be bit-exact
``worker_kill``           SIGKILL a pool worker mid-solve on chosen dispatch
                          indices (``FaultPlan.kill_at`` inside the daemon)
``daemon_kill``           SIGKILL the *daemon* right after its Nth journal
                          accept, then restart it on the same journal +
                          cache dir and require replayed, bit-exact results
``cache_corrupt``         truncate / garbage / tamper disk-cache entries
                          while the daemon is down; restart must quarantine
                          every one of them and never serve corrupt roots
``journal_enospc``        journal writes start failing (injected ENOSPC)
                          after N records; serving must continue
``hostile_clients``       malformed JSON, torn uploads, and byte-at-a-time
                          slow-loris requests; the daemon must answer the
                          well-formed traffic around them
========================  ===================================================

Phases are validated at construction (:data:`PHASE_KINDS`), and the
plan round-trips through JSON (``to_dict`` / ``from_dict``) so a
campaign can be pinned in a file and replayed byte-identically in CI
(``repro chaos --plan``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = [
    "ChaosPhase",
    "ChaosPlan",
    "PHASE_KINDS",
    "smoke_plan",
    "full_plan",
]

#: Every fault kind the driver knows how to execute.
PHASE_KINDS = (
    "baseline",
    "worker_kill",
    "daemon_kill",
    "cache_corrupt",
    "journal_enospc",
    "hostile_clients",
)


@dataclass(frozen=True)
class ChaosPhase:
    """One step of the campaign: a fault kind plus its parameters.

    ``requests`` is the number of solve requests played during the
    phase; ``params`` carries the kind-specific knobs (see each
    ``_phase_*`` function in :mod:`repro.chaos.driver` for the
    vocabulary, e.g. ``kill_after`` for ``daemon_kill`` or
    ``corrupt`` — ``{"truncate": n, "garbage": n, "tamper": n}`` — for
    ``cache_corrupt``).
    """

    kind: str
    requests: int = 8
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in PHASE_KINDS:
            raise ValueError(
                f"unknown phase kind {self.kind!r} "
                f"(known: {', '.join(PHASE_KINDS)})"
            )
        if self.requests < 0:
            raise ValueError("requests must be >= 0")
        object.__setattr__(self, "params", dict(self.params))

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "requests": self.requests,
                "params": dict(self.params)}

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "ChaosPhase":
        if not isinstance(d, Mapping) or "kind" not in d:
            raise ValueError(f"not a phase object: {d!r}")
        return cls(kind=str(d["kind"]),
                   requests=int(d.get("requests", 8)),
                   params=dict(d.get("params", {})))


@dataclass(frozen=True)
class ChaosPlan:
    """The whole campaign as data (see the module docstring).

    Workload knobs mirror ``repro loadtest``: one ``(seed, degrees,
    duplicate_fraction, mu)`` tuple pins the polynomial stream, and
    each phase draws its slice from a per-phase sub-seed
    (``seed * 1000 + phase_index``), so reordering phases does not
    silently change which polynomials a later phase plays.
    """

    seed: int = 11
    mu: int = 16
    degrees: tuple[int, ...] = (2, 3, 4, 5)
    duplicate_fraction: float = 0.25
    processes: int = 2
    phases: tuple[ChaosPhase, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "degrees", tuple(self.degrees))
        object.__setattr__(self, "phases", tuple(self.phases))
        if not self.degrees or any(d < 1 for d in self.degrees):
            raise ValueError("degrees must be nonempty and >= 1")
        if not 0.0 <= self.duplicate_fraction < 1.0:
            raise ValueError("duplicate_fraction must be in [0, 1)")
        if self.mu < 1 or self.processes < 1:
            raise ValueError("mu and processes must be >= 1")

    def phase_seed(self, index: int) -> int:
        """The request-stream seed for phase ``index``."""
        return self.seed * 1000 + index

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": "repro.chaos-plan/1",
            "seed": self.seed,
            "mu": self.mu,
            "degrees": list(self.degrees),
            "duplicate_fraction": self.duplicate_fraction,
            "processes": self.processes,
            "phases": [ph.to_dict() for ph in self.phases],
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "ChaosPlan":
        if not isinstance(d, Mapping):
            raise ValueError("plan must be a JSON object")
        return cls(
            seed=int(d.get("seed", 11)),
            mu=int(d.get("mu", 16)),
            degrees=tuple(int(x) for x in d.get("degrees", (2, 3, 4, 5))),
            duplicate_fraction=float(d.get("duplicate_fraction", 0.25)),
            processes=int(d.get("processes", 2)),
            phases=tuple(ChaosPhase.from_dict(p)
                         for p in d.get("phases", ())),
        )


def smoke_plan(seed: int = 11) -> ChaosPlan:
    """The pinned CI gate: one small pass over every fault kind.

    Sized for minutes, not hours — a handful of low-degree requests per
    phase, one fault occurrence each — while still exercising every
    recovery path end-to-end: worker kill + retry, daemon kill +
    journal replay, cache quarantine, ENOSPC journaling suspension, and
    hostile clients.
    """
    return ChaosPlan(
        seed=seed,
        mu=16,
        degrees=(2, 3, 4),
        duplicate_fraction=0.25,
        processes=2,
        phases=(
            ChaosPhase("baseline", requests=8),
            ChaosPhase("worker_kill", requests=3,
                       params={"kill_at": [0], "task_timeout": 1.0}),
            ChaosPhase("daemon_kill", requests=6,
                       params={"kill_after": 4}),
            ChaosPhase("cache_corrupt", requests=6,
                       params={"corrupt": {"truncate": 1, "garbage": 1,
                                           "tamper": 1}}),
            ChaosPhase("journal_enospc", requests=5,
                       params={"fail_after": 3}),
            ChaosPhase("hostile_clients", requests=4),
        ),
    )


def full_plan(seed: int = 11) -> ChaosPlan:
    """A heavier campaign for local soak runs: more traffic per phase,
    repeated daemon kills, and a larger corruption batch."""
    return ChaosPlan(
        seed=seed,
        mu=16,
        degrees=(2, 3, 4, 5, 6),
        duplicate_fraction=0.3,
        processes=2,
        phases=(
            ChaosPhase("baseline", requests=32),
            ChaosPhase("worker_kill", requests=6,
                       params={"kill_at": [0], "task_timeout": 1.0}),
            ChaosPhase("daemon_kill", requests=12,
                       params={"kill_after": 5}),
            ChaosPhase("daemon_kill", requests=12,
                       params={"kill_after": 2}),
            ChaosPhase("cache_corrupt", requests=12,
                       params={"corrupt": {"truncate": 2, "garbage": 2,
                                           "tamper": 2}}),
            ChaosPhase("journal_enospc", requests=10,
                       params={"fail_after": 4}),
            ChaosPhase("hostile_clients", requests=8),
            ChaosPhase("baseline", requests=16),
        ),
    )
