"""Per-task retry policy with exponential backoff.

The executor resubmits a failed/timed-out/killed task to a fresh
worker up to ``max_retries`` times before degrading that task to the
parent process (per-node sequential fallback — see
docs/RESILIENCE.md).  The backoff schedule is deterministic (no
jitter): retries are scheduled, not slept, so the dispatch loop keeps
servicing other completions while a backoff elapses, and tests can
assert exact retry counts.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to resubmit a failed task, and how long to wait.

    ``delay(attempt)`` is the pause before resubmitting after failed
    attempt number ``attempt`` (1-based):
    ``min(backoff_max, backoff_base * backoff_factor**(attempt - 1))``.
    ``max_retries=0`` disables retries entirely (a failed task degrades
    straight to the parent process).
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.backoff_max < self.backoff_base:
            raise ValueError("backoff_max must be >= backoff_base")

    def delay(self, attempt: int) -> float:
        """Backoff before the resubmission that follows failed attempt
        ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )
