"""Resilience layer: budgets, retries, circuit breaking, checkpoints.

The north star is a service shape, and a service cannot let one slow or
dead worker throw away a whole request, nor let a pathological input
(Wilkinson-style clusters — see Sagraloff's adaptive-precision
analysis, arXiv:1011.0344) hold a request slot forever.  This package
holds the four pieces the executor and the finders thread through:

- :mod:`repro.resilience.budget` — :class:`Budget` bounds a run by wall
  clock and/or bit cost; overruns raise :class:`BudgetExceeded`, which
  carries the certified roots found so far as a
  :class:`PartialResult`.
- :mod:`repro.resilience.retry` — :class:`RetryPolicy`: per-task
  resubmission with exponential backoff before any degradation.
- :mod:`repro.resilience.breaker` — :class:`CircuitBreaker`: after K
  consecutive pool failures, route task bodies to the parent process
  for a cool-down, then half-open with a single probe task.
- :mod:`repro.resilience.checkpoint` — :class:`BatchCheckpoint`:
  streaming JSONL checkpoint for ``repro batch`` so a killed batch run
  resumes where it stopped instead of re-solving finished polynomials.

Everything here is deterministic and clock-injectable so the fault
matrix (:mod:`repro.verify.faults`, ``tests/verify/test_faults.py``)
can pin each behavior with exact counter assertions.  See
docs/RESILIENCE.md for the semantics and the counter glossary.
"""

from repro.resilience.breaker import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
)
from repro.resilience.budget import Budget, BudgetExceeded, PartialResult
from repro.resilience.checkpoint import (
    BatchCheckpoint,
    CheckpointMismatch,
    poly_key,
)
from repro.resilience.retry import RetryPolicy

__all__ = [
    "Budget",
    "BudgetExceeded",
    "PartialResult",
    "RetryPolicy",
    "CircuitBreaker",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "BatchCheckpoint",
    "CheckpointMismatch",
    "poly_key",
]
