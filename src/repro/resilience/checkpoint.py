"""Streaming JSONL checkpoints for batch root-finding runs.

``repro batch --checkpoint FILE`` streams every completed polynomial's
result to ``FILE`` as it finishes (one fsync'd JSON line per
polynomial), so a batch run killed at any point — OOM, deploy, SIGKILL
— resumes where it stopped: on restart the checkpoint is loaded and
already-solved polynomials are answered from it without re-solving.

File format (``repro.batch-checkpoint/1``)::

    {"schema": "repro.batch-checkpoint/1", "mu_bits": 53, "strategy": "hybrid"}
    {"key": "<sha256>", "index": 0, "scaled": ["-768", "0", "512"]}
    ...

* The header pins the parameters the results depend on; resuming with
  a different ``mu``/``strategy`` raises :class:`CheckpointMismatch`
  (silently mixing precisions would corrupt the batch).
* ``key`` is a content hash of the polynomial *and* the parameters
  (:func:`poly_key`), so entries are valid regardless of input order
  and duplicates in the input re-use one entry.
* ``scaled`` values are decimal strings — exact at any magnitude, safe
  for JSON readers that lack bignums.
* A truncated final line (the process died mid-write) is detected and
  dropped on load; every complete line is recovered.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import IO, Iterable, Sequence

__all__ = ["BatchCheckpoint", "CheckpointMismatch", "poly_key"]

SCHEMA = "repro.batch-checkpoint/1"


class CheckpointMismatch(ValueError):
    """The checkpoint file was written with different run parameters."""


def poly_key(coeffs: Iterable[int], mu: int, strategy: str) -> str:
    """Content hash identifying one (polynomial, mu, strategy) job.

    The key is **injective** on distinct jobs: the payload is a
    JSON-canonical array ``[[coeffs as decimal strings], mu, strategy]``
    (compact separators, ``ensure_ascii``), so no ad-hoc delimiter
    exists for an adversarial strategy string to collide with, and the
    list structure keeps coefficient digits from bleeding into ``mu``
    (``([1, 23], mu=4)`` and ``([1, 2], mu=34)`` serialize differently).
    Inputs are normalized first — ``int(c)`` / ``int(mu)`` so numeric
    look-alikes (``True`` vs ``1``) cannot alias distinct keys — which
    leaves the encoding of every existing integer-coefficient
    checkpoint unchanged.  This same key addresses the ``repro serve``
    result cache, where a collision would serve one client another
    polynomial's roots.
    """
    if not isinstance(strategy, str):
        raise TypeError(f"strategy must be str, got {type(strategy).__name__}")
    payload = json.dumps(
        [[str(int(c)) for c in coeffs], int(mu), strategy],
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("ascii")).hexdigest()


class BatchCheckpoint:
    """Append-only JSONL checkpoint for one batch configuration.

    Opening an existing file loads every complete entry and validates
    the header against ``mu_bits``/``strategy``; opening a fresh path
    writes the header.  :meth:`record` appends, flushes, and fsyncs one
    line per result — the durability unit is one polynomial.

    Attributes
    ----------
    hits:
        Results answered from the checkpoint this session (incremented
        by :meth:`get` callers via :meth:`hit`).
    dropped_lines:
        Malformed lines skipped on load (normally 0 or 1 — a line
        truncated by the kill).
    kill_after:
        Fault-injection hook (test-only, mirrors
        :class:`repro.verify.faults.FaultPlan`): after this many
        entries have been recorded *this session*, the process
        SIGKILLs itself — the deterministic rendering of "the batch
        run died mid-flight" that the resume tests replay.
    """

    def __init__(self, path: str, mu_bits: int, strategy: str):
        self.path = path
        self.mu_bits = mu_bits
        self.strategy = strategy
        self.entries: dict[str, list[int]] = {}
        self.hits = 0
        self.dropped_lines = 0
        self.kill_after: int | None = None
        self._recorded = 0
        existing = os.path.exists(path) and os.path.getsize(path) > 0
        if existing:
            self._load()
        self._fh: IO[str] = open(path, "a")
        if not existing:
            self._fh.write(json.dumps({
                "schema": SCHEMA, "mu_bits": mu_bits, "strategy": strategy,
            }) + "\n")
            self._sync()

    # -- lifecycle -------------------------------------------------------
    def _load(self) -> None:
        with open(self.path) as fh:
            lines = fh.read().split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        records = []
        for line in lines:
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                self.dropped_lines += 1
        if not records:
            return
        header = records[0]
        if not isinstance(header, dict) or header.get("schema") != SCHEMA:
            raise CheckpointMismatch(
                f"{self.path}: not a {SCHEMA} checkpoint"
            )
        if (header.get("mu_bits") != self.mu_bits
                or header.get("strategy") != self.strategy):
            raise CheckpointMismatch(
                f"{self.path}: checkpoint was written with "
                f"mu_bits={header.get('mu_bits')} "
                f"strategy={header.get('strategy')!r}, this run uses "
                f"mu_bits={self.mu_bits} strategy={self.strategy!r}"
            )
        for rec in records[1:]:
            if not (isinstance(rec, dict) and "key" in rec
                    and isinstance(rec.get("scaled"), list)):
                self.dropped_lines += 1
                continue
            self.entries[rec["key"]] = [int(s) for s in rec["scaled"]]

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None  # type: ignore[assignment]

    def __enter__(self) -> "BatchCheckpoint":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False

    # -- the batch-loop API ----------------------------------------------
    def key_for(self, coeffs: Iterable[int]) -> str:
        """The :func:`poly_key` under this checkpoint's parameters."""
        return poly_key(coeffs, self.mu_bits, self.strategy)

    def get(self, key: str) -> list[int] | None:
        """The recorded result for ``key``, or ``None`` if not solved."""
        scaled = self.entries.get(key)
        return None if scaled is None else list(scaled)

    def hit(self) -> None:
        """Count one result answered from the checkpoint."""
        self.hits += 1

    def record(self, key: str, index: int, scaled: Sequence[int]) -> None:
        """Durably append one completed result (no-op if already
        recorded — duplicates in the input share an entry)."""
        if key in self.entries:
            return
        self.entries[key] = list(scaled)
        self._fh.write(json.dumps({
            "key": key, "index": index, "scaled": [str(s) for s in scaled],
        }) + "\n")
        self._sync()
        self._recorded += 1
        if self.kill_after is not None and self._recorded >= self.kill_after:
            os.kill(os.getpid(), 9)  # SIGKILL: no cleanup, as in a real kill

    def _sync(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())
