"""Wall-clock / bit-cost budgets with structured partial results.

A :class:`Budget` bounds one logical piece of work — a single
``find_roots`` call, or a whole batch when the caller starts it once
and shares it — along two axes:

* ``deadline_seconds``: wall-clock time since :meth:`Budget.start`;
* ``max_bit_ops``: quadratic bit cost charged to the attached
  :class:`~repro.costmodel.counter.CostCounter` since start (the
  paper's machine-model currency, so the same ceiling means the same
  amount of *work* on any host).

Checks are **cooperative**: the finders call :meth:`Budget.check` at
phase boundaries (after the remainder sequence, after the tree, between
interval problems) and the executor checks once per dispatch-loop
event.  An overrun raises :class:`BudgetExceeded` carrying a
:class:`PartialResult` with every top-level root certified so far —
callers keep what was paid for instead of getting nothing.

The clock is injectable for deterministic tests; bit cost is exact and
deterministic by construction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

__all__ = ["Budget", "BudgetExceeded", "PartialResult"]


@dataclass
class PartialResult:
    """What a budget-bounded run had finished when the budget tripped.

    ``scaled`` follows the :class:`repro.core.rootfinder.RootResult`
    convention (ascending ``ceil(2**mu * x)`` values), but holds only
    the roots whose interval problems completed — a *subset* of the
    input's roots, each individually exact.  Verify with
    ``certify_roots(p, partial.scaled, None, mu, partial=True)``.
    """

    mu: int
    scaled: list[int]
    degree: int
    phase: str
    reason: str
    elapsed_seconds: float
    bit_cost: int

    def __len__(self) -> int:
        return len(self.scaled)

    def as_floats(self) -> list[float]:
        from repro.core.scaling import scaled_to_float

        return [scaled_to_float(s, self.mu) for s in self.scaled]


class BudgetExceeded(RuntimeError):
    """A cooperative budget check failed; partial progress is attached.

    ``reason`` is ``"deadline"`` or ``"bit_budget"``; ``partial`` is the
    :class:`PartialResult` assembled at the check site.
    """

    def __init__(self, reason: str, partial: PartialResult):
        super().__init__(
            f"budget exceeded ({reason}) in phase {partial.phase!r} after "
            f"{partial.elapsed_seconds:.3f}s / {partial.bit_cost} bit ops; "
            f"{len(partial.scaled)} certified roots completed"
        )
        self.reason = reason
        self.partial = partial


@dataclass
class Budget:
    """Deadline and/or bit-cost ceiling for one logical piece of work.

    Construct with at least one bound; attach via
    ``RealRootFinder(..., budget=...)`` or
    ``ParallelRootFinder(..., budget=...)``.  The budget starts ticking
    at the first :meth:`start` call (the finders call it on entry;
    callers who want one budget to span several calls may start it
    earlier themselves — ``start`` is idempotent).

    Parameters
    ----------
    deadline_seconds:
        Wall-clock allowance measured on ``clock`` (monotonic seconds).
    max_bit_ops:
        Quadratic bit-cost allowance measured as the delta of the
        attached counter's ``total_bit_cost`` since start.  Only costs
        the counter actually sees are charged — in the parallel
        executor that is the parent-side remainder/tree work (worker
        costs stay worker-local).
    clock:
        Injectable monotonic clock, for deterministic tests.  The
        default is ``time.monotonic`` — the same timebase the
        executor's dispatch loop and task deadlines use — never
        ``time.time``, whose NTP/wall-clock steps would make a
        deadline fire early or never when mixed with monotonic
        readings.
    """

    deadline_seconds: float | None = None
    max_bit_ops: int | None = None
    clock: Callable[[], float] = time.monotonic
    _t0: float | None = field(default=None, init=False, repr=False)
    _counter: Any = field(default=None, init=False, repr=False)
    _bits0: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.deadline_seconds is not None and self.deadline_seconds < 0:
            raise ValueError("deadline_seconds must be >= 0")
        if self.max_bit_ops is not None and self.max_bit_ops < 0:
            raise ValueError("max_bit_ops must be >= 0")

    # -- lifecycle -------------------------------------------------------
    @property
    def started(self) -> bool:
        """True once :meth:`start` has run."""
        return self._t0 is not None

    def start(self, counter: Any = None) -> "Budget":
        """Begin measuring (idempotent); returns ``self``.

        ``counter`` is the :class:`~repro.costmodel.counter.CostCounter`
        the bit ceiling reads.  The first call pins the epoch; later
        calls are no-ops so one budget can span several finder calls.
        """
        if self._t0 is None:
            self._t0 = self.clock()
            self._counter = counter
            self._bits0 = self._spent_total()
        return self

    # -- measurement -----------------------------------------------------
    def _spent_total(self) -> int:
        if self._counter is None:
            return 0
        return self._counter.total_bit_cost

    def elapsed_seconds(self) -> float:
        """Seconds since start (0.0 before start)."""
        if self._t0 is None:
            return 0.0
        return self.clock() - self._t0

    def spent_bit_ops(self) -> int:
        """Bit cost charged to the attached counter since start."""
        return self._spent_total() - self._bits0

    def over(self) -> str | None:
        """The exceeded axis (``"deadline"`` / ``"bit_budget"``), else
        ``None``.  Never raises; :meth:`check` wraps it.

        A positive deadline is inclusive — elapsed time must *exceed*
        it to trip — but ``deadline_seconds=0`` ("no time at all")
        trips at the first check after :meth:`start` even when a
        coarse clock still reads an elapsed time of exactly 0.0; with
        strict ``>`` a zero deadline could never fire on such ties.
        """
        if self._t0 is None:
            return None
        if self.deadline_seconds is not None:
            elapsed = self.elapsed_seconds()
            if (elapsed > self.deadline_seconds
                    or (self.deadline_seconds == 0 and elapsed >= 0.0)):
                return "deadline"
        if (self.max_bit_ops is not None
                and self.spent_bit_ops() > self.max_bit_ops):
            return "bit_budget"
        return None

    def check(
        self,
        *,
        scaled: Sequence[int] = (),
        phase: str = "",
        mu: int = 0,
        degree: int = 0,
    ) -> None:
        """Cooperative check point: raise :class:`BudgetExceeded` if a
        bound is exceeded, attaching the caller's completed roots
        (``scaled``) as the structured partial result."""
        reason = self.over()
        if reason is None:
            return
        raise BudgetExceeded(
            reason,
            PartialResult(
                mu=mu,
                scaled=list(scaled),
                degree=degree,
                phase=phase,
                reason=reason,
                elapsed_seconds=self.elapsed_seconds(),
                bit_cost=self.spent_bit_ops(),
            ),
        )
