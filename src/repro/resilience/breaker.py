"""Circuit breaker around the executor's worker pool.

Classic three-state breaker, specialized for the executor's routing
decision (pool vs. in-parent execution):

* **closed** — pool submissions allowed.  ``failure_threshold``
  *consecutive* task failures (worker exceptions, per-task timeouts)
  trip it open; any pool success resets the streak.
* **open** — :meth:`allow` answers ``False``: the executor runs task
  bodies in the parent process (sequential routing, exact answers)
  until ``cooldown_seconds`` have elapsed on the injectable clock.
* **half-open** — after the cool-down, exactly one submission is let
  through as a probe.  Probe success closes the breaker; probe failure
  reopens it and restarts the cool-down.

State transitions are reported through ``on_transition(old, new)`` —
the executor wires that to the ``executor.breaker_*`` counters and
``breaker_*`` tracer events, which is how the fault matrix pins the
state machine deterministically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "CircuitBreaker",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


@dataclass
class CircuitBreaker:
    """Consecutive-failure breaker with cool-down and single-probe
    half-open recovery.

    The breaker owns no I/O and consults only its injected ``clock``,
    so every transition is deterministic under test.  One breaker is
    shared across all calls a :class:`~repro.sched.executor.
    ParallelRootFinder` serves — pool health is a property of the pool,
    not of one polynomial.
    """

    failure_threshold: int = 3
    cooldown_seconds: float = 5.0
    clock: Callable[[], float] = time.monotonic
    on_transition: Callable[[str, str], None] | None = None
    state: str = field(default=BREAKER_CLOSED, init=False)
    consecutive_failures: int = field(default=0, init=False)
    _opened_at: float = field(default=0.0, init=False, repr=False)
    _probe_in_flight: bool = field(default=False, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be >= 0")

    def _to(self, new_state: str) -> None:
        old, self.state = self.state, new_state
        if old != new_state and self.on_transition is not None:
            self.on_transition(old, new_state)

    def allow(self) -> bool:
        """May the next task go to the pool?  ``False`` means route it
        to the parent process.

        In the open state this is also where the cool-down expiry is
        noticed: the first ``allow`` after the cool-down half-opens the
        breaker and admits the probe.
        """
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_OPEN:
            if self.clock() - self._opened_at >= self.cooldown_seconds:
                self._to(BREAKER_HALF_OPEN)
                self._probe_in_flight = True
                return True
            return False
        # half-open: one probe at a time.
        if not self._probe_in_flight:
            self._probe_in_flight = True
            return True
        return False

    def record_success(self) -> None:
        """A pool task completed normally."""
        self.consecutive_failures = 0
        if self.state == BREAKER_HALF_OPEN:
            self._probe_in_flight = False
            self._to(BREAKER_CLOSED)

    def record_failure(self) -> None:
        """A pool task failed (worker exception or per-task timeout)."""
        self.consecutive_failures += 1
        if self.state == BREAKER_HALF_OPEN:
            self._probe_in_flight = False
            self._opened_at = self.clock()
            self._to(BREAKER_OPEN)
        elif (self.state == BREAKER_CLOSED
                and self.consecutive_failures >= self.failure_threshold):
            self._opened_at = self.clock()
            self._to(BREAKER_OPEN)
