"""Coefficient-size bounds (paper Section 4, Eqs. 21-31).

These are the Collins-determinant bounds the paper uses to predict bit
complexity.  The paper's own conclusion — worth keeping in mind when
reading Figure 7 — is that they are *weak upper bounds* in practice:
"the main bottleneck in attempting to predict the actual execution
times is the lack of good analytical estimates on the sizes of
intermediate quantities".  The test suite asserts they are never
violated; the fig7 bench shows how loose they are.

All sizes are in bits (``||x||`` notation).  ``log n`` terms use
``log2``; the bounds remain valid upper bounds with any rounding up.
"""

from __future__ import annotations

from math import ceil, log2

__all__ = [
    "beta",
    "bound_F",
    "bound_Q",
    "bound_A",
    "bound_B",
    "bound_P",
    "bound_T",
    "horner_partial_bound",
    "eval_bit_cost_bound",
]


def beta(n: int, m: int) -> int:
    """``beta = 2m + 3 log n + 2`` — the per-index growth rate (Sec. 4)."""
    if n < 1:
        raise ValueError("degree must be >= 1")
    return 2 * m + 3 * ceil(log2(max(n, 2))) + 2


def bound_F(i: int, n: int, m: int) -> int:
    """``||F_i|| <= i * beta`` (Eq. 25); exact small cases (Eq. 21)."""
    if i == 0:
        return m
    if i == 1:
        return m + ceil(log2(max(n, 2)))
    return i * beta(n, m)


def bound_Q(i: int, n: int, m: int) -> int:
    """``||Q_i|| <= 2 i beta`` (Eq. 26)."""
    if i == 1:
        return 2 * m + ceil(log2(max(n, 2)))
    return 2 * i * beta(n, m)


def bound_A(i: int, n: int, m: int) -> int:
    """``||A_i|| <= (i-1) beta + log n`` (Eq. 27)."""
    return max(0, (i - 1)) * beta(n, m) + ceil(log2(max(n, 2)))


def bound_B(i: int, n: int, m: int) -> int:
    """``||B_i|| <= (i-1) beta`` (Eq. 28)."""
    return max(1, (i - 1) * beta(n, m))


def bound_P(i: int, j: int, n: int, m: int) -> int:
    """``||P_{i,j}||`` per Eqs. (29)-(30).

    For ``j < n``: with ``k = j - i + 1``, ``||P|| <= (2i + k - 2) beta``.
    For ``j == n``: ``||P_{i,n}|| = ||F_{i-1}|| <= (i-1) beta``.
    """
    if j == n:
        return bound_F(i - 1, n, m) if i > 1 else m
    k = j - i + 1
    return (2 * i + k - 2) * beta(n, m)


def bound_T(i: int, j: int, n: int, m: int) -> int:
    """``||T_{i,j}|| <= (2i + k - 1) beta`` with ``k = j - i + 1`` (Eq. 31)."""
    k = j - i + 1
    return (2 * i + k - 1) * beta(n, m)


def horner_partial_bound(m_bits: int, i: int, x_bits: int) -> int:
    """``||E_i|| <= m + i X + log(i+1)`` — the partial-value growth in the
    scaled Horner evaluation (Section 4.3)."""
    return m_bits + i * x_bits + ceil(log2(i + 2))


def eval_bit_cost_bound(m_bits: int, d: int, x_bits: int) -> int:
    """Eq. (37): one scaled evaluation costs at most
    ``m X d + X^2 d (d-1) / 2 + X d log d`` bit operations."""
    if d <= 0:
        return 0
    logd = ceil(log2(max(d, 2)))
    return m_bits * x_bits * d + (x_bits * x_bits * d * (d - 1)) // 2 + (
        x_bits * d * logd
    )
