"""Analytical predictions (paper Section 4): size bounds, operation
counts, and bit-cost models."""

from repro.analysis.bounds import (
    beta,
    bound_F,
    bound_Q,
    bound_A,
    bound_B,
    bound_P,
    bound_T,
    eval_bit_cost_bound,
    horner_partial_bound,
)
from repro.analysis.fit import linear_fit, loglog_slope, power_law_exponent
from repro.analysis.sizes import SizeProfile, measure_sizes, fitted_beta
from repro.analysis.levels import LevelCell, LevelProfile, measure_interval_levels
from repro.analysis.predict import (
    PhasePrediction,
    predict_remainder,
    predict_tree,
    predict_intervals,
    predict_all,
    iterations_worst_case,
    iterations_average_case,
    asymptotic_table1,
)

__all__ = [
    "beta", "bound_F", "bound_Q", "bound_A", "bound_B", "bound_P", "bound_T",
    "eval_bit_cost_bound", "horner_partial_bound",
    "PhasePrediction", "predict_remainder", "predict_tree",
    "predict_intervals", "predict_all",
    "iterations_worst_case", "iterations_average_case", "asymptotic_table1",
    "linear_fit", "loglog_slope", "power_law_exponent",
    "SizeProfile", "measure_sizes", "fitted_beta",
    "LevelCell", "LevelProfile", "measure_interval_levels",
]
