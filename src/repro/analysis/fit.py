"""Small fitting utilities shared by the analysis module and benches.

Scaling-law validation (Table 1, the size study, the cost-model
calibration) repeatedly needs two primitives: a log-log slope (power
law exponent) and a plain least-squares line.
"""

from __future__ import annotations

from math import log

__all__ = ["loglog_slope", "linear_fit", "power_law_exponent"]


def linear_fit(xs: list[float], ys: list[float]) -> tuple[float, float]:
    """Least-squares ``(slope, intercept)`` of y against x."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two points")
    mx = sum(xs) / n
    my = sum(ys) / n
    den = sum((x - mx) ** 2 for x in xs)
    if den == 0:
        raise ValueError("degenerate x values")
    slope = sum((x - mx) * (y - my) for x, y in zip(xs, ys)) / den
    return slope, my - slope * mx


def loglog_slope(xs: list[float], ys: list[float]) -> float:
    """Slope of log(y) against log(x) — the empirical power-law exponent."""
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("log-log fit needs positive data")
    slope, _ = linear_fit([log(x) for x in xs], [log(y) for y in ys])
    return slope


def power_law_exponent(points: list[tuple[float, float]]) -> float:
    """``loglog_slope`` over (x, y) pairs."""
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    return loglog_slope(xs, ys)
