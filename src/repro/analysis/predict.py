"""Predicted operation counts and bit costs (paper Sections 4.1-4.3).

Two families of predictions, mirroring the paper's Section 5.1
methodology:

* **Multiplication counts** — "much more precise versions of the
  asymptotic expressions": exact combinatorial counts for the
  deterministic phases (remainder sequence, tree products) and the
  average-case iteration model ``I_avg(X, d)`` (Eq. 41) for the
  data-dependent interval phase.  Figures 2-5 compare these with the
  counters' observations.
* **Bit costs** — the same counts weighted by the Collins size bounds
  of :mod:`repro.analysis.bounds` and the Horner model (Eq. 37).  These
  are deliberately the paper's *weak* upper bounds; Figure 7's point is
  precisely the gap between them and the measured bit cost.

The tree-phase count predictor walks the same balanced tree the
implementation builds, doing dense-degree bookkeeping.  The observed
counts are slightly lower because the implementation skips
multiplications by structurally zero coefficients; the gap shrinks
with ``n`` (the paper saw the same: "the predicted counts match the
observed counts quite well, especially for larger input parameters").
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2

from repro.analysis.bounds import (
    beta,
    bound_F,
    bound_P,
    bound_Q,
    bound_T,
    eval_bit_cost_bound,
)
from repro.core.tree import split_index

__all__ = [
    "PhasePrediction",
    "predict_remainder",
    "predict_tree",
    "predict_intervals",
    "predict_all",
    "iterations_worst_case",
    "iterations_average_case",
    "asymptotic_table1",
]


@dataclass
class PhasePrediction:
    """Predicted multiplications / divisions / bit cost for one phase."""

    name: str
    mul_count: int
    div_count: int
    mul_bit_cost: int

    def merged(self, other: "PhasePrediction", name: str = "") -> "PhasePrediction":
        return PhasePrediction(
            name or f"{self.name}+{other.name}",
            self.mul_count + other.mul_count,
            self.div_count + other.div_count,
            self.mul_bit_cost + other.mul_bit_cost,
        )


# ---------------- Section 4.1: the remainder sequence ----------------

def predict_remainder(n: int, m: int) -> PhasePrediction:
    """Exact multiplication/division counts and bound-weighted bit cost.

    Per iteration ``i``: 1 mul for ``q_{i,1}``, 2 for ``q_{i,0}``, 1 for
    ``c_i^2``, then ``3(n-i)`` muls and ``n-i`` divisions for Eq. (18)
    (no division at i=1).  Plus the ``n`` coefficient scalings of the
    derivative ``F_1``.
    """
    muls = n  # derivative
    divs = 0
    bit = 0
    for i in range(1, n):
        f_i = bound_F(i, n, m)
        f_prev = bound_F(i - 1, n, m)
        q_i = bound_Q(i, n, m)
        muls += 4 + 3 * (n - i)
        if i >= 2:
            divs += n - i
        # Eq. (18) products: f*q0, f*q1 (size F x Q), c^2 * f_prev
        # (size 2F x F_prev); head products are lower order but counted.
        bit += (n - i) * (2 * f_i * q_i + 2 * f_i * f_prev)
        bit += 2 * f_i * f_prev + f_i * q_i + f_i * f_i
    return PhasePrediction("remainder", muls, divs, bit)


# ---------------- Section 4.2: the tree products ----------------

def _entry_degrees(i: int, j: int, n: int) -> list[list[int | None]]:
    """Degrees of the entries of ``T_{i,j}`` (None encodes the zero poly).

    From Eq. (54): ``T = [[-P_{i+1,j-1}, P_{i,j-1}], [-P_{i+1,j}, P_{i,j}]]``
    with ``deg P_{a,b} = b - a + 1`` and ``P_{a,b} = 1`` when ``a > b``.
    Empty products (``j = i-1``) are scalar matrices ``c^2 I``.
    """
    if j < i:  # scalar matrix
        return [[0, None], [None, 0]]
    def dp(a: int, b: int) -> int:
        return max(0, b - a + 1)
    return [
        [dp(i + 1, j - 1), dp(i, j - 1)],
        [dp(i + 1, j), dp(i, j)],
    ]


def _u_degrees() -> list[list[int | None]]:
    """Degrees of ``U_k = [[0, c], [-c^2, Q_k]]``."""
    return [[None, 0], [0, 1]]


def _dense_mul_count(da: int | None, db: int | None) -> int:
    if da is None or db is None:
        return 0
    return (da + 1) * (db + 1)


def _matmul_counts(
    a_deg: list[list[int | None]], b_deg: list[list[int | None]]
) -> tuple[int, list[list[int | None]]]:
    """Dense multiplication count of a 2x2 polynomial-matrix product and
    the degree matrix of the result."""
    muls = 0
    out: list[list[int | None]] = [[None, None], [None, None]]
    for r in range(2):
        for c in range(2):
            deg: int | None = None
            for t in range(2):
                da, db = a_deg[r][t], b_deg[t][c]
                muls += _dense_mul_count(da, db)
                if da is not None and db is not None:
                    deg = max(deg if deg is not None else -1, da + db)
            out[r][c] = deg
    return muls, out


def predict_tree(n: int, m: int) -> PhasePrediction:
    """Exact dense counts + bound-weighted bit cost for the tree phase.

    Walks the identical balanced tree ([i,j] with pivot ``(i+j)//2``)
    and accounts both products ``(T_R @ U_k) @ T_L`` and the exact
    division of the second product's entries by ``c_{k-1}^2 c_k^2``.
    """
    muls = 0
    divs = 0
    bit = 0
    b = beta(n, m)

    def visit(i: int, j: int) -> None:
        nonlocal muls, divs, bit
        if j <= i or j == n:
            if j > i:  # rightmost interior: recurse into children only
                k = split_index(i, j)
                visit(i, k - 1)
                visit(k + 1, j)
            return
        k = split_index(i, j)
        visit(i, k - 1)
        visit(k + 1, j)
        # m1 = T_R @ U_k  then  m2 = m1 @ T_L
        tr = _entry_degrees(k + 1, j, n)
        tl = _entry_degrees(i, k - 1, n)
        c1, m1_deg = _matmul_counts(tr, _u_degrees())
        c2, m2_deg = _matmul_counts(m1_deg, tl)
        muls += c1 + c2
        for row in m2_deg:
            for d in row:
                if d is not None:
                    divs += d + 1
        # Bit cost: dominant second product, 8 * md(T_R') * md(T_L)
        # (Sec 4.2), with md = max-degree x max-size from Eq. (31).
        size_r = bound_T(k + 1, j, n, m) + bound_Q(k, n, m)  # after U_k
        size_l = bound_T(i, k - 1, n, m) if k - 1 >= i else 2 * bound_F(i - 1, n, m)
        deg_r = max(0, j - k) + 1
        deg_l = max(0, k - 1 - i + 1)
        bit += 8 * (deg_r + 1) * size_r * (deg_l + 1) * size_l

    visit(1, n)
    return PhasePrediction("tree", muls, divs, bit)


# ---------------- Section 4.3: the interval problems ----------------

def iterations_worst_case(x_bits: int, d: int) -> float:
    """Eq. (38): ``I(X,d) = (1/2) log^2 X + log(10 d^2) + O(log X)``."""
    lx = log2(max(x_bits, 2))
    return 0.5 * lx * lx + log2(10 * d * d) + lx


def iterations_average_case(
    x_bits: int, d: int, mu: int | None = None, r_bits: int | None = None
) -> float:
    """Eq. (41) calibrated to this implementation's hybrid solver.

    Structure: ``log2(10 d^2)`` bisections, a constant number of sieve
    evaluations (the paper's uniform-roots argument — observed ~8-10
    independent of X and d), Newton iterations
    ``log2(X / log2(10 d^2))`` costing *two* evaluations each (p and
    p'), plus one certification probe and the case-2c endpoint probe.

    When ``mu``/``r_bits`` are given, the count is capped by the total
    bracket width: a gap between adjacent interleaving points holds
    roughly ``mu + R - log2(d)`` resolvable bits, and no exact solver
    can spend more sign probes than bits (plus the sieve constant) —
    this is why small-``mu`` runs exit the bisection budget early.
    """
    lb = log2(10 * d * d)
    if mu is None:
        # Plain Eq. 41 shape when only X is known.
        newton = log2(max(2.0, ceil(x_bits / lb)))
        return lb + 2.0 * newton + 9.0 + 2.0
    # Implementation-calibrated version (the paper's "much more precise
    # versions"), fitted on the Section-5 workload:
    #   sieve:     ~8.7 evaluations, independent of mu and d (the
    #              uniform-roots constant-rounds argument of Eq. 41);
    #   bisection: the budget log2(10 d^2), but capped near 10.5 — the
    #              double-exponential sieve leaves a short bracket whose
    #              length is independent of mu;
    #   Newton:    2 evaluations per iteration, iterations growing as
    #              log2(mu) once mu exceeds what sieve+bisection already
    #              resolved (~2.8 bits-log worth);
    #   probes:    the case-2c endpoint probe and the certification probe.
    sieve_const = 8.7
    bis = min(lb, 10.5)
    newton_iters = max(0.0, log2(max(mu, 2)) - 2.8)
    return sieve_const + bis + 2.0 * newton_iters + 1.5


def predict_intervals(
    n: int, m: int, mu: int, r_bits: int, worst_case: bool = False
) -> PhasePrediction:
    """Average-case (default) or worst-case prediction for all interval
    problems over the whole tree (Section 4.3's per-level sum).

    Every node of degree ``d`` contributes ``d+1`` PREINTERVAL
    evaluations and ``d`` interval solves of ``I(X, d)`` evaluations
    each; an evaluation of a degree-``d`` polynomial is ``d``
    multiplications (Horner) with bit cost from Eq. (37) using the
    Collins bound for the node's coefficient size.
    """
    x_bits = r_bits + mu
    if worst_case:
        def iters(x: int, d: int) -> float:
            return iterations_worst_case(x, d)
    else:
        def iters(x: int, d: int) -> float:
            return iterations_average_case(x, d, mu=mu, r_bits=r_bits)
    muls = 0
    bit = 0

    def visit(i: int, j: int) -> None:
        nonlocal muls, bit
        d = j - i + 1
        if d < 1:
            return
        if d >= 2:
            k = split_index(i, j)
            visit(i, k - 1)
            visit(k + 1, j)
        if d == 1:
            return  # linear: closed form, no evaluations
        size = bound_P(i, j, n, m)
        per_eval_muls = d
        per_eval_bit = eval_bit_cost_bound(size, d, x_bits)
        # (d+1) PREINTERVAL probes plus d solves of I(X, d) evals each.
        n_evals = (d + 1) + d * iters(x_bits, d)
        muls += int(n_evals * per_eval_muls)
        bit += int(n_evals * per_eval_bit)

    visit(1, n)
    return PhasePrediction(
        "interval.worst" if worst_case else "interval.avg", muls, 0, bit
    )


def predict_all(
    n: int, m: int, mu: int, r_bits: int, worst_case: bool = False
) -> dict[str, PhasePrediction]:
    """All phase predictions keyed by phase name."""
    return {
        "remainder": predict_remainder(n, m),
        "tree": predict_tree(n, m),
        "interval": predict_intervals(n, m, mu, r_bits, worst_case),
    }


def asymptotic_table1(n: int, m: int, mu: int, r_bits: int) -> dict[str, dict[str, float]]:
    """The paper's Table 1, evaluated: leading-order arithmetic and bit
    complexities per phase."""
    x = r_bits + mu
    b = float(beta(n, m))
    logn = log2(max(n, 2))
    logx = log2(max(x, 2))
    return {
        "remainder": {
            "arithmetic": 1.5 * n * n,
            "bit": n**4 * (m + logn) ** 2,
        },
        "tree": {
            "arithmetic": 2.0 * n * n,
            "bit": (55.0 / 21.0) * n**4 * b * b / 4.0,
        },
        "interval_worst": {
            "arithmetic": n * n * (logn + logx * logx),
            "bit": n**3 * x * (x + b) * (logn + logx * logx),
        },
        "interval_avg": {
            "arithmetic": n * n * (logn + logx),
            "bit": n**3 * x * (x + b) * (logn + logx),
        },
    }
