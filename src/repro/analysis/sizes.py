"""Measured coefficient-size profiles vs the Collins bounds.

The paper's concluding open question: "the main bottleneck in
attempting to predict the actual execution times is the lack of good
analytical estimates on the *sizes* of intermediate quantities ...
It would be interesting to see if improved estimates on these
quantities can be obtained."

This module provides the measurement side of that question: it records
the actual bit sizes of every ``F_i``, ``Q_i`` and ``P_{i,j}`` for a
given input, compares them with the Eqs. (21)-(31) bounds, and fits the
observed per-index growth rate ``beta_hat`` — the empirical analogue of
``beta = 2m + 3 log n + 2``.  On the paper's random workload the
observed growth is far below the bound (slackness growing with the
index), quantifying exactly how much tighter a future analysis would
need to be.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.bounds import beta, bound_F, bound_P, bound_Q
from repro.core.remainder import RemainderSequence, compute_remainder_sequence
from repro.core.tree import InterleavingTree
from repro.poly.dense import IntPoly

__all__ = ["SizeProfile", "measure_sizes", "fitted_beta"]


@dataclass
class SizeProfile:
    """Observed vs bounded coefficient sizes for one input."""

    n: int
    m_bits: int
    #: per-index (i, observed ||F_i||, bound)
    f_sizes: list[tuple[int, int, int]]
    #: per-index (i, observed ||Q_i||, bound)
    q_sizes: list[tuple[int, int, int]]
    #: per-node ((i, j), observed ||P_{i,j}||, bound)
    p_sizes: list[tuple[tuple[int, int], int, int]]

    @property
    def beta_bound(self) -> int:
        return beta(self.n, self.m_bits)

    def beta_observed(self) -> float:
        """Least-squares slope of observed ``||F_i||`` against ``i`` —
        the empirical growth rate the paper wished it had."""
        return fitted_beta([(i, s) for i, s, _b in self.f_sizes])

    def max_slack(self) -> float:
        """Largest bound/observed ratio across all measured polynomials."""
        ratios = [b / max(s, 1) for _i, s, b in self.f_sizes[2:]]
        ratios += [b / max(s, 1) for _l, s, b in self.p_sizes]
        return max(ratios) if ratios else 1.0

    def mean_slack_f(self) -> float:
        ratios = [b / max(s, 1) for _i, s, b in self.f_sizes[2:]]
        return sum(ratios) / len(ratios) if ratios else 1.0


def fitted_beta(pairs: list[tuple[int, int]]) -> float:
    """Slope of sizes against indices (simple least squares)."""
    if len(pairs) < 2:
        return 0.0
    n = len(pairs)
    mx = sum(i for i, _s in pairs) / n
    my = sum(s for _i, s in pairs) / n
    num = sum((i - mx) * (s - my) for i, s in pairs)
    den = sum((i - mx) ** 2 for i, _s in pairs)
    return num / den if den else 0.0


def measure_sizes(p: IntPoly) -> SizeProfile:
    """Measure every intermediate polynomial's coefficient size.

    ``p`` must be square-free and real-rooted (the main algorithm's
    normal chain); raises the usual structured errors otherwise.
    """
    if p.leading_coefficient < 0:
        p = -p
    seq: RemainderSequence = compute_remainder_sequence(p)
    tree = InterleavingTree(seq)
    tree.compute_polynomials()

    n = seq.n
    m = max(p.max_coefficient_bits(), 1)
    f_sizes = [
        (i, f.max_coefficient_bits(), bound_F(i, n, m))
        for i, f in enumerate(seq.F)
    ]
    q_sizes = [
        (i, seq.quotient(i).max_coefficient_bits(), bound_Q(i, n, m))
        for i in range(1, n)
    ]
    p_sizes = []
    for node in tree.root:
        if node.is_empty or node.poly is None:
            continue
        p_sizes.append(
            (
                node.label,
                node.poly.max_coefficient_bits(),
                bound_P(node.i, node.j, n, m),
            )
        )
    return SizeProfile(
        n=n, m_bits=m, f_sizes=f_sizes, q_sizes=q_sizes, p_sizes=p_sizes
    )
