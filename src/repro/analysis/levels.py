"""Per-level interval-cost profile (paper Section 4.3, Eqs. 42-48).

The paper's interval-phase analysis treats the *rightmost* node of each
tree level separately from the interior nodes: rightmost polynomials
are remainder-sequence members ``F_{i}`` with coefficient size
``<= (2^K - 2^{K-l}) beta`` (Eq. 46), while interior nodes carry the
much larger ``P^{(l,j)}`` with ``||P|| <= 2^{K-l}(2j+1) beta``
(Eq. 44), and it sums the evaluation costs separately (Eqs. 48 and the
following display).

:func:`measure_interval_levels` reproduces that decomposition
empirically: it re-runs the bottom-up interval phase recording each
node's interval-phase bit cost, then aggregates per (level, spine?)
cell, together with the measured coefficient sizes driving the split.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.interval import IntervalProblemSolver, solve_linear_scaled
from repro.core.remainder import compute_remainder_sequence
from repro.core.rootfinder import merge_sorted
from repro.core.sieve import IntervalStats
from repro.core.tree import InterleavingTree
from repro.costmodel.counter import CostCounter
from repro.poly.dense import IntPoly
from repro.poly.roots_bounds import root_bound_bits

__all__ = ["LevelCell", "LevelProfile", "measure_interval_levels"]


@dataclass
class LevelCell:
    """Aggregated interval-phase observations for one (level, kind)."""

    level: int
    rightmost: bool
    nodes: int = 0
    degree_sum: int = 0
    coeff_bits_max: int = 0
    bit_cost: int = 0
    evaluations: int = 0

    @property
    def bit_cost_per_node(self) -> float:
        return self.bit_cost / self.nodes if self.nodes else 0.0


@dataclass
class LevelProfile:
    """The full per-level decomposition for one input."""

    n: int
    mu: int
    cells: dict[tuple[int, bool], LevelCell] = field(default_factory=dict)

    def cell(self, level: int, rightmost: bool) -> LevelCell:
        key = (level, rightmost)
        if key not in self.cells:
            self.cells[key] = LevelCell(level=level, rightmost=rightmost)
        return self.cells[key]

    def levels(self) -> list[int]:
        return sorted({lvl for (lvl, _r) in self.cells})

    def total_bit_cost(self) -> int:
        return sum(c.bit_cost for c in self.cells.values())


def measure_interval_levels(p: IntPoly, mu: int) -> LevelProfile:
    """Run the bottom-up interval phase, attributing cost per level/kind.

    ``p`` must be square-free and real-rooted.  The returned profile's
    total matches a normal run's interval-phase cost (same work, just
    bucketed).
    """
    if p.leading_coefficient < 0:
        p = -p
    seq = compute_remainder_sequence(p)
    tree = InterleavingTree(seq)
    tree.compute_polynomials()
    r_bits = root_bound_bits(p)

    profile = LevelProfile(n=seq.n, mu=mu)
    for node in tree.nodes_postorder():
        if node.is_empty:
            node.roots_scaled = []
            continue
        assert node.poly is not None
        rightmost = node.j == seq.n
        cell = profile.cell(node.level, rightmost)
        cell.nodes += 1
        cell.degree_sum += node.degree
        cell.coeff_bits_max = max(
            cell.coeff_bits_max, node.poly.max_coefficient_bits()
        )
        if node.degree == 1:
            node.roots_scaled = [solve_linear_scaled(node.poly, mu)]
            continue
        counter = CostCounter()
        stats = IntervalStats()
        solver = IntervalProblemSolver(node.poly, mu, r_bits, counter, stats)
        assert node.left is not None and node.right is not None
        inter = merge_sorted(
            node.left.roots_scaled or [], node.right.roots_scaled or []
        )
        node.roots_scaled = solver.solve_all(inter)
        cell.bit_cost += counter.total_bit_cost
        cell.evaluations += stats.evaluations
    return profile
