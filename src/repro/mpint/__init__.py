"""From-scratch schoolbook multiprecision integers (UNIX ``mp`` stand-in)."""

from repro.mpint.mpint import MPInt, LIMB_BITS, LIMB_BASE

__all__ = ["MPInt", "LIMB_BITS", "LIMB_BASE"]
