"""A from-scratch multiprecision integer in the image of the UNIX ``mp`` package.

The paper's implementation did all arithmetic with the UNIX ``mp``
library, which uses the *straightforward* algorithms: linear-time
addition/subtraction and quadratic-time multiplication and division
(paper Section 3.3).  Python's built-in ``int`` is asymptotically better
(Karatsuba), which would silently distort any attempt to validate the
paper's quadratic bit-cost model against real arithmetic.

:class:`MPInt` is a faithful substitute: sign-magnitude, base ``2**15``
limbs, schoolbook multiply and Knuth Algorithm D division.  It is used

* by the test suite, cross-validated against ``int`` with hypothesis;
* by the cost-model calibration bench, which fits measured ``MPInt``
  multiply times against the ``bits(a)*bits(b)`` model to justify using
  that model as the simulated-time currency.

The main algorithm uses ``int`` + :class:`~repro.costmodel.counter.CostCounter`
for speed; MPInt exists to *validate* that accounting, not to run under it.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["MPInt", "LIMB_BITS", "LIMB_BASE"]

LIMB_BITS = 15
LIMB_BASE = 1 << LIMB_BITS
LIMB_MASK = LIMB_BASE - 1


def _trim(limbs: list[int]) -> list[int]:
    while limbs and limbs[-1] == 0:
        limbs.pop()
    return limbs


def _cmp_mag(a: list[int], b: list[int]) -> int:
    if len(a) != len(b):
        return 1 if len(a) > len(b) else -1
    for x, y in zip(reversed(a), reversed(b)):
        if x != y:
            return 1 if x > y else -1
    return 0


def _add_mag(a: list[int], b: list[int]) -> list[int]:
    if len(a) < len(b):
        a, b = b, a
    out = []
    carry = 0
    for i in range(len(a)):
        s = a[i] + (b[i] if i < len(b) else 0) + carry
        out.append(s & LIMB_MASK)
        carry = s >> LIMB_BITS
    if carry:
        out.append(carry)
    return out


def _sub_mag(a: list[int], b: list[int]) -> list[int]:
    """a - b for |a| >= |b|."""
    out = []
    borrow = 0
    for i in range(len(a)):
        s = a[i] - (b[i] if i < len(b) else 0) - borrow
        if s < 0:
            s += LIMB_BASE
            borrow = 1
        else:
            borrow = 0
        out.append(s)
    if borrow:
        raise ArithmeticError("_sub_mag underflow: |a| < |b|")
    return _trim(out)


def _mul_mag(a: list[int], b: list[int]) -> list[int]:
    """Schoolbook O(len(a)*len(b)) product — the ``mp`` model."""
    if not a or not b:
        return []
    out = [0] * (len(a) + len(b))
    for i, ai in enumerate(a):
        if ai == 0:
            continue
        carry = 0
        for j, bj in enumerate(b):
            t = out[i + j] + ai * bj + carry
            out[i + j] = t & LIMB_MASK
            carry = t >> LIMB_BITS
        k = i + len(b)
        while carry:
            t = out[k] + carry
            out[k] = t & LIMB_MASK
            carry = t >> LIMB_BITS
            k += 1
    return _trim(out)


def _shl_mag(a: list[int], k: int) -> list[int]:
    if not a or k == 0:
        return list(a)
    limb_shift, bit_shift = divmod(k, LIMB_BITS)
    out = [0] * limb_shift
    carry = 0
    for x in a:
        v = (x << bit_shift) | carry
        out.append(v & LIMB_MASK)
        carry = v >> LIMB_BITS
    if carry:
        out.append(carry)
    return _trim(out)


def _shr_mag(a: list[int], k: int) -> list[int]:
    if not a or k == 0:
        return list(a)
    limb_shift, bit_shift = divmod(k, LIMB_BITS)
    if limb_shift >= len(a):
        return []
    a = a[limb_shift:]
    if bit_shift == 0:
        return _trim(list(a))
    out = []
    for i, x in enumerate(a):
        hi = a[i + 1] if i + 1 < len(a) else 0
        out.append(((x >> bit_shift) | (hi << (LIMB_BITS - bit_shift))) & LIMB_MASK)
    return _trim(out)


def _divmod_mag(a: list[int], b: list[int]) -> tuple[list[int], list[int]]:
    """Knuth Algorithm D on magnitudes; returns (quotient, remainder)."""
    if not b:
        raise ZeroDivisionError("MPInt division by zero")
    if _cmp_mag(a, b) < 0:
        return [], list(a)
    if len(b) == 1:
        # short division
        d = b[0]
        out = [0] * len(a)
        rem = 0
        for i in range(len(a) - 1, -1, -1):
            cur = (rem << LIMB_BITS) | a[i]
            out[i] = cur // d
            rem = cur % d
        return _trim(out), _trim([rem])

    # Normalize so the top limb of b has its high bit set.
    shift = LIMB_BITS - b[-1].bit_length()
    an = _shl_mag(a, shift)
    bn = _shl_mag(b, shift)
    n = len(bn)
    m = len(an) - n
    if m < 0:
        return [], list(a)
    an = an + [0]  # extra headroom limb
    q = [0] * (m + 1)
    bt = bn[-1]
    bt2 = bn[-2]
    for j in range(m, -1, -1):
        num = (an[j + n] << LIMB_BITS) | an[j + n - 1]
        qhat = num // bt
        rhat = num - qhat * bt
        while qhat >= LIMB_BASE or qhat * bt2 > ((rhat << LIMB_BITS) | an[j + n - 2]):
            qhat -= 1
            rhat += bt
            if rhat >= LIMB_BASE:
                break
        # multiply-subtract
        borrow = 0
        carry = 0
        for i in range(n):
            p = qhat * bn[i] + carry
            carry = p >> LIMB_BITS
            sub = an[j + i] - (p & LIMB_MASK) - borrow
            if sub < 0:
                sub += LIMB_BASE
                borrow = 1
            else:
                borrow = 0
            an[j + i] = sub
        sub = an[j + n] - carry - borrow
        if sub < 0:
            sub += LIMB_BASE
            borrow = 1
        else:
            borrow = 0
        an[j + n] = sub
        if borrow:
            # qhat was one too large: add back
            qhat -= 1
            carry = 0
            for i in range(n):
                s = an[j + i] + bn[i] + carry
                an[j + i] = s & LIMB_MASK
                carry = s >> LIMB_BITS
            an[j + n] = (an[j + n] + carry) & LIMB_MASK
        q[j] = qhat
    rem = _shr_mag(_trim(an[:n]), shift)
    return _trim(q), rem


class MPInt:
    """Sign-magnitude multiprecision integer with schoolbook arithmetic."""

    __slots__ = ("sign", "limbs")

    def __init__(self, value: "int | MPInt" = 0):
        if isinstance(value, MPInt):
            self.sign = value.sign
            self.limbs = list(value.limbs)
            return
        v = int(value)
        self.sign = -1 if v < 0 else (1 if v > 0 else 0)
        v = abs(v)
        limbs: list[int] = []
        while v:
            limbs.append(v & LIMB_MASK)
            v >>= LIMB_BITS
        self.limbs = limbs

    @classmethod
    def _raw(cls, sign: int, limbs: list[int]) -> "MPInt":
        out = object.__new__(cls)
        _trim(limbs)
        out.limbs = limbs
        out.sign = 0 if not limbs else sign
        return out

    # -- conversions ----------------------------------------------------
    def __int__(self) -> int:
        v = 0
        for limb in reversed(self.limbs):
            v = (v << LIMB_BITS) | limb
        return v * self.sign if self.sign else 0

    def to_int(self) -> int:
        return int(self)

    def bit_length(self) -> int:
        if not self.limbs:
            return 0
        return (len(self.limbs) - 1) * LIMB_BITS + self.limbs[-1].bit_length()

    def __repr__(self) -> str:
        return f"MPInt({int(self)})"

    # -- comparisons -----------------------------------------------------
    def _coerce(self, other: "int | MPInt") -> "MPInt":
        return other if isinstance(other, MPInt) else MPInt(other)

    def compare(self, other: "int | MPInt") -> int:
        o = self._coerce(other)
        if self.sign != o.sign:
            return 1 if self.sign > o.sign else -1
        c = _cmp_mag(self.limbs, o.limbs)
        return c * (self.sign or 1) if self.sign != 0 else 0

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, MPInt)):
            return self.compare(other) == 0
        return NotImplemented

    def __hash__(self) -> int:
        return hash(int(self))

    def __lt__(self, other: "int | MPInt") -> bool:
        return self.compare(other) < 0

    def __le__(self, other: "int | MPInt") -> bool:
        return self.compare(other) <= 0

    def __gt__(self, other: "int | MPInt") -> bool:
        return self.compare(other) > 0

    def __ge__(self, other: "int | MPInt") -> bool:
        return self.compare(other) >= 0

    def __bool__(self) -> bool:
        return self.sign != 0

    # -- arithmetic --------------------------------------------------------
    def __neg__(self) -> "MPInt":
        return MPInt._raw(-self.sign, list(self.limbs))

    def __abs__(self) -> "MPInt":
        return MPInt._raw(abs(self.sign), list(self.limbs))

    def __add__(self, other: "int | MPInt") -> "MPInt":
        o = self._coerce(other)
        if self.sign == 0:
            return MPInt(o)
        if o.sign == 0:
            return MPInt(self)
        if self.sign == o.sign:
            return MPInt._raw(self.sign, _add_mag(self.limbs, o.limbs))
        c = _cmp_mag(self.limbs, o.limbs)
        if c == 0:
            return MPInt(0)
        if c > 0:
            return MPInt._raw(self.sign, _sub_mag(self.limbs, o.limbs))
        return MPInt._raw(o.sign, _sub_mag(o.limbs, self.limbs))

    __radd__ = __add__

    def __sub__(self, other: "int | MPInt") -> "MPInt":
        return self + (-self._coerce(other))

    def __rsub__(self, other: "int | MPInt") -> "MPInt":
        return self._coerce(other) + (-self)

    def __mul__(self, other: "int | MPInt") -> "MPInt":
        o = self._coerce(other)
        if self.sign == 0 or o.sign == 0:
            return MPInt(0)
        return MPInt._raw(self.sign * o.sign, _mul_mag(self.limbs, o.limbs))

    __rmul__ = __mul__

    def __divmod__(self, other: "int | MPInt") -> tuple["MPInt", "MPInt"]:
        """Floor division semantics, matching Python's ``divmod``."""
        o = self._coerce(other)
        if o.sign == 0:
            raise ZeroDivisionError("MPInt division by zero")
        q_mag, r_mag = _divmod_mag(self.limbs, o.limbs)
        q = MPInt._raw(self.sign * o.sign if q_mag else 0, q_mag)
        r = MPInt._raw(self.sign if r_mag else 0, r_mag)
        # Adjust truncated -> floored when signs differ and remainder != 0.
        if r.sign != 0 and (self.sign * o.sign) < 0:
            q = q - MPInt(1)
            r = r + o
        return q, r

    def __rdivmod__(self, other: "int | MPInt") -> tuple["MPInt", "MPInt"]:
        return divmod(self._coerce(other), self)

    def __floordiv__(self, other: "int | MPInt") -> "MPInt":
        return divmod(self, other)[0]

    def __rfloordiv__(self, other: "int | MPInt") -> "MPInt":
        return divmod(self._coerce(other), self)[0]

    def __mod__(self, other: "int | MPInt") -> "MPInt":
        return divmod(self, other)[1]

    def __rmod__(self, other: "int | MPInt") -> "MPInt":
        return divmod(self._coerce(other), self)[1]

    def __lshift__(self, k: int) -> "MPInt":
        if k < 0:
            raise ValueError("negative shift count")
        return MPInt._raw(self.sign, _shl_mag(self.limbs, k))

    def __rshift__(self, k: int) -> "MPInt":
        """Arithmetic (floor) right shift, matching Python ints."""
        if k < 0:
            raise ValueError("negative shift count")
        mag = _shr_mag(self.limbs, k)
        out = MPInt._raw(self.sign if mag else 0, mag)
        if self.sign < 0:
            # floor semantics: if any bit was shifted out, round away from 0
            lost = _sub_mag(self.limbs, _shl_mag(_shr_mag(self.limbs, k), k))
            if lost:
                out = out - MPInt(1)
        return out

    def __pow__(self, e: int) -> "MPInt":
        if e < 0:
            raise ValueError("negative exponent")
        result = MPInt(1)
        base = MPInt(self)
        while e:
            if e & 1:
                result = result * base
            base = base * base
            e >>= 1
        return result


def mp_sum(values: Iterable["MPInt | int"]) -> MPInt:
    """Sum helper used by tests."""
    acc = MPInt(0)
    for v in values:
        acc = acc + (v if isinstance(v, MPInt) else MPInt(v))
    return acc
