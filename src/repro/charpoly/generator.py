"""Workload generators: the paper's random symmetric integer matrices.

Section 5: "the input polynomials we used were the characteristic
equations of randomly generated symmetric matrices over the integers
... the matrices generated were random 0-1 matrices".  The coefficient
size ``m(n)`` of the resulting degree-``n`` polynomial then grows
roughly like the paper's Table 2 column (2 bits at n=10 up to 36 bits
at n=70 — ours tracks the same trend since it is a property of the
distribution, not the machine).

Seeding is explicit everywhere: every experiment is reproducible from
``(degree, seed)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.charpoly.berkowitz import berkowitz_charpoly
from repro.poly.dense import IntPoly

__all__ = [
    "random_symmetric_01_matrix",
    "random_symmetric_matrix",
    "characteristic_input",
    "CharPolyInput",
    "paper_degrees",
    "PAPER_SEEDS",
]

#: The degree grid of Section 5: 10, 15, ..., 70.
def paper_degrees(max_degree: int = 70) -> list[int]:
    """The degree grid of Section 5: 10, 15, ..., max_degree."""
    return list(range(10, max_degree + 1, 5))


#: Three polynomials per degree, as in the paper ("for each degree 3
#: different polynomials were generated").
PAPER_SEEDS = (11, 23, 47)


def random_symmetric_01_matrix(n: int, seed: int) -> list[list[int]]:
    """A random symmetric matrix with independent 0/1 entries (upper
    triangle sampled, mirrored)."""
    rng = random.Random(f"sym01-{n}-{seed}")
    a = [[0] * n for _ in range(n)]
    for i in range(n):
        for j in range(i, n):
            v = rng.randint(0, 1)
            a[i][j] = v
            a[j][i] = v
    return a


def random_symmetric_matrix(n: int, seed: int, entry_bound: int = 1) -> list[list[int]]:
    """Symmetric matrix with entries uniform in ``[-entry_bound, entry_bound]``.

    ``entry_bound=1`` with shifted sampling gives the paper's 0-1 case via
    :func:`random_symmetric_01_matrix`; larger bounds let the benches
    explore the ``m`` (coefficient size) axis independently of ``n``.
    """
    rng = random.Random(f"sym-{n}-{seed}-{entry_bound}")
    a = [[0] * n for _ in range(n)]
    for i in range(n):
        for j in range(i, n):
            v = rng.randint(-entry_bound, entry_bound)
            a[i][j] = v
            a[j][i] = v
    return a


@dataclass(frozen=True)
class CharPolyInput:
    """One workload instance: the polynomial plus its provenance."""

    degree: int
    seed: int
    poly: IntPoly
    coeff_bits: int  # the paper's m(n), measured

    @property
    def label(self) -> str:
        return f"n={self.degree} seed={self.seed} m={self.coeff_bits}"


def characteristic_input(
    n: int, seed: int, entry_bound: int | None = None
) -> CharPolyInput:
    """The paper's workload: char poly of a random symmetric matrix.

    ``entry_bound=None`` uses 0-1 entries (the paper's Table 2 runs);
    an integer bound switches to symmetric ``[-b, b]`` entries.
    """
    if entry_bound is None:
        mat = random_symmetric_01_matrix(n, seed)
    else:
        mat = random_symmetric_matrix(n, seed, entry_bound)
    p = berkowitz_charpoly(mat)
    return CharPolyInput(
        degree=n, seed=seed, poly=p, coeff_bits=p.max_coefficient_bits()
    )
