"""Exact integer characteristic polynomials (division-free Berkowitz).

The paper's inputs are "the characteristic equations of randomly
generated symmetric matrices over the integers" (Section 5).  A
symmetric integer matrix has an all-real-roots characteristic
polynomial with integer coefficients — the ideal workload for the
algorithm.  The Berkowitz algorithm computes that polynomial exactly
using only ring operations (no divisions), so it works verbatim over
Python ints with no overflow or rounding concerns.

Complexity is O(n^4) ring multiplications — irrelevant next to the
root-finding cost for the paper's degree range.
"""

from __future__ import annotations

from typing import Sequence

from repro.poly.dense import IntPoly

__all__ = ["berkowitz_charpoly", "charpoly_int"]

Matrix = Sequence[Sequence[int]]


def _toeplitz_vector_product(col: list[int], vec: list[int]) -> list[int]:
    """Multiply the lower-triangular Toeplitz matrix defined by ``col``
    (first column) with ``vec``.

    The Berkowitz recursion composes exactly such products; writing it
    as an explicit convolution keeps everything in flat ints.
    """
    n_out = len(col)
    out = [0] * n_out
    for i in range(n_out):
        acc = 0
        # out[i] = sum_{k} col[i-k] * vec[k] for 0 <= k <= min(i, len(vec)-1)
        upper = min(i, len(vec) - 1)
        for k in range(upper + 1):
            acc += col[i - k] * vec[k]
        out[i] = acc
    return out


def berkowitz_charpoly(matrix: Matrix) -> IntPoly:
    """Characteristic polynomial ``det(x*I - A)`` of an integer matrix.

    Returns a monic :class:`IntPoly` of degree ``n``.
    """
    n = len(matrix)
    if n == 0:
        return IntPoly.one()
    for row in matrix:
        if len(row) != n:
            raise ValueError("matrix must be square")
    a = [[int(x) for x in row] for row in matrix]

    # Berkowitz: process leading principal submatrices; ``poly`` holds the
    # char-poly coefficient vector (highest degree first) of the current
    # leading submatrix.
    poly = [1, -a[0][0]]  # char poly of the 1x1 submatrix
    for k in range(1, n):
        akk = a[k][k]
        row = a[k][:k]  # R: the new row (left of the diagonal)
        col = [a[i][k] for i in range(k)]  # C: the new column
        sub = [r[:k] for r in a[:k]]  # the previous submatrix M

        # First column of the (k+2) x (k+1) Toeplitz matrix:
        # [1, -akk, -(R C), -(R M C), -(R M^2 C), ...]
        t_col = [1, -akk]
        vec = col[:]
        for _ in range(k - 1 + 1):  # need k additional entries in total
            if len(t_col) >= k + 2:
                break
            dot = sum(row[i] * vec[i] for i in range(k))
            t_col.append(-dot)
            # vec <- M @ vec
            vec = [sum(sub[i][j] * vec[j] for j in range(k)) for i in range(k)]
        while len(t_col) < k + 2:
            t_col.append(0)

        poly = _toeplitz_vector_product(t_col, poly)

    # ``poly`` is highest-degree-first; IntPoly wants lowest-first.
    return IntPoly(list(reversed(poly)))


def charpoly_int(matrix: Matrix) -> IntPoly:
    """Alias with the conventional name used across the benches."""
    return berkowitz_charpoly(matrix)
