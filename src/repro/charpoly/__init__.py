"""Workload substrate: exact characteristic polynomials of random
symmetric integer matrices (the paper's Section 5 inputs)."""

from repro.charpoly.berkowitz import berkowitz_charpoly, charpoly_int
from repro.charpoly.generator import (
    CharPolyInput,
    characteristic_input,
    paper_degrees,
    random_symmetric_01_matrix,
    random_symmetric_matrix,
    PAPER_SEEDS,
)

__all__ = [
    "berkowitz_charpoly",
    "charpoly_int",
    "CharPolyInput",
    "characteristic_input",
    "paper_degrees",
    "random_symmetric_01_matrix",
    "random_symmetric_matrix",
    "PAPER_SEEDS",
]
