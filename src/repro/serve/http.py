"""Minimal asyncio HTTP/1.1 front-end (stdlib only, no frameworks).

Routes:

* ``POST /solve`` — one request object in the body, one response
  object back; the HTTP status is the response's ``code`` (200 ok,
  206 partial, 429 overloaded with a ``Retry-After`` header, 400/503
  errors) and the server-assigned request id rides in the
  ``X-Request-Id`` header as well as the body;
* ``GET /metrics`` — OpenMetrics text exposition of the shared
  registry (:func:`repro.obs.export.render_openmetrics`);
* ``GET /metrics.json`` — the same registry as a JSON snapshot;
* ``GET /healthz`` — **liveness**: the process is up and serving
  (always 200) + the current queue depth;
* ``GET /readyz`` — **readiness**: 503 while draining or with the
  executor's circuit breaker open; reports breaker state, pool
  liveness, and queue headroom
  (:meth:`~repro.serve.server.RootServer.health`);
* ``GET /slo`` — the configured objectives evaluated over the
  request-timeline ring
  (:meth:`~repro.serve.server.RootServer.slo_report`).

Connections are keep-alive (``Connection: close`` honored); request
bodies are capped at 1 MiB (413 beyond).  This is a lab daemon, not an
internet-facing proxy — TLS, auth, and HTTP/2 are out of scope by
design; front it with a real proxy if it ever leaves localhost.
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from typing import Any

from repro.obs.export import CONTENT_TYPE, render_openmetrics
from repro.serve.protocol import HTTP_REASONS, salvage_id
from repro.serve.server import RootServer

__all__ = ["start_http_server", "serve_http", "MAX_BODY_BYTES"]

MAX_BODY_BYTES = 1 << 20

_JSON = "application/json"


def _response_bytes(code: int, body: bytes, content_type: str,
                    extra: dict[str, str] | None = None,
                    close: bool = False) -> bytes:
    reason = HTTP_REASONS.get(code, "Unknown")
    head = [
        f"HTTP/1.1 {code} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'close' if close else 'keep-alive'}",
    ]
    for k, v in (extra or {}).items():
        head.append(f"{k}: {v}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + body


def _json_bytes(obj: Any) -> bytes:
    return json.dumps(obj).encode("utf-8")


async def _read_request(reader: asyncio.StreamReader):
    """Parse one request: ``(method, path, headers, body)`` or ``None``
    at EOF / on an unparseable preamble."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not request_line:
        return None
    try:
        method, path, _version = request_line.decode("ascii").split(None, 2)
    except ValueError:
        return None
    headers: dict[str, str] = {}
    while True:
        hline = await reader.readline()
        if hline in (b"\r\n", b"\n", b""):
            break
        try:
            name, _, value = hline.decode("ascii").partition(":")
        except UnicodeDecodeError:
            return None
        headers[name.strip().lower()] = value.strip()
    length = headers.get("content-length", "0")
    try:
        n = int(length)
    except ValueError:
        return None
    if n < 0 or n > MAX_BODY_BYTES:
        return method, path, headers, None  # handler answers 413
    body = await reader.readexactly(n) if n else b""
    return method, path, headers, body


async def _handle_connection(server: RootServer,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
    try:
        while True:
            parsed = await _read_request(reader)
            if parsed is None:
                break
            method, path, headers, body = parsed
            close = headers.get("connection", "").lower() == "close"
            if body is None:
                out = _response_bytes(
                    413, _json_bytes({"status": "error", "code": 413,
                                      "error": "body too large"}),
                    _JSON, close=True)
                writer.write(out)
                await writer.drain()
                break
            payload, io_note = await _route(server, method, path, body,
                                            close=close)
            t0 = time.perf_counter_ns()
            writer.write(payload)
            await writer.drain()
            if io_note is not None:
                # Report the transport write back onto the request's
                # timeline (serialize was measured inside the route).
                rid, ser_start, ser_ns = io_note
                server.tracker.finish_io(
                    rid, ser_ns, time.perf_counter_ns() - t0,
                    start_ns=ser_start)
            if close:
                break
    except (ConnectionError, asyncio.IncompleteReadError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _route(server: RootServer, method: str, path: str,
                 body: bytes, *, close: bool
                 ) -> tuple[bytes, tuple[str, int, int] | None]:
    """Dispatch one request: ``(response_bytes, io_note)``.

    ``io_note`` is ``(request_id, serialize_start_ns, serialize_ns)``
    for solve responses whose timeline is waiting on the transport
    write (the connection handler times the write and reports both
    stages via ``tracker.finish_io``), ``None`` for everything else."""
    path = path.split("?", 1)[0]
    if method == "POST" and path in ("/solve", "/"):
        text = body.decode("utf-8", errors="replace")
        try:
            obj = json.loads(text)
        except ValueError as e:
            resp = server.reject(salvage_id(text), f"not valid JSON: {e}")
            return _response_bytes(
                400, _json_bytes(resp), _JSON,
                extra={"X-Request-Id": str(resp["request_id"])},
                close=close), None
        resp = await server.submit(obj, defer_io=True)
        extra = {}
        rid = resp.get("request_id")
        if rid is not None:
            extra["X-Request-Id"] = str(rid)
        if resp.get("status") == "overloaded":
            extra["Retry-After"] = str(
                int(resp.get("retry_after_seconds", 1)) or 1)
        t0 = time.perf_counter_ns()
        payload = _response_bytes(int(resp.get("code", 200)),
                                  _json_bytes(resp), _JSON, extra=extra,
                                  close=close)
        ser_ns = time.perf_counter_ns() - t0
        note = ((str(rid), t0, ser_ns) if isinstance(rid, str) else None)
        return payload, note
    if method == "GET" and path == "/metrics":
        text = render_openmetrics(server.metrics)
        return _response_bytes(200, text.encode("utf-8"), CONTENT_TYPE,
                               close=close), None
    if method == "GET" and path == "/metrics.json":
        return _response_bytes(200, _json_bytes(server.metrics_snapshot()),
                               _JSON, close=close), None
    if method == "GET" and path == "/healthz":
        return _response_bytes(
            200, _json_bytes({"status": "ok", "alive": True,
                              "queue_depth": server.queue_depth(),
                              "limit": server.max_pending}),
            _JSON, close=close), None
    if method == "GET" and path == "/readyz":
        code, health = server.health()
        return _response_bytes(code, _json_bytes(health), _JSON,
                               close=close), None
    if method == "GET" and path == "/slo":
        return _response_bytes(200, _json_bytes(server.slo_report()),
                               _JSON, close=close), None
    return _response_bytes(
        404, _json_bytes({"status": "error", "code": 404,
                          "error": f"no route {method} {path}"}),
        _JSON, close=close), None


async def start_http_server(server: RootServer, host: str = "127.0.0.1",
                            port: int = 0) -> asyncio.AbstractServer:
    """Start the root server and bind the HTTP listener; returns the
    asyncio server (``port=0`` picks a free port — read it from
    ``sockets[0].getsockname()``)."""
    await server.start()
    return await asyncio.start_server(
        lambda r, w: _handle_connection(server, r, w), host, port
    )


async def serve_http(server: RootServer, host: str, port: int) -> int:
    """Run the HTTP front-end until cancelled (Ctrl-C); returns 0.

    The root server is closed — pool workers joined — on the way out.
    """
    aio = await start_http_server(server, host, port)
    bound = aio.sockets[0].getsockname()
    print(f"repro serve: http://{bound[0]}:{bound[1]} "
          f"(POST /solve, GET /metrics)", file=sys.stderr, flush=True)
    try:
        async with aio:
            await aio.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.aclose()
    return 0
