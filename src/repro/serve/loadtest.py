"""``repro loadtest``: replay mixed-degree traffic against a live daemon.

The driver generates a seeded request stream (mixed degrees, a tunable
duplicate fraction so the cache has something to hit), plays it through
one of three transports —

* ``stdio`` (default) — spawns a real ``repro serve --stdio`` daemon as
  a subprocess and pipelines JSONL over its pipes: the full
  serialize/parse/schedule path, exactly what production embedding
  looks like;
* ``http`` — POSTs against a running HTTP daemon (``--url``);
* ``inprocess`` — drives a :class:`~repro.serve.server.RootServer`
  object directly (no transport cost; isolates server overhead);

— then **verifies every answer bit-for-bit** against the sequential
:class:`~repro.core.rootfinder.RealRootFinder` and folds the outcome
into a :class:`~repro.obs.perf.BenchArtifact`:

* exactly-gated ``count`` metrics: request/unique/completed/ok tallies,
  ``loadtest.incorrect`` (must stay 0), and ``loadtest.cache_hits`` —
  deterministic because the server's single solve lane answers a
  duplicate strictly after its first occurrence, so
  ``hits == requests - unique`` independent of timing;
* informational ``wall`` metrics: p50/p99/mean latency (exact
  percentiles over the full latency list — the power-of-two histogram
  is too coarse for a gate report), throughput, and cache hit rate.

``repro loadtest --check baseline.json`` applies the same tolerance-
band gate as ``repro bench --check``.
"""

from __future__ import annotations

import asyncio
import json
import math
import random
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.bench.workloads import random_real_rooted
from repro.core.rootfinder import RealRootFinder
from repro.obs.metrics import histogram_from_dict
from repro.obs.perf import BenchArtifact
from repro.obs.slo import DEFAULT_SLO, SLOConfig, evaluate_slo
from repro.poly.dense import IntPoly
from repro.resilience.checkpoint import poly_key

__all__ = [
    "generate_requests",
    "expected_answers",
    "exact_percentile",
    "LoadtestReport",
    "InprocessClient",
    "StdioClient",
    "HttpClient",
    "run_loadtest",
    "build_artifact",
]


# -- workload ----------------------------------------------------------------

def generate_requests(
    n: int,
    seed: int,
    degrees: Sequence[int],
    duplicate_fraction: float,
    mu: int,
    strategy: str = "hybrid",
) -> list[dict[str, Any]]:
    """A seeded stream of ``n`` solve requests over ``degrees``.

    Each request is either a fresh polynomial (degrees cycled; two
    thirds irrational-rooted via :func:`random_real_rooted`, one third
    integer-rooted) or, with probability ``duplicate_fraction``, an
    exact repeat of an earlier one — the traffic the result cache is
    for.  Fully deterministic for one ``(n, seed, degrees,
    duplicate_fraction)`` tuple.
    """
    if not degrees:
        raise ValueError("degrees must be nonempty")
    rng = random.Random(seed)
    uniques: list[list[int]] = []
    reqs: list[dict[str, Any]] = []
    fresh = 0
    for i in range(n):
        if uniques and rng.random() < duplicate_fraction:
            coeffs = rng.choice(uniques)
        else:
            deg = degrees[fresh % len(degrees)]
            if fresh % 3 == 2:
                roots = rng.sample(range(-3 * deg - 3, 3 * deg + 4), deg)
                p = IntPoly.from_roots(roots)
            else:
                p = random_real_rooted(deg, seed * 1000 + fresh)
            coeffs = list(p.coeffs)
            uniques.append(coeffs)
            fresh += 1
        reqs.append({"id": i, "coeffs": coeffs, "bits": mu,
                     "strategy": strategy})
    return reqs


def expected_answers(
    requests: Sequence[dict[str, Any]]
) -> dict[str, list[str]]:
    """Ground truth per unique key, from the sequential finder.

    Maps each request's :func:`poly_key` to the decimal-string scaled
    roots the daemon must return byte-for-byte.
    """
    out: dict[str, list[str]] = {}
    for r in requests:
        key = poly_key(r["coeffs"], r["bits"], r.get("strategy", "hybrid"))
        if key in out:
            continue
        result = RealRootFinder(
            mu_bits=r["bits"], strategy=r.get("strategy", "hybrid")
        ).find_roots(IntPoly(r["coeffs"]))
        out[key] = [str(s) for s in result.scaled]
    return out


def exact_percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over an ascending list (exact, no
    bucketing); raises on an empty list."""
    if not sorted_values:
        raise ValueError("no samples")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    rank = max(1, math.ceil(len(sorted_values) * q))
    return sorted_values[rank - 1]


# -- transports --------------------------------------------------------------

class InprocessClient:
    """Drive a :class:`RootServer` object directly (no transport)."""

    def __init__(self, **server_kwargs: Any):
        from repro.serve.server import RootServer

        self.server = RootServer(**server_kwargs)

    async def __aenter__(self) -> "InprocessClient":
        await self.server.start()
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.server.aclose()

    async def request(self, obj: dict[str, Any]) -> dict[str, Any]:
        return await self.server.submit(obj)

    async def metrics(self) -> dict[str, Any]:
        """The server registry's snapshot (no transport round-trip)."""
        return self.server.metrics_snapshot("__metrics__")


class StdioClient:
    """Spawn a live ``repro serve --stdio`` daemon and pipeline JSONL
    over its pipes, matching responses to requests by ``id``."""

    def __init__(self, mu: int, processes: int, strategy: str = "hybrid",
                 max_pending: int = 4096, extra_args: Sequence[str] = ()):
        self._argv = [
            sys.executable, "-m", "repro", "serve", "--stdio",
            "--bits", str(mu), "--processes", str(processes),
            "--strategy", strategy, "--max-pending", str(max_pending),
            *extra_args,
        ]
        self._proc: Any = None
        self._reader_task: Any = None
        self._futures: dict[Any, asyncio.Future] = {}

    async def __aenter__(self) -> "StdioClient":
        self._proc = await asyncio.create_subprocess_exec(
            *self._argv,
            stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE,
        )
        self._reader_task = asyncio.ensure_future(self._read_loop())
        return self

    async def __aexit__(self, *exc: Any) -> None:
        if self._proc.returncode is None:
            await self._send({"op": "shutdown", "id": "__shutdown__"})
            await self._proc.wait()
        await self._reader_task
        for fut in self._futures.values():
            if not fut.done():
                fut.set_exception(ConnectionError("daemon exited"))

    async def _send(self, obj: dict[str, Any]) -> None:
        self._proc.stdin.write((json.dumps(obj) + "\n").encode())
        await self._proc.stdin.drain()

    async def _read_loop(self) -> None:
        while True:
            line = await self._proc.stdout.readline()
            if not line:
                break
            try:
                resp = json.loads(line)
            except json.JSONDecodeError:
                continue
            fut = self._futures.pop(resp.get("id"), None)
            if fut is not None and not fut.done():
                fut.set_result(resp)

    async def request(self, obj: dict[str, Any]) -> dict[str, Any]:
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self._futures[obj["id"]] = fut
        await self._send(obj)
        return await fut

    async def metrics(self) -> dict[str, Any]:
        """The daemon's barrier metrics snapshot (see stdio protocol)."""
        return await self.request({"op": "metrics", "id": "__metrics__"})


class HttpClient:
    """POST each request to a running HTTP daemon (one connection per
    request, ``Connection: close`` — simple and proxy-shaped)."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port

    async def __aenter__(self) -> "HttpClient":
        return self

    async def __aexit__(self, *exc: Any) -> None:
        return None

    async def _roundtrip(self, head: bytes, body: bytes = b"") -> bytes:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            writer.write(head + body)
            await writer.drain()
            raw = await reader.read()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        return raw

    async def request(self, obj: dict[str, Any]) -> dict[str, Any]:
        body = json.dumps(obj).encode()
        raw = await self._roundtrip(
            b"POST /solve HTTP/1.1\r\n"
            b"Host: " + self.host.encode() + b"\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"Connection: close\r\n\r\n", body
        )
        head, _, payload = raw.partition(b"\r\n\r\n")
        if not head:
            raise ConnectionError("empty HTTP response")
        return json.loads(payload)

    async def get_json(self, path: str) -> dict[str, Any]:
        """``GET path`` and parse the JSON body, whatever the status
        code (a 503 ``/readyz`` body is as interesting as a 200 one)."""
        raw = await self._roundtrip(
            b"GET " + path.encode("ascii") + b" HTTP/1.1\r\n"
            b"Host: " + self.host.encode() + b"\r\n"
            b"Connection: close\r\n\r\n"
        )
        head, _, payload = raw.partition(b"\r\n\r\n")
        if not head:
            raise ConnectionError("empty HTTP response")
        return json.loads(payload)

    async def metrics(self) -> dict[str, Any]:
        """``GET /metrics.json`` from the daemon."""
        return await self.get_json("/metrics.json")


# -- the run -----------------------------------------------------------------

@dataclass
class LoadtestReport:
    """Everything one load-test run measured."""

    requests: int
    unique: int
    completed: int = 0
    ok: int = 0
    cache_hits: int = 0
    partial: int = 0
    overloaded: int = 0
    errors: int = 0
    incorrect: int = 0
    wall_seconds: float = 0.0
    latencies: list[float] = field(default_factory=list)
    #: per-completed-request SLO samples
    #: (``{"time_unix", "total_ms", "status"}``) — what
    #: :func:`repro.obs.slo.evaluate_slo` consumes.
    samples: list[dict[str, Any]] = field(default_factory=list)
    #: the daemon's end-of-run metrics snapshot (``metrics_response``
    #: shape), when the transport could fetch one — the source of the
    #: queue-wait/solve decomposition metrics.
    metrics_snapshot: dict[str, Any] | None = None

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of driver wall time."""
        return (self.completed / self.wall_seconds
                if self.wall_seconds > 0 else 0.0)

    @property
    def cache_hit_rate(self) -> float:
        """Cache hits as a fraction of completed requests."""
        return self.cache_hits / self.completed if self.completed else 0.0

    def percentile_seconds(self, q: float) -> float:
        """Exact latency percentile (seconds) over every completed
        request."""
        return exact_percentile(sorted(self.latencies), q)

    def summary(self) -> str:
        """One human-readable block, the CLI's output."""
        lines = [
            f"{self.completed}/{self.requests} completed "
            f"({self.unique} unique) in {self.wall_seconds:.2f}s "
            f"= {self.throughput_rps:.1f} req/s",
            f"  ok {self.ok}  cached {self.cache_hits} "
            f"({self.cache_hit_rate:.1%})  partial {self.partial}  "
            f"overloaded {self.overloaded}  errors {self.errors}  "
            f"INCORRECT {self.incorrect}",
        ]
        if self.latencies:
            lat = sorted(self.latencies)
            lines.append(
                f"  latency p50 {exact_percentile(lat, 0.5) * 1e3:.1f}ms  "
                f"p99 {exact_percentile(lat, 0.99) * 1e3:.1f}ms  "
                f"max {lat[-1] * 1e3:.1f}ms"
            )
        return "\n".join(lines)


async def run_loadtest(
    client: Any,
    requests: Sequence[dict[str, Any]],
    expected: dict[str, list[str]],
    concurrency: int = 32,
) -> LoadtestReport:
    """Replay ``requests`` through ``client`` and verify every answer.

    ``concurrency`` caps in-flight requests client-side (a semaphore
    releasing in FIFO order, so the duplicate-after-leader ordering
    that makes cache hits deterministic is preserved).  ``client`` is
    any object with ``async request(obj) -> dict`` — already entered.
    """
    report = LoadtestReport(
        requests=len(requests),
        unique=len({poly_key(r["coeffs"], r["bits"],
                             r.get("strategy", "hybrid"))
                    for r in requests}),
    )
    sem = asyncio.Semaphore(concurrency)
    responses: list[dict[str, Any] | None] = [None] * len(requests)
    latencies: list[float] = [0.0] * len(requests)

    async def one(i: int, obj: dict[str, Any]) -> None:
        async with sem:
            t0 = time.monotonic()
            try:
                responses[i] = await client.request(obj)
            except (ConnectionError, OSError) as e:
                responses[i] = {"status": "error", "code": 0,
                                "error": str(e)}
            latencies[i] = time.monotonic() - t0

    t0 = time.monotonic()
    await asyncio.gather(*(one(i, r) for i, r in enumerate(requests)))
    report.wall_seconds = time.monotonic() - t0

    # End-of-run daemon snapshot (transports that can fetch one) — the
    # source of the queue-wait/solve decomposition in the artifact.
    fetch = getattr(client, "metrics", None)
    if callable(fetch):
        try:
            report.metrics_snapshot = await fetch()
        except (ConnectionError, OSError, asyncio.TimeoutError):
            report.metrics_snapshot = None

    now = time.time()
    for r, resp, lat in zip(requests, responses, latencies):
        if resp is None:
            report.errors += 1
            continue
        report.completed += 1
        report.latencies.append(lat)
        status = resp.get("status")
        report.samples.append({"time_unix": now, "total_ms": lat * 1e3,
                               "status": str(status)})
        if status == "ok":
            report.ok += 1
            if resp.get("cached"):
                report.cache_hits += 1
            key = poly_key(r["coeffs"], r["bits"],
                           r.get("strategy", "hybrid"))
            if resp.get("scaled") != expected[key]:
                report.incorrect += 1
        elif status == "partial":
            report.partial += 1
        elif status == "overloaded":
            report.overloaded += 1
        else:
            report.errors += 1
    return report


def _add_decomposition(artifact: BenchArtifact,
                       snapshot: dict[str, Any]) -> None:
    """Queue-wait / solve latency decomposition from the daemon's own
    stage histograms (informational ``wall`` metrics — histogram-bucket
    percentiles on this machine's clock, not gateable counts)."""
    metrics = snapshot.get("metrics", {})
    for base, tag in (("server.queue_wait_us", "queue_wait"),
                      ("server.solve_us", "solve")):
        d = metrics.get(base)
        if not isinstance(d, dict) or d.get("type") != "histogram":
            continue
        h = histogram_from_dict(d, name=base)
        for q, label in ((0.5, "p50"), (0.99, "p99")):
            v = h.percentile(q)
            if v is not None:
                artifact.add_metric(f"loadtest.{tag}_{label}_seconds",
                                    v / 1e6, kind="wall")
        artifact.add_metric(f"loadtest.{tag}_mean_seconds",
                            h.mean / 1e6, kind="wall")


def _add_slo(artifact: BenchArtifact, report: LoadtestReport,
             config: SLOConfig) -> dict[str, Any]:
    """Fold the SLO verdict in: ``loadtest.slo_ok`` (1/0) plus one
    burn metric per objective — ``wall`` kind, so a noisy CI machine
    shows the verdict without flaking the gate."""
    verdict = evaluate_slo(report.samples, config)
    artifact.add_metric("loadtest.slo_ok",
                        1.0 if verdict["ok"] else 0.0, kind="wall")
    for obj in verdict["objectives"]:
        burn = obj["burn"]
        if burn != burn or burn in (float("inf"), float("-inf")):
            burn = 1e9  # JSON-safe stand-in for a blown zero-threshold
        artifact.add_metric(f"loadtest.slo_burn.{obj['name']}",
                            float(burn), kind="wall")
    return verdict


def build_artifact(name: str, params: dict[str, Any],
                   report: LoadtestReport,
                   slo_config: SLOConfig | None = None) -> BenchArtifact:
    """Fold a report into the bench-artifact schema.

    Outcome tallies are ``count`` metrics (exactly gated by default —
    they are deterministic for a pinned request stream); latency and
    throughput are ``wall`` metrics (informational), as are the
    queue-wait/solve decomposition percentiles (when the report carries
    a daemon metrics snapshot) and the SLO verdict/burn metrics.
    """
    artifact = BenchArtifact(name=name, params=dict(params))
    artifact.add_metric("loadtest.requests", report.requests)
    artifact.add_metric("loadtest.unique", report.unique)
    artifact.add_metric("loadtest.completed", report.completed)
    artifact.add_metric("loadtest.ok", report.ok)
    artifact.add_metric("loadtest.cache_hits", report.cache_hits)
    artifact.add_metric("loadtest.incorrect", report.incorrect)
    artifact.add_metric("loadtest.partial", report.partial)
    artifact.add_metric("loadtest.overloaded", report.overloaded)
    artifact.add_metric("loadtest.errors", report.errors)
    if report.latencies:
        artifact.add_metric("loadtest.p50_seconds",
                            report.percentile_seconds(0.5), kind="wall")
        artifact.add_metric("loadtest.p99_seconds",
                            report.percentile_seconds(0.99), kind="wall")
        artifact.add_metric(
            "loadtest.mean_seconds",
            sum(report.latencies) / len(report.latencies), kind="wall")
    artifact.add_metric("loadtest.wall_seconds", report.wall_seconds,
                        kind="wall")
    artifact.add_metric("loadtest.throughput_rps", report.throughput_rps,
                        kind="wall")
    artifact.add_metric("loadtest.cache_hit_rate", report.cache_hit_rate,
                        kind="wall")
    if report.metrics_snapshot is not None:
        _add_decomposition(artifact, report.metrics_snapshot)
    if report.samples:
        _add_slo(artifact, report,
                 slo_config if slo_config is not None else DEFAULT_SLO)
    return artifact
