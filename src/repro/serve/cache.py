"""Content-addressed result cache for the root-finding daemon.

Keys are :func:`repro.resilience.checkpoint.poly_key` digests — the
injective content hash of ``(coeffs, mu, strategy)`` — so two requests
share an entry exactly when the algorithm would produce bit-identical
output for both.  Values are the exact scaled roots; partial and error
results are never cached (a budget trip is a property of one request's
budget, not of the polynomial).

Two tiers:

* **memory** — an LRU bounded by the *byte size* of the stored JSON
  payloads (root magnitudes vary by orders of magnitude across
  precisions, so an entry-count bound would be meaningless);
* **disk** (optional) — one small JSON file per key under a cache
  directory (``REPRO_CACHE_DIR`` or an explicit path), written through
  on every insert and consulted on a memory miss, so a restarted daemon
  keeps its history.  Files are written atomically (temp + rename) and
  a corrupt or truncated file reads as a miss, never an error.

Telemetry lands in the owning server's
:class:`~repro.obs.metrics.MetricsRegistry`: ``cache.hits`` /
``cache.misses`` / ``cache.evictions`` / ``cache.disk_hits`` counters
and the ``cache.bytes`` / ``cache.entries`` gauges.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from typing import Sequence

from repro.obs.metrics import MetricsRegistry

__all__ = ["ResultCache", "DEFAULT_MAX_BYTES"]

#: Default in-memory budget: plenty for ~10^5 small-degree results,
#: small enough to be invisible next to the worker pool's footprint.
DEFAULT_MAX_BYTES = 64 * 1024 * 1024

_SCHEMA = "repro.serve-cache/1"


class ResultCache:
    """Byte-bounded LRU of exact results, with an optional disk tier.

    Parameters
    ----------
    max_bytes:
        In-memory budget.  An entry is charged its key length plus its
        JSON payload length; least-recently-used entries are evicted
        until the budget holds.  An entry larger than the whole budget
        is served but never admitted (it would evict everything for one
        tenant's monster polynomial).
    disk_dir:
        Directory for the persistent tier; created on first use.
        ``None`` reads ``REPRO_CACHE_DIR`` from the environment, and an
        empty value disables the tier.
    metrics:
        Registry receiving the ``cache.*`` counters and gauges (a
        private one is created when omitted, so the cache always
        counts).
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_MAX_BYTES,
        disk_dir: str | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        self.max_bytes = max_bytes
        if disk_dir is None:
            disk_dir = os.environ.get("REPRO_CACHE_DIR") or None
        self.disk_dir = disk_dir
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._entries: "OrderedDict[str, tuple[list[int], int]]" = (
            OrderedDict()
        )
        self._bytes = 0

    # -- introspection ---------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def bytes_used(self) -> int:
        """Current in-memory charge."""
        return self._bytes

    # -- the cache API ---------------------------------------------------
    def get(self, key: str) -> list[int] | None:
        """The cached scaled roots for ``key``, or ``None``.

        A memory hit refreshes recency; a memory miss consults the disk
        tier and promotes a found entry back into memory.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.metrics.counter("cache.hits").inc()
            return list(entry[0])
        scaled = self._disk_get(key)
        if scaled is not None:
            self.metrics.counter("cache.hits").inc()
            self.metrics.counter("cache.disk_hits").inc()
            self._admit(key, scaled)
            return list(scaled)
        self.metrics.counter("cache.misses").inc()
        return None

    def put(self, key: str, scaled: Sequence[int]) -> None:
        """Insert (or refresh) one exact result under ``key``."""
        scaled = [int(s) for s in scaled]
        self._admit(key, scaled)
        if self.disk_dir:
            self._disk_put(key, scaled)

    # -- memory tier -----------------------------------------------------
    @staticmethod
    def _payload(scaled: list[int]) -> str:
        return json.dumps([str(s) for s in scaled], separators=(",", ":"))

    def _admit(self, key: str, scaled: list[int]) -> None:
        nbytes = len(key) + len(self._payload(scaled))
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old[1]
        if nbytes > self.max_bytes:
            self._update_gauges()
            return
        self._entries[key] = (list(scaled), nbytes)
        self._bytes += nbytes
        while self._bytes > self.max_bytes and self._entries:
            _, (_, freed) = self._entries.popitem(last=False)
            self._bytes -= freed
            self.metrics.counter("cache.evictions").inc()
        self._update_gauges()

    def _update_gauges(self) -> None:
        self.metrics.gauge("cache.bytes").set(self._bytes)
        self.metrics.gauge("cache.entries").set(len(self._entries))

    # -- disk tier -------------------------------------------------------
    def _disk_path(self, key: str) -> str:
        assert self.disk_dir is not None
        return os.path.join(self.disk_dir, key[:2], key + ".json")

    def _disk_get(self, key: str) -> list[int] | None:
        if not self.disk_dir:
            return None
        try:
            with open(self._disk_path(key), encoding="utf-8") as fh:
                data = json.load(fh)
            if (not isinstance(data, dict) or data.get("schema") != _SCHEMA
                    or not isinstance(data.get("scaled"), list)):
                return None
            return [int(s) for s in data["scaled"]]
        except (OSError, ValueError):
            return None  # absent, torn, or corrupt: a plain miss

    def _disk_put(self, key: str, scaled: list[int]) -> None:
        path = self._disk_path(key)
        tmp = path + ".tmp"
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump({"schema": _SCHEMA, "key": key,
                           "scaled": [str(s) for s in scaled]}, fh)
            os.replace(tmp, path)
        except OSError:
            # A read-only or full cache dir must not fail the request
            # that produced the answer.
            try:
                os.unlink(tmp)
            except OSError:
                pass
