"""Content-addressed result cache for the root-finding daemon.

Keys are :func:`repro.resilience.checkpoint.poly_key` digests — the
injective content hash of ``(coeffs, mu, strategy)`` — so two requests
share an entry exactly when the algorithm would produce bit-identical
output for both.  Values are the exact scaled roots; partial and error
results are never cached (a budget trip is a property of one request's
budget, not of the polynomial).

Two tiers:

* **memory** — an LRU bounded by the *byte size* of the stored JSON
  payloads (root magnitudes vary by orders of magnitude across
  precisions, so an entry-count bound would be meaningless);
* **disk** (optional) — one small JSON file per key under a cache
  directory (``REPRO_CACHE_DIR`` or an explicit path), written through
  on every insert and consulted on a memory miss, so a restarted daemon
  keeps its history.  Files are written atomically (temp + rename).

Integrity: every disk entry carries a **sha256 checksum** of its
payload, verified on read.  A corrupt, truncated, mismatched, or
foreign-schema file is **quarantined** — renamed aside to
``<name>.corrupt`` and counted (``cache.disk_corrupt``) — instead of
being silently re-parsed as a miss on every subsequent lookup; the
polynomial is simply re-solved and the entry rewritten clean.  A
quarantined result can never be served: the checksum gate sits between
the file and the client.  :meth:`ResultCache.fsck` sweeps the whole
disk tier the same way (the daemon runs it at startup and reports the
tally on ``/readyz``).

Telemetry lands in the owning server's
:class:`~repro.obs.metrics.MetricsRegistry`: ``cache.hits`` /
``cache.misses`` / ``cache.evictions`` / ``cache.disk_hits`` /
``cache.disk_corrupt`` counters and the ``cache.bytes`` /
``cache.entries`` gauges.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from typing import Any, Sequence

from repro.obs.metrics import MetricsRegistry

__all__ = ["ResultCache", "DEFAULT_MAX_BYTES"]

#: Default in-memory budget: plenty for ~10^5 small-degree results,
#: small enough to be invisible next to the worker pool's footprint.
DEFAULT_MAX_BYTES = 64 * 1024 * 1024

#: /2 added the per-entry payload checksum.  /1 files (no checksum)
#: are treated like any other unverifiable entry: quarantined once and
#: re-solved, rather than trusted or re-parsed forever.
_SCHEMA = "repro.serve-cache/2"


class ResultCache:
    """Byte-bounded LRU of exact results, with an optional disk tier.

    Parameters
    ----------
    max_bytes:
        In-memory budget.  An entry is charged its key length plus its
        JSON payload length; least-recently-used entries are evicted
        until the budget holds.  An entry larger than the whole budget
        is served but never admitted (it would evict everything for one
        tenant's monster polynomial).
    disk_dir:
        Directory for the persistent tier; created on first use.
        ``None`` reads ``REPRO_CACHE_DIR`` from the environment, and an
        empty value disables the tier.
    metrics:
        Registry receiving the ``cache.*`` counters and gauges (a
        private one is created when omitted, so the cache always
        counts).
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_MAX_BYTES,
        disk_dir: str | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        self.max_bytes = max_bytes
        if disk_dir is None:
            disk_dir = os.environ.get("REPRO_CACHE_DIR") or None
        self.disk_dir = disk_dir
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._entries: "OrderedDict[str, tuple[list[int], int]]" = (
            OrderedDict()
        )
        self._bytes = 0

    # -- introspection ---------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def bytes_used(self) -> int:
        """Current in-memory charge."""
        return self._bytes

    # -- the cache API ---------------------------------------------------
    def get(self, key: str) -> list[int] | None:
        """The cached scaled roots for ``key``, or ``None``.

        A memory hit refreshes recency; a memory miss consults the disk
        tier and promotes a found entry back into memory.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.metrics.counter("cache.hits").inc()
            return list(entry[0])
        scaled = self._disk_get(key)
        if scaled is not None:
            self.metrics.counter("cache.hits").inc()
            self.metrics.counter("cache.disk_hits").inc()
            self._admit(key, scaled)
            return list(scaled)
        self.metrics.counter("cache.misses").inc()
        return None

    def put(self, key: str, scaled: Sequence[int]) -> None:
        """Insert (or refresh) one exact result under ``key``."""
        scaled = [int(s) for s in scaled]
        self._admit(key, scaled)
        if self.disk_dir:
            self._disk_put(key, scaled)

    # -- memory tier -----------------------------------------------------
    @staticmethod
    def _payload(scaled: list[int]) -> str:
        return json.dumps([str(s) for s in scaled], separators=(",", ":"))

    def _admit(self, key: str, scaled: list[int]) -> None:
        nbytes = len(key) + len(self._payload(scaled))
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old[1]
        if nbytes > self.max_bytes:
            self._update_gauges()
            return
        self._entries[key] = (list(scaled), nbytes)
        self._bytes += nbytes
        while self._bytes > self.max_bytes and self._entries:
            _, (_, freed) = self._entries.popitem(last=False)
            self._bytes -= freed
            self.metrics.counter("cache.evictions").inc()
        self._update_gauges()

    def _update_gauges(self) -> None:
        self.metrics.gauge("cache.bytes").set(self._bytes)
        self.metrics.gauge("cache.entries").set(len(self._entries))

    # -- disk tier -------------------------------------------------------
    def _disk_path(self, key: str) -> str:
        assert self.disk_dir is not None
        return os.path.join(self.disk_dir, key[:2], key + ".json")

    @staticmethod
    def _checksum(scaled_strs: list[str]) -> str:
        payload = json.dumps(scaled_strs, separators=(",", ":"))
        return hashlib.sha256(payload.encode("ascii")).hexdigest()

    @staticmethod
    def _parse_entry(data: Any, key: str) -> list[int] | None:
        """The verified scaled roots of one entry dict, or ``None`` for
        anything that fails schema, key, or checksum validation."""
        if (not isinstance(data, dict) or data.get("schema") != _SCHEMA
                or data.get("key") != key
                or not isinstance(data.get("scaled"), list)
                or not all(isinstance(s, str) for s in data["scaled"])):
            return None
        if data.get("sha256") != ResultCache._checksum(data["scaled"]):
            return None
        try:
            return [int(s) for s in data["scaled"]]
        except ValueError:
            return None

    def _quarantine(self, path: str) -> None:
        """Move one bad entry aside so it is never read again (and
        never re-parsed on every lookup), and count it."""
        try:
            os.replace(path, path + ".corrupt")
        except OSError:
            # Last resort on a read-only dir: leave it; the checksum
            # gate still prevents it from ever being served.
            pass
        self.metrics.counter("cache.disk_corrupt").inc()

    def _disk_get(self, key: str) -> list[int] | None:
        if not self.disk_dir:
            return None
        path = self._disk_path(key)
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
        except FileNotFoundError:
            return None  # absent: a plain miss
        except (OSError, ValueError):
            # Torn or unreadable: quarantine so every future lookup is
            # a clean miss instead of a re-parse of the same bad bytes.
            self._quarantine(path)
            return None
        scaled = self._parse_entry(data, key)
        if scaled is None:
            self._quarantine(path)
            return None
        return scaled

    def _disk_put(self, key: str, scaled: list[int]) -> None:
        path = self._disk_path(key)
        tmp = path + ".tmp"
        scaled_strs = [str(s) for s in scaled]
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump({"schema": _SCHEMA, "key": key,
                           "scaled": scaled_strs,
                           "sha256": self._checksum(scaled_strs)}, fh)
            os.replace(tmp, path)
        except OSError:
            # A read-only or full cache dir must not fail the request
            # that produced the answer.
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def fsck(self) -> dict[str, int]:
        """Sweep the disk tier: verify every entry, quarantine the bad.

        Returns ``{"scanned", "ok", "quarantined"}``.  The daemon runs
        this at startup and folds the tally into ``/readyz``, so an
        operator sees disk-tier damage without waiting for the damaged
        keys to be requested.  Leftover ``.tmp`` files (a kill mid-put)
        are removed; ``.corrupt`` quarantine files are left alone."""
        summary = {"scanned": 0, "ok": 0, "quarantined": 0}
        if not self.disk_dir or not os.path.isdir(self.disk_dir):
            return summary
        for dirpath, _dirnames, filenames in os.walk(self.disk_dir):
            for name in sorted(filenames):
                path = os.path.join(dirpath, name)
                if name.endswith(".tmp"):
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
                    continue
                if not name.endswith(".json"):
                    continue
                summary["scanned"] += 1
                key = name[:-len(".json")]
                try:
                    with open(path, encoding="utf-8") as fh:
                        data = json.load(fh)
                    scaled = self._parse_entry(data, key)
                except (OSError, ValueError):
                    scaled = None
                if scaled is None:
                    self._quarantine(path)
                    summary["quarantined"] += 1
                else:
                    summary["ok"] += 1
        return summary
