"""``repro serve``: the asyncio root-finding daemon and its clients.

One shared persistent :class:`repro.sched.executor.ParallelRootFinder`
behind two front-ends — newline-delimited JSON on stdin/stdout
(:func:`repro.serve.stdio.serve_stdio`) and a minimal HTTP/1.1 JSON
API (:mod:`repro.serve.http`) — with:

* admission control and per-request fairness through
  :class:`repro.resilience.budget.Budget` (deadline / bit-budget per
  request; an overrun returns the certified partial result, the
  protocol rendering of the CLI's exit-code-3 contract);
* a content-addressed result cache
  (:class:`repro.serve.cache.ResultCache`) keyed by
  :func:`repro.resilience.checkpoint.poly_key` — in-memory LRU bounded
  by byte size with an optional disk tier under ``REPRO_CACHE_DIR``;
* request priorities and backpressure: when queue-depth telemetry
  (admitted requests plus the executor's own backlog) crosses the
  admission threshold, new requests are shed with a structured
  429-style reply instead of growing the queue without bound;
* a load-test driver (:mod:`repro.serve.loadtest`) that replays
  thousands of mixed-degree requests against a live daemon, verifies
  every answer bit-for-bit against the sequential finder, and folds
  p50/p99 latency, throughput, queue-wait/solve decomposition, and an
  SLO verdict into the ``BenchArtifact`` regression gate;
* crash safety (:mod:`repro.serve.journal`): an optional WAL-style
  request journal records every accepted request before it is
  enqueued; a restarted daemon replays the incomplete entries through
  the result cache, so an accepted request survives a SIGKILL with an
  exactly-once, bit-exact result (the ``poly_key`` content address
  dedups).  The disk cache carries per-entry sha256 checksums, and a
  startup fsck quarantines corrupt entries (see docs/CHAOS.md and the
  ``repro chaos`` campaign that gates all of this in CI);
* request-scoped tracing (:mod:`repro.serve.reqtrace`): every request
  gets a server-assigned ``request_id`` and a stage timeline
  (admission → validate → queue_wait → cache_lookup → budget_setup →
  solve → serialize → write, wall-ns and bit-cost per stage) recorded
  into a bounded ring, an optional rotated JSONL access log, and —
  for slow/shed/error/partial requests — tail-captured Chrome traces;
  :mod:`repro.obs.slo` evaluates declarative objectives over the ring
  (``GET /slo``, the ``slo`` stdio op, ``repro tail``).

See docs/SERVING.md for the protocol and operational contract.
"""

from repro.serve.cache import ResultCache
from repro.serve.journal import RequestJournal, incomplete_entries, read_journal
from repro.serve.protocol import (
    ProtocolError,
    Request,
    error_response,
    metrics_response,
    ok_response,
    overloaded_response,
    parse_request,
    partial_response,
    salvage_id,
)
from repro.serve.reqtrace import (
    AccessLog,
    RequestTimeline,
    RequestTracker,
    TimelineRing,
    read_access_log,
)
from repro.serve.server import RootServer

__all__ = [
    "ResultCache",
    "RequestJournal",
    "read_journal",
    "incomplete_entries",
    "RootServer",
    "Request",
    "ProtocolError",
    "parse_request",
    "salvage_id",
    "ok_response",
    "partial_response",
    "error_response",
    "overloaded_response",
    "metrics_response",
    "RequestTimeline",
    "RequestTracker",
    "TimelineRing",
    "AccessLog",
    "read_access_log",
]
