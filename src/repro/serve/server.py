"""The daemon's core: one shared finder behind an asyncio admission lane.

Concurrency model
-----------------

Front-ends (stdio / HTTP) call :meth:`RootServer.submit` concurrently;
admitted requests enter a priority queue and a **single** dispatcher
coroutine drains it, running each solve on a one-thread executor.  The
dispatcher is therefore the only code that touches the shared
:class:`~repro.sched.executor.ParallelRootFinder` — per-request
``mu`` / ``strategy`` / :class:`~repro.resilience.budget.Budget`
assignments need no locking, and the finder's worker pool stays warm
across every request.  Parallelism lives *inside* a solve (the pool
workers), not across solves; for the daemon's mixed small-degree
traffic the solve lane is the fairness mechanism — one tenant's
monster polynomial is bounded by its budget, not by starving others
out of pool workers.

Determinism of the cache
------------------------

The cache is consulted by the dispatcher immediately before solving,
so for same-priority traffic a duplicate enqueued behind its first
occurrence always hits — ``cache.hits == total - unique`` regardless
of client timing, which is what lets the load-test gate pin the hit
count as an exactly-gated metric.  Only complete ``ok`` results are
cached; partials and errors are never stored.

Backpressure
------------

:meth:`queue_depth` is admitted-but-unanswered requests plus the
executor's own queued-task backlog (delivered by the finder's
``sample_hook`` — the live ``executor.queue_depth`` telemetry).  When
it reaches ``max_pending``, new requests are shed at admission with a
structured 429-style reply (``server.rejected`` counts them) instead
of growing the queue without bound.

Crash safety
------------

With a :class:`~repro.serve.journal.RequestJournal` attached, every
request that passes admission is durably journaled *before* it is
enqueued, and its completion is journaled when the response is
produced.  :meth:`start` replays the journal's incomplete entries
through the result cache — re-solving each lost polynomial once and
caching it under its :func:`~repro.resilience.checkpoint.poly_key` —
so a SIGKILL'd daemon delivers every accepted request's result to the
client's retry, bit-exactly and exactly once (the content address
dedups).  :meth:`start` also runs :meth:`ResultCache.fsck` over the
disk tier, quarantining corrupt entries; the tallies of both recovery
passes appear in :meth:`health` (``/readyz``).
"""

from __future__ import annotations

import asyncio
import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Mapping

from repro.costmodel.backend import counter_for
from repro.costmodel.counter import NULL_COUNTER, CostCounter, NullCounter
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import DEFAULT_SLO, SLOConfig, evaluate_slo, timeline_samples
from repro.obs.trace import Tracer
from repro.poly.dense import IntPoly
from repro.resilience import Budget, BudgetExceeded
from repro.resilience.breaker import BREAKER_OPEN
from repro.resilience.checkpoint import poly_key
from repro.sched.executor import ParallelRootFinder
from repro.serve.cache import ResultCache
from repro.serve.journal import RequestJournal
from repro.serve.protocol import (
    ProtocolError,
    Request,
    error_response,
    metrics_response,
    ok_response,
    overloaded_response,
    parse_request,
    partial_response,
)
from repro.serve.reqtrace import RequestTimeline, RequestTracker

__all__ = ["RootServer"]


class RootServer:
    """Admission control + cache + one shared pool, as an asyncio object.

    Parameters
    ----------
    mu:
        Default output precision in bits (requests may override with
        ``"bits"``).
    processes:
        Worker-pool size of the shared finder.
    strategy:
        Default interval-solver strategy.
    max_pending:
        Admission threshold: requests arriving while
        :meth:`queue_depth` is at or above this are shed with an
        ``overloaded`` reply.
    max_deadline_seconds:
        Fairness cap applied to every request's deadline (and assigned
        to requests that brought none) — see
        :func:`repro.serve.protocol.parse_request`.
    cache:
        A :class:`~repro.serve.cache.ResultCache`; built from
        ``cache_bytes`` / ``cache_dir`` when omitted.
    cache_bytes / cache_dir:
        Configuration for the default cache (ignored when ``cache`` is
        passed).  ``cache_dir=None`` honors ``REPRO_CACHE_DIR``.
    metrics:
        Shared registry; the finder's executor telemetry, the cache
        counters, and the ``server.*`` metrics all land here, so one
        ``/metrics`` scrape shows the whole daemon.
    finder:
        Injectable finder (tests); constructed from the parameters
        above when omitted.
    tracker:
        Injectable :class:`~repro.serve.reqtrace.RequestTracker`;
        built from ``access_log`` / ``capture_dir`` /
        ``slow_threshold_ms`` / ``ring_size`` when omitted.
    access_log / capture_dir / slow_threshold_ms / ring_size:
        Request-tracing configuration (see :mod:`repro.serve.reqtrace`):
        the JSONL access-log path, the tail-capture directory for
        Chrome traces of slow/shed/error/partial requests, the slow
        threshold in milliseconds, and the in-memory timeline ring
        size.
    slo:
        An :class:`~repro.obs.slo.SLOConfig` evaluated over the
        timeline ring by :meth:`slo_report` (``GET /slo``, the ``slo``
        stdio op); defaults to :data:`~repro.obs.slo.DEFAULT_SLO`.
    trace_solves:
        Record the executor's span tree per solve and attach it to the
        request timeline (so tail-captured Chrome traces show the
        worker lanes).  Defaults to on exactly when ``capture_dir`` is
        set; forcing it on without a capture dir only costs memory.
    backend:
        Arithmetic backend the shared finder computes on
        (``"python"``/``"gmpy2"``/``"mpint"``/``"auto"``; see
        docs/BACKENDS.md).  Resolved at construction; reported by
        :meth:`health`.  Ignored when ``finder`` is injected.
    journal / journal_path:
        Durable request journal (see :mod:`repro.serve.journal` and the
        *Crash safety* section above): an injected
        :class:`~repro.serve.journal.RequestJournal`, or a path to
        build one at.  ``None`` for both disables journaling.
    fsync_interval:
        Durability batching shared by the journal and the access log:
        fsync every N written lines, so a SIGKILL loses at most N
        records per file (default 32; ignored for an injected
        ``journal``/``tracker``).
    """

    def __init__(
        self,
        mu: int = 53,
        processes: int = 2,
        strategy: str = "hybrid",
        *,
        max_pending: int = 64,
        max_deadline_seconds: float | None = None,
        cache: ResultCache | None = None,
        cache_bytes: int | None = None,
        cache_dir: str | None = None,
        metrics: MetricsRegistry | None = None,
        finder: ParallelRootFinder | None = None,
        tracker: RequestTracker | None = None,
        access_log: str | None = None,
        capture_dir: str | None = None,
        slow_threshold_ms: float = 250.0,
        ring_size: int = 512,
        slo: SLOConfig | None = None,
        trace_solves: bool | None = None,
        backend: str = "python",
        journal: RequestJournal | None = None,
        journal_path: str | None = None,
        fsync_interval: int = 32,
    ):
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.mu = mu
        self.strategy = strategy
        self.max_pending = max_pending
        self.max_deadline_seconds = max_deadline_seconds
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if cache is None:
            kwargs: dict[str, Any] = {"metrics": self.metrics}
            if cache_bytes is not None:
                kwargs["max_bytes"] = cache_bytes
            cache = ResultCache(disk_dir=cache_dir, **kwargs)
        self.cache = cache
        if finder is None:
            finder = ParallelRootFinder(
                mu=mu, processes=processes, strategy=strategy,
                counter=counter_for(backend), metrics=self.metrics,
                backend=backend,
            )
        self.finder = finder
        self.backend = getattr(finder, "backend", "python")
        self.slo_config = slo if slo is not None else DEFAULT_SLO
        if tracker is None:
            tracker = RequestTracker(
                self.metrics, ring_size=ring_size, access_log=access_log,
                fsync_interval=fsync_interval,
                capture_dir=capture_dir,
                slow_threshold_ns=int(slow_threshold_ms * 1e6),
            )
        self.tracker = tracker
        if journal is None and journal_path:
            journal = RequestJournal(journal_path,
                                     fsync_interval=fsync_interval,
                                     metrics=self.metrics)
        self.journal = journal
        #: last disk-tier fsck tally (populated by :meth:`start`).
        self.fsck_summary: dict[str, int] = {"scanned": 0, "ok": 0,
                                             "quarantined": 0}
        self._trace_solves = (trace_solves if trace_solves is not None
                              else tracker.capture_dir is not None)
        if self._trace_solves and not getattr(
                getattr(finder, "tracer", None), "enabled", False):
            counter = getattr(finder, "counter", NULL_COUNTER)
            finder.tracer = Tracer(
                counter=counter if counter is not NULL_COUNTER else None
            )
        # Executor queue-depth telemetry, delivered synchronously from
        # the dispatch loop's sample() sites (solve-thread side; a
        # plain int store is atomic under the GIL).
        self._executor_backlog = 0
        finder.sample_hook = self._on_executor_sample

        self._queue: asyncio.PriorityQueue | None = None
        self._dispatcher: asyncio.Task | None = None
        self._solve_lane: ThreadPoolExecutor | None = None
        self._outstanding: set[asyncio.Future] = set()
        self._pending = 0
        self._seq = 0
        self._accepting = False
        self._closed = False

    # -- telemetry -------------------------------------------------------
    def _on_executor_sample(self, depth: int, in_flight: int) -> None:
        self._executor_backlog = depth

    def queue_depth(self) -> int:
        """Admitted-but-unanswered requests plus the executor backlog —
        the number the admission threshold watches."""
        return self._pending + self._executor_backlog

    def metrics_snapshot(self, rid: Any = None) -> dict[str, Any]:
        """A :func:`repro.serve.protocol.metrics_response` for ``rid``."""
        return metrics_response(self.metrics, rid)

    def health(self) -> tuple[int, dict[str, Any]]:
        """Readiness: ``(http_code, body)`` — 503 while draining, with
        the executor's circuit breaker open, or with the pool dead.

        The body reports the breaker state, pool liveness, queue
        headroom under the admission threshold, and the journal/cache
        recovery tallies.  Pool liveness distinguishes four states so
        chaos assertions on ``/readyz`` are deterministic:

        * ``unspawned`` — no pool yet (it spawns on first solve);
          ready.
        * ``live`` — at least one worker pid answers ``kill -0``;
          ready.
        * ``dead`` — the pool exists but *no* worker is alive (the
          whole pool was killed and has not respawned); **unready**,
          and ``server.pool_dead`` counts the observation.
        * ``respawning`` — the probe raced a worker respawn (the pid
          list mutated mid-enumeration); still ready —  a transient
          probe race must not flap readiness — counted by
          ``server.probe_races``.
        """
        breaker = getattr(self.finder, "breaker", None)
        breaker_state = getattr(breaker, "state", "absent")
        pids: list[int] = []
        pool_state = "unspawned"
        worker_pids = getattr(self.finder, "worker_pids", None)
        if callable(worker_pids):
            try:
                pids = list(worker_pids())
                if pids:
                    pool_state = "live"
            except Exception:
                # The pool's worker list mutated under the probe (a
                # respawn in progress) — transient, not "pool dead".
                pool_state = "respawning"
                self.metrics.counter("server.probe_races").inc()
        alive = []
        for pid in pids:
            try:
                os.kill(pid, 0)
                alive.append(pid)
            except OSError:
                continue
        if pool_state == "live" and not alive:
            pool_state = "dead"
            self.metrics.counter("server.pool_dead").inc()
        depth = self.queue_depth()
        ready = (self._accepting and breaker_state != BREAKER_OPEN
                 and pool_state != "dead")
        body = {
            "status": "ready" if ready else "unready",
            "accepting": self._accepting,
            "breaker": breaker_state,
            "backend": self.backend,
            "workers": {"pids": pids, "alive": len(alive),
                        "pool": pool_state},
            "queue_depth": depth,
            "limit": self.max_pending,
            "headroom": max(0, self.max_pending - depth),
            "cache": {
                "disk": bool(self.cache.disk_dir),
                "fsck": dict(self.fsck_summary),
                "disk_corrupt":
                    self.metrics.counter("cache.disk_corrupt").value,
            },
            "journal": self._journal_health(),
        }
        return (200 if ready else 503), body

    def _journal_health(self) -> dict[str, Any]:
        if self.journal is None:
            return {"enabled": False}
        return {
            "enabled": True,
            "broken": self.journal.broken,
            "recovered": len(self.journal.recovered),
            "accepts": self.metrics.counter("journal.accepts").value,
            "completes": self.metrics.counter("journal.completes").value,
            "replayed": self.metrics.counter("journal.replayed").value,
            "replay_cached":
                self.metrics.counter("journal.replay_cached").value,
            "write_errors":
                self.metrics.counter("journal.write_errors").value,
        }

    def slo_report(self) -> dict[str, Any]:
        """The configured objectives evaluated over the timeline ring's
        rolling window, anchored at the present (``GET /slo`` and the
        ``slo`` stdio op serve this verbatim)."""
        report = evaluate_slo(
            timeline_samples(self.tracker.ring.snapshot()),
            self.slo_config, now=time.time(),
        )
        report["ring_size"] = len(self.tracker.ring)
        return report

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> "RootServer":
        """Bind to the running loop and start the dispatcher (idempotent)."""
        if self._closed:
            raise RuntimeError("server is closed")
        if self._dispatcher is None:
            self._queue = asyncio.PriorityQueue()
            self._solve_lane = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-solve"
            )
            # Recovery before admission: quarantine disk-tier damage and
            # replay the journal's incomplete accepts, so the first
            # request a restarted daemon admits already sees a clean
            # cache holding every pre-crash result.
            self.fsck_summary = self.cache.fsck()
            await self._replay_journal()
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop()
            )
            self._accepting = True
        return self

    async def _replay_journal(self) -> None:
        """Re-solve (or cache-find) every accepted-but-unanswered
        request recovered from the journal, and journal its completion.

        Replay is idempotent: results land in the content-addressed
        cache under the same :func:`poly_key` the client's retry will
        look up, so replaying twice — or racing the retry — cannot
        produce a second, different answer.  Replays deliberately skip
        the ``server.ok`` / ``server.errors`` counters (they are not
        client traffic), keeping the chaos campaign's accepted-vs-
        answered reconciliation exact."""
        if self.journal is None or not self.journal.recovered:
            return
        loop = asyncio.get_running_loop()
        for entry in self.journal.recovered:
            try:
                req = parse_request(
                    {"coeffs": entry.coeffs, "bits": entry.mu,
                     "strategy": entry.strategy,
                     "priority": entry.priority},
                    default_mu=self.mu, default_strategy=self.strategy,
                    max_deadline_seconds=self.max_deadline_seconds,
                )
            except ProtocolError:
                self.metrics.counter("journal.replay_errors").inc()
                self.journal.complete(entry.request_id, entry.key,
                                      "replay_error")
                continue
            if self.cache.get(entry.key) is not None:
                self.metrics.counter("journal.replay_cached").inc()
                self.journal.complete(entry.request_id, entry.key,
                                      "replayed")
                continue
            try:
                scaled = await loop.run_in_executor(
                    self._solve_lane, self._replay_solve_blocking, req
                )
            except Exception:
                self.metrics.counter("journal.replay_errors").inc()
                self.journal.complete(entry.request_id, entry.key,
                                      "replay_error")
                continue
            self.cache.put(entry.key, scaled)
            self.metrics.counter("journal.replayed").inc()
            self.journal.complete(entry.request_id, entry.key, "replayed")

    def _replay_solve_blocking(self, req: Request) -> list[int]:
        """A bare re-solve for journal replay: no budget, no timeline,
        no ``server.*`` counters — just the exact scaled roots."""
        finder = self.finder
        finder.mu = req.mu
        finder.strategy = req.strategy
        finder.budget = None
        return [int(s) for s in
                finder.find_roots_scaled(IntPoly(req.coeffs))]

    async def drain(self) -> None:
        """Wait until every admitted request has been answered."""
        while self._outstanding:
            await asyncio.wait(set(self._outstanding))

    async def aclose(self) -> None:
        """Stop accepting, drain in-flight requests, release the pool.

        The shared finder's workers are joined (no orphaned pool
        processes); the server object cannot be restarted afterwards.
        """
        if self._closed:
            return
        self._accepting = False
        await self.drain()
        self._closed = True
        self.tracker.close()
        if self.journal is not None:
            self.journal.close()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if self._solve_lane is not None:
            self._solve_lane.shutdown(wait=True)
            self._solve_lane = None
        self.finder.close()

    # -- the request path ------------------------------------------------
    def _finish(self, tl: RequestTimeline, resp: dict[str, Any],
                defer_io: bool) -> dict[str, Any]:
        """Stamp the request id onto the response, close the timeline,
        and hand it to the tracker — the single exit every submit path
        funnels through (so *every* response, error shapes included,
        echoes its ``request_id``)."""
        resp.setdefault("request_id", tl.request_id)
        tl.close(str(resp.get("status", "error")),
                 int(resp.get("code", 200)),
                 cached=bool(resp.get("cached", False)),
                 end_ns=time.perf_counter_ns())
        self.tracker.finalize(tl, defer_io=defer_io)
        return resp

    def reject(self, rid: Any, message: str,
               code: int = 400) -> dict[str, Any]:
        """A structured error for a payload that never became a request
        object (unparseable JSON) — still counted, still given a
        ``request_id`` and a (degenerate) timeline, so broken lines are
        visible in the access log and the SLO window like every other
        failure."""
        t = time.perf_counter_ns()
        tl = RequestTimeline(
            request_id=self.tracker.new_request_id(), client_id=rid,
            start_ns=t, time_unix=time.time(),
        )
        self.metrics.counter("server.requests").inc()
        self.metrics.counter("server.bad_requests").inc()
        return self._finish(tl, error_response(rid, message, code=code),
                            False)

    async def submit(self, obj: Any, *,
                     defer_io: bool = False) -> dict[str, Any]:
        """One request object in, one response object out.

        Never raises for bad input — every failure mode has a response
        shape (see :mod:`repro.serve.protocol`), and every response
        carries the server-assigned ``request_id``.

        ``defer_io``: the calling front-end will measure its own
        serialize/write stages and report them via
        ``self.tracker.finish_io(resp["request_id"], ...)`` — the
        timeline's access-log line and tail capture wait for that (the
        ring and histograms do not).
        """
        t_start = time.perf_counter_ns()
        tl = RequestTimeline(
            request_id=self.tracker.new_request_id(),
            client_id=obj.get("id") if isinstance(obj, Mapping) else None,
            start_ns=t_start, time_unix=time.time(),
        )
        self.metrics.counter("server.requests").inc()
        rid = tl.client_id
        if not self._accepting:
            self.metrics.counter("server.errors").inc()
            return self._finish(
                tl, error_response(rid, "server is draining", code=503),
                defer_io)
        t_val = time.perf_counter_ns()
        try:
            req = parse_request(
                obj, default_mu=self.mu, default_strategy=self.strategy,
                max_deadline_seconds=self.max_deadline_seconds,
            )
        except ProtocolError as e:
            tl.add_stage("validate", t_val,
                         time.perf_counter_ns() - t_val)
            self.metrics.counter("server.bad_requests").inc()
            return self._finish(tl, error_response(rid, str(e)), defer_io)
        tl.add_stage("validate", t_val, time.perf_counter_ns() - t_val)
        tl.priority = req.priority
        tl.degree = len(req.coeffs) - 1
        depth = self.queue_depth()
        if depth >= self.max_pending:
            self.metrics.counter("server.rejected").inc()
            return self._finish(
                tl, overloaded_response(req.id, queue_depth=depth,
                                        limit=self.max_pending),
                defer_io)

        assert self._queue is not None
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        self._outstanding.add(fut)
        self._pending += 1
        self.metrics.gauge("server.pending").set(self._pending)
        self._seq += 1
        # The content address, computed at admission so the WAL records
        # it before the request can be lost (the dispatcher reuses it
        # for the cache).
        key = poly_key(req.coeffs, req.mu, req.strategy)
        if self.journal is not None:
            self.journal.accept(tl.request_id, key, req.coeffs, req.mu,
                                req.strategy, priority=req.priority)
        enq_ns = time.perf_counter_ns()
        # Admission is the submit-entry→enqueue window minus the
        # validate sub-interval already recorded.
        tl.add_stage("admission", t_start,
                     (enq_ns - t_start) - tl.stage_ns("validate"))
        # PriorityQueue pops the smallest tuple: higher priority first,
        # FIFO (by admission sequence) within a priority level.
        self._queue.put_nowait((-req.priority, self._seq, req, key, fut,
                                tl, enq_ns))
        try:
            resp = await fut
        finally:
            self._pending -= 1
            self.metrics.gauge("server.pending").set(self._pending)
            self._outstanding.discard(fut)
        if self.journal is not None:
            self.journal.complete(tl.request_id, key,
                                  str(resp.get("status", "error")))
        return self._finish(tl, resp, defer_io)

    async def _dispatch_loop(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            _, _, req, key, fut, tl, enq_ns = await self._queue.get()
            if fut.done():  # client gone (transport dropped the future)
                continue
            t_pop = time.perf_counter_ns()
            tl.add_stage("queue_wait", enq_ns, t_pop - enq_ns)
            t0 = time.monotonic()
            cached = self.cache.get(key)
            tl.add_stage("cache_lookup", t_pop,
                         time.perf_counter_ns() - t_pop)
            if cached is not None:
                resp = ok_response(req, cached, cached=True,
                                   elapsed_seconds=time.monotonic() - t0)
                self.metrics.counter("server.ok").inc()
            else:
                resp = await loop.run_in_executor(
                    self._solve_lane, self._solve_blocking, req, tl
                )
                if resp["status"] == "ok":
                    self.cache.put(key, [int(s) for s in resp["scaled"]])
            self.metrics.histogram("server.latency_us").observe(
                max(0, int((time.monotonic() - t0) * 1e6))
            )
            if not fut.done():
                fut.set_result(resp)

    def _solve_blocking(self, req: Request,
                        tl: RequestTimeline) -> dict[str, Any]:
        """Runs on the solve lane: the only code driving the finder."""
        finder = self.finder
        t_setup = time.perf_counter_ns()
        finder.mu = req.mu
        finder.strategy = req.strategy
        budget = None
        if req.deadline_seconds is not None or req.max_bit_ops is not None:
            budget = Budget(deadline_seconds=req.deadline_seconds,
                            max_bit_ops=req.max_bit_ops)
            if (req.max_bit_ops is not None
                    and isinstance(finder.counter, NullCounter)):
                # The bit ceiling reads a real counter (backend-aware).
                finder.counter = counter_for(self.backend)
        finder.budget = budget
        tracer = (getattr(finder, "tracer", None)
                  if self._trace_solves else None)
        if tracer is not None and getattr(tracer, "enabled", False):
            # Single solve lane: nothing else touches the tracer, so
            # clearing between solves keeps the long-lived daemon's
            # span memory bounded at one solve's tree.
            tracer.spans.clear()
            tracer.counters.clear()
        else:
            tracer = None
        finder.request_tag = tl.request_id
        counter = getattr(finder, "counter", NULL_COUNTER)
        cost0 = getattr(counter, "total_bit_cost", 0)
        t_solve = time.perf_counter_ns()
        tl.add_stage("budget_setup", t_setup, t_solve - t_setup)
        t0 = time.monotonic()
        try:
            scaled = finder.find_roots_scaled(IntPoly(req.coeffs))
        except BudgetExceeded as e:
            self.metrics.counter("server.partial").inc()
            resp = partial_response(req, e)
        except Exception as e:
            self.metrics.counter("server.errors").inc()
            resp = error_response(
                req.id, f"{type(e).__name__}: {e}", code=500
            )
        else:
            self.metrics.counter("server.ok").inc()
            resp = ok_response(req, scaled, cached=False,
                               elapsed_seconds=time.monotonic() - t0)
        finally:
            finder.budget = None
            finder.request_tag = None
        t_end = time.perf_counter_ns()
        tl.add_stage("solve", t_solve, t_end - t_solve,
                     bit_cost=getattr(counter, "total_bit_cost", 0) - cost0)
        if tracer is not None:
            tl.solve_spans = [sp.to_dict() for sp in tracer.spans
                              if sp.end_ns is not None]
        return resp
