"""The daemon's core: one shared finder behind an asyncio admission lane.

Concurrency model
-----------------

Front-ends (stdio / HTTP) call :meth:`RootServer.submit` concurrently;
admitted requests enter a priority queue and a **single** dispatcher
coroutine drains it, running each solve on a one-thread executor.  The
dispatcher is therefore the only code that touches the shared
:class:`~repro.sched.executor.ParallelRootFinder` — per-request
``mu`` / ``strategy`` / :class:`~repro.resilience.budget.Budget`
assignments need no locking, and the finder's worker pool stays warm
across every request.  Parallelism lives *inside* a solve (the pool
workers), not across solves; for the daemon's mixed small-degree
traffic the solve lane is the fairness mechanism — one tenant's
monster polynomial is bounded by its budget, not by starving others
out of pool workers.

Determinism of the cache
------------------------

The cache is consulted by the dispatcher immediately before solving,
so for same-priority traffic a duplicate enqueued behind its first
occurrence always hits — ``cache.hits == total - unique`` regardless
of client timing, which is what lets the load-test gate pin the hit
count as an exactly-gated metric.  Only complete ``ok`` results are
cached; partials and errors are never stored.

Backpressure
------------

:meth:`queue_depth` is admitted-but-unanswered requests plus the
executor's own queued-task backlog (delivered by the finder's
``sample_hook`` — the live ``executor.queue_depth`` telemetry).  When
it reaches ``max_pending``, new requests are shed at admission with a
structured 429-style reply (``server.rejected`` counts them) instead
of growing the queue without bound.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.costmodel.counter import NULL_COUNTER, CostCounter
from repro.obs.metrics import MetricsRegistry
from repro.poly.dense import IntPoly
from repro.resilience import Budget, BudgetExceeded
from repro.resilience.checkpoint import poly_key
from repro.sched.executor import ParallelRootFinder
from repro.serve.cache import ResultCache
from repro.serve.protocol import (
    ProtocolError,
    Request,
    error_response,
    metrics_response,
    ok_response,
    overloaded_response,
    parse_request,
    partial_response,
)

__all__ = ["RootServer"]


class RootServer:
    """Admission control + cache + one shared pool, as an asyncio object.

    Parameters
    ----------
    mu:
        Default output precision in bits (requests may override with
        ``"bits"``).
    processes:
        Worker-pool size of the shared finder.
    strategy:
        Default interval-solver strategy.
    max_pending:
        Admission threshold: requests arriving while
        :meth:`queue_depth` is at or above this are shed with an
        ``overloaded`` reply.
    max_deadline_seconds:
        Fairness cap applied to every request's deadline (and assigned
        to requests that brought none) — see
        :func:`repro.serve.protocol.parse_request`.
    cache:
        A :class:`~repro.serve.cache.ResultCache`; built from
        ``cache_bytes`` / ``cache_dir`` when omitted.
    cache_bytes / cache_dir:
        Configuration for the default cache (ignored when ``cache`` is
        passed).  ``cache_dir=None`` honors ``REPRO_CACHE_DIR``.
    metrics:
        Shared registry; the finder's executor telemetry, the cache
        counters, and the ``server.*`` metrics all land here, so one
        ``/metrics`` scrape shows the whole daemon.
    finder:
        Injectable finder (tests); constructed from the parameters
        above when omitted.
    """

    def __init__(
        self,
        mu: int = 53,
        processes: int = 2,
        strategy: str = "hybrid",
        *,
        max_pending: int = 64,
        max_deadline_seconds: float | None = None,
        cache: ResultCache | None = None,
        cache_bytes: int | None = None,
        cache_dir: str | None = None,
        metrics: MetricsRegistry | None = None,
        finder: ParallelRootFinder | None = None,
    ):
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.mu = mu
        self.strategy = strategy
        self.max_pending = max_pending
        self.max_deadline_seconds = max_deadline_seconds
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if cache is None:
            kwargs: dict[str, Any] = {"metrics": self.metrics}
            if cache_bytes is not None:
                kwargs["max_bytes"] = cache_bytes
            cache = ResultCache(disk_dir=cache_dir, **kwargs)
        self.cache = cache
        if finder is None:
            finder = ParallelRootFinder(
                mu=mu, processes=processes, strategy=strategy,
                counter=CostCounter(), metrics=self.metrics,
            )
        self.finder = finder
        # Executor queue-depth telemetry, delivered synchronously from
        # the dispatch loop's sample() sites (solve-thread side; a
        # plain int store is atomic under the GIL).
        self._executor_backlog = 0
        finder.sample_hook = self._on_executor_sample

        self._queue: asyncio.PriorityQueue | None = None
        self._dispatcher: asyncio.Task | None = None
        self._solve_lane: ThreadPoolExecutor | None = None
        self._outstanding: set[asyncio.Future] = set()
        self._pending = 0
        self._seq = 0
        self._accepting = False
        self._closed = False

    # -- telemetry -------------------------------------------------------
    def _on_executor_sample(self, depth: int, in_flight: int) -> None:
        self._executor_backlog = depth

    def queue_depth(self) -> int:
        """Admitted-but-unanswered requests plus the executor backlog —
        the number the admission threshold watches."""
        return self._pending + self._executor_backlog

    def metrics_snapshot(self, rid: Any = None) -> dict[str, Any]:
        """A :func:`repro.serve.protocol.metrics_response` for ``rid``."""
        return metrics_response(self.metrics, rid)

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> "RootServer":
        """Bind to the running loop and start the dispatcher (idempotent)."""
        if self._closed:
            raise RuntimeError("server is closed")
        if self._dispatcher is None:
            self._queue = asyncio.PriorityQueue()
            self._solve_lane = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-solve"
            )
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop()
            )
            self._accepting = True
        return self

    async def drain(self) -> None:
        """Wait until every admitted request has been answered."""
        while self._outstanding:
            await asyncio.wait(set(self._outstanding))

    async def aclose(self) -> None:
        """Stop accepting, drain in-flight requests, release the pool.

        The shared finder's workers are joined (no orphaned pool
        processes); the server object cannot be restarted afterwards.
        """
        if self._closed:
            return
        self._accepting = False
        await self.drain()
        self._closed = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if self._solve_lane is not None:
            self._solve_lane.shutdown(wait=True)
            self._solve_lane = None
        self.finder.close()

    # -- the request path ------------------------------------------------
    async def submit(self, obj: Any) -> dict[str, Any]:
        """One request object in, one response object out.

        Never raises for bad input — every failure mode has a response
        shape (see :mod:`repro.serve.protocol`).
        """
        self.metrics.counter("server.requests").inc()
        rid = obj.get("id") if isinstance(obj, dict) else None
        if not self._accepting:
            self.metrics.counter("server.errors").inc()
            return error_response(rid, "server is draining", code=503)
        try:
            req = parse_request(
                obj, default_mu=self.mu, default_strategy=self.strategy,
                max_deadline_seconds=self.max_deadline_seconds,
            )
        except ProtocolError as e:
            self.metrics.counter("server.bad_requests").inc()
            return error_response(rid, str(e))
        depth = self.queue_depth()
        if depth >= self.max_pending:
            self.metrics.counter("server.rejected").inc()
            return overloaded_response(
                req.id, queue_depth=depth, limit=self.max_pending
            )

        assert self._queue is not None
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        self._outstanding.add(fut)
        self._pending += 1
        self.metrics.gauge("server.pending").set(self._pending)
        self._seq += 1
        # PriorityQueue pops the smallest tuple: higher priority first,
        # FIFO (by admission sequence) within a priority level.
        self._queue.put_nowait((-req.priority, self._seq, req, fut))
        try:
            return await fut
        finally:
            self._pending -= 1
            self.metrics.gauge("server.pending").set(self._pending)
            self._outstanding.discard(fut)

    async def _dispatch_loop(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            _, _, req, fut = await self._queue.get()
            if fut.done():  # client gone (transport dropped the future)
                continue
            key = poly_key(req.coeffs, req.mu, req.strategy)
            t0 = time.monotonic()
            cached = self.cache.get(key)
            if cached is not None:
                resp = ok_response(req, cached, cached=True,
                                   elapsed_seconds=time.monotonic() - t0)
                self.metrics.counter("server.ok").inc()
            else:
                resp = await loop.run_in_executor(
                    self._solve_lane, self._solve_blocking, req
                )
                if resp["status"] == "ok":
                    self.cache.put(key, [int(s) for s in resp["scaled"]])
            self.metrics.histogram("server.latency_us").observe(
                max(0, int((time.monotonic() - t0) * 1e6))
            )
            if not fut.done():
                fut.set_result(resp)

    def _solve_blocking(self, req: Request) -> dict[str, Any]:
        """Runs on the solve lane: the only code driving the finder."""
        finder = self.finder
        finder.mu = req.mu
        finder.strategy = req.strategy
        budget = None
        if req.deadline_seconds is not None or req.max_bit_ops is not None:
            budget = Budget(deadline_seconds=req.deadline_seconds,
                            max_bit_ops=req.max_bit_ops)
            if req.max_bit_ops is not None and finder.counter is NULL_COUNTER:
                finder.counter = CostCounter()  # the bit ceiling reads it
        finder.budget = budget
        t0 = time.monotonic()
        try:
            scaled = finder.find_roots_scaled(IntPoly(req.coeffs))
        except BudgetExceeded as e:
            self.metrics.counter("server.partial").inc()
            return partial_response(req, e)
        except Exception as e:
            self.metrics.counter("server.errors").inc()
            return error_response(
                req.id, f"{type(e).__name__}: {e}", code=500
            )
        finally:
            finder.budget = None
        self.metrics.counter("server.ok").inc()
        return ok_response(req, scaled, cached=False,
                           elapsed_seconds=time.monotonic() - t0)
