"""The daemon's request/response schema (one JSON object per message).

Both front-ends speak the same shapes — the stdio transport frames them
as JSON Lines, the HTTP transport as request/response bodies — so a
request file replayed through either produces identical payloads.

Request::

    {"id": 7, "coeffs": [-6, 1, 1], "bits": 16,
     "strategy": "hybrid", "deadline_seconds": 1.5,
     "bit_budget": 1000000, "priority": 5}

``coeffs`` (low to high) or ``roots`` (integer demo roots) selects the
polynomial; everything else is optional.  ``id`` is echoed verbatim in
the response so pipelined clients can match answers to questions.

Response statuses (``code`` carries the HTTP rendering of each):

=============  ====  ====================================================
status         code  meaning
=============  ====  ====================================================
``ok``          200  exact roots; ``cached`` tells whether the answer
                     came from the result cache
``partial``     206  the request's budget tripped; the certified roots
                     completed so far, with ``reason``/``phase`` — the
                     protocol rendering of the CLI's exit code 3
                     (``exit_code: 3`` is included verbatim)
``overloaded``  429  shed by admission control; retry after
                     ``retry_after_seconds``
``error``       400  malformed request (or 503 while draining)
``metrics``     200  a metrics snapshot (the ``{"op": "metrics"}``
                     control line)
=============  ====  ====================================================
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.scaling import scaled_to_float
from repro.poly.dense import IntPoly

__all__ = [
    "Request",
    "ProtocolError",
    "parse_request",
    "control_op",
    "salvage_id",
    "ok_response",
    "partial_response",
    "error_response",
    "overloaded_response",
    "metrics_response",
    "shutdown_response",
    "HTTP_REASONS",
]

#: HTTP reason phrases for every code the daemon emits.
HTTP_REASONS = {
    200: "OK",
    206: "Partial Content",
    400: "Bad Request",
    404: "Not Found",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Priorities beyond this magnitude are rejected (they would only
#: starve the queue; there is no meaningful "more urgent than urgent").
MAX_PRIORITY = 1_000_000

#: Degrees beyond this are rejected at admission (a single absurd
#: request must not monopolize the shared pool for minutes).
MAX_DEGREE = 512


class ProtocolError(ValueError):
    """The request object cannot be turned into work."""


@dataclass(frozen=True)
class Request:
    """One validated, normalized solve request.

    ``coeffs`` is the polynomial's normalized coefficient tuple
    (``IntPoly`` trims trailing zeros), so equivalent spellings of one
    polynomial share a cache key.
    """

    id: Any
    coeffs: tuple[int, ...]
    mu: int
    strategy: str
    deadline_seconds: float | None
    max_bit_ops: int | None
    priority: int


def control_op(obj: Any) -> str | None:
    """The control operation named by ``obj`` (``"metrics"``,
    ``"shutdown"``, ``"ping"``), or ``None`` for a solve request."""
    if isinstance(obj, Mapping) and isinstance(obj.get("op"), str):
        return obj["op"]
    return None


#: The ``"id": <scalar>`` shape inside a (possibly broken) JSON line.
_ID_FIELD = re.compile(
    r'"id"\s*:\s*("(?:[^"\\]|\\.)*"|-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?'
    r'|true|false|null)'
)


def salvage_id(line: str) -> Any:
    """Best-effort ``id`` recovery from a line that failed JSON parsing.

    A client that sent ``{"id": 7, "coeffs": [1,`` still deserves an
    error reply it can correlate — pipelined clients match responses by
    id, and ``"id": null`` orphans the failure.  Only scalar ids are
    recovered (strings, numbers, booleans, null); anything unsalvable
    returns ``None``, which is also what an absent id yields."""
    m = _ID_FIELD.search(line)
    if m is None:
        return None
    try:
        return json.loads(m.group(1))
    except json.JSONDecodeError:  # pragma: no cover - regex-vetted
        return None


def _int_field(obj: Mapping, name: str, default: int | None,
               minimum: int) -> int | None:
    v = obj.get(name, default)
    if v is None:
        return None
    if isinstance(v, bool) or not isinstance(v, int):
        raise ProtocolError(f"{name!r} must be an integer")
    if v < minimum:
        raise ProtocolError(f"{name!r} must be >= {minimum}")
    return v


def parse_request(
    obj: Any,
    *,
    default_mu: int,
    default_strategy: str = "hybrid",
    max_deadline_seconds: float | None = None,
) -> Request:
    """Validate one solve request; raises :class:`ProtocolError`.

    ``max_deadline_seconds`` caps every request's deadline (fairness:
    one tenant must not reserve the solve lane for an hour); a request
    without a deadline gets the cap itself when one is configured.
    """
    if not isinstance(obj, Mapping):
        raise ProtocolError("request must be a JSON object")
    rid = obj.get("id")

    coeffs = obj.get("coeffs")
    roots = obj.get("roots")
    if (coeffs is None) == (roots is None):
        raise ProtocolError('provide exactly one of "coeffs" or "roots"')
    try:
        if roots is not None:
            if not isinstance(roots, list) or not roots:
                raise ProtocolError('"roots" must be a nonempty array')
            p = IntPoly.from_roots([int(r) for r in roots])
        else:
            if not isinstance(coeffs, list) or not coeffs:
                raise ProtocolError('"coeffs" must be a nonempty array')
            p = IntPoly(int(c) for c in coeffs)
    except (TypeError, ValueError) as e:
        raise ProtocolError(f"bad polynomial: {e}") from e
    if p.is_zero():
        raise ProtocolError("the zero polynomial has every number as a root")
    if p.degree < 1:
        raise ProtocolError("polynomial must be nonconstant")
    if p.degree > MAX_DEGREE:
        raise ProtocolError(f"degree {p.degree} exceeds the limit "
                            f"({MAX_DEGREE})")

    mu = _int_field(obj, "bits", default_mu, 1)
    strategy = obj.get("strategy", default_strategy)
    from repro.core.sieve import STRATEGIES

    if strategy not in STRATEGIES:
        raise ProtocolError(
            f"unknown strategy {strategy!r}; known: {sorted(STRATEGIES)}"
        )

    deadline = obj.get("deadline_seconds")
    if deadline is not None:
        if isinstance(deadline, bool) or not isinstance(deadline,
                                                        (int, float)):
            raise ProtocolError('"deadline_seconds" must be a number')
        if deadline < 0:
            raise ProtocolError('"deadline_seconds" must be >= 0')
        deadline = float(deadline)
    if max_deadline_seconds is not None:
        deadline = (max_deadline_seconds if deadline is None
                    else min(deadline, max_deadline_seconds))

    bit_budget = _int_field(obj, "bit_budget", None, 0)
    priority = _int_field(obj, "priority", 0, -MAX_PRIORITY)
    assert priority is not None
    if priority > MAX_PRIORITY:
        raise ProtocolError(f'"priority" must be <= {MAX_PRIORITY}')

    return Request(
        id=rid, coeffs=p.coeffs, mu=mu if mu is not None else default_mu,
        strategy=strategy, deadline_seconds=deadline,
        max_bit_ops=bit_budget, priority=priority,
    )


# -- response builders -------------------------------------------------------

def ok_response(req: Request, scaled: list[int], *, cached: bool,
                elapsed_seconds: float) -> dict[str, Any]:
    """Exact roots, in the same shape ``repro roots --json`` prints."""
    return {
        "id": req.id,
        "status": "ok",
        "code": 200,
        "mu_bits": req.mu,
        "scaled": [str(s) for s in scaled],
        "floats": [scaled_to_float(s, req.mu) for s in scaled],
        "cached": cached,
        "elapsed_seconds": elapsed_seconds,
    }


def partial_response(req: Request, exc: Any) -> dict[str, Any]:
    """The request's budget tripped: certified partial roots (the
    protocol form of the CLI's exit-code-3 JSON)."""
    part = exc.partial
    return {
        "id": req.id,
        "status": "partial",
        "code": 206,
        "exit_code": 3,
        "mu_bits": req.mu,
        "reason": exc.reason,
        "phase": part.phase,
        "elapsed_seconds": part.elapsed_seconds,
        "bit_cost": part.bit_cost,
        "scaled": [str(s) for s in part.scaled],
        "floats": part.as_floats(),
    }


def error_response(rid: Any, message: str, code: int = 400) -> dict[str, Any]:
    """A request that produced no roots at all."""
    return {"id": rid, "status": "error", "code": code, "error": message}


def overloaded_response(rid: Any, *, queue_depth: int, limit: int,
                        retry_after_seconds: float = 1.0) -> dict[str, Any]:
    """Shed by admission control (the 429-style backpressure reply)."""
    return {
        "id": rid,
        "status": "overloaded",
        "code": 429,
        "queue_depth": queue_depth,
        "limit": limit,
        "retry_after_seconds": retry_after_seconds,
    }


def metrics_response(registry: Any, rid: Any = None) -> dict[str, Any]:
    """A point-in-time metrics snapshot (``{"op": "metrics"}``)."""
    from repro.obs.export import snapshot

    out = snapshot(registry)
    out.update({"id": rid, "status": "metrics", "code": 200})
    return out


def shutdown_response(rid: Any = None) -> dict[str, Any]:
    """Acknowledges ``{"op": "shutdown"}`` after the drain completes."""
    return {"id": rid, "status": "shutdown", "code": 200}
