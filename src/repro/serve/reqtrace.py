"""Request-scoped tracing for the daemon: ids, stage timelines, tail
capture.

Every request admitted by :class:`~repro.serve.server.RootServer` gets
a server-assigned ``request_id`` (echoed in the JSONL reply and the
``X-Request-Id`` HTTP header) and a :class:`RequestTimeline` — the
paper's phase-by-phase cost decomposition applied to the unit users
actually experience.  The stages, in request order:

=================  =========================================================
stage              what it measures
=================  =========================================================
``admission``      backpressure check + enqueue bookkeeping
``validate``       :func:`~repro.serve.protocol.parse_request`
``queue_wait``     enqueue → dispatcher pop (the priority-queue delay)
``cache_lookup``   :func:`~repro.resilience.checkpoint.poly_key` + cache get
``budget_setup``   per-request ``mu``/``strategy``/``Budget`` assignment
``solve``          the finder call — wall ns *and* the bit-cost delta
``serialize``      ``json.dumps`` of the response (front-end measured)
``write``          flush to the transport (front-end measured)
=================  =========================================================

Stages are **sub-intervals** of the request's admission→write window:
their sum reconciles with the end-to-end latency up to the untimed
seams (thread handoff into the solve lane, event-loop scheduling) —
the "serialization slack" the acceptance tests bound.

Timelines land in three sinks, all owned by :class:`RequestTracker`:

* a bounded in-memory ring (:class:`TimelineRing`) — the window the
  SLO evaluator and the ``repro tail`` ring-dump read;
* an optional JSONL access log (:class:`AccessLog`) — size-rotated,
  fsynced on close, torn-line tolerant on read like the run ledger;
* **tail capture**: a request that is slow beyond the threshold, shed,
  errored, or partial gets its full timeline written as a Chrome trace
  (via :func:`repro.obs.chrometrace.spans_to_chrome`) under the
  capture directory, adopted executor spans included.
"""

from __future__ import annotations

import json
import os
from collections import deque
from dataclasses import dataclass, field
from typing import IO, Any, Iterable, Sequence

from repro.obs.metrics import MetricsRegistry, labeled
from repro.obs.trace import Span

__all__ = [
    "STAGES",
    "SCHEMA",
    "StageRecord",
    "RequestTimeline",
    "TimelineRing",
    "AccessLog",
    "read_access_log",
    "RequestTracker",
    "degree_bucket",
    "rank_timelines",
    "format_tail_table",
]

#: Canonical stage order (rendering and reconciliation follow it).
STAGES = ("admission", "validate", "queue_wait", "cache_lookup",
          "budget_setup", "solve", "serialize", "write")

#: Schema tag stamped on every serialized timeline.
SCHEMA = "repro.reqtrace/1"

#: Statuses that are captured by the tail sampler regardless of speed.
FAILURE_STATUSES = ("error", "overloaded", "partial")


def degree_bucket(degree: int) -> str:
    """Power-of-two degree bucket label (``"1-2"``, ``"3-4"``,
    ``"5-8"``, ``"9-16"``, ...) — coarse enough that the label set
    stays bounded, fine enough to separate the paper's cost regimes."""
    if degree <= 2:
        return "1-2"
    upper = 1 << (degree - 1).bit_length()
    return f"{upper // 2 + 1}-{upper}"


@dataclass
class StageRecord:
    """One closed stage: a name, a start, a duration, a bit cost."""

    name: str
    start_ns: int
    wall_ns: int
    bit_cost: int = 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form (bit cost omitted when zero, to keep access
        log lines tight)."""
        d: dict[str, Any] = {"name": self.name, "start_ns": self.start_ns,
                             "wall_ns": self.wall_ns}
        if self.bit_cost:
            d["bit_cost"] = self.bit_cost
        return d


@dataclass
class RequestTimeline:
    """One request's span timeline, from admission to the final write.

    ``start_ns`` is ``time.perf_counter_ns()`` — the same clock the
    tracer's spans use, so adopted executor spans line up on the same
    axis.  ``time_unix`` anchors the timeline in wall-clock time for
    the SLO window.
    """

    request_id: str
    client_id: Any = None
    priority: int = 0
    degree: int = 0
    start_ns: int = 0
    time_unix: float = 0.0
    status: str = "pending"
    code: int = 0
    cached: bool = False
    end_ns: int | None = None
    stages: list[StageRecord] = field(default_factory=list)
    #: executor/phase spans adopted from the worker pool during the
    #: solve stage (exported dicts, :meth:`Span.to_dict` shape).
    solve_spans: list[dict[str, Any]] = field(default_factory=list)

    def add_stage(self, name: str, start_ns: int, wall_ns: int,
                  bit_cost: int = 0) -> None:
        """Append one closed stage (durations clamped nonnegative)."""
        self.stages.append(StageRecord(name, start_ns, max(0, wall_ns),
                                       max(0, bit_cost)))

    @property
    def total_ns(self) -> int:
        """Admission→write wall time; falls back to the stage span when
        the timeline was never closed."""
        if self.end_ns is not None:
            return max(0, self.end_ns - self.start_ns)
        return self.stage_sum_ns

    @property
    def stage_sum_ns(self) -> int:
        """Sum of the measured stage durations — reconciles with
        :attr:`total_ns` up to the untimed seams."""
        return sum(s.wall_ns for s in self.stages)

    @property
    def bit_cost(self) -> int:
        """Total bit-operation cost charged across the stages."""
        return sum(s.bit_cost for s in self.stages)

    def stage_ns(self, name: str) -> int:
        """Total wall ns spent in stage ``name`` (0 when unmeasured)."""
        return sum(s.wall_ns for s in self.stages if s.name == name)

    def dominant_stage(self) -> str:
        """The stage that ate the most wall time (``"-"`` when none
        measured) — the one-word answer to "why was this slow?"."""
        if not self.stages:
            return "-"
        best = max(self.stages, key=lambda s: s.wall_ns)
        return best.name

    def close(self, status: str, code: int, *, cached: bool = False,
              end_ns: int | None = None) -> None:
        """Record the outcome and stamp the end of the window."""
        self.status = status
        self.code = code
        self.cached = cached
        if end_ns is not None:
            self.end_ns = end_ns

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form, one access-log line (schema-stamped)."""
        return {
            "schema": SCHEMA,
            "request_id": self.request_id,
            "id": self.client_id,
            "priority": self.priority,
            "degree": self.degree,
            "status": self.status,
            "code": self.code,
            "cached": self.cached,
            "time_unix": self.time_unix,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "total_ns": self.total_ns,
            "bit_cost": self.bit_cost,
            "dominant_stage": self.dominant_stage(),
            "stages": [s.to_dict() for s in self.stages],
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "RequestTimeline":
        """Rebuild a timeline from :meth:`to_dict` output (solve spans
        are not round-tripped through the access log — they live in the
        captured Chrome traces)."""
        tl = cls(
            request_id=str(d.get("request_id", "?")),
            client_id=d.get("id"),
            priority=int(d.get("priority", 0)),
            degree=int(d.get("degree", 0)),
            start_ns=int(d.get("start_ns", 0)),
            time_unix=float(d.get("time_unix", 0.0)),
            status=str(d.get("status", "?")),
            code=int(d.get("code", 0)),
            cached=bool(d.get("cached", False)),
            end_ns=d.get("end_ns"),
        )
        for s in d.get("stages", []):
            tl.add_stage(str(s.get("name", "?")), int(s.get("start_ns", 0)),
                         int(s.get("wall_ns", 0)),
                         int(s.get("bit_cost", 0)))
        return tl

    def spans(self) -> list[Span]:
        """The timeline as tracer spans — a root request span, one
        child per stage, plus the adopted executor spans — ready for
        :func:`repro.obs.chrometrace.spans_to_chrome`."""
        end = self.end_ns if self.end_ns is not None else (
            self.start_ns + self.stage_sum_ns)
        out = [Span(
            sid=0, name=f"request {self.request_id}", phase="request",
            depth=0, parent=None, start_ns=self.start_ns, end_ns=end,
            attrs={"request_id": self.request_id, "status": self.status,
                   "degree": self.degree, "priority": self.priority},
            cost={},
        )]
        for i, s in enumerate(self.stages, start=1):
            out.append(Span(
                sid=i, name=s.name, phase="request", depth=1, parent=0,
                start_ns=s.start_ns, end_ns=s.start_ns + s.wall_ns,
                attrs={"bit_cost": s.bit_cost} if s.bit_cost else {},
                cost={},
            ))
        base = len(out)
        for j, d in enumerate(self.solve_spans):
            sp = Span.from_dict(d)
            sp.sid = base + j
            out.append(sp)
        return out


class TimelineRing:
    """Bounded ring of the most recent closed timelines.

    The live window behind ``GET /slo`` and the ``repro tail``
    ring-dump: pushes evict the oldest entry once ``maxlen`` is
    reached, so memory stays constant no matter how long the daemon
    runs."""

    def __init__(self, maxlen: int = 512):
        if maxlen < 1:
            raise ValueError("ring maxlen must be >= 1")
        self._ring: deque[RequestTimeline] = deque(maxlen=maxlen)

    def push(self, tl: RequestTimeline) -> None:
        """Record one closed timeline."""
        self._ring.append(tl)

    def __len__(self) -> int:
        return len(self._ring)

    def snapshot(self) -> list[RequestTimeline]:
        """The ring's contents, oldest first."""
        return list(self._ring)


class AccessLog:
    """Append-only JSONL access log with size rotation.

    One timeline dict per line, flushed per write and **fsynced every
    ``fsync_interval`` lines** (the durability contract shared with the
    request journal: a SIGKILL loses at most ``fsync_interval`` records
    plus the line in flight); :meth:`close` fsyncs, so a *graceful*
    shutdown (the stdio SIGTERM path) loses nothing.  When the file
    crosses ``max_bytes`` it is rotated to ``<path>.1`` (one generation
    — this is a lab daemon, not logrotate)."""

    def __init__(self, path: str, max_bytes: int = 16 << 20,
                 fsync_interval: int = 32):
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        if fsync_interval < 1:
            raise ValueError("fsync_interval must be >= 1")
        self.path = path
        self.max_bytes = max_bytes
        self.fsync_interval = fsync_interval
        self._unsynced = 0
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._fh: IO[str] | None = open(path, "a", encoding="utf-8")
        self._size = self._fh.tell()

    def write(self, record: dict[str, Any]) -> None:
        """Append one record (no-op after :meth:`close`)."""
        if self._fh is None:
            return
        line = json.dumps(record, separators=(",", ":")) + "\n"
        if self._size + len(line) > self.max_bytes and self._size > 0:
            self._rotate()
        self._fh.write(line)
        self._fh.flush()
        self._size += len(line)
        self._unsynced += 1
        if self._unsynced >= self.fsync_interval:
            try:
                os.fsync(self._fh.fileno())
            except OSError:
                pass
            self._unsynced = 0

    def _rotate(self) -> None:
        assert self._fh is not None
        self._fh.close()
        os.replace(self.path, self.path + ".1")
        self._fh = open(self.path, "a", encoding="utf-8")
        self._size = 0

    def close(self) -> None:
        """Flush, fsync, and close (idempotent) — the durability step
        the daemon's shutdown path owes its last records."""
        if self._fh is None:
            return
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        self._fh = None


def read_access_log(path: str) -> list[dict[str, Any]]:
    """Every parseable record of an access log, oldest first.

    Reads the rotated generation (``<path>.1``) before the live file
    and skips blank or torn lines — the same tolerance contract as the
    run ledger, so a crash mid-append never poisons the reader."""
    out: list[dict[str, Any]] = []
    for p in (path + ".1", path):
        if not os.path.exists(p):
            continue
        with open(p, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(rec, dict):
                    out.append(rec)
    return out


class RequestTracker:
    """Owns every per-request observability sink for one daemon.

    The server opens a timeline per admitted request and finalizes it
    at the response boundary; front-ends that can measure their own
    serialize/write cost set ``defer_finalize`` and call
    :meth:`finish_io` afterwards — the tracker holds the timeline in a
    bounded pending map in between (overflow finalizes the oldest
    entry immediately rather than leaking).

    Finalizing a timeline: pushes it onto the ring, updates the
    unlabeled ``server.queue_wait_us`` / ``server.solve_us`` histograms
    and the per-priority / per-degree-bucket ``server.latency_us`` and
    ``server.queue_wait_us`` labeled families, appends the access-log
    line, and tail-captures a Chrome trace when the request was slow,
    shed, errored, or partial.
    """

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        *,
        ring_size: int = 512,
        access_log: str | None = None,
        access_log_max_bytes: int = 16 << 20,
        fsync_interval: int = 32,
        capture_dir: str | None = None,
        slow_threshold_ns: int = 250_000_000,
        max_pending_io: int = 1024,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.ring = TimelineRing(ring_size)
        self.capture_dir = capture_dir
        self.slow_threshold_ns = slow_threshold_ns
        self.access_log = (AccessLog(access_log, access_log_max_bytes,
                                     fsync_interval=fsync_interval)
                           if access_log else None)
        self._pending_io: dict[str, RequestTimeline] = {}
        self._max_pending_io = max_pending_io
        self._seq = 0
        self._prefix = os.urandom(4).hex()

    def new_request_id(self) -> str:
        """A server-unique id: a per-process random prefix plus a
        sequence number — sortable within one daemon's lifetime,
        collision-free across restarts sharing an access log."""
        self._seq += 1
        return f"{self._prefix}-{self._seq:06d}"

    # -- finalization ----------------------------------------------------
    def finalize(self, tl: RequestTimeline,
                 defer_io: bool = False) -> None:
        """Close out one timeline.

        With ``defer_io`` the timeline is parked until the front-end
        reports its serialize/write stages via :meth:`finish_io`; the
        ring and histograms update immediately either way (the solve-
        side truth must not depend on transport cooperation)."""
        self.ring.push(tl)
        self._observe(tl)
        if defer_io:
            if len(self._pending_io) >= self._max_pending_io:
                # Oldest first: complete it without IO stages rather
                # than grow without bound under a misbehaving client.
                oldest = next(iter(self._pending_io))
                self._complete(self._pending_io.pop(oldest))
            self._pending_io[tl.request_id] = tl
            return
        self._complete(tl)

    def finish_io(self, request_id: str, serialize_ns: int = 0,
                  write_ns: int = 0, *,
                  start_ns: int | None = None) -> None:
        """Attach the front-end's serialize/write stages to a deferred
        timeline and complete it (unknown ids are ignored — the
        overflow path may already have completed the request)."""
        tl = self._pending_io.pop(request_id, None)
        if tl is None:
            return
        t0 = start_ns if start_ns is not None else (
            tl.start_ns + tl.stage_sum_ns)
        if serialize_ns > 0:
            tl.add_stage("serialize", t0, serialize_ns)
        if write_ns > 0:
            tl.add_stage("write", t0 + max(0, serialize_ns), write_ns)
        tl.end_ns = t0 + max(0, serialize_ns) + max(0, write_ns)
        self._complete(tl)

    def _observe(self, tl: RequestTimeline) -> None:
        m = self.metrics
        m.counter("reqtrace.requests").inc()
        queue_us = tl.stage_ns("queue_wait") // 1000
        solve_us = tl.stage_ns("solve") // 1000
        m.histogram("server.queue_wait_us").observe(queue_us)
        if tl.stage_ns("solve"):
            m.histogram("server.solve_us").observe(solve_us)
        labels = {"priority": tl.priority,
                  "degree_bucket": degree_bucket(tl.degree)}
        total_us = tl.total_ns // 1000
        m.histogram(labeled("server.latency_us", **labels)).observe(total_us)
        m.histogram(labeled("server.queue_wait_us", **labels)).observe(
            queue_us)

    def _complete(self, tl: RequestTimeline) -> None:
        if self.access_log is not None:
            self.access_log.write(tl.to_dict())
        if self._should_capture(tl):
            self._capture(tl)

    def _should_capture(self, tl: RequestTimeline) -> bool:
        return (tl.status in FAILURE_STATUSES
                or tl.total_ns > self.slow_threshold_ns)

    def _capture(self, tl: RequestTimeline) -> None:
        if self.capture_dir is None:
            return
        from repro.obs.chrometrace import spans_to_chrome

        try:
            os.makedirs(self.capture_dir, exist_ok=True)
            trace = spans_to_chrome(tl.spans(), worker_busy=False)
            path = os.path.join(self.capture_dir,
                                f"req-{tl.request_id}.trace.json")
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(trace, fh)
            self.metrics.counter("reqtrace.tail_captured").inc()
        except OSError:
            self.metrics.counter("reqtrace.capture_errors").inc()

    def close(self) -> None:
        """Finalize every parked timeline and fsync the access log —
        the drain step of a graceful shutdown."""
        while self._pending_io:
            _, tl = self._pending_io.popitem()
            self._complete(tl)
        if self.access_log is not None:
            self.access_log.close()


# -- the failures-first tail table -------------------------------------------

def rank_timelines(
    timelines: Iterable[RequestTimeline],
) -> list[RequestTimeline]:
    """Failures first (error/overloaded/partial, slowest first within),
    then everything else slowest first — the triage order ``repro
    tail`` prints."""
    return sorted(
        timelines,
        key=lambda tl: (0 if tl.status in FAILURE_STATUSES else 1,
                        -tl.total_ns),
    )


def format_tail_table(timelines: Sequence[RequestTimeline],
                      limit: int = 20) -> str:
    """Render ranked timelines as the ``repro tail`` table."""
    ranked = rank_timelines(timelines)[:limit]
    if not ranked:
        return "no timelines"
    headers = ("request_id", "id", "status", "code", "total_ms",
               "queue_ms", "solve_ms", "dominant", "degree", "prio")
    rows = [headers]
    for tl in ranked:
        rows.append((
            tl.request_id,
            str(tl.client_id),
            tl.status + ("*" if tl.cached else ""),
            str(tl.code),
            f"{tl.total_ns / 1e6:.2f}",
            f"{tl.stage_ns('queue_wait') / 1e6:.2f}",
            f"{tl.stage_ns('solve') / 1e6:.2f}",
            tl.dominant_stage(),
            str(tl.degree),
            str(tl.priority),
        ))
    widths = [max(len(r[i]) for r in rows) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths))
                     .rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
