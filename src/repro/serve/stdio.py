"""JSON-Lines front-end: one request per stdin line, one response per
stdout line.

The shape embeddings and batch pipelines want: spawn
``repro serve --stdio``, write request lines, read response lines —
no sockets, no ports, works over SSH.  Responses may interleave out of
input order (requests are pipelined through the server's priority
queue); match them by ``id``.

Control lines:

* ``{"op": "ping"[, "id": ...]}`` — liveness probe, answered inline;
* ``{"op": "metrics"[, "id": ...]}`` — **barrier**: waits for every
  request already read to be answered, then emits the snapshot — so a
  replay file ending in a metrics line observes the counters of
  everything before it, deterministically;
* ``{"op": "shutdown"[, "id": ...]}`` — drain in-flight requests,
  acknowledge, and exit cleanly.  EOF on stdin behaves the same,
  minus the acknowledgement.
"""

from __future__ import annotations

import asyncio
import json
from typing import IO, Any

from repro.serve.protocol import (
    control_op,
    error_response,
    shutdown_response,
)
from repro.serve.server import RootServer

__all__ = ["serve_stdio"]


async def serve_stdio(server: RootServer, in_fh: IO[str],
                      out_fh: IO[str]) -> int:
    """Serve JSONL requests from ``in_fh`` to ``out_fh`` until EOF or a
    shutdown op; returns the process exit code (0).

    The server is started if needed and **always** closed on the way
    out — the pool's workers are joined before the function returns.
    """
    await server.start()
    loop = asyncio.get_running_loop()
    write_lock = asyncio.Lock()
    tasks: set[asyncio.Task] = set()

    async def emit(resp: dict[str, Any]) -> None:
        async with write_lock:
            out_fh.write(json.dumps(resp) + "\n")
            out_fh.flush()

    async def handle(obj: Any) -> None:
        await emit(await server.submit(obj))

    try:
        while True:
            line = await loop.run_in_executor(None, in_fh.readline)
            if not line:
                break
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                await emit(error_response(None, f"not valid JSON: {e}"))
                continue
            op = control_op(obj)
            rid = obj.get("id") if isinstance(obj, dict) else None
            if op == "ping":
                await emit({"id": rid, "status": "ok", "code": 200,
                            "op": "ping"})
            elif op == "metrics":
                if tasks:  # the barrier: snapshot after the backlog
                    await asyncio.gather(*tasks)
                await emit(server.metrics_snapshot(rid))
            elif op == "shutdown":
                if tasks:
                    await asyncio.gather(*tasks)
                await emit(shutdown_response(rid))
                break
            elif op is not None:
                await emit(error_response(rid, f"unknown op {op!r}"))
            else:
                t = asyncio.ensure_future(handle(obj))
                tasks.add(t)
                t.add_done_callback(tasks.discard)
        if tasks:
            await asyncio.gather(*tasks)
    finally:
        await server.aclose()
    return 0
