"""JSON-Lines front-end: one request per stdin line, one response per
stdout line.

The shape embeddings and batch pipelines want: spawn
``repro serve --stdio``, write request lines, read response lines —
no sockets, no ports, works over SSH.  Responses may interleave out of
input order (requests are pipelined through the server's priority
queue); match them by ``id`` — or by the server-assigned
``request_id`` every response (error shapes included) carries.

Control lines:

* ``{"op": "ping"[, "id": ...]}`` — liveness probe, answered inline;
* ``{"op": "metrics"[, "id": ...]}`` — **barrier**: waits for every
  request already read to be answered, then emits the snapshot — so a
  replay file ending in a metrics line observes the counters of
  everything before it, deterministically;
* ``{"op": "slo"[, "id": ...]}`` — the server's SLO report over the
  timeline ring (:meth:`~repro.serve.server.RootServer.slo_report`),
  answered inline;
* ``{"op": "shutdown"[, "id": ...]}`` — drain in-flight requests,
  acknowledge, and exit cleanly.  EOF on stdin behaves the same,
  minus the acknowledgement.

``SIGTERM`` is the graceful-stop signal: the daemon stops reading,
drains every admitted request, and exits 0 — and because the server's
close path fsyncs the access log, a SIGTERM'd daemon leaves no torn
final record.  Stdin is read by a daemonic thread (a thread blocked in
``readline`` cannot be cancelled; daemonizing it keeps it from pinning
the process open after the drain).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import threading
import time
from typing import IO, Any

from repro.serve.protocol import (
    control_op,
    error_response,
    salvage_id,
    shutdown_response,
)
from repro.serve.server import RootServer

__all__ = ["serve_stdio"]


async def serve_stdio(server: RootServer, in_fh: IO[str],
                      out_fh: IO[str]) -> int:
    """Serve JSONL requests from ``in_fh`` to ``out_fh`` until EOF, a
    shutdown op, or SIGTERM; returns the process exit code (0).

    The server is started if needed and **always** closed on the way
    out — the pool's workers are joined and the access log fsynced
    before the function returns.
    """
    await server.start()
    loop = asyncio.get_running_loop()
    write_lock = asyncio.Lock()
    tasks: set[asyncio.Task] = set()
    stop = asyncio.Event()

    try:
        loop.add_signal_handler(signal.SIGTERM, stop.set)
        sigterm_handled = True
    except (NotImplementedError, RuntimeError, ValueError):
        sigterm_handled = False  # non-main thread / platform without it

    lines: asyncio.Queue[str] = asyncio.Queue()

    def _reader() -> None:
        while True:
            line = in_fh.readline()
            try:
                loop.call_soon_threadsafe(lines.put_nowait, line)
            except RuntimeError:  # loop already closed (daemon exiting)
                return
            if not line:
                return

    threading.Thread(target=_reader, daemon=True,
                     name="repro-stdin").start()

    async def emit(resp: dict[str, Any]) -> None:
        async with write_lock:
            out_fh.write(json.dumps(resp) + "\n")
            out_fh.flush()

    async def handle(obj: Any) -> None:
        resp = await server.submit(obj, defer_io=True)
        # Measure the serialize and write stages ourselves and report
        # them back: the timeline's stage sum then reconciles with the
        # latency the client actually saw.
        t0 = time.perf_counter_ns()
        payload = json.dumps(resp) + "\n"
        t1 = time.perf_counter_ns()
        async with write_lock:
            out_fh.write(payload)
            out_fh.flush()
        t2 = time.perf_counter_ns()
        rid = resp.get("request_id")
        if isinstance(rid, str):
            server.tracker.finish_io(rid, t1 - t0, t2 - t1, start_ns=t0)

    async def next_line() -> str | None:
        """The next stdin line, or ``None`` when SIGTERM interrupts."""
        get = asyncio.ensure_future(lines.get())
        wait_stop = asyncio.ensure_future(stop.wait())
        done, _ = await asyncio.wait({get, wait_stop},
                                     return_when=asyncio.FIRST_COMPLETED)
        if get in done:
            wait_stop.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await wait_stop
            return get.result()
        get.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await get
        return None

    try:
        while True:
            line = await next_line()
            if line is None or not line:  # SIGTERM or EOF: drain + exit
                break
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                await emit(server.reject(salvage_id(line),
                                         f"not valid JSON: {e}"))
                continue
            op = control_op(obj)
            rid = obj.get("id") if isinstance(obj, dict) else None
            if op == "ping":
                await emit({"id": rid, "status": "ok", "code": 200,
                            "op": "ping"})
            elif op == "metrics":
                if tasks:  # the barrier: snapshot after the backlog
                    await asyncio.gather(*tasks)
                await emit(server.metrics_snapshot(rid))
            elif op == "slo":
                await emit({"id": rid, "status": "slo", "code": 200,
                            "slo": server.slo_report()})
            elif op == "shutdown":
                if tasks:
                    await asyncio.gather(*tasks)
                await emit(shutdown_response(rid))
                break
            elif op is not None:
                await emit(error_response(rid, f"unknown op {op!r}"))
            else:
                t = asyncio.ensure_future(handle(obj))
                tasks.add(t)
                t.add_done_callback(tasks.discard)
        if tasks:
            await asyncio.gather(*tasks)
    finally:
        if sigterm_handled:
            loop.remove_signal_handler(signal.SIGTERM)
        await server.aclose()
    return 0
