"""Durable request journal: the daemon's write-ahead log.

The serve daemon's result cache makes a *completed* request durable;
this journal makes an *accepted* one durable.  Every request that
passes admission gets an ``accept`` line **before** it is enqueued, and
a ``complete`` line when its response is produced — so after a SIGKILL
the set "accepted but never answered" is exactly the accepts without a
matching complete, and a restarted daemon can replay them idempotently
through the result cache (:meth:`repro.serve.server.RootServer.start`).
Exactly-once delivery falls out of the :func:`~repro.resilience
.checkpoint.poly_key` content address: a replayed solve lands in the
cache under the same key the client's retry will look up, so the retry
observes the original result bit-for-bit instead of a second solve.

File format (``repro.serve-journal/1``), one JSON object per line::

    {"ev": "accept", "request_id": "ab12-000001", "key": "<sha256>",
     "coeffs": ["-6", "1", "1"], "bits": 16, "strategy": "hybrid",
     "priority": 0, "time_unix": 1754...}
    {"ev": "complete", "request_id": "ab12-000001", "key": "<sha256>",
     "status": "ok"}

Durability contract (shared with the access log): every line is
*flushed* on write, and the file is fsynced every ``fsync_interval``
lines (and on close) — a SIGKILL loses at most ``fsync_interval``
records plus the line in flight.  Readers are torn-line tolerant: a
line truncated by the kill is skipped, never an error (the same
contract as the run ledger and the access log).

A full disk must never fail the request that was being journaled:
write errors are counted (``journal.write_errors``), journaling is
suspended, and serving continues — availability over bookkeeping.  The
``fail_writes_after`` attribute is the deterministic rendering of
ENOSPC for the chaos campaign (mirrors
:attr:`repro.resilience.checkpoint.BatchCheckpoint.kill_after`), and
``kill_after_accepts`` SIGKILLs the daemon after N accept records —
the deterministic "daemon died mid-flight" the restart tests replay.

On open, an existing journal is **compacted**: completed pairs are
dropped and only the incomplete accepts are rewritten (atomically,
temp + rename), so the file stays bounded across restarts instead of
growing one generation per crash.
"""

from __future__ import annotations

import json
import os
import time
from typing import IO, Any, Iterable, Mapping, Sequence

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "RequestJournal",
    "JournalEntry",
    "read_journal",
    "incomplete_entries",
    "SCHEMA",
]

SCHEMA = "repro.serve-journal/1"

#: Default fsync batching: a SIGKILL loses at most this many records.
DEFAULT_FSYNC_INTERVAL = 32


class JournalEntry(dict):
    """One parsed ``accept`` record (a dict with typed accessors)."""

    @property
    def key(self) -> str:
        return str(self.get("key", ""))

    @property
    def request_id(self) -> str:
        return str(self.get("request_id", "?"))

    @property
    def coeffs(self) -> list[int]:
        return [int(c) for c in self.get("coeffs", [])]

    @property
    def mu(self) -> int:
        return int(self.get("bits", 0))

    @property
    def strategy(self) -> str:
        return str(self.get("strategy", "hybrid"))

    @property
    def priority(self) -> int:
        return int(self.get("priority", 0))


def read_journal(path: str) -> list[dict[str, Any]]:
    """Every parseable record, oldest first (torn lines skipped).

    The same tolerance contract as :func:`repro.serve.reqtrace
    .read_access_log`: a crash mid-append never poisons the reader."""
    out: list[dict[str, Any]] = []
    if not os.path.exists(path):
        return out
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn by a kill mid-write
            if isinstance(rec, dict) and rec.get("ev") in ("accept",
                                                           "complete"):
                out.append(rec)
    return out


def incomplete_entries(
    records: Iterable[Mapping[str, Any]]
) -> list[JournalEntry]:
    """The accepts without a matching complete, deduplicated by key.

    Matching is by ``request_id`` (each accepted request owes exactly
    one completion); the survivors are deduplicated by ``poly_key`` —
    two lost requests for the same polynomial need one replayed solve.
    Accepts that cannot be replayed (no coefficients — a torn or
    hand-damaged record) are dropped."""
    completed: set[str] = set()
    accepts: list[Mapping[str, Any]] = []
    for rec in records:
        if rec.get("ev") == "complete":
            completed.add(str(rec.get("request_id")))
        elif rec.get("ev") == "accept":
            accepts.append(rec)
    out: list[JournalEntry] = []
    seen_keys: set[str] = set()
    for rec in accepts:
        if str(rec.get("request_id")) in completed:
            continue
        entry = JournalEntry(rec)
        if not entry.key or not rec.get("coeffs") or entry.mu < 1:
            continue
        if entry.key in seen_keys:
            continue
        seen_keys.add(entry.key)
        out.append(entry)
    return out


class RequestJournal:
    """Append-only accept/complete WAL for one daemon.

    Parameters
    ----------
    path:
        The journal file; created (with parents) on first use.  An
        existing file is read for recovery and compacted on open.
    fsync_interval:
        fsync every N written lines (1 = every line, the checkpoint's
        contract; the default trades at most N lost records for not
        paying an fsync per request).
    metrics:
        Registry receiving ``journal.accepts`` / ``journal.completes``
        / ``journal.write_errors`` / ``journal.dropped_lines`` (a
        private one is created when omitted).

    Attributes
    ----------
    recovered:
        The incomplete accepts found on open — what
        :meth:`RootServer.start` replays.  Cleared by :meth:`replayed`
        bookkeeping only in the sense that completions are appended;
        the list itself is the recovery worklist.
    fail_writes_after:
        Fault hook (chaos/tests): after this many successful writes,
        every subsequent write raises ``OSError(ENOSPC)`` internally —
        exercised as the real full-disk path (counted + suspended).
    kill_after_accepts:
        Fault hook (chaos/tests): SIGKILL this process right after the
        Nth ``accept`` record of this session is durably written — the
        deterministic daemon-crash-mid-flight the restart suite needs.
    """

    def __init__(
        self,
        path: str,
        *,
        fsync_interval: int = DEFAULT_FSYNC_INTERVAL,
        metrics: MetricsRegistry | None = None,
    ):
        if fsync_interval < 1:
            raise ValueError("fsync_interval must be >= 1")
        self.path = path
        self.fsync_interval = fsync_interval
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.fail_writes_after: int | None = None
        self.kill_after_accepts: int | None = None
        self._writes = 0
        self._accepts_this_session = 0
        self._unsynced = 0
        self._broken = False
        self.recovered: list[JournalEntry] = []
        self.dropped_lines = 0

        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        if os.path.exists(path) and os.path.getsize(path) > 0:
            self._recover()
        self._fh: IO[str] | None = open(path, "a", encoding="utf-8")

    # -- recovery --------------------------------------------------------
    def _recover(self) -> None:
        """Load the incomplete accepts and compact the file to them.

        The rewrite is atomic (temp + rename + fsync): a kill during
        compaction leaves either the old journal or the compacted one,
        never a half-written file."""
        raw_lines = 0
        with open(self.path, encoding="utf-8") as fh:
            raw_lines = sum(1 for line in fh if line.strip())
        records = read_journal(self.path)
        self.dropped_lines = raw_lines - len(records)
        if self.dropped_lines:
            self.metrics.counter("journal.dropped_lines").inc(
                self.dropped_lines)
        self.recovered = incomplete_entries(records)
        tmp = self.path + ".tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                for entry in self.recovered:
                    fh.write(json.dumps(dict(entry),
                                        separators=(",", ":")) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        except OSError:
            # Compaction is an optimization, recovery is not: keep the
            # uncompacted journal and carry on.
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # -- the write path --------------------------------------------------
    def _write(self, rec: dict[str, Any]) -> bool:
        """Append one record under the durability contract; ``True`` if
        it reached the file."""
        if self._fh is None or self._broken:
            return False
        self._writes += 1
        try:
            if (self.fail_writes_after is not None
                    and self._writes > self.fail_writes_after):
                import errno

                raise OSError(errno.ENOSPC, "injected ENOSPC (fault hook)")
            self._fh.write(json.dumps(rec, separators=(",", ":")) + "\n")
            self._fh.flush()
            self._unsynced += 1
            if self._unsynced >= self.fsync_interval:
                os.fsync(self._fh.fileno())
                self._unsynced = 0
        except (OSError, ValueError):
            # Full disk / closed fd: count it, suspend journaling, and
            # keep serving — the journal must never fail a request.
            self.metrics.counter("journal.write_errors").inc()
            self._broken = True
            return False
        return True

    def accept(self, request_id: str, key: str, coeffs: Sequence[int],
               mu: int, strategy: str, priority: int = 0) -> None:
        """Durably record one admitted request (called *before* it is
        enqueued, so a kill between accept and answer is recoverable)."""
        wrote = self._write({
            "ev": "accept", "schema": SCHEMA, "request_id": request_id,
            "key": key, "coeffs": [str(int(c)) for c in coeffs],
            "bits": int(mu), "strategy": strategy, "priority": int(priority),
            "time_unix": time.time(),
        })
        if wrote:
            self.metrics.counter("journal.accepts").inc()
            self._accepts_this_session += 1
            if (self.kill_after_accepts is not None
                    and self._accepts_this_session
                    >= self.kill_after_accepts):
                # Hard fsync first: the crash being simulated must not
                # also lose the accept whose processing it interrupts.
                try:
                    os.fsync(self._fh.fileno())  # type: ignore[union-attr]
                except OSError:
                    pass
                os.kill(os.getpid(), 9)

    def complete(self, request_id: str, key: str, status: str) -> None:
        """Record the single completion an accepted request owes."""
        if self._write({"ev": "complete", "request_id": request_id,
                        "key": key, "status": status}):
            self.metrics.counter("journal.completes").inc()

    # -- lifecycle -------------------------------------------------------
    @property
    def broken(self) -> bool:
        """True once a write error suspended journaling."""
        return self._broken

    def close(self) -> None:
        """Flush, fsync, and close (idempotent)."""
        if self._fh is None:
            return
        try:
            self._fh.flush()
            os.fsync(self._fh.fileno())
        except (OSError, ValueError):
            pass
        self._fh.close()
        self._fh = None
