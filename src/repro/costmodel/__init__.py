"""Operation counting and the paper's quadratic bit-cost model."""

from repro.costmodel.counter import (
    CostCounter,
    NullCounter,
    NULL_COUNTER,
    PhaseStats,
    bit_length,
)

__all__ = ["CostCounter", "NullCounter", "NULL_COUNTER", "PhaseStats", "bit_length"]
