"""Operation counting and the paper's quadratic bit-cost model."""

from repro.costmodel.counter import (
    CostCounter,
    NullCounter,
    NULL_COUNTER,
    PhaseStats,
    bit_length,
)
from repro.costmodel.backend import (
    ArithmeticBackend,
    BackendCounter,
    BackendNullCounter,
    BackendUnavailable,
    BACKEND_NAMES,
    available_backends,
    counter_for,
    get_backend,
    null_counter_for,
    resolve_backend,
)

__all__ = [
    "CostCounter",
    "NullCounter",
    "NULL_COUNTER",
    "PhaseStats",
    "bit_length",
    "ArithmeticBackend",
    "BackendCounter",
    "BackendNullCounter",
    "BackendUnavailable",
    "BACKEND_NAMES",
    "available_backends",
    "counter_for",
    "get_backend",
    "null_counter_for",
    "resolve_backend",
]
