"""Pluggable big-integer arithmetic backends behind the cost-counter API.

Every arithmetic operation the algorithms perform already flows through a
:class:`~repro.costmodel.counter.CostCounter` (``counter.mul`` /
``counter.divmod`` / ...).  That makes the counter the natural seam for
swapping the arithmetic *implementation* without touching algorithm code:
a backend supplies the raw integer kernels, the counter keeps charging the
paper's quadratic bit model on exactly the same operands.

Three backends ship:

``python``
    Plain built-in ``int`` arithmetic — the default and the bit-cost
    oracle.  Selecting it returns the ordinary :class:`CostCounter` /
    :data:`NULL_COUNTER` objects, so the hot path pays zero extra
    indirection.

``gmpy2``
    GMP via the optional :mod:`gmpy2` package — the speed tier.  Every
    operation converts operands to ``mpz``, computes in GMP, and converts
    the result back to ``int``, so all values the algorithms ever see are
    ordinary Python integers and results are bit-exact by construction.
    Auto-detected; requesting it without the package raises
    :class:`BackendUnavailable`.

``mpint``
    The from-scratch schoolbook :class:`~repro.mpint.mpint.MPInt` —
    a slow validation tier whose *real* arithmetic matches the quadratic
    model being charged.  Always available; useful for exercising the
    backend plumbing differentially on machines without gmpy2.

Selection: pass ``--backend {python,gmpy2,mpint,auto}`` on the CLI, or set
``REPRO_BACKEND``.  ``auto`` picks gmpy2 when importable, else python.
See ``docs/BACKENDS.md``.
"""

from __future__ import annotations

import os

from repro.costmodel.counter import (
    CostCounter,
    NULL_COUNTER,
    NullCounter,
    bit_length,
)

__all__ = [
    "ArithmeticBackend",
    "PythonBackend",
    "Gmpy2Backend",
    "MPIntBackend",
    "BackendCounter",
    "BackendNullCounter",
    "BackendUnavailable",
    "BACKEND_NAMES",
    "available_backends",
    "get_backend",
    "resolve_backend",
    "counter_for",
    "null_counter_for",
]

#: Environment variable consulted by :func:`resolve_backend` when no
#: explicit name is given.
ENV_VAR = "REPRO_BACKEND"

#: Names accepted by ``--backend`` / ``REPRO_BACKEND`` (``auto`` resolves
#: to gmpy2 when importable, else python).
BACKEND_NAMES = ("python", "gmpy2", "mpint", "auto")

try:  # pragma: no cover - availability depends on the environment
    import gmpy2 as _gmpy2
except ImportError:  # pragma: no cover
    _gmpy2 = None


class BackendUnavailable(RuntimeError):
    """Raised when a requested arithmetic backend cannot be used here."""


class ArithmeticBackend:
    """Raw big-integer kernels: the protocol every backend implements.

    Operands and results are ordinary Python ``int``; a backend may
    compute internally in any representation but must convert back, so
    downstream values (roots, counters, ``poly_key`` hashes) are
    byte-identical across backends.  Backends are stateless singletons.
    """

    #: Stable identifier used by ``--backend`` and artifact metadata.
    name = "abstract"

    @classmethod
    def available(cls) -> bool:
        """Whether this backend can run in the current environment."""
        return True

    def mul(self, a: int, b: int) -> int:
        """Return ``a * b``."""
        raise NotImplementedError

    def divmod(self, a: int, b: int) -> tuple[int, int]:
        """Return ``divmod(a, b)`` with Python floor semantics."""
        raise NotImplementedError

    def exact_div(self, a: int, b: int) -> int:
        """Return ``a // b``, raising ``ArithmeticError`` unless exact."""
        q, r = self.divmod(a, b)
        if r != 0:
            raise ArithmeticError(f"inexact division {a} / {b}")
        return q

    def add(self, a: int, b: int) -> int:
        """Return ``a + b``."""
        raise NotImplementedError

    def sub(self, a: int, b: int) -> int:
        """Return ``a - b``."""
        raise NotImplementedError

    def shift_left(self, a: int, k: int) -> int:
        """Return ``a << k`` (``k >= 0``)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class PythonBackend(ArithmeticBackend):
    """Built-in ``int`` arithmetic — the default and bit-cost oracle."""

    name = "python"

    def mul(self, a: int, b: int) -> int:
        return a * b

    def divmod(self, a: int, b: int) -> tuple[int, int]:
        return divmod(a, b)

    def add(self, a: int, b: int) -> int:
        return a + b

    def sub(self, a: int, b: int) -> int:
        return a - b

    def shift_left(self, a: int, k: int) -> int:
        return a << k


class Gmpy2Backend(ArithmeticBackend):
    """GMP arithmetic via :mod:`gmpy2` — the speed tier.

    Results are converted back to ``int`` after every operation, so the
    bit-cost charges (computed from the same operands) and everything
    downstream stay identical to the pure-python backend.  Note the
    *charged* cost still follows the schoolbook model even though GMP's
    real asymptotics are better; see docs/BACKENDS.md.
    """

    name = "gmpy2"

    @classmethod
    def available(cls) -> bool:
        return _gmpy2 is not None

    def mul(self, a: int, b: int) -> int:
        return int(_gmpy2.mpz(a) * _gmpy2.mpz(b))

    def divmod(self, a: int, b: int) -> tuple[int, int]:
        q, r = divmod(_gmpy2.mpz(a), _gmpy2.mpz(b))
        return int(q), int(r)

    def add(self, a: int, b: int) -> int:
        return int(_gmpy2.mpz(a) + _gmpy2.mpz(b))

    def sub(self, a: int, b: int) -> int:
        return int(_gmpy2.mpz(a) - _gmpy2.mpz(b))

    def shift_left(self, a: int, k: int) -> int:
        return int(_gmpy2.mpz(a) << k)


class MPIntBackend(ArithmeticBackend):
    """Schoolbook :class:`~repro.mpint.mpint.MPInt` arithmetic.

    The validation tier: real quadratic-time kernels matching the charged
    model.  Orders of magnitude slower than ``python``; intended for
    parity tests and cost-model validation, not production runs.
    """

    name = "mpint"

    def mul(self, a: int, b: int) -> int:
        from repro.mpint import MPInt

        return int(MPInt(a) * MPInt(b))

    def divmod(self, a: int, b: int) -> tuple[int, int]:
        from repro.mpint import MPInt

        q, r = divmod(MPInt(a), MPInt(b))
        return int(q), int(r)

    def add(self, a: int, b: int) -> int:
        from repro.mpint import MPInt

        return int(MPInt(a) + MPInt(b))

    def sub(self, a: int, b: int) -> int:
        from repro.mpint import MPInt

        return int(MPInt(a) - MPInt(b))

    def shift_left(self, a: int, k: int) -> int:
        from repro.mpint import MPInt

        return int(MPInt(a) << k)


_BACKENDS: dict[str, ArithmeticBackend] = {
    "python": PythonBackend(),
    "gmpy2": Gmpy2Backend(),
    "mpint": MPIntBackend(),
}


def available_backends() -> tuple[str, ...]:
    """Names of the backends usable in this environment, python first."""
    return tuple(
        name for name, b in _BACKENDS.items() if type(b).available()
    )


def get_backend(name: str) -> ArithmeticBackend:
    """Look up a backend by name, raising if unknown or unusable here."""
    try:
        backend = _BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(_BACKENDS))
        raise BackendUnavailable(
            f"unknown arithmetic backend {name!r}; known: {known}"
        ) from None
    if not type(backend).available():
        raise BackendUnavailable(
            f"arithmetic backend {name!r} is not available here "
            f"(is the {name} package installed?)"
        )
    return backend


def resolve_backend(
    name: "str | ArithmeticBackend | None" = None,
) -> ArithmeticBackend:
    """Resolve a backend choice to a concrete backend instance.

    ``None`` consults the ``REPRO_BACKEND`` environment variable (falling
    back to ``python``); ``"auto"`` picks gmpy2 when importable, else
    python.  An :class:`ArithmeticBackend` instance passes through.
    """
    if isinstance(name, ArithmeticBackend):
        return name
    if name is None:
        name = os.environ.get(ENV_VAR, "").strip() or "python"
    if name == "auto":
        name = "gmpy2" if Gmpy2Backend.available() else "python"
    return get_backend(name)


class BackendCounter(CostCounter):
    """A :class:`CostCounter` whose arithmetic runs on a pluggable backend.

    Charges the identical quadratic bit model (same formulas, same
    operands) as the base class; only the integer kernels differ.  The
    ``python`` backend never takes this path — :func:`counter_for` hands
    back a plain :class:`CostCounter` so the default hot path keeps zero
    indirection.
    """

    __slots__ = ("backend",)

    def __init__(self, backend: ArithmeticBackend) -> None:
        super().__init__()
        self.backend = backend

    def mul(self, a: int, b: int) -> int:
        s = self.stats[self._phase_stack[-1]]
        s.mul_count += 1
        s.mul_bit_cost += bit_length(a) * bit_length(b)
        return self.backend.mul(a, b)

    def divmod(self, a: int, b: int) -> tuple[int, int]:
        s = self.stats[self._phase_stack[-1]]
        s.div_count += 1
        s.div_bit_cost += bit_length(a) * bit_length(b)
        return self.backend.divmod(a, b)

    def add(self, a: int, b: int) -> int:
        s = self.stats[self._phase_stack[-1]]
        s.add_count += 1
        s.add_bit_cost += max(bit_length(a), bit_length(b))
        return self.backend.add(a, b)

    def sub(self, a: int, b: int) -> int:
        s = self.stats[self._phase_stack[-1]]
        s.add_count += 1
        s.add_bit_cost += max(bit_length(a), bit_length(b))
        return self.backend.sub(a, b)

    def shift_left(self, a: int, k: int) -> int:
        s = self.stats[self._phase_stack[-1]]
        s.add_count += 1
        s.add_bit_cost += bit_length(a) + max(k, 0)
        return self.backend.shift_left(a, k)


class BackendNullCounter(NullCounter):
    """Uncharged counter delegating arithmetic to a pluggable backend."""

    __slots__ = ("backend",)

    def __init__(self, backend: ArithmeticBackend) -> None:
        super().__init__()
        self.backend = backend

    def mul(self, a: int, b: int) -> int:
        return self.backend.mul(a, b)

    def divmod(self, a: int, b: int) -> tuple[int, int]:
        return self.backend.divmod(a, b)

    def exact_div(self, a: int, b: int) -> int:
        return self.backend.exact_div(a, b)

    def add(self, a: int, b: int) -> int:
        return self.backend.add(a, b)

    def sub(self, a: int, b: int) -> int:
        return self.backend.sub(a, b)

    def shift_left(self, a: int, k: int) -> int:
        return self.backend.shift_left(a, k)


def counter_for(
    backend: "str | ArithmeticBackend | None" = None,
) -> CostCounter:
    """A fresh charging counter computing on ``backend``.

    The ``python`` backend gets the plain :class:`CostCounter` — identical
    object type to pre-backend code, zero indirection.
    """
    b = resolve_backend(backend)
    if b.name == "python":
        return CostCounter()
    return BackendCounter(b)


def null_counter_for(
    backend: "str | ArithmeticBackend | None" = None,
) -> NullCounter:
    """An uncharged counter computing on ``backend``.

    The ``python`` backend gets the shared :data:`NULL_COUNTER` singleton.
    """
    b = resolve_backend(backend)
    if b.name == "python":
        return NULL_COUNTER
    return BackendNullCounter(b)
