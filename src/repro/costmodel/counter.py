"""Cost accounting in the paper's machine model.

The paper instruments its C implementation to trace, per algorithm phase,
the number of multiprecision multiplications performed and their total bit
cost under the schoolbook (quadratic) model of the UNIX ``mp`` package:
multiplying an ``a``-bit by a ``b``-bit integer costs ``a*b`` bit
operations, additions are linear (Section 3.3, Section 4).

:class:`CostCounter` reproduces that tracing for this implementation.  All
arithmetic the algorithm performs flows through ``counter.mul`` /
``counter.divmod`` / ``counter.add`` so that:

* Figures 2-5 (predicted vs. observed multiplication counts) read
  ``counter.mul_count``;
* Figures 6-7 (bisection-phase counts and bit complexity) read the
  per-phase breakdown;
* Table 2 and the speedup tables use the summed quadratic bit cost as the
  simulated-time currency of :mod:`repro.sched`.

Phases are attributed with a stack-based context manager::

    with counter.phase("interval.bisection"):
        ...

A phase name is a dotted path; reports can aggregate by any prefix.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "CostCounter",
    "NullCounter",
    "NULL_COUNTER",
    "PhaseStats",
    "bit_length",
]


def bit_length(x: int) -> int:
    """``||x||`` in the paper's notation: the size of ``x`` in bits.

    ``||0||`` is taken as 1 so that multiplying by zero still charges a
    (cheap) operation, mirroring a real ``mp`` call.
    """
    return abs(x).bit_length() or 1


@dataclass
class PhaseStats:
    """Aggregated operation counts and bit costs for one phase."""

    mul_count: int = 0
    mul_bit_cost: int = 0
    div_count: int = 0
    div_bit_cost: int = 0
    add_count: int = 0
    add_bit_cost: int = 0

    def merged(self, other: "PhaseStats") -> "PhaseStats":
        return PhaseStats(
            self.mul_count + other.mul_count,
            self.mul_bit_cost + other.mul_bit_cost,
            self.div_count + other.div_count,
            self.div_bit_cost + other.div_bit_cost,
            self.add_count + other.add_count,
            self.add_bit_cost + other.add_bit_cost,
        )

    @property
    def total_bit_cost(self) -> int:
        return self.mul_bit_cost + self.div_bit_cost + self.add_bit_cost

    @property
    def op_count(self) -> int:
        return self.mul_count + self.div_count + self.add_count


class CostCounter:
    """Counts operations and charges the quadratic-arithmetic bit model.

    The counter is deliberately permissive about phase naming: any dotted
    string works, and unknown phases spring into existence on first use.
    The root phase is ``""``.
    """

    __slots__ = ("stats", "_phase_stack")

    def __init__(self) -> None:
        self.stats: dict[str, PhaseStats] = defaultdict(PhaseStats)
        self._phase_stack: list[str] = [""]

    # -- phase management ------------------------------------------------
    @property
    def current_phase(self) -> str:
        return self._phase_stack[-1]

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute costs inside the block to ``name``.

        Nested phases do *not* concatenate automatically; pass the full
        dotted name.  This matches how the paper reports disjoint phases
        (remainder sequence / tree / pre-interval / sieve / bisection /
        newton).
        """
        self._phase_stack.append(name)
        try:
            yield
        finally:
            self._phase_stack.pop()

    # -- charged primitive operations -------------------------------------
    def mul(self, a: int, b: int) -> int:
        s = self.stats[self._phase_stack[-1]]
        s.mul_count += 1
        s.mul_bit_cost += bit_length(a) * bit_length(b)
        return a * b

    def divmod(self, a: int, b: int) -> tuple[int, int]:
        s = self.stats[self._phase_stack[-1]]
        s.div_count += 1
        s.div_bit_cost += bit_length(a) * bit_length(b)
        q, r = divmod(a, b)
        return q, r

    def exact_div(self, a: int, b: int) -> int:
        q, r = self.divmod(a, b)
        if r != 0:
            raise ArithmeticError(f"inexact division {a} / {b}")
        return q

    def add(self, a: int, b: int) -> int:
        s = self.stats[self._phase_stack[-1]]
        s.add_count += 1
        s.add_bit_cost += max(bit_length(a), bit_length(b))
        return a + b

    def sub(self, a: int, b: int) -> int:
        s = self.stats[self._phase_stack[-1]]
        s.add_count += 1
        s.add_bit_cost += max(bit_length(a), bit_length(b))
        return a - b

    def shift_left(self, a: int, k: int) -> int:
        """Charge a shift as a linear-cost addition-class operation."""
        s = self.stats[self._phase_stack[-1]]
        s.add_count += 1
        s.add_bit_cost += bit_length(a) + max(k, 0)
        return a << k

    # -- snapshots (used by repro.obs spans) -------------------------------
    def snapshot(self) -> dict[str, tuple[int, int, int, int, int, int]]:
        """Cheap point-in-time copy of every phase's counters.

        Returns a plain ``{phase: (mul_count, mul_bit_cost, div_count,
        div_bit_cost, add_count, add_bit_cost)}`` mapping; pair with
        :meth:`diff` to attribute the cost of a region of code (this is
        how :class:`repro.obs.trace.Tracer` charges spans).
        """
        return {
            name: (
                st.mul_count, st.mul_bit_cost, st.div_count,
                st.div_bit_cost, st.add_count, st.add_bit_cost,
            )
            for name, st in self.stats.items()
        }

    def diff(
        self, snap: dict[str, tuple[int, int, int, int, int, int]]
    ) -> dict[str, PhaseStats]:
        """Per-phase deltas accumulated since ``snap`` (zero deltas dropped)."""
        out: dict[str, PhaseStats] = {}
        zero = (0, 0, 0, 0, 0, 0)
        for name, st in self.stats.items():
            old = snap.get(name, zero)
            delta = PhaseStats(
                st.mul_count - old[0], st.mul_bit_cost - old[1],
                st.div_count - old[2], st.div_bit_cost - old[3],
                st.add_count - old[4], st.add_bit_cost - old[5],
            )
            if delta.op_count or delta.total_bit_cost:
                out[name] = delta
        return out

    # -- reporting ---------------------------------------------------------
    def phase_stats(self, prefix: str = "") -> PhaseStats:
        """Aggregate stats over every phase whose name starts with ``prefix``."""
        out = PhaseStats()
        for name, st in self.stats.items():
            if name.startswith(prefix):
                out = out.merged(st)
        return out

    @property
    def mul_count(self) -> int:
        return self.phase_stats().mul_count

    @property
    def mul_bit_cost(self) -> int:
        return self.phase_stats().mul_bit_cost

    @property
    def total_bit_cost(self) -> int:
        return self.phase_stats().total_bit_cost

    def phases(self) -> list[str]:
        return sorted(self.stats)

    def report(self) -> str:
        """Human-readable per-phase table, most expensive first."""
        rows = sorted(
            self.stats.items(), key=lambda kv: kv[1].total_bit_cost, reverse=True
        )
        lines = [
            f"{'phase':34s} {'muls':>10s} {'mul bitcost':>14s} "
            f"{'divs':>8s} {'adds':>10s} {'total bitcost':>14s}"
        ]
        for name, st in rows:
            lines.append(
                f"{name or '<root>':34s} {st.mul_count:10d} {st.mul_bit_cost:14d} "
                f"{st.div_count:8d} {st.add_count:10d} {st.total_bit_cost:14d}"
            )
        tot = self.phase_stats()
        lines.append(
            f"{'TOTAL':34s} {tot.mul_count:10d} {tot.mul_bit_cost:14d} "
            f"{tot.div_count:8d} {tot.add_count:10d} {tot.total_bit_cost:14d}"
        )
        return "\n".join(lines)


class NullCounter(CostCounter):
    """A do-nothing counter: the default when cost tracing is off.

    Keeps the arithmetic-primitive interface so algorithm code is written
    once; every charge is skipped.
    """

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__()

    def mul(self, a: int, b: int) -> int:  # noqa: D102 - hot path
        return a * b

    def divmod(self, a: int, b: int) -> tuple[int, int]:
        return divmod(a, b)

    def exact_div(self, a: int, b: int) -> int:
        q, r = divmod(a, b)
        if r != 0:
            raise ArithmeticError(f"inexact division {a} / {b}")
        return q

    def add(self, a: int, b: int) -> int:
        return a + b

    def sub(self, a: int, b: int) -> int:
        return a - b

    def shift_left(self, a: int, k: int) -> int:
        return a << k

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        yield


#: Shared module-level null counter; safe because it keeps no state.
NULL_COUNTER = NullCounter()
