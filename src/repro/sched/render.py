"""Textual rendering of simulated schedules.

Turns a traced :class:`~repro.sched.simulator.ScheduleResult` into an
ASCII Gantt chart (one row per processor, one column per time bucket,
letters keyed by task kind) and a utilization timeline — the quickest
way to *see* where the p=16 droop comes from (idle tails during the
serial-ish phases).
"""

from __future__ import annotations

from repro.sched.simulator import ScheduleResult
from repro.sched.task import TaskKind

__all__ = ["render_gantt", "render_utilization", "KIND_GLYPHS"]

#: One-letter glyph per task kind for the Gantt chart.
KIND_GLYPHS: dict[str, str] = {
    TaskKind.REM_Q.value: "q",
    TaskKind.REM_MUL.value: "m",
    TaskKind.REM_ADD.value: "a",
    TaskKind.REM_DIV.value: "d",
    TaskKind.RECURSE.value: "r",
    TaskKind.MATMUL.value: "M",
    TaskKind.DIVSCALE.value: "D",
    TaskKind.LEAFPOLY.value: "l",
    TaskKind.SPINEPOLY.value: "s",
    TaskKind.SORT.value: "o",
    TaskKind.PREINTERVAL.value: "p",
    TaskKind.INTERVAL.value: "I",
    TaskKind.LINROOT.value: "n",
}


def render_gantt(
    result: ScheduleResult, tasks, width: int = 100
) -> str:
    """ASCII Gantt chart of a traced schedule.

    ``tasks`` is the graph's task list (for kinds).  Each row is a
    processor; each column is a ``makespan / width`` bucket; the glyph
    is the kind of the task occupying the bucket's midpoint ('.' for
    idle).  Requires the simulation to have been run with
    ``keep_trace=True``.
    """
    if result.trace is None:
        raise ValueError("simulate(..., keep_trace=True) required")
    span = max(result.makespan, 1)
    rows = [["."] * width for _ in range(result.processors)]
    for start, end, proc, tid in result.trace:
        glyph = KIND_GLYPHS.get(tasks[tid].kind.value, "?")
        c0 = min(width - 1, start * width // span)
        c1 = min(width - 1, max(c0, (end - 1) * width // span))
        for c in range(c0, c1 + 1):
            rows[proc][c] = glyph
    lines = [
        f"p{idx:<3d} |{''.join(row)}|" for idx, row in enumerate(rows)
    ]
    legend = "  ".join(f"{g}={k}" for k, g in KIND_GLYPHS.items())
    lines.append(f"(time -> {result.makespan} units; legend: {legend})")
    return "\n".join(lines)


def render_utilization(result: ScheduleResult, width: int = 100) -> str:
    """Single-line utilization profile: per time bucket, the number of
    busy processors rendered as a digit (or '#' for >= 10)."""
    if result.trace is None:
        raise ValueError("simulate(..., keep_trace=True) required")
    span = max(result.makespan, 1)
    busy_cells: set[tuple[int, int]] = set()
    for start, end, proc, _tid in result.trace:
        c0 = min(width - 1, start * width // span)
        c1 = min(width - 1, max(c0, (end - 1) * width // span))
        for c in range(c0, c1 + 1):
            busy_cells.add((proc, c))
    busy = [0] * width
    for _proc, c in busy_cells:
        busy[c] += 1
    chars = [
        "#" if b >= 10 else (str(b) if b > 0 else ".") for b in busy
    ]
    return f"busy |{''.join(chars)}|  (max {result.processors})"
