"""Real process-based parallel execution of the interval problems.

The discrete-event simulator (:mod:`repro.sched.simulator`) is the
faithful instrument for the paper's speedup study (see DESIGN.md: the
GIL rules out threaded bigint parallelism and this host has a single
core).  This module exists to demonstrate that the task decomposition
*also* runs on real OS processes: the embarrassingly parallel INTERVAL
stage — the dominant cost at large ``mu`` — is farmed out to a
``multiprocessing`` pool, everything exact, results bit-identical to
the sequential path.

The root bound is :func:`repro.poly.roots_bounds.root_bound_bits` — the
same helper the sequential :class:`repro.core.rootfinder.RealRootFinder`
uses — so both paths pose *identical* interval problems (same
sentinels, same gap endpoints) and agree bit for bit.

On a multi-core host this yields genuine wall-clock speedups for large
inputs; on a single-core host it degrades gracefully to roughly
sequential speed plus IPC overhead.

Observability: pass a :class:`repro.obs.trace.Tracer` and every worker
captures its own spans (with per-gap bit costs from a worker-local
:class:`~repro.costmodel.counter.CostCounter`), ships them back through
the pool, and the parent merges them onto per-worker tracks — so a
Chrome trace of a real parallel run shows true worker lanes.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from dataclasses import dataclass

from repro.core.interval import IntervalProblemSolver, solve_linear_scaled
from repro.core.remainder import compute_remainder_sequence
from repro.core.rootfinder import merge_sorted
from repro.core.tree import InterleavingTree
from repro.costmodel.counter import CostCounter
from repro.obs.trace import NULL_TRACER, Tracer
from repro.poly.dense import IntPoly
from repro.poly.roots_bounds import root_bound_bits

__all__ = ["ParallelRootFinder", "solve_gap_worker"]


def solve_gap_worker(
    args: tuple,
) -> tuple[int, int, list[dict] | None]:
    """Pool worker: solve one interval problem.

    ``args = (coeffs, mu, r_bits, gap_index, left, right[, trace])``;
    returns ``(gap_index, scaled_root, spans)`` where ``spans`` is the
    worker tracer's export when ``trace`` is truthy (else ``None``).
    Module-level so it pickles.
    """
    coeffs, mu, r_bits, gap, left, right = args[:6]
    trace = bool(args[6]) if len(args) > 6 else False
    p = IntPoly(coeffs)
    if not trace:
        solver = IntervalProblemSolver(p, mu, r_bits)
        return gap, solver.solve_gap_standalone(gap, left, right), None
    pid = os.getpid()
    counter = CostCounter()
    tracer = Tracer(counter=counter)
    solver = IntervalProblemSolver(
        p, mu, r_bits, counter=counter, tracer=tracer, label=f"pid{pid}",
    )
    with tracer.span("gap", phase="interval", gap=gap, pid=pid):
        val = solver.solve_gap_standalone(gap, left, right)
    return gap, val, tracer.export()


@dataclass
class ParallelRootFinder:
    """Multiprocessing variant of :class:`repro.core.rootfinder.RealRootFinder`.

    Only square-free inputs are supported (the benches' workloads); the
    remainder sequence and tree polynomials are computed in the parent
    (they are cheap relative to the interval stage for large ``mu``),
    and each node's interval problems are dispatched to the pool.

    With a real ``tracer``, the parent records the remainder/tree/sort
    phases and each node dispatch, and adopts the per-gap spans the
    workers capture.
    """

    mu: int
    processes: int = 2
    chunk_size: int = 1
    tracer: Tracer = NULL_TRACER

    def find_roots_scaled(self, p: IntPoly) -> list[int]:
        """Scaled mu-approximations of all roots, ascending (exact)."""
        tracer = self.tracer
        if p.leading_coefficient < 0:
            p = -p
        if p.degree == 1:
            return [solve_linear_scaled(p, self.mu)]
        seq = compute_remainder_sequence(p, tracer=tracer)
        with tracer.span("tree.compute_polynomials", phase="tree",
                         degree=p.degree):
            tree = InterleavingTree(seq)
            tree.compute_polynomials()
        r_bits = root_bound_bits(p)
        capture = tracer.enabled

        with mp.get_context("spawn").Pool(self.processes) as pool:
            for node in tree.nodes_postorder():
                if node.is_empty:
                    node.roots_scaled = []
                    continue
                poly = node.poly
                assert poly is not None
                if node.degree == 1:
                    node.roots_scaled = [solve_linear_scaled(poly, self.mu)]
                    continue
                assert node.left is not None and node.right is not None
                inter = merge_sorted(
                    node.left.roots_scaled or [], node.right.roots_scaled or []
                )
                sentinel = 1 << (r_bits + self.mu)
                ys = [-sentinel] + inter + [sentinel]
                jobs = [
                    (poly.coeffs, self.mu, r_bits, gap, ys[gap], ys[gap + 1],
                     capture)
                    for gap in range(node.degree)
                ]
                with tracer.span("node.intervals", phase="interval",
                                 i=node.i, j=node.j, level=node.level,
                                 degree=node.degree):
                    results = pool.map(
                        solve_gap_worker, jobs, chunksize=self.chunk_size
                    )
                    roots: list[int] = [0] * node.degree
                    for gap, val, spans in results:
                        roots[gap] = val
                        if spans:
                            # Lane per OS worker: the gap span carries
                            # the worker pid in its attrs.
                            pid = spans[0].get("attrs", {}).get("pid")
                            tracer.adopt(spans, key=pid)
                node.roots_scaled = roots

        assert tree.root.roots_scaled is not None
        return tree.root.roots_scaled
