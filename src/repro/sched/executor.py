"""Real process-based parallel execution of the interval problems.

The discrete-event simulator (:mod:`repro.sched.simulator`) is the
faithful instrument for the paper's speedup study (see DESIGN.md: the
GIL rules out threaded bigint parallelism and this host has a single
core).  This module exists to demonstrate that the task decomposition
*also* runs on real OS processes: the embarrassingly parallel INTERVAL
stage — the dominant cost at large ``mu`` — is farmed out to a
``multiprocessing`` pool, everything exact, results bit-identical to
the sequential path.

On a multi-core host this yields genuine wall-clock speedups for large
inputs; on a single-core host it degrades gracefully to roughly
sequential speed plus IPC overhead.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass

from repro.core.interval import IntervalProblemSolver, solve_linear_scaled
from repro.core.remainder import compute_remainder_sequence
from repro.core.rootfinder import merge_sorted
from repro.core.tree import InterleavingTree
from repro.poly.dense import IntPoly
from repro.poly.roots_bounds import cauchy_root_bound_bits

__all__ = ["ParallelRootFinder", "solve_gap_worker"]


def solve_gap_worker(
    args: tuple[tuple[int, ...], int, int, int, int, int],
) -> tuple[int, int]:
    """Pool worker: solve one interval problem.

    ``args = (coeffs, mu, r_bits, gap_index, left, right)``; returns
    ``(gap_index, scaled_root)``.  Module-level so it pickles.
    """
    coeffs, mu, r_bits, gap, left, right = args
    p = IntPoly(coeffs)
    solver = IntervalProblemSolver(p, mu, r_bits)
    return gap, solver.solve_gap_standalone(gap, left, right)


@dataclass
class ParallelRootFinder:
    """Multiprocessing variant of :class:`repro.core.rootfinder.RealRootFinder`.

    Only square-free inputs are supported (the benches' workloads); the
    remainder sequence and tree polynomials are computed in the parent
    (they are cheap relative to the interval stage for large ``mu``),
    and each node's interval problems are dispatched to the pool.
    """

    mu: int
    processes: int = 2
    chunk_size: int = 1

    def find_roots_scaled(self, p: IntPoly) -> list[int]:
        if p.leading_coefficient < 0:
            p = -p
        if p.degree == 1:
            return [solve_linear_scaled(p, self.mu)]
        seq = compute_remainder_sequence(p)
        tree = InterleavingTree(seq)
        tree.compute_polynomials()
        r_bits = cauchy_root_bound_bits(p)

        with mp.get_context("spawn").Pool(self.processes) as pool:
            for node in tree.nodes_postorder():
                if node.is_empty:
                    node.roots_scaled = []
                    continue
                poly = node.poly
                assert poly is not None
                if node.degree == 1:
                    node.roots_scaled = [solve_linear_scaled(poly, self.mu)]
                    continue
                assert node.left is not None and node.right is not None
                inter = merge_sorted(
                    node.left.roots_scaled or [], node.right.roots_scaled or []
                )
                sentinel = 1 << (r_bits + self.mu)
                ys = [-sentinel] + inter + [sentinel]
                jobs = [
                    (poly.coeffs, self.mu, r_bits, gap, ys[gap], ys[gap + 1])
                    for gap in range(node.degree)
                ]
                results = pool.map(
                    solve_gap_worker, jobs, chunksize=self.chunk_size
                )
                roots: list[int] = [0] * node.degree
                for gap, val in results:
                    roots[gap] = val
                node.roots_scaled = roots

        assert tree.root.roots_scaled is not None
        return tree.root.roots_scaled
