"""Real process-based parallel execution of the interval problems.

The discrete-event simulator (:mod:`repro.sched.simulator`) is the
faithful instrument for the paper's speedup study (see DESIGN.md: the
GIL rules out threaded bigint parallelism).  This module demonstrates
that the task decomposition *also* runs on real OS processes — and
does so in a service-style shape: one **persistent** worker pool
(spawned lazily, reused across calls, explicit ``close()`` /
context-manager lifecycle) consumes a picklable rendering of the
Section-3 task structure (:func:`repro.core.tasks.build_interval_plan`)
with dependency-driven ``apply_async`` dispatch.

Compared with the original per-call ``Pool`` + per-node ``pool.map``
design, three things changed:

* **Pipelined dispatch** — PREINTERVAL (endpoint-sign) and INTERVAL
  (gap-solve) tasks are submitted the moment their inputs exist.  Gaps
  from independent subtrees run concurrently; there is no barrier at
  tree-node boundaries.
* **Shared endpoint signs** — each interleaving point's sign is
  evaluated once by a PREINTERVAL task and reused by both adjacent
  gaps, halving endpoint evaluations vs. the old
  ``solve_gap_standalone`` per-gap dispatch (Sagraloff's point that
  evaluation counts dominate applies squarely here).
* **Resilience** (:mod:`repro.resilience`) — every submission is a
  *logical task* that survives its attempts: a timed-out, poisoned, or
  killed attempt is retried on a fresh worker with exponential backoff
  (:class:`~repro.resilience.retry.RetryPolicy`), a task that exhausts
  its retries runs **in the parent process** (per-node sequential
  degradation — completed sign/gap results are kept, nothing is
  recomputed), and a :class:`~repro.resilience.breaker.CircuitBreaker`
  trips after consecutive pool failures to route whole stretches of
  work in-parent for a cool-down before probing the pool again.  The
  old whole-polynomial sequential fallback remains only for a broken
  pool (dispatch failure / stalled scheduler).  A
  :class:`~repro.resilience.budget.Budget` bounds a call by wall clock
  and parent-side bit cost, raising
  :class:`~repro.resilience.budget.BudgetExceeded` with the certified
  roots completed so far.

The root bound is :func:`repro.poly.roots_bounds.root_bound_bits` — the
same helper the sequential finder uses — so both paths pose *identical*
interval problems (same sentinels, same gap endpoints) and agree bit
for bit.

Observability: pass a :class:`repro.obs.trace.Tracer` and every worker
captures its own spans (with per-task bit costs from a worker-local
:class:`~repro.costmodel.counter.CostCounter`), ships them back through
the pool, and the parent merges them onto per-worker lanes
(``Tracer.adopt(spans, key=pid)``).  Pool lifecycle shows up as
``pool.spawn`` / ``pool.close`` spans; reliability transitions as
``executor_retry`` / ``executor_node_fallback`` / ``breaker_*`` /
``executor_fallback`` events.

Opt-in sampling profiling (``profile=True``) rides the same transport:
each pool task lazily starts a worker-global
:class:`repro.obs.profile.SamplingProfiler` from its task wrapper,
drains the sampled stacks at task end, and ships them back *collapsed*
(``{"stack;stack;leaf": count}``) alongside the trace spans; the parent
merges every worker's fold plus its own dispatch-thread samples into
:meth:`ParallelRootFinder.profile_collapsed` — ready for
``flamegraph.pl`` or :func:`repro.obs.profile.write_collapsed`.

Live telemetry rides along: every submit/complete transition samples
queue depth and in-flight task count into the finder's
:class:`~repro.obs.metrics.MetricsRegistry` and (when traced) into
``Tracer.counters``, which export as Chrome-trace ``"ph": "C"``
counter lanes next to the span lanes.  Reliability drift is counted in
the same registry (see :data:`repro.obs.metrics.EXECUTOR_COUNTERS` and
the glossary in docs/RESILIENCE.md) so the bench regression gate can
watch it.  Post-run, :func:`repro.obs.rollup.parallel_rollup` turns the
adopted worker spans into a utilization / idle-tail /
parallel-efficiency summary.
"""

from __future__ import annotations

import contextlib
import heapq
import multiprocessing as mp
import os
import pickle
import queue
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from functools import partial as _partial
from typing import TYPE_CHECKING, Any, Sequence

from repro.core.interval import IntervalProblemSolver, solve_linear_scaled
from repro.core.remainder import NotSquareFreeError, compute_remainder_sequence
from repro.core.rootfinder import RealRootFinder, merge_sorted
from repro.core.tree import InterleavingTree

if TYPE_CHECKING:  # runtime import is deferred: repro.core.tasks
    from repro.core.tasks import NodePlan  # imports repro.sched.graph
    from repro.resilience.checkpoint import BatchCheckpoint
from repro.costmodel.backend import (
    counter_for,
    null_counter_for,
    resolve_backend,
)
from repro.costmodel.counter import NULL_COUNTER, CostCounter, NullCounter
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.poly.dense import IntPoly
from repro.poly.roots_bounds import root_bound_bits
from repro.resilience.breaker import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
)
from repro.resilience.budget import Budget
from repro.resilience.retry import RetryPolicy

__all__ = [
    "ParallelRootFinder",
    "sign_worker",
    "gap_worker",
    "solve_gap_worker",
    "intern_coeffs",
]


class _Degraded(Exception):
    """Internal: the pooled run cannot complete; fall back sequentially."""


# -- worker side -----------------------------------------------------------

#: Worker-local solver cache: repeated tasks against the same node
#: polynomial (same call, or the same input across batched calls) skip
#: re-deriving the derivative and evaluators.  Bounded so long-lived
#: service pools do not accumulate stale polynomials.  The parent
#: process shares this cache for in-parent (degraded) task execution.
_SOLVER_CACHE: dict[tuple, IntervalProblemSolver] = {}
_SOLVER_CACHE_MAX = 8

#: Worker-local interned coefficient tuples, keyed by the parent's
#: content hash (:func:`repro.resilience.checkpoint.poly_key`).  A node
#: polynomial's coefficients are unpickled at most once per worker no
#: matter how many of its 2*degree+1 tasks land here.  Bounded like the
#: solver cache so long-lived service pools do not accumulate inputs.
_COEFFS_CACHE: dict[str, tuple[int, ...]] = {}
_COEFFS_CACHE_MAX = 32


def intern_coeffs(
    coeffs: tuple[int, ...], mu: int, strategy: str
) -> tuple[str, bytes]:
    """Parent-side: pre-pickle a node's coefficient tuple once.

    Returns a ``(poly_key, blob)`` reference that every task payload for
    the node carries instead of the raw tuple.  Pickling the payload
    then copies ``blob`` (a flat bytes memcpy) rather than re-walking a
    tuple of big integers per task — for a degree-``d`` node that cuts
    the coefficient serialization from ``2d+1`` traversals to one.
    """
    from repro.resilience.checkpoint import poly_key

    cs = tuple(coeffs)
    return (poly_key(cs, mu, strategy),
            pickle.dumps(cs, pickle.HIGHEST_PROTOCOL))


def _resolve_coeffs(ref: Any) -> tuple[int, ...]:
    """Worker-side: turn a payload's coefficient slot into the tuple.

    Accepts either an interned ``(key, blob)`` reference from
    :func:`intern_coeffs` (unpickled once per worker per key via
    ``_COEFFS_CACHE``) or a raw coefficient sequence (legacy payloads,
    in-parent execution, tests).
    """
    if (isinstance(ref, tuple) and len(ref) == 2
            and isinstance(ref[1], (bytes, bytearray))):
        key, blob = ref
        cs = _COEFFS_CACHE.get(key)
        if cs is None:
            if len(_COEFFS_CACHE) >= _COEFFS_CACHE_MAX:
                _COEFFS_CACHE.clear()
            cs = tuple(pickle.loads(blob))
            _COEFFS_CACHE[key] = cs
        return cs
    return tuple(ref)


def _cached_solver(
    coeffs: tuple[int, ...], mu: int, r_bits: int, strategy: str,
    backend: str = "python",
) -> IntervalProblemSolver:
    key = (coeffs, mu, r_bits, strategy, backend)
    solver = _SOLVER_CACHE.get(key)
    if solver is None:
        if len(_SOLVER_CACHE) >= _SOLVER_CACHE_MAX:
            _SOLVER_CACHE.clear()
        solver = IntervalProblemSolver(
            IntPoly(coeffs), mu, r_bits, strategy=strategy,
            counter=null_counter_for(backend),
        )
        _SOLVER_CACHE[key] = solver
    return solver


def _traced_solver(
    coeffs: tuple[int, ...], mu: int, r_bits: int, strategy: str,
    backend: str = "python",
) -> tuple[IntervalProblemSolver, Tracer, int]:
    pid = os.getpid()
    counter = counter_for(backend)
    tracer = Tracer(counter=counter)
    solver = IntervalProblemSolver(
        IntPoly(coeffs), mu, r_bits, counter=counter,
        strategy=strategy, tracer=tracer, label=f"pid{pid}",
    )
    return solver, tracer, pid


#: Worker-global sampling profiler, lazily started by the first
#: profiled task this worker runs and reused (the timer thread keeps
#: running between tasks; each task drops the idle-time samples).
_WORKER_PROFILER: Any = None


def _worker_profile_begin() -> Any:
    """Start (or reuse) this process's sampling profiler for one task.

    Samples accumulated since the previous task — pool-idle stacks —
    are discarded so each task ships only its own stacks; ``start()``
    also records an anchor sample, so even a task shorter than one
    sampling interval produces a non-empty profile.
    """
    global _WORKER_PROFILER
    from repro.obs.profile import SamplingProfiler

    if _WORKER_PROFILER is None:
        _WORKER_PROFILER = SamplingProfiler()
    _WORKER_PROFILER.drain()
    if _WORKER_PROFILER.running:
        _WORKER_PROFILER.sample_once()  # per-task anchor on reuse
    else:
        _WORKER_PROFILER.start()  # takes its own anchor sample
    return _WORKER_PROFILER


def _with_profile(spans: list[dict] | None, prof: Any) -> list[dict] | None:
    """Append this task's collapsed profile to the span export.

    The profile rides in the same ``spans`` list the tracer ships back
    through the pool, as a dict *without* a ``"sid"`` key — the
    parent's ``deliver`` splits it off before adopting the spans.
    """
    if prof is None:
        return spans
    from repro.obs.profile import collapse

    entry = {"profile": collapse(prof.drain()), "pid": os.getpid()}
    return (list(spans) if spans else []) + [entry]


def sign_worker(args: tuple) -> tuple:
    """Pool worker: one PREINTERVAL task — the sign of a node polynomial
    just right of one interleaving point.

    ``args = (label, t, y, coeffs, mu, r_bits, strategy, trace[,
    profile[, backend]])``; the ``coeffs`` slot is either a raw tuple
    or an interned ``(poly_key, blob)`` reference from
    :func:`intern_coeffs`.  Returns ``("sign", label, t, sign, spans)``
    where ``spans`` is the worker tracer's export when ``trace`` is
    truthy (else ``None``), with the task's collapsed stack profile
    appended when ``profile`` is truthy.  Module-level so it pickles.
    """
    label, t, y, coeffs, mu, r_bits, strategy, trace = args[:8]
    prof = _worker_profile_begin() if len(args) > 8 and args[8] else None
    backend = args[9] if len(args) > 9 else "python"
    coeffs = _resolve_coeffs(coeffs)
    if not trace:
        solver = _cached_solver(coeffs, mu, r_bits, strategy, backend)
        s = solver.preinterval_sign(y)
        return ("sign", label, t, s, _with_profile(None, prof))
    solver, tracer, pid = _traced_solver(coeffs, mu, r_bits, strategy,
                                         backend)
    with tracer.span("sign", phase="interval.preinterval",
                     node=list(label), t=t, pid=pid):
        s = solver.preinterval_sign(y)
    return ("sign", label, t, s, _with_profile(tracer.export(), prof))


def gap_worker(args: tuple) -> tuple:
    """Pool worker: one INTERVAL task — solve gap ``i`` of a node given
    both endpoint signs (shared with the adjacent gaps' tasks).

    ``args = (label, gap, left, right, s_left, s_right, sign_at_neg_inf,
    coeffs, mu, r_bits, strategy, trace[, profile[, backend]])``; the
    ``coeffs`` slot accepts the same raw-tuple or interned forms as
    :func:`sign_worker`.  Returns ``("gap", label, gap, scaled_root,
    spans)`` (profile handling as in :func:`sign_worker`).
    Module-level so it pickles.
    """
    (label, gap, left, right, s_left, s_right, s_inf,
     coeffs, mu, r_bits, strategy, trace) = args[:12]
    prof = _worker_profile_begin() if len(args) > 12 and args[12] else None
    backend = args[13] if len(args) > 13 else "python"
    coeffs = _resolve_coeffs(coeffs)
    if not trace:
        solver = _cached_solver(coeffs, mu, r_bits, strategy, backend)
        val = solver.solve_gap(gap, left, right, s_left, s_right, s_inf)
        return ("gap", label, gap, val, _with_profile(None, prof))
    solver, tracer, pid = _traced_solver(coeffs, mu, r_bits, strategy,
                                         backend)
    with tracer.span("gap", phase="interval",
                     node=list(label), gap=gap, pid=pid):
        val = solver.solve_gap(gap, left, right, s_left, s_right, s_inf)
    return ("gap", label, gap, val, _with_profile(tracer.export(), prof))


def solve_gap_worker(args: tuple) -> tuple[int, int, list[dict] | None]:
    """Pool worker: solve one interval problem *standalone* (recomputing
    both endpoint signs) — the legacy per-gap task body, kept for
    direct use and comparison against the shared-sign pipeline.

    ``args = (coeffs, mu, r_bits, gap_index, left, right[, trace])``;
    returns ``(gap_index, scaled_root, spans)`` where ``spans`` is the
    worker tracer's export when ``trace`` is truthy (else ``None``).
    Module-level so it pickles.
    """
    coeffs, mu, r_bits, gap, left, right = args[:6]
    trace = bool(args[6]) if len(args) > 6 else False
    if not trace:
        solver = IntervalProblemSolver(IntPoly(coeffs), mu, r_bits)
        return gap, solver.solve_gap_standalone(gap, left, right), None
    solver, tracer, pid = _traced_solver(tuple(coeffs), mu, r_bits, "hybrid")
    with tracer.span("gap", phase="interval", gap=gap, pid=pid):
        val = solver.solve_gap_standalone(gap, left, right)
    return gap, val, tracer.export()


# -- parent side -----------------------------------------------------------


@dataclass
class ParallelRootFinder:
    """Multiprocessing variant of :class:`repro.core.rootfinder.RealRootFinder`
    built around one persistent worker pool.

    The pool is spawned lazily on the first call and reused by every
    subsequent :meth:`find_roots_scaled` / :meth:`find_roots_many`
    until :meth:`close` (also a context manager).  Dispatch is
    dependency-driven: per-node PREINTERVAL sign tasks start as soon as
    the node's children have delivered their roots, and each gap's
    INTERVAL task starts as soon as its two endpoint signs exist —
    independent subtrees overlap freely.

    Degenerate inputs behave exactly like the sequential finder:
    ``ValueError`` on the zero polynomial, ``[]`` for constants, and a
    square-free-decomposition fallback for repeated roots.  A failed or
    timed-out task is retried on a fresh worker (``retry``), then — if
    retries are exhausted or the circuit breaker is open — executed in
    the parent process, keeping every result already computed; only a
    broken pool degrades the whole call to the sequential path
    (counted in :attr:`fallback_count`, logged via the tracer).  A call
    always returns the exact answer.

    Parameters
    ----------
    mu:
        Output precision in bits (scaled grid is ``2**-mu``).
    processes:
        Pool size.  Dead workers are respawned by the pool itself; a
        broken pool is replaced on the next call.
    check_tree:
        Assert Theorem 1's conclusions at every tree node — same
        default as the sequential finder.
    strategy:
        Interval-solver strategy (``hybrid`` / ``bisection`` /
        ``newton``), applied inside every worker.  May be changed
        between calls; the pool is strategy-agnostic.
    task_timeout:
        Per-task deadline in seconds, measured from each submission
        (``None`` = wait forever).  An attempt that misses its deadline
        is abandoned (a late result is discarded as stale) and the
        logical task is retried or run in-parent.
    retry:
        :class:`~repro.resilience.retry.RetryPolicy` for failed/timed-
        out tasks (default: 2 retries, exponential backoff).  Pass
        ``RetryPolicy(max_retries=0)`` to degrade straight to in-parent
        execution.
    breaker:
        :class:`~repro.resilience.breaker.CircuitBreaker` guarding the
        pool, shared across every call this finder serves.  After
        ``failure_threshold`` consecutive task failures it opens and
        task bodies run in-parent until the cool-down elapses and a
        probe task succeeds.  State transitions increment the
        ``executor.breaker_*`` counters and emit ``breaker_*`` tracer
        events.
    budget:
        Optional :class:`~repro.resilience.budget.Budget`.  Checked
        cooperatively at phase boundaries and once per dispatch-loop
        event; an overrun raises
        :class:`~repro.resilience.budget.BudgetExceeded` carrying the
        top-level roots already completed.  The bit-cost axis sees the
        parent-side counter only (worker costs stay worker-local).
    counter:
        Parent-side cost counter for the remainder/tree phases (worker
        costs stay worker-local and return only through trace spans).
    tracer:
        Observability hook; see the module docstring.
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry` accumulating live
        executor telemetry across every call this finder serves: the
        ``executor.queue_depth`` / ``executor.in_flight`` gauges and
        the ``executor.queue_depth.samples`` histogram (sampled at
        every submit/complete event), plus the reliability counters
        (``executor.fallbacks``, ``executor.retries``,
        ``executor.task_timeouts``, ``executor.worker_failures``,
        ``executor.inline_tasks``, ``executor.stale_results``,
        ``executor.breaker_*``, ...) the regression gate watches.  A
        fresh registry is created per finder unless one is passed in.
    faults:
        Optional deterministic fault-injection plan (an object with an
        ``intercept(dispatch_index, fn, payload, finder)`` method — see
        :class:`repro.verify.faults.FaultPlan`).  Consulted once per
        pool submission (retries consume fresh indices), and may
        replace the task body; ``None`` (the default) is zero-overhead.
        In-parent execution always runs the *original* task body.
        Test-only: the production dispatch path never sets it.
    profile:
        Enable sampling profiling: each pool task runs under its
        worker's :class:`~repro.obs.profile.SamplingProfiler` and ships
        its collapsed stacks back with the result, and the parent
        samples its own dispatch thread.  Read the merged result via
        :meth:`profile_collapsed` / :attr:`profile_samples`.  Off by
        default — the profiler costs a few percent of wall time.
    profile_interval:
        Sampling period in seconds for the parent-side profiler
        (workers use the module default).
    sample_hook:
        Optional callable ``(queue_depth, in_flight)`` invoked at every
        dispatch-loop telemetry sample (the same submit/complete sites
        that update the ``executor.queue_depth`` gauge).  This is how
        ``repro serve`` reads the executor's live backlog for admission
        control without polling the registry.  Exceptions are swallowed
        — a telemetry consumer must never break dispatch.
    request_tag:
        Opaque request tag stamped onto the ``executor.dispatch``
        span's attrs as ``request_id`` (``None`` adds nothing) — how
        the serve daemon ties a solve's span tree back to the request
        that asked for it.
    backend:
        Arithmetic backend name (``"python"``/``"gmpy2"``/``"mpint"``/
        ``"auto"``; see docs/BACKENDS.md).  Threaded into every worker
        task payload so the pool's arithmetic runs on it, and into the
        parent-side remainder/tree phases.  Resolved and validated at
        construction; results are bit-identical across backends.
    """

    mu: int
    processes: int = 2
    check_tree: bool = True
    strategy: str = "hybrid"
    task_timeout: float | None = None
    retry: RetryPolicy | None = None
    breaker: CircuitBreaker | None = None
    budget: Budget | None = None
    counter: CostCounter = NULL_COUNTER
    tracer: Tracer = NULL_TRACER
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    faults: Any = None
    profile: bool = False
    profile_interval: float = 0.005
    sample_hook: Any = None
    #: Opaque request tag stamped onto the ``executor.dispatch`` span's
    #: attrs as ``request_id`` — how ``repro serve`` attributes a
    #: solve's span tree to the request that asked for it.  ``None``
    #: (the default) adds nothing.
    request_tag: Any = None
    #: Arithmetic backend for worker and parent-side arithmetic
    #: (resolved/validated in ``__post_init__``; see docs/BACKENDS.md).
    backend: str = "python"
    #: parent-side timestamped profiler samples (``(t_ns, stack)``,
    #: same clock as tracer spans) — feed to ``spans_to_chrome``'s
    #: ``profile`` argument for a profiler lane in the Chrome trace.
    profile_samples: list = field(default_factory=list, init=False,
                                  repr=False)
    _profile_folded: dict = field(default_factory=dict, init=False,
                                  repr=False)
    #: whole-polynomial sequential degradations so far (repeated roots,
    #: broken pool); parity tests assert it stays 0 on the happy path
    #: *and* under single-task faults (those are absorbed by retries).
    fallback_count: int = field(default=0, init=False)
    _pool: Any = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.mu < 1:
            raise ValueError("mu must be >= 1")
        if self.processes < 1:
            raise ValueError("processes must be >= 1")
        from repro.core.sieve import STRATEGIES

        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; "
                f"known: {list(STRATEGIES)}"
            )
        if self.retry is None:
            self.retry = RetryPolicy()
        if self.breaker is None:
            self.breaker = CircuitBreaker()
        self.breaker.on_transition = self._on_breaker_transition
        # Resolve the backend eagerly so a bad name/missing package fails
        # at construction, not inside a worker.
        self.backend = resolve_backend(self.backend).name
        if self.counter is NULL_COUNTER:
            self.counter = null_counter_for(self.backend)
        if (self.budget is not None and self.budget.max_bit_ops is not None
                and isinstance(self.counter, NullCounter)):
            # The bit ceiling needs a real counter to read.
            self.counter = counter_for(self.backend)

    def _on_breaker_transition(self, old: str, new: str) -> None:
        name = {
            BREAKER_OPEN: "executor.breaker_open",
            BREAKER_HALF_OPEN: "executor.breaker_half_open",
            BREAKER_CLOSED: "executor.breaker_close",
        }[new]
        self.metrics.counter(name).inc()
        self.tracer.event(
            f"breaker_{new}", previous=old,
            consecutive_failures=self.breaker.consecutive_failures,
        )

    # -- pool lifecycle --------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            with self.tracer.span("pool.spawn", phase="pool",
                                  processes=self.processes):
                self._pool = mp.get_context("spawn").Pool(self.processes)
        return self._pool

    def worker_pids(self) -> list[int]:
        """Sorted OS pids of the live pool's workers (``[]`` if none)."""
        if self._pool is None:
            return []
        return sorted(w.pid for w in self._pool._pool)

    def close(self, join_timeout: float = 5.0) -> None:
        """Shut the pool down cleanly (idempotent).

        The join is bounded: a worker still chewing on an abandoned
        (timed-out) task must not wedge the caller, so after
        ``join_timeout`` seconds the pool is torn down hard instead
        (``executor_close_timeout`` event).  The finder stays usable:
        the next call simply spawns a fresh pool.
        """
        if self._pool is None:
            return
        pool, self._pool = self._pool, None
        with self.tracer.span("pool.close", phase="pool"):
            pool.close()
            t = threading.Thread(target=pool.join, daemon=True)
            t.start()
            t.join(timeout=join_timeout)
            if t.is_alive():
                self.tracer.event("executor_close_timeout",
                                  timeout=join_timeout)
                self._hard_teardown(pool)

    def _discard_pool(self) -> None:
        """Hard-kill a wedged pool; the next call respawns."""
        if self._pool is None:
            return
        pool, self._pool = self._pool, None
        self._hard_teardown(pool)

    def _hard_teardown(self, pool: Any) -> None:
        # terminate() can itself block forever: a worker SIGKILLed while
        # blocked in the inqueue's recv dies holding the queue read-lock
        # (a POSIX semaphore — no owner, never released), and
        # Pool._terminate drains the inqueue under that same lock.  Run
        # the teardown in a daemon thread with a bounded join; if it
        # wedges, SIGKILL the workers directly and abandon the pool
        # (its daemonic processes are reaped at interpreter exit, and
        # the daemon teardown thread cannot keep the interpreter alive).
        pids = [w.pid for w in pool._pool if w.pid]

        def _teardown() -> None:
            try:
                pool.terminate()
                pool.join()
            except Exception:
                pass

        t = threading.Thread(target=_teardown, daemon=True)
        t.start()
        t.join(timeout=5.0)
        if t.is_alive():
            self.metrics.counter("executor.teardown_timeouts").inc()
            self.tracer.event("executor_teardown_timeout",
                              pids=pids, timeout=5.0)
            for pid in pids:
                try:
                    os.kill(pid, signal.SIGKILL)
                except OSError:
                    pass

    def __enter__(self) -> "ParallelRootFinder":
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.close()
        return False

    def __del__(self) -> None:
        try:
            self._discard_pool()
        except Exception:
            pass

    # -- public API ------------------------------------------------------
    def find_roots_scaled(self, p: IntPoly) -> list[int]:
        """Scaled mu-approximations of all distinct real roots, ascending
        (exact; bit-identical to the sequential finder)."""
        tracer = self.tracer
        budget = self.budget
        if p.is_zero():
            raise ValueError("the zero polynomial has every number as a root")
        if p.leading_coefficient < 0:
            p = -p
        if p.degree == 0:
            return []
        if p.degree == 1:
            return [solve_linear_scaled(p, self.mu)]
        if budget is not None:
            budget.start(self.counter)
            budget.check(phase="remainder", mu=self.mu, degree=p.degree)
        try:
            seq = compute_remainder_sequence(p, self.counter, tracer)
        except NotSquareFreeError:
            tracer.event("executor_fallback", reason="not_square_free",
                         degree=p.degree)
            return self._sequential_scaled(p)
        if budget is not None:
            budget.check(phase="tree", mu=self.mu, degree=p.degree)
        with tracer.span("tree.compute_polynomials", phase="tree",
                         degree=p.degree):
            tree = InterleavingTree(seq)
            tree.compute_polynomials(self.counter, check=self.check_tree,
                                     tracer=tracer)
        if budget is not None:
            budget.check(phase="interval", mu=self.mu, degree=p.degree)
        # Deferred import (cycle: repro.core.tasks -> repro.sched.graph
        # -> repro.sched package -> this module).
        from repro.core.tasks import build_interval_plan

        r_bits = root_bound_bits(p)
        plan = build_interval_plan(tree)
        tag = ({"request_id": self.request_tag}
               if self.request_tag is not None else {})
        try:
            with self._parent_profiler(), \
                    tracer.span("executor.dispatch", phase="interval",
                                degree=p.degree, nodes=len(plan), **tag):
                return self._run_plan(plan, r_bits)
        except _Degraded as exc:
            tracer.event("executor_fallback", reason=str(exc),
                         degree=p.degree)
            self._discard_pool()
            return self._sequential_scaled(p)

    def find_roots_many(
        self,
        polys: Sequence[IntPoly],
        checkpoint: "BatchCheckpoint | None" = None,
    ) -> list[list[int]]:
        """Batched throughput API: solve many polynomials on one warm pool.

        The pool is spawned once (if not already live) and stays warm
        across the whole batch — the service-style shape where per-call
        pool startup would otherwise dominate.  Results are in input
        order, each exactly what :meth:`find_roots_scaled` returns.

        ``checkpoint`` (a :class:`~repro.resilience.checkpoint.
        BatchCheckpoint`) makes the batch resumable: every completed
        polynomial is durably appended as it finishes, and polynomials
        already present are answered from the checkpoint without
        re-solving (counted in ``executor.checkpoint_hits``).  If the
        run dies — including via a
        :class:`~repro.resilience.budget.BudgetExceeded` bubbling up —
        a rerun with the same checkpoint continues where it stopped.
        """
        out: list[list[int]] = []
        with self.tracer.span("executor.batch", phase="interval",
                              count=len(polys)):
            for p in polys:
                key = None
                if checkpoint is not None:
                    key = checkpoint.key_for(p.coeffs)
                    cached = checkpoint.get(key)
                    if cached is not None:
                        checkpoint.hit()
                        self.metrics.counter("executor.checkpoint_hits").inc()
                        self.tracer.event("checkpoint_hit", index=len(out),
                                          degree=p.degree)
                        out.append(cached)
                        continue
                scaled = self.find_roots_scaled(p)
                if checkpoint is not None and key is not None:
                    checkpoint.record(key, len(out), scaled)
                out.append(scaled)
        return out

    # -- internals -------------------------------------------------------
    def _sequential_scaled(self, p: IntPoly) -> list[int]:
        """Whole-polynomial degradation path: same parameters, same
        answer (used only when the pooled run cannot complete at all)."""
        self.fallback_count += 1
        self.metrics.counter("executor.fallbacks").inc()
        finder = RealRootFinder(
            mu_bits=self.mu, check_tree=self.check_tree,
            counter=self.counter, strategy=self.strategy, tracer=self.tracer,
            budget=self.budget, backend=self.backend,
        )
        return finder.find_roots(p).scaled

    @contextlib.contextmanager
    def _parent_profiler(self):
        """Sample the parent dispatch thread while profiling is on."""
        if not self.profile:
            yield
            return
        from repro.obs.profile import SamplingProfiler

        prof = SamplingProfiler(interval=self.profile_interval)
        prof.start()
        try:
            yield
        finally:
            prof.stop()
            self.profile_samples.extend(prof.drain())

    def _merge_profile(self, folded: Any) -> None:
        for stack, n in (folded or {}).items():
            self._profile_folded[stack] = (
                self._profile_folded.get(stack, 0) + n
            )

    def profile_collapsed(self) -> dict[str, int]:
        """Merged collapsed-stack profile of every profiled call so far.

        Worker-side task folds plus the parent dispatch thread's
        samples, in flamegraph.pl's collapsed format
        (``{"root;child;leaf": count}``).  Empty unless the finder was
        constructed with ``profile=True`` and has run.
        """
        from repro.obs.profile import collapse, merge_collapsed

        return merge_collapsed(self._profile_folded,
                               collapse(self.profile_samples))

    def _run_plan(self, plan: "list[NodePlan]", r_bits: int) -> list[int]:
        """Dependency-driven dispatch of one plan over the shared pool.

        Every PREINTERVAL/INTERVAL submission is a *logical task* keyed
        by ``NodePlan.sign_task`` / ``NodePlan.gap_task``.  Attempts
        against the pool may time out or fail; the logical task then
        retries with backoff, and finally runs in-parent.  Late results
        from abandoned attempts are discarded as stale, so each logical
        task completes exactly once.
        """
        pool = self._ensure_pool()
        tracer = self.tracer
        capture = tracer.enabled
        profiled = self.profile
        mu = self.mu
        strategy = self.strategy
        backend = self.backend
        retry = self.retry
        breaker = self.breaker
        budget = self.budget
        clock = time.monotonic
        sentinel = 1 << (r_bits + mu)

        by_label = {node.label: node for node in plan}
        parent_of: dict[tuple[int, int], tuple[int, int]] = {}
        waiting: dict[tuple[int, int], int] = {}
        for node in plan:
            waiting[node.label] = len(node.children)
            for child in node.children:
                parent_of[child] = node.label
        root_label = plan[-1].label  # postorder: the root closes the plan
        root_degree = by_label[root_label].degree

        roots: dict[tuple[int, int], list] = {}
        coeffs_ref: dict[tuple[int, int], tuple[str, bytes]] = {}
        ys: dict[tuple[int, int], list[int]] = {}
        signs: dict[tuple[int, int], list] = {}
        gap_started: dict[tuple[int, int], list[bool]] = {}
        gaps_left: dict[tuple[int, int], int] = {}

        results_q: queue.Queue = queue.Queue()
        completed: list[tuple[int, int]] = []
        done = False

        # Logical-task bookkeeping (see docstring).
        body: dict[tuple, tuple[Any, tuple]] = {}      # original task bodies
        attempts: dict[tuple, int] = {}                # pool attempts made
        live: dict[int, tuple[tuple, float | None]] = {}  # tid -> (key, deadline)
        done_keys: set[tuple] = set()
        retry_due: list[tuple[float, int, tuple]] = []  # heap of resubmissions
        inline_q: deque = deque()
        retry_seq = 0
        pool_successes = 0
        timeouts_this_call = 0

        # Live telemetry: sampled at every submit/complete event (no
        # timer thread — the dispatch loop *is* the state machine, so
        # its transitions are exactly the moments the series changes).
        procs = self.processes
        depth_gauge = self.metrics.gauge("executor.queue_depth")
        inflight_gauge = self.metrics.gauge("executor.in_flight")
        depth_hist = self.metrics.histogram("executor.queue_depth.samples")

        def sample() -> None:
            pending = len(live)
            inflight = pending if pending < procs else procs
            depth = pending - inflight
            depth_gauge.set(depth)
            inflight_gauge.set(inflight)
            depth_hist.observe(depth)
            if self.sample_hook is not None:
                try:
                    self.sample_hook(depth, inflight)
                except Exception:
                    pass
            if capture:
                tracer.sample("executor.queue_depth", depth)
                tracer.sample("executor.in_flight", inflight)

        dispatch_index = 0
        task_seq = 0
        start_pids = set(self.worker_pids())

        def enqueue(tid: int, item: Any) -> None:
            # Runs on the pool's result-handler thread; Queue is safe.
            results_q.put((tid, item))

        def dispatch(key: tuple) -> None:
            """One attempt at a logical task: pool if the breaker
            admits it, in-parent otherwise."""
            nonlocal dispatch_index, task_seq
            if key in done_keys:
                return
            if not breaker.allow():
                inline_q.append(key)
                return
            fn, payload = body[key]
            if self.faults is not None:
                fn, payload = self.faults.intercept(
                    dispatch_index, fn, payload, self
                )
            dispatch_index += 1
            attempts[key] += 1
            tid = task_seq
            task_seq += 1
            deadline = (clock() + self.task_timeout
                        if self.task_timeout is not None else None)
            live[tid] = (key, deadline)
            try:
                pool.apply_async(
                    fn, (payload,),
                    callback=_partial(enqueue, tid),
                    error_callback=_partial(enqueue, tid),
                )
            except Exception as exc:  # pool broken/closed underneath us
                raise _Degraded(f"dispatch failed: {exc!r}") from exc
            sample()

        def submit(fn, payload, key: tuple) -> None:
            body[key] = (fn, payload)
            attempts[key] = 0
            dispatch(key)

        def task_failed(key: tuple, reason: str) -> None:
            nonlocal retry_seq
            breaker.record_failure()
            if key in done_keys:
                return
            n = attempts[key]
            if n <= retry.max_retries:
                self.metrics.counter("executor.retries").inc()
                tracer.event("executor_retry", task=key[0],
                             node=list(key[1]), index=key[2],
                             attempt=n, reason=reason)
                retry_seq += 1
                heapq.heappush(
                    retry_due, (clock() + retry.delay(n), retry_seq, key)
                )
            else:
                tracer.event("executor_node_fallback", task=key[0],
                             node=list(key[1]), index=key[2],
                             attempts=n, reason=reason)
                inline_q.append(key)

        def complete(label: tuple[int, int]) -> None:
            nonlocal done
            completed.append(label)
            if label == root_label:
                done = True

        def start_node(node: NodePlan) -> None:
            if node.degree == 1:
                # Leaves are linear — solved in the parent, as in the
                # sequential path (paper: "easy to estimate").
                roots[node.label] = [solve_linear_scaled(IntPoly(node.coeffs),
                                                         mu)]
                complete(node.label)
                return
            inter: list[int] = []
            for child in node.children:
                inter = merge_sorted(inter, roots[child])
            ys_node = [-sentinel] + inter + [sentinel]
            L = node.degree
            ys[node.label] = ys_node
            signs[node.label] = [None] * (L + 1)
            gap_started[node.label] = [False] * L
            gaps_left[node.label] = L
            roots[node.label] = [None] * L
            # Intern the coefficient tuple once per node: all 2L+1 task
            # payloads share one pre-pickled (poly_key, blob) reference.
            coeffs_ref[node.label] = intern_coeffs(node.coeffs, mu, strategy)
            for t, y in enumerate(ys_node):
                submit(sign_worker, (node.label, t, y,
                                     coeffs_ref[node.label], mu,
                                     r_bits, strategy, capture, profiled,
                                     backend),
                       node.sign_task(t))

        def on_sign(label: tuple[int, int], t: int, s: int) -> None:
            node = by_label[label]
            sg = signs[label]
            sg[t] = s
            ys_node = ys[label]
            started = gap_started[label]
            for gap in (t - 1, t):
                if (0 <= gap < node.degree and not started[gap]
                        and sg[gap] is not None and sg[gap + 1] is not None):
                    started[gap] = True
                    submit(gap_worker, (label, gap, ys_node[gap],
                                        ys_node[gap + 1], sg[gap], sg[gap + 1],
                                        node.sign_at_neg_inf,
                                        coeffs_ref[label],
                                        mu, r_bits, strategy, capture,
                                        profiled, backend),
                           node.gap_task(gap))

        def on_gap(label: tuple[int, int], gap: int, val: int) -> None:
            roots[label][gap] = val
            gaps_left[label] -= 1
            if gaps_left[label] == 0:
                complete(label)

        def deliver(item: tuple) -> None:
            kind, label, idx, val, spans = item
            done_keys.add((kind, label, idx))
            if spans:
                # Profile entries ride the span list but are not spans
                # (no "sid"): split them off before adopting.
                for entry in spans:
                    if "sid" not in entry:
                        self._merge_profile(entry.get("profile"))
                spans = [sp for sp in spans if "sid" in sp]
            if spans:
                # Lane per OS process: spans carry the producing pid
                # (in-parent execution lands on the parent's own lane).
                pid = spans[0].get("attrs", {}).get("pid")
                tracer.adopt(spans, key=pid)
            if kind == "sign":
                on_sign(label, idx, val)
            else:
                on_gap(label, idx, val)

        def run_inline(key: tuple) -> None:
            """Per-node sequential degradation: execute the original
            task body in the parent process.  Exact by construction —
            the body is the same code the worker would have run."""
            if key in done_keys:
                return
            self.metrics.counter("executor.inline_tasks").inc()
            fn, payload = body[key]
            deliver(fn(payload))

        def expire(now: float) -> None:
            nonlocal timeouts_this_call, start_pids
            expired = [tid for tid, (_k, dl) in live.items()
                       if dl is not None and dl <= now]
            for tid in expired:
                key, _dl = live.pop(tid)
                self.metrics.counter("executor.task_timeouts").inc()
                timeouts_this_call += 1
                # A timeout with a changed worker-pid set means a worker
                # died holding this task: the pool respawned the process
                # but the in-flight attempt's result is gone for good.
                pids = set(self.worker_pids())
                if pids != start_pids:
                    self.metrics.counter("executor.worker_failures").inc()
                    start_pids = pids
                tracer.event("executor_task_timeout", task=key[0],
                             node=list(key[1]), index=key[2],
                             timeout=self.task_timeout)
                sample()
                task_failed(key, "timeout")

        for node in plan:  # seed: nodes with no root-producing children
            if waiting[node.label] == 0:
                start_node(node)

        while True:
            while completed:
                label = completed.pop()
                parent = parent_of.get(label)
                if parent is not None:
                    waiting[parent] -= 1
                    if waiting[parent] == 0:
                        start_node(by_label[parent])
            if done:
                break
            if budget is not None:
                partial_roots = [v for v in roots.get(root_label, ())
                                 if v is not None]
                budget.check(scaled=partial_roots, phase="executor.interval",
                             mu=mu, degree=root_degree)
            if inline_q:
                run_inline(inline_q.popleft())
                continue
            now = clock()
            expire(now)
            while retry_due and retry_due[0][0] <= now:
                _due, _seq, key = heapq.heappop(retry_due)
                dispatch(key)
            if inline_q or completed:
                continue
            if not live and not retry_due:
                raise _Degraded("scheduler stalled with no pending tasks")
            wake: list[float] = [dl for (_k, dl) in live.values()
                                 if dl is not None]
            if retry_due:
                wake.append(retry_due[0][0])
            wait = max(0.0, min(wake) - now) if wake else None
            try:
                tid, item = results_q.get(timeout=wait)
            except queue.Empty:
                continue  # deadlines/retries are re-examined at the top
            rec = live.pop(tid, None)
            sample()
            if rec is None:
                # Result of an abandoned (timed-out) attempt arriving
                # late: the logical task already moved on.  Discard.
                self.metrics.counter("executor.stale_results").inc()
                continue
            key, _dl = rec
            if isinstance(item, BaseException):
                self.metrics.counter("executor.worker_failures").inc()
                tracer.event("executor_task_error", task=key[0],
                             node=list(key[1]), index=key[2],
                             error=repr(item))
                task_failed(key, "error")
                continue
            pool_successes += 1
            breaker.record_success()
            if key in done_keys:
                self.metrics.counter("executor.stale_results").inc()
                continue
            deliver(item)

        if timeouts_this_call and pool_successes == 0:
            # Every pool interaction this call ended in a timeout: the
            # pool is likely wedged (e.g. a worker died holding the
            # shared queue lock).  Discard it so the next call starts
            # from a fresh pool instead of timing out again.
            tracer.event("executor_pool_suspect",
                         timeouts=timeouts_this_call)
            self._discard_pool()

        return roots[root_label]
